"""FeedforwardNetwork tests: shapes, three-semantics agreement, parameters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.expr import evaluate, var
from repro.nn import FeedforwardNetwork, Layer, controller_network


def make_net(sizes, rng, activation="tansig"):
    layers = []
    for i, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
        act = activation if i < len(sizes) - 2 else "linear"
        layers.append(
            Layer(
                rng.normal(size=(fan_out, fan_in)),
                rng.normal(size=fan_out),
                act,
            )
        )
    return FeedforwardNetwork(layers)


class TestShapes:
    def test_layer_validation(self):
        with pytest.raises(ReproError):
            Layer(np.zeros((2, 3)), np.zeros(3), "tansig")  # bias mismatch
        with pytest.raises(ReproError):
            Layer(np.zeros(4), np.zeros(4), "tansig")  # 1-D weights

    def test_network_layer_chain_validated(self):
        l1 = Layer(np.zeros((4, 2)), np.zeros(4), "tansig")
        l2 = Layer(np.zeros((1, 3)), np.zeros(1), "linear")  # wrong fan_in
        with pytest.raises(ReproError):
            FeedforwardNetwork([l1, l2])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            FeedforwardNetwork([])

    def test_dimensions(self, rng):
        net = make_net([2, 7, 3], rng)
        assert net.input_dimension == 2
        assert net.output_dimension == 3
        assert net.hidden_sizes == [7]

    def test_paper_parameter_count(self):
        """Section 4.2: a 2 -> Nh -> 1 network has 4*Nh + 1 parameters."""
        for nh in (1, 10, 100, 1000):
            net = controller_network(nh)
            assert net.parameter_count == 4 * nh + 1

    def test_forward_shapes(self, rng):
        net = make_net([3, 5, 2], rng)
        single = net.forward(np.zeros(3))
        assert single.shape == (2,)
        batch = net.forward(np.zeros((10, 3)))
        assert batch.shape == (10, 2)

    def test_forward_dimension_check(self, rng):
        net = make_net([3, 5, 2], rng)
        with pytest.raises(ReproError):
            net.forward(np.zeros(4))

    def test_is_smooth(self, rng):
        assert make_net([2, 3, 1], rng).is_smooth()
        assert not make_net([2, 3, 1], rng, activation="relu").is_smooth()


class TestSemanticsAgreement:
    @pytest.mark.parametrize("sizes", [[2, 4, 1], [2, 8, 3, 1], [1, 5, 5, 2]])
    def test_numeric_vs_symbolic(self, sizes, rng):
        net = make_net(sizes, rng)
        inputs = [var(f"y{i}") for i in range(sizes[0])]
        exprs = net.symbolic_outputs(inputs)
        assert len(exprs) == sizes[-1]
        for _ in range(10):
            y = rng.uniform(-2, 2, size=sizes[0])
            numeric = net.forward(y)
            env = {f"y{i}": float(v) for i, v in enumerate(y)}
            symbolic = np.array([evaluate(e, env) for e in exprs])
            assert np.allclose(numeric, symbolic, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("activation", ["tansig", "logsig", "relu"])
    def test_interval_forward_encloses(self, activation, rng):
        net = make_net([2, 6, 1], rng, activation=activation)
        lo = np.array([-1.0, -0.5])
        hi = np.array([0.5, 1.0])
        out_lo, out_hi = net.interval_forward(lo, hi)
        for _ in range(200):
            y = rng.uniform(lo, hi)
            u = net.forward(y)
            assert np.all(u >= out_lo - 1e-9)
            assert np.all(u <= out_hi + 1e-9)

    def test_interval_forward_point_box_tight(self, rng):
        net = make_net([2, 6, 1], rng)
        y = np.array([0.3, -0.7])
        lo, hi = net.interval_forward(y, y)
        u = net.forward(y)
        assert np.all(np.abs(u - lo) < 1e-9)
        assert np.all(np.abs(u - hi) < 1e-9)

    def test_interval_forward_validation(self, rng):
        net = make_net([2, 3, 1], rng)
        with pytest.raises(ReproError):
            net.interval_forward(np.zeros(3), np.zeros(3))
        with pytest.raises(ReproError):
            net.interval_forward(np.ones(2), np.zeros(2))

    @given(st.integers(min_value=1, max_value=64))
    def test_symbolic_wide_layer(self, width):
        rng = np.random.default_rng(width)
        net = make_net([2, width, 1], rng)
        exprs = net.symbolic_outputs([var("a"), var("b")])
        y = rng.uniform(-1, 1, size=2)
        env = {"a": float(y[0]), "b": float(y[1])}
        assert evaluate(exprs[0], env) == pytest.approx(
            float(net.forward(y)[0]), rel=1e-10, abs=1e-10
        )


class TestParameters:
    def test_roundtrip(self, rng):
        net = make_net([2, 5, 1], rng)
        params = net.get_parameters()
        clone = net.copy()
        clone.set_parameters(np.zeros_like(params))
        assert np.allclose(clone.forward(np.ones(2)), 0.0)
        clone.set_parameters(params)
        assert np.allclose(clone.forward(np.ones(2)), net.forward(np.ones(2)))

    def test_wrong_length_rejected(self, rng):
        net = make_net([2, 5, 1], rng)
        with pytest.raises(ReproError):
            net.set_parameters(np.zeros(net.parameter_count + 1))

    def test_copy_is_independent(self, rng):
        net = make_net([2, 3, 1], rng)
        clone = net.copy()
        clone.layers[0].weights[:] = 0.0
        assert not np.allclose(net.layers[0].weights, 0.0)

    def test_perturbation_changes_output(self, rng):
        net = make_net([2, 4, 1], rng)
        y = np.array([0.5, -0.5])
        before = net.forward(y).copy()
        params = net.get_parameters()
        net.set_parameters(params + 0.1)
        assert not np.allclose(net.forward(y), before)


class TestControllerNetwork:
    def test_structure(self):
        net = controller_network(12)
        assert net.input_dimension == 2
        assert net.output_dimension == 1
        assert net.hidden_sizes == [12]
        assert net.layers[0].activation.name == "tansig"
        assert net.layers[1].activation.name == "linear"

    def test_seeded_reproducibility(self):
        a = controller_network(8, rng=np.random.default_rng(5))
        b = controller_network(8, rng=np.random.default_rng(5))
        assert np.allclose(a.get_parameters(), b.get_parameters())

    def test_invalid_width(self):
        with pytest.raises(ReproError):
            controller_network(0)
