"""Variable substitution over expression DAGs."""

from __future__ import annotations

from typing import Mapping

from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    as_expr,
    postorder,
)

__all__ = ["substitute"]


def substitute(root: Expr, bindings: Mapping[str, "Expr | float"]) -> Expr:
    """Replace each variable named in ``bindings`` with its replacement.

    Replacements may be expressions or numbers.  Unbound variables are
    left intact.  The walk is iterative and DAG-aware: shared subtrees
    are rebuilt once and stay shared in the output.
    """
    resolved = {name: as_expr(value) for name, value in bindings.items()}
    rebuilt: dict[int, Expr] = {}
    for node in postorder(root):
        rebuilt[id(node)] = _rebuild(node, rebuilt, resolved)
    return rebuilt[id(root)]


def _rebuild(
    node: Expr, rebuilt: dict[int, Expr], bindings: Mapping[str, Expr]
) -> Expr:
    if isinstance(node, Var):
        return bindings.get(node.name, node)
    if isinstance(node, Const):
        return node
    if isinstance(node, Neg):
        child = rebuilt[id(node.child)]
        return node if child is node.child else Neg(child)
    if isinstance(node, Pow):
        base = rebuilt[id(node.base)]
        return node if base is node.base else Pow(base, node.exponent)
    if isinstance(node, Unary):
        child = rebuilt[id(node.child)]
        return node if child is node.child else Unary(node.op, child)
    if isinstance(node, (Add, Sub, Mul, Div, Min2, Max2)):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if left is node.left and right is node.right:
            return node
        return type(node)(left, right)
    return node
