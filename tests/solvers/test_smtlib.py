"""SMT-LIB emission: literals, operator encodings, query structure."""

from __future__ import annotations

import math

import pytest

from repro.errors import SolverError
from repro.expr import var
from repro.expr.node import Max2, Min2, Unary
from repro.intervals import Box, Interval
from repro.smt import Subproblem, eq, ge, gt, le, lt
from repro.solvers import (
    TRANSCENDENTAL_OPS,
    constraint_to_smtlib,
    decimal_literal,
    emit_query,
    expr_to_smtlib,
    symbol,
)


class TestDecimalLiteral:
    def test_simple_values(self):
        assert decimal_literal(0.5) == "0.5"
        assert decimal_literal(2.0) == "2.0"
        assert decimal_literal(-2.0) == "(- 2.0)"
        assert decimal_literal(0.0) == "0.0"

    def test_never_scientific_notation(self):
        # rospoly's trap: repr(1e-5) == '1e-05' is not SMT-LIB.
        for value in (1e-5, 1e-9, 1e20, 6.02e23, -3.3e-12, 5e-324):
            text = decimal_literal(value)
            assert "e" not in text.lower(), f"{value} rendered as {text}"

    def test_exact_roundtrip(self):
        # The decimal expansion of a binary double is exact, so float()
        # must recover the original bit pattern — 0 ulp, well within the
        # 1-ulp acceptance bar.
        values = [0.1, 1e-3, math.pi, 2.0 / 3.0, 1.5e-17, 123456.789, 5e-324]
        for value in values + [-v for v in values]:
            text = decimal_literal(value)
            if text.startswith("(- "):
                recovered = -float(text[3:-1])
            else:
                recovered = float(text)
            assert recovered == value, f"{value!r} -> {text} -> {recovered!r}"

    def test_ulp_property_on_grid(self):
        # Property over a deterministic value sweep: re-parsed literal
        # within 1 ulp (measured: exactly equal).
        for k in range(-60, 61):
            for mantissa in (1.0, 1.3333333333333333, 1.9999999999999998):
                value = mantissa * 2.0**k
                text = decimal_literal(value)
                recovered = float(text)
                assert abs(recovered - value) <= math.ulp(value)
                assert recovered == value

    def test_nonfinite_rejected(self):
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(SolverError):
                decimal_literal(bad)


class TestSymbol:
    def test_simple_names_pass_through(self):
        assert symbol("x") == "x"
        assert symbol("e_psi") == "e_psi"
        assert symbol("x0") == "x0"

    def test_awkward_names_quoted(self):
        assert symbol("0start") == "|0start|"
        assert symbol("a b") == "|a b|"

    def test_unquotable_rejected(self):
        with pytest.raises(SolverError):
            symbol("a|b")


class TestExprRendering:
    def test_arithmetic(self):
        x, y = var("x"), var("y")
        text, ops = expr_to_smtlib(x * y + x / y - (-x))
        assert text == "(- (+ (* x y) (/ x y)) (- x))"
        assert ops == frozenset()

    def test_pow_encodings(self):
        x = var("x")
        assert expr_to_smtlib(x**2)[0] == "(^ x 2)"
        assert expr_to_smtlib(x**1)[0] == "x"
        assert expr_to_smtlib(x**0)[0] == "1.0"
        assert expr_to_smtlib(x**-1)[0] == "(/ 1.0 x)"
        assert expr_to_smtlib(x**-3)[0] == "(/ 1.0 (^ x 3))"

    def test_min_max_abs_become_ite(self):
        x, y = var("x"), var("y")
        assert expr_to_smtlib(Min2(x, y))[0] == "(ite (<= x y) x y)"
        assert expr_to_smtlib(Max2(x, y))[0] == "(ite (>= x y) x y)"
        text, ops = expr_to_smtlib(Unary("abs", x))
        assert text == "(ite (>= x 0.0) x (- x))"
        assert ops == frozenset()  # stays pure QF_NRA

    def test_sigmoid_expands_through_exp(self):
        x = var("x")
        text, ops = expr_to_smtlib(Unary("sigmoid", x))
        assert text == "(/ 1.0 (+ 1.0 (exp (- x))))"
        assert ops == frozenset({"exp"})

    def test_transcendentals_recorded(self):
        x = var("x")
        for op in sorted(TRANSCENDENTAL_OPS):
            text, ops = expr_to_smtlib(Unary(op, x))
            assert text == f"({op} x)"
            assert ops == frozenset({op})

    def test_relations(self):
        x = var("x")
        assert constraint_to_smtlib(le(x, 1.0))[0] == "(<= (- x 1.0) 0.0)"
        assert constraint_to_smtlib(lt(x, 1.0))[0] == "(< (- x 1.0) 0.0)"
        assert constraint_to_smtlib(ge(x, 1.0))[0] == "(>= (- x 1.0) 0.0)"
        assert constraint_to_smtlib(gt(x, 1.0))[0] == "(> (- x 1.0) 0.0)"
        assert constraint_to_smtlib(eq(x, 1.0))[0] == "(= (- x 1.0) 0.0)"


def _query(regions=None, constraints=None, names=("x", "y"), delta=1e-3):
    x, y = var("x"), var("y")
    regions = regions or [Box([Interval(-2.0, 2.0), Interval(-1.0, 1.0)])]
    constraints = constraints or [ge(x * x + y * y, 1.0)]
    subs = [
        Subproblem(constraints, region, label=f"r{i}")
        for i, region in enumerate(regions)
    ]
    return emit_query(subs, names, delta)


class TestEmitQuery:
    def test_structure(self):
        query = _query()
        assert query.text.startswith("; repro.solvers SMT-LIB 2 emission")
        assert "(set-logic QF_NRA)" in query.text
        assert "(declare-const x Real)" in query.text
        assert "(declare-const y Real)" in query.text
        assert query.text.rstrip().endswith("(check-sat)")
        # No model command in the canonical text: adapters add their own.
        assert "get-model" not in query.text
        assert query.names == ("x", "y")
        assert query.delta == 1e-3

    def test_deterministic(self):
        assert _query().text == _query().text

    def test_union_becomes_or(self):
        two = _query(
            regions=[
                Box([Interval(-2.0, 0.0), Interval(-1.0, 1.0)]),
                Box([Interval(0.0, 2.0), Interval(-1.0, 1.0)]),
            ]
        )
        assert "(assert (or" in two.text
        single = _query()
        assert "(assert (or" not in single.text

    def test_hull_bounds_cover_all_regions(self):
        query = _query(
            regions=[
                Box([Interval(-2.0, 0.0), Interval(-1.0, 1.0)]),
                Box([Interval(1.0, 3.0), Interval(-0.5, 0.5)]),
            ]
        )
        assert "(assert (and (<= (- 2.0) x) (<= x 3.0)))" in query.text

    def test_ops_collected_across_subproblems(self):
        x = var("x")
        query = _query(
            regions=[Box([Interval(-1.0, 1.0)])] * 2,
            constraints=[ge(Unary("tanh", x), 0.1)],
            names=("x",),
        )
        assert query.ops == frozenset({"tanh"})

    def test_empty_union_rejected(self):
        with pytest.raises(SolverError):
            emit_query([], ("x",), 1e-3)

    def test_unbounded_region_rejected(self):
        x = var("x")
        sub = Subproblem([ge(x, 0.0)], Box([Interval(0.0, float("inf"))]))
        with pytest.raises(SolverError):
            emit_query([sub], ("x",), 1e-3)

    def test_dimension_mismatch_rejected(self):
        x = var("x")
        sub = Subproblem([ge(x, 0.0)], Box([Interval(0.0, 1.0)]))
        with pytest.raises(SolverError):
            emit_query([sub], ("x", "y"), 1e-3)

    def test_subproblems_kept_for_validation(self):
        query = _query()
        assert len(query.subproblems) == 1
        assert query.subproblems[0].label == "r0"
