"""Ablation: δ-SAT precision vs verification outcome and cost.

The paper relies on dReal's δ precision; this sweep shows the library's
behavior across four orders of magnitude: too-coarse δ cannot refute
near-boundary boxes (verification fails or loops), while finer δ
verifies at growing query cost.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_ablation, run_delta_sweep


def test_delta_precision_sweep(benchmark, emit):
    def run():
        return run_delta_sweep(deltas=(1e-1, 1e-2, 1e-3, 1e-4), hidden_neurons=10)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_delta", format_ablation(rows, "delta-precision sweep (Nh=10)"))

    # Fine precisions verify.
    by_label = {row.label: row for row in rows}
    assert by_label["delta=0.001"].status == "verified"
    assert by_label["delta=0.0001"].status == "verified"
    # Every configuration terminates in a defined state.
    assert all(
        row.status in ("verified", "no-candidate", "no-level-set", "inconclusive")
        for row in rows
    )
