"""Error-dynamics model tests (Sections 4.1.3-4.1.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dynamics import (
    DubinsCar,
    StraightLinePath,
    error_dynamics_system,
    error_field_exprs,
    numeric_error_field,
)
from repro.errors import ReproError
from repro.expr import evaluate, var
from repro.learning import proportional_controller_network
from repro.nn import controller_network


class TestFieldExpressions:
    def test_simplified_equals_verbatim(self):
        """The paper's published d_err' telescopes to V sin(theta_err)."""
        u = var("u")
        rng = np.random.default_rng(0)
        for _ in range(30):
            speed = rng.uniform(0.5, 3.0)
            theta_r = rng.uniform(-1.5, 1.5)
            simple = error_field_exprs(u, speed, theta_r, simplified=True)
            verbatim = error_field_exprs(u, speed, theta_r, simplified=False)
            env = {
                "derr": rng.uniform(-5, 5),
                "thetaerr": rng.uniform(-1.5, 1.5),
                "u": rng.uniform(-2, 2),
            }
            assert evaluate(simple[0], env) == pytest.approx(
                evaluate(verbatim[0], env), abs=1e-12
            )
            assert evaluate(simple[1], env) == pytest.approx(
                evaluate(verbatim[1], env), abs=1e-12
            )

    def test_theta_err_dot_is_minus_u(self):
        """Eq. 13: theta_err' = -u."""
        exprs = error_field_exprs(var("u"))
        assert evaluate(exprs[1], {"derr": 0, "thetaerr": 0, "u": 0.7}) == -0.7

    def test_speed_validation(self):
        with pytest.raises(ReproError):
            error_field_exprs(var("u"), speed=0.0)


class TestSystemConstruction:
    def test_numeric_matches_symbolic(self, rng):
        net = controller_network(6, rng=rng)
        system = error_dynamics_system(net)
        for _ in range(25):
            x = rng.uniform([-4, -1.3], [4, 1.3])
            assert np.allclose(system.f(x), system.symbolic_f(x), atol=1e-10)

    def test_network_shape_validation(self, rng):
        bad = controller_network(4, inputs=3, rng=rng)
        with pytest.raises(ReproError):
            numeric_error_field(bad)

    def test_state_names(self, small_system):
        assert small_system.state_names == ["derr", "thetaerr"]

    def test_equilibrium_at_origin_when_u0_zero(self):
        """A zero-bias odd controller fixes the origin."""
        net = proportional_controller_network(4)
        system = error_dynamics_system(net)
        assert np.allclose(system.f(np.zeros(2)), 0.0, atol=1e-12)


class TestConsistencyWithFullVehicle:
    def test_error_dynamics_match_full_simulation(self):
        """Simulating the 3-state vehicle and projecting onto
        (d_err, theta_err) must match simulating the reduced model."""
        from repro.dynamics import PathFollowingLoop

        net = proportional_controller_network(6)
        speed = 1.0
        path = StraightLinePath(theta_r=0.0)
        loop = PathFollowingLoop(DubinsCar(speed), path, net.forward)
        x0_full = np.array([-0.8, 0.0, 0.15])  # derr = +0.8, theta_err = -0.15
        full_trace = loop.simulate(x0_full, duration=5.0, dt=0.005)

        reduced = error_dynamics_system(net, speed=speed)
        errors0 = loop.errors(x0_full)
        reduced_trace = reduced.simulator().simulate(
            errors0.as_vector(), 5.0, 0.005
        )

        final_full = loop.errors(full_trace.final_state)
        final_reduced = reduced_trace.final_state
        assert final_full.d_err == pytest.approx(final_reduced[0], abs=1e-5)
        assert final_full.theta_err == pytest.approx(final_reduced[1], abs=1e-5)

    def test_rotation_invariance(self):
        """The reduced model is independent of theta_r: full-vehicle
        error trajectories coincide for different path orientations."""
        from repro.dynamics import PathFollowingLoop

        net = proportional_controller_network(6)
        finals = []
        for theta_r in (0.0, 0.8, -1.1):
            path = StraightLinePath(theta_r=theta_r)
            loop = PathFollowingLoop(DubinsCar(), path, net.forward)
            # Place the vehicle at d_err = +0.5, theta_err = -0.1.
            from repro.dynamics import heading_vector

            tangent = heading_vector(theta_r)
            normal = np.array([-tangent[1], tangent[0]])
            position = 1.0 * tangent + 0.5 * normal
            state = np.array([position[0], position[1], theta_r + 0.1])
            errors = loop.errors(state)
            assert errors.d_err == pytest.approx(0.5, abs=1e-9)
            assert errors.theta_err == pytest.approx(-0.1, abs=1e-9)
            trace = loop.simulate(state, duration=4.0, dt=0.01)
            final = loop.errors(trace.final_state)
            finals.append((final.d_err, final.theta_err))
        for other in finals[1:]:
            assert finals[0][0] == pytest.approx(other[0], abs=1e-6)
            assert finals[0][1] == pytest.approx(other[1], abs=1e-6)
