"""Pluggable solver engines for the Figure-1 procedure.

An :class:`Engine` bundles one backend per solver role — simulation
(:class:`SimBackend`), LP fitting (:class:`LpBackend`), δ-SAT checking
(:class:`SmtBackend`) — behind a string-keyed registry, mirroring the
scenario registry of :mod:`repro.api.scenario`.  Six engines ship
built in:

``native``        the historical scalar code paths (default;
                  bit-identical to pre-engine behavior)
``vectorized``    NumPy batch integrator stepping every seed trace
                  through one array pass per RK stage
``parallel-smt``  independent condition-(5)/(6)/(7) subproblem boxes
                  dispatched across a thread pool, each solved by the
                  batched structure-of-arrays ICP solver
``batched-icp``   the whole δ-SAT frontier in one
                  :class:`~repro.intervals.BoxArray` with frontier-wide
                  vectorized HC4 contraction (fastest single-core SMT)
``sharded-icp``   the batched frontier's per-round row work fanned out
                  across forked worker processes over shared memory
                  (``--shards``/``REPRO_SHARDS``); bit-identical
                  verdicts/witnesses/artifacts at every shard count
``portfolio``     external SMT solvers (z3/dreal, via
                  :mod:`repro.solvers`) raced against the sharded ICP
                  lane; degrades to it exactly when no binaries are
                  installed

Selecting one::

    from repro import api

    artifact = api.run("dubins", engine="vectorized")

Registering a custom stack reuses any builtin backend for the roles you
do not replace::

    from repro import engine as eng

    native = eng.get_engine("native")
    eng.register_engine(eng.Engine(
        name="my-gpu",
        description="GPU batch simulation, native LP/SMT",
        sim=MyGpuSimBackend(),
        lp=native.lp,
        smt=native.smt,
    ))
"""

from .base import (
    Engine,
    LpBackend,
    SimBackend,
    SmtBackend,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from .batched import BatchedSmtBackend
from .native import NativeLpBackend, NativeSimBackend, SerialSmtBackend
from .parallel import ParallelSmtBackend
from .sharded import ShardedSmtBackend
from .vectorized import VectorizedSimBackend

__all__ = [
    "BatchedSmtBackend",
    "Engine",
    "LpBackend",
    "NativeLpBackend",
    "NativeSimBackend",
    "ParallelSmtBackend",
    "SerialSmtBackend",
    "ShardedSmtBackend",
    "SimBackend",
    "SmtBackend",
    "VectorizedSimBackend",
    "engine_names",
    "get_engine",
    "list_engines",
    "register_engine",
    "resolve_engine",
    "unregister_engine",
]


def _register_builtins() -> None:
    sim = NativeSimBackend()
    lp = NativeLpBackend()
    smt = SerialSmtBackend()
    register_engine(
        Engine(
            name="native",
            description="Historical scalar code paths: per-trace "
            "simulation, HiGHS LP, serial SMT dispatch (default)",
            sim=sim,
            lp=lp,
            smt=smt,
            tags=("builtin", "default"),
        )
    )
    register_engine(
        Engine(
            name="vectorized",
            description="NumPy batch integrator stepping all seed traces "
            "in one array pass; native LP and SMT",
            sim=VectorizedSimBackend(),
            lp=lp,
            smt=smt,
            tags=("builtin",),
        )
    )
    register_engine(
        Engine(
            name="parallel-smt",
            description="Condition-(5)/(6)/(7) subproblem boxes dispatched "
            "across a thread pool, each on the batched ICP solver; "
            "native simulation and LP",
            sim=sim,
            lp=lp,
            smt=ParallelSmtBackend(),
            tags=("builtin",),
        )
    )
    register_engine(
        Engine(
            name="batched-icp",
            description="Structure-of-arrays branch-and-prune: union-"
            "seeded BoxArray frontier with frontier-wide vectorized HC4 "
            "contraction; vectorized simulation, native LP",
            sim=VectorizedSimBackend(),
            lp=lp,
            smt=BatchedSmtBackend(),
            tags=("builtin",),
        )
    )
    register_engine(
        Engine(
            name="sharded-icp",
            description="Frontier-sharded branch-and-prune: the batched "
            "ICP round work fanned across forked workers over shared "
            "memory (--shards/REPRO_SHARDS), bit-identical to "
            "batched-icp; vectorized simulation, native LP",
            sim=VectorizedSimBackend(),
            lp=lp,
            smt=ShardedSmtBackend(),
            tags=("builtin",),
        )
    )
    # Imported here (not at module top) because repro.solvers is pure
    # downstream code that must stay importable without repro.engine.
    from ..solvers.portfolio import PortfolioSmtBackend

    register_engine(
        Engine(
            name="portfolio",
            description="External SMT solvers (z3/dreal subprocesses over "
            "SMT-LIB emission) raced against the sharded ICP lane; "
            "first verdict wins, exact batched-icp degrade when no "
            "binaries are installed",
            sim=VectorizedSimBackend(),
            lp=lp,
            smt=PortfolioSmtBackend(),
            tags=("builtin", "external"),
        )
    )


_register_builtins()
