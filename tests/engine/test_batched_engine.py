"""The ``batched-icp`` engine: registration, equivalence, scenario parity.

The acceptance bar for the SoA solver stack: on every registered
scenario the batched backend must return the same verdict as the native
(serial scalar) backend, with witnesses that validate against the same
constraints up to δ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_scenario, scenario_names
from repro.barrier import verify_system
from repro.barrier.certificate import condition5_subproblems
from repro.engine import (
    BatchedSmtBackend,
    ParallelSmtBackend,
    SerialSmtBackend,
    get_engine,
)
from repro.expr import sum_expr, var
from repro.intervals import Box, Interval
from repro.smt import BatchedIcpSolver, IcpConfig, Subproblem, Verdict, ge, le


class TestRegistration:
    def test_batched_engine_registered(self):
        engine = get_engine("batched-icp")
        assert isinstance(engine.smt, BatchedSmtBackend)
        assert "builtin" in engine.tags

    def test_parallel_smt_uses_batched_solver(self):
        parallel = get_engine("parallel-smt").smt
        assert isinstance(parallel, ParallelSmtBackend)
        assert parallel.solver_factory is BatchedIcpSolver

    def test_cli_lists_batched(self, capsys):
        from repro.cli import main

        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "batched-icp" in out


def _smt_subproblems():
    constraint = ge(var("x"), 1.0)
    return [
        Subproblem([constraint], Box([Interval(-3.0, -2.0)]), label="a"),
        Subproblem([constraint], Box([Interval(-1.0, 0.5)]), label="b"),
        Subproblem([constraint], Box([Interval(0.0, 2.0)]), label="c"),
    ]


class TestBackendEquivalence:
    def test_matches_serial_verdict_and_witness_region(self):
        config = IcpConfig(delta=1e-3)
        serial = SerialSmtBackend().check(_smt_subproblems(), ["x"], config)
        batched = BatchedSmtBackend().check(_smt_subproblems(), ["x"], config)
        assert serial.verdict is batched.verdict is Verdict.DELTA_SAT
        # Both witnesses come from the same (only SAT) subproblem box and
        # δ-satisfy the constraint; the exact leaf may differ because the
        # union search quadrisects narrow frontiers.
        assert 0.0 <= batched.witness[0] <= 2.0
        assert batched.witness[0] >= 1.0 - config.delta
        assert batched.witness_validated == serial.witness_validated

    def test_lowest_index_witness_wins(self):
        constraint = le(var("x"), 10.0)
        subs = [
            Subproblem([constraint], Box([Interval(5.0, 6.0)])),
            Subproblem([constraint], Box([Interval(-6.0, -5.0)])),
        ]
        result = BatchedSmtBackend().check(subs, ["x"], IcpConfig(delta=1e-3))
        assert 5.0 <= result.witness[0] <= 6.0

    def test_empty_union_unsat(self):
        result = BatchedSmtBackend().check([], ["x"], IcpConfig(delta=1e-3))
        assert result.verdict is Verdict.UNSAT

    def test_budget_parity_with_serial(self):
        # the serial path grants each subproblem its own max_boxes; the
        # union search must scale its shared budget to match, so a
        # workload native refutes within budget never flips to UNKNOWN
        from repro.expr import var as v

        c = ge(v("x") * v("x") + v("y") * v("y"), 9.0)
        subs = [
            Subproblem(
                [c],
                Box([Interval(-1 + i * 0.1, -0.5 + i * 0.1), Interval(-1, 1)]),
            )
            for i in range(6)
        ]
        tight = IcpConfig(delta=1e-3, max_boxes=30)
        serial = SerialSmtBackend().check(subs, ["x", "y"], tight)
        batched = BatchedSmtBackend().check(subs, ["x", "y"], tight)
        assert serial.verdict is batched.verdict is Verdict.UNSAT

    def test_mixed_constraint_groups(self):
        # consecutive runs with different constraint objects fall into
        # separate union groups but keep the serial ordering contract
        c1 = ge(var("x"), 1.0)
        c2 = le(var("x"), -1.0)
        subs = [
            Subproblem([c1], Box([Interval(-3.0, 0.0)])),
            Subproblem([c1], Box([Interval(-1.0, 0.5)])),
            Subproblem([c2], Box([Interval(-2.0, 2.0)])),
        ]
        config = IcpConfig(delta=1e-3)
        serial = SerialSmtBackend().check(subs, ["x"], config)
        batched = BatchedSmtBackend().check(subs, ["x"], config)
        assert serial.verdict is batched.verdict is Verdict.DELTA_SAT
        # the c1 group is fully refuted; the witness comes from c2's box
        assert -2.0 <= batched.witness[0] <= -1.0 + config.delta


def _scenario_check5(name, max_boxes=300_000, delta=None):
    """A bounded condition-(5)-shaped query for one scenario."""
    scenario = get_scenario(name)
    problem = scenario.problem()
    w = sum_expr([var(n) * var(n) for n in problem.state_names])
    subs = condition5_subproblems(w, problem, gamma=1e-6)
    config = IcpConfig(
        delta=delta if delta is not None else scenario.config.icp.delta,
        max_boxes=max_boxes,
    )
    return subs, problem.state_names, config


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_batched_matches_native_verdict_on_scenario(name):
    """Identical verdicts to native on every registered scenario."""
    subs, names, config = _scenario_check5(name)
    serial = SerialSmtBackend().check(subs, names, config)
    batched = BatchedSmtBackend().check(subs, names, config)
    assert batched.verdict is serial.verdict, (
        f"{name}: batched {batched.verdict} != native {serial.verdict}"
    )
    if serial.verdict is Verdict.DELTA_SAT:
        # witnesses are δ-valid points of the same weakened constraints
        assert batched.witness_validated == serial.witness_validated


class TestFullRunParity:
    def test_bicycle_verifies_identically(self):
        scenario = get_scenario("bicycle")
        native = verify_system(scenario.problem(), config=scenario.config)
        batched = verify_system(
            scenario.problem(), config=scenario.config, engine="batched-icp"
        )
        assert native.verified and batched.verified
        assert batched.level == pytest.approx(native.level, rel=1e-6)

    def test_linear_verifies_identically(self):
        scenario = get_scenario("linear")
        native = verify_system(scenario.problem(), config=scenario.config)
        batched = verify_system(
            scenario.problem(), config=scenario.config, engine="batched-icp"
        )
        assert native.verified and batched.verified
        assert batched.level == pytest.approx(native.level, rel=1e-6)
