"""Incremental LP assembly: identical coefficients, rows computed once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier.lp import LpAssembler, LpConfig, fit_generator
from repro.barrier.templates import QuadraticTemplate
from repro.dynamics import ContinuousSystem
from repro.errors import LinearProgramError
from repro.expr import var


@pytest.fixture
def system():
    x, y = var("x"), var("y")
    # Stable linear dynamics: every quadratic Lyapunov candidate fits.
    return ContinuousSystem(["x", "y"], [-x + 0.5 * y, -0.5 * x - y])


@pytest.fixture
def template():
    return QuadraticTemplate(2)


def _cloud(rng, n):
    return rng.uniform(-2.0, 2.0, (n, 2))


class TestIncrementalEqualsScratch:
    def test_refinement_appends_match_rebuild(self, system, template, rng):
        """Growing the cloud across calls == rebuilding from scratch.

        This is the counterexample-refinement pattern: iteration 1 fits
        on the seed points, iteration k appends the new trace's points.
        The warm assembler serves iteration-1 rows from cache; the
        coefficients must be bit-identical to a cold fit on the same
        cloud.
        """
        assembler = LpAssembler(template, system)
        config = LpConfig()
        seed = _cloud(rng, 120)
        extra = _cloud(rng, 30)

        warm_first = fit_generator(
            template, seed, system, config, assembler=assembler
        )
        grown = np.vstack([seed, extra])
        warm_second = fit_generator(
            template, grown, system, config, assembler=assembler
        )
        cold_first = fit_generator(template, seed, system, config)
        cold_second = fit_generator(template, grown, system, config)

        np.testing.assert_array_equal(
            warm_first.coefficients, cold_first.coefficients
        )
        np.testing.assert_array_equal(
            warm_second.coefficients, cold_second.coefficients
        )
        assert warm_second.margin == cold_second.margin

    def test_with_separation_block(self, system, template, rng):
        assembler = LpAssembler(template, system)
        config = LpConfig()
        separation = (
            np.array([[0.1, 0.1], [-0.1, 0.1], [0.1, -0.1], [-0.1, -0.1]]),
            _cloud(rng, 40) + 5.0,
        )
        seed = _cloud(rng, 100)
        grown = np.vstack([seed, _cloud(rng, 25)])
        warm = [
            fit_generator(
                template, pts, system, config,
                separation=separation, assembler=assembler,
            )
            for pts in (seed, grown)
        ]
        cold = [
            fit_generator(template, pts, system, config, separation=separation)
            for pts in (seed, grown)
        ]
        for w, c in zip(warm, cold):
            np.testing.assert_array_equal(w.coefficients, c.coefficients)
        # The separation block is cached after the first call.
        assert len(assembler._separation) == 1

    def test_rows_computed_once_per_point(self, system, template, rng):
        """Re-fits only evaluate the vector field on never-seen points."""
        calls: list[int] = []
        original = system.f_batch

        def counting_f_batch(states):
            calls.append(len(np.atleast_2d(states)))
            return original(states)

        system.f_batch = counting_f_batch
        try:
            assembler = LpAssembler(template, system)
            config = LpConfig()
            seed = _cloud(rng, 80)
            fit_generator(template, seed, system, config, assembler=assembler)
            first_total = sum(calls)
            cached_points = assembler.cached_points
            assert cached_points > 0

            extra = _cloud(rng, 20)
            fit_generator(
                template,
                np.vstack([seed, extra]),
                system,
                config,
                assembler=assembler,
            )
            # Second fit evaluated only the extra points (the seed rows
            # came from the cache).
            assert sum(calls) - first_total <= len(extra)
        finally:
            system.f_batch = original

    def test_assembler_binding_is_checked(self, system, template, rng):
        other = QuadraticTemplate(2)
        assembler = LpAssembler(other, system)
        with pytest.raises(LinearProgramError):
            fit_generator(
                template, _cloud(rng, 30), system, assembler=assembler
            )


class TestFeatureVectorization:
    """The broadcast feature maps must match the historical loops bitwise."""

    def _reference_features(self, template, points):
        columns = [
            np.prod(points ** np.asarray(expo), axis=1)
            for expo in template.monomials
        ]
        return np.stack(columns, axis=1)

    def _reference_gradients(self, template, points):
        m, n = points.shape
        grads = np.zeros((m, n, template.basis_size))
        for j, expo in enumerate(template.monomials):
            for d in range(n):
                if expo[d] == 0:
                    continue
                reduced = list(expo)
                reduced[d] -= 1
                grads[:, d, j] = expo[d] * np.prod(
                    points ** np.asarray(reduced), axis=1
                )
        return grads

    @pytest.mark.parametrize("dimension", [1, 2, 4])
    def test_quadratic(self, dimension, rng):
        template = QuadraticTemplate(dimension, include_linear=True)
        points = rng.uniform(-3.0, 3.0, (50, dimension))
        points[0] = 0.0
        np.testing.assert_array_equal(
            template.features(points), self._reference_features(template, points)
        )
        np.testing.assert_array_equal(
            template.gradient_features(points),
            self._reference_gradients(template, points),
        )

    def test_monomial_mutation_invalidates_caches(self, rng):
        """Editing the public ``monomials`` list must not serve stale rows."""
        template = QuadraticTemplate(2)
        points = rng.uniform(-1.0, 1.0, (10, 2))
        template.features(points)
        template.gradient_features(points)
        template.monomials[0] = (0, 2)  # x^2 -> y^2, same basis size
        np.testing.assert_array_equal(
            template.features(points), self._reference_features(template, points)
        )
        np.testing.assert_array_equal(
            template.gradient_features(points),
            self._reference_gradients(template, points),
        )

    def test_polynomial_high_dimension(self, rng):
        from repro.barrier.templates import PolynomialTemplate

        template = PolynomialTemplate(9, 2)
        points = rng.uniform(-1.5, 1.5, (20, 9))
        np.testing.assert_array_equal(
            template.features(points), self._reference_features(template, points)
        )
        np.testing.assert_array_equal(
            template.gradient_features(points),
            self._reference_gradients(template, points),
        )
