"""repro — simulation-guided barrier certificates for NN-controlled CPS.

A from-scratch reproduction of *"Reasoning about Safety of
Learning-Enabled Components in Autonomous Cyber-physical Systems"*
(Tuncali, Kapinski, Ito, Deshmukh — DAC 2018): train a neural-network
path-following controller with CMA-ES, then *prove* unbounded-time
safety of the closed loop by synthesizing a barrier certificate from
simulations (LP) and verifying it with a δ-SAT interval solver.

The public entry point is :mod:`repro.api`::

    from repro import api

    artifact = api.run("dubins")          # any registered scenario
    assert artifact.verified
    print(artifact.to_json(indent=2))     # JSON-round-trippable record

Subpackages
-----------
``repro.api``        public surface: :class:`~repro.api.Scenario`
                     registry, the named-stage
                     :class:`~repro.api.VerificationPipeline`, and the
                     :func:`~repro.api.run` / :func:`~repro.api.run_batch`
                     (process-parallel) runners
``repro.engine``     pluggable solver stacks: :class:`~repro.engine.Engine`
                     registry bundling sim/LP/SMT backends (``native``,
                     ``vectorized``, ``parallel-smt``)
``repro.expr``       symbolic expressions (eval / intervals / autodiff / tapes)
``repro.intervals``  sound interval arithmetic
``repro.smt``        branch-and-prune δ-SAT solver (the dReal stand-in)
``repro.solvers``    external SMT portfolio: SMT-LIB emission, z3/dreal
                     subprocess adapters, the ``portfolio`` race engine
``repro.nn``         feedforward networks with dual numeric/symbolic semantics
``repro.sim``        ODE integrators, traces, samplers
``repro.dynamics``   plants, paths, Dubins car, closed-loop composition
``repro.learning``   CMA-ES and direct policy search
``repro.barrier``    the paper's synthesis + verification procedure
``repro.experiments`` drivers regenerating every table and figure
"""

from . import (
    api,
    barrier,
    dynamics,
    engine,
    expr,
    intervals,
    learning,
    nn,
    reach,
    sim,
    smt,
    solvers,
)
from .api import (
    RunArtifact,
    Scenario,
    VerificationPipeline,
    get_scenario,
    list_scenarios,
    register_scenario,
    run,
    run_batch,
)
from .engine import Engine, get_engine, list_engines, register_engine
from .barrier import (
    BarrierCertificate,
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    SynthesisReport,
    SynthesisStatus,
    VerificationProblem,
    verify_system,
)
from .dynamics import error_dynamics_system
from .errors import ReproError
from .learning import proportional_controller_network, train_paper_controller
from .nn import FeedforwardNetwork, controller_network

__version__ = "1.2.0"

__all__ = [
    "BarrierCertificate",
    "Engine",
    "FeedforwardNetwork",
    "Rectangle",
    "RectangleComplement",
    "ReproError",
    "RunArtifact",
    "Scenario",
    "SynthesisConfig",
    "SynthesisReport",
    "SynthesisStatus",
    "VerificationPipeline",
    "VerificationProblem",
    "__version__",
    "api",
    "barrier",
    "controller_network",
    "dynamics",
    "engine",
    "error_dynamics_system",
    "expr",
    "get_engine",
    "get_scenario",
    "intervals",
    "list_engines",
    "learning",
    "list_scenarios",
    "nn",
    "proportional_controller_network",
    "reach",
    "register_engine",
    "register_scenario",
    "run",
    "run_batch",
    "sim",
    "smt",
    "solvers",
    "train_paper_controller",
    "verify_system",
]
