"""External SMT solver adapters: subprocess dispatch + verdict parsing.

Follows the rospoly exemplar's shape — write the SMT-LIB script to a
temp file, shell out with a hard wall-clock deadline, parse the verdict
line and model back — but lands the result in our own
:class:`~repro.smt.SmtResult`/witness types so the rest of the pipeline
cannot tell an external verdict from an ICP one.

Two adapters ship: :class:`Z3Solver` (exact ``sat``/``unsat`` on
``QF_NRA``; declines transcendentals, which Z3's nlsat cannot decide)
and :class:`DRealSolver` (δ-complete, handles the full operator set,
reports interval models).  Binaries are discovered on ``PATH`` or via
the ``REPRO_Z3``/``REPRO_DREAL`` environment variables; availability
and version are probed lazily and cached per resolved command.

The parsing functions (:func:`parse_z3_output`,
:func:`parse_dreal_output`) are deliberately free-standing and pure so
the test suite can exercise every verdict path on canned transcripts
without any solver installed.
"""

from __future__ import annotations

import math
import os
import re
import shutil
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from ..errors import ReproError, SolverError
from ..intervals import Box, Interval
from ..smt.result import SmtResult, SolverStats, Verdict
from .smtlib import SmtLibQuery, TRANSCENDENTAL_OPS

__all__ = [
    "DEFAULT_TIMEOUT",
    "SolverInfo",
    "ExternalSolver",
    "Z3Solver",
    "DRealSolver",
    "parse_z3_output",
    "parse_dreal_output",
    "result_from_model",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "solver_names",
    "external_solvers",
    "probe_all",
    "solver_breaker",
    "transcript_recognized",
]

#: Wall-clock budget (seconds) per external solve when the config sets
#: neither ``solver_timeout`` nor ``time_limit``.
DEFAULT_TIMEOUT = 30.0

#: verdict tokens a healthy solver transcript must contain one of
_VERDICT_TOKENS = ("unsat", "delta-sat", "sat", "unknown", "timeout")


def transcript_recognized(text: str) -> bool:
    """Whether ``text`` contains any verdict line a solver can emit.

    The circuit breaker's parse-failure signal: a transcript with no
    ``sat``/``unsat``/``delta-sat``/``unknown``/``timeout`` line at all
    is crash chatter or corruption — the *solver* is broken, as opposed
    to a legitimate UNKNOWN, which is the solver working and declining.
    """
    lowered = text.lower()
    for line in lowered.splitlines():
        stripped = line.strip()
        if stripped in ("unsat", "sat", "unknown", "timeout"):
            return True
        if stripped.startswith("delta-sat"):
            return True
    return False


def solver_breaker(name: str):
    """The circuit breaker guarding external solver ``name``.

    Opens after :class:`~repro.resilience.CircuitBreaker.threshold`
    consecutive spawn failures or unrecognizable transcripts; the
    portfolio skips open solvers instead of re-racing a flapping binary
    on every check.  Timeouts never count — a slow solver losing races
    is healthy.
    """
    from ..resilience.supervisor import breaker_for

    return breaker_for(f"solver.{name}")

#: A model maps variable names to exact values or (lo, hi) intervals.
ModelValue = "float | tuple[float, float]"


@dataclass(frozen=True)
class SolverInfo:
    """Probe outcome for one external solver binary.

    ``command`` is the resolved path when available, else the command
    that was searched for; ``reason`` explains unavailability.
    """

    name: str
    command: str
    available: bool
    version: str = ""
    reason: str = ""


@runtime_checkable
class ExternalSolver(Protocol):
    """Adapter contract the portfolio races.

    Implementations must be safe to call from worker threads: ``solve``
    may run concurrently with ``probe`` and with other solves.
    """

    name: str

    def probe(self, refresh: bool = False) -> SolverInfo:
        """Binary availability + version (cached per resolved command)."""
        ...

    def supports(self, ops: frozenset[str]) -> bool:
        """Whether queries using ``ops`` (transcendentals) are decidable."""
        ...

    def solve(
        self,
        query: SmtLibQuery,
        timeout: float = DEFAULT_TIMEOUT,
        cancel: "threading.Event | None" = None,
    ) -> SmtResult:
        """Dispatch ``query`` with a hard deadline; UNKNOWN on timeout."""
        ...


# ----------------------------------------------------------------------
# Verdict + model parsing (pure functions, testable on canned text)
# ----------------------------------------------------------------------

_DEFINE_FUN = re.compile(
    r"\(define-fun\s+(\|[^|]*\||[^\s()]+)\s+\(\)\s+Real\s*", re.MULTILINE
)

_DREAL_INTERVAL = re.compile(
    r"^\s*(\|[^|]*\||[^\s:]+)\s*:\s*([\[(])\s*([^,\[\]()\s]+)\s*,\s*([^,\[\]()\s]+)\s*([\])])",
    re.MULTILINE,
)


def _unquote(symbol_text: str) -> str:
    if symbol_text.startswith("|") and symbol_text.endswith("|"):
        return symbol_text[1:-1]
    return symbol_text


def _numeric_from_sexpr(text: str) -> "float | None":
    """Evaluate a ground numeric SMT-LIB term (``(- (/ 1.0 3.0))`` …).

    Returns None for anything beyond rational arithmetic — e.g. Z3's
    ``root-obj`` algebraic numbers — so callers downgrade to UNKNOWN
    instead of guessing.
    """
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()

    def parse(position: int) -> "tuple[float | None, int]":
        if position >= len(tokens):
            return None, position
        token = tokens[position]
        if token == "(":
            if position + 1 >= len(tokens):
                return None, position + 1
            head = tokens[position + 1]
            operands: list[float] = []
            cursor = position + 2
            while cursor < len(tokens) and tokens[cursor] != ")":
                value, cursor = parse(cursor)
                if value is None:
                    return None, cursor
                operands.append(value)
            cursor += 1  # consume ')'
            if head == "-" and len(operands) == 1:
                return -operands[0], cursor
            if head == "-" and len(operands) == 2:
                return operands[0] - operands[1], cursor
            if head == "+" and operands:
                return math.fsum(operands), cursor
            if head == "*" and operands:
                product = 1.0
                for operand in operands:
                    product *= operand
                return product, cursor
            if head == "/" and len(operands) == 2 and operands[1] != 0.0:
                return operands[0] / operands[1], cursor
            return None, cursor
        if token == ")":
            return None, position + 1
        try:
            return float(token), position + 1
        except ValueError:
            return None, position + 1

    value, _ = parse(0)
    return value


def parse_z3_output(
    text: str, names: Sequence[str]
) -> "tuple[Verdict, dict[str, float] | None]":
    """Parse a Z3 transcript into a verdict and (for sat) a model.

    Z3's ``sat`` is exact, which trivially implies δ-sat, so it maps to
    :attr:`~repro.smt.Verdict.DELTA_SAT`.  Unparseable model values
    (``root-obj`` etc.) drop out of the dict; a transcript with no
    verdict line at all — crash chatter, ``timeout``, garbage — is
    UNKNOWN.
    """
    verdict: "Verdict | None" = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped == "unsat":
            return Verdict.UNSAT, None
        if stripped == "sat":
            verdict = Verdict.DELTA_SAT
            break
        if stripped in ("unknown", "timeout"):
            return Verdict.UNKNOWN, None
    if verdict is None:
        return Verdict.UNKNOWN, None

    wanted = set(names)
    model: dict[str, float] = {}
    for match in _DEFINE_FUN.finditer(text):
        name = _unquote(match.group(1))
        if name not in wanted:
            continue
        value_text, _ = _balanced_span(text, match.end())
        value = _numeric_from_sexpr(value_text)
        if value is not None and math.isfinite(value):
            model[name] = value
    return Verdict.DELTA_SAT, model


def _balanced_span(text: str, start: int) -> tuple[str, int]:
    """Slice of ``text`` from ``start`` up to the ``)`` closing the
    enclosing ``(define-fun`` form (exclusive)."""
    depth = 1  # we are inside the define-fun's open paren
    cursor = start
    while cursor < len(text) and depth > 0:
        char = text[cursor]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        cursor += 1
    return text[start : cursor - 1], cursor


def parse_dreal_output(
    text: str, names: Sequence[str]
) -> "tuple[Verdict, dict[str, tuple[float, float]] | None]":
    """Parse a dReal transcript into a verdict and interval model.

    dReal reports ``delta-sat with delta = …`` (older builds print bare
    ``sat``) followed by per-variable interval lines like
    ``x : [ -0.125, 0.25 ]``; open endpoints ``( lo, hi )`` appear for
    strict bounds and are handled identically — the witness midpoint
    lies inside either way.  Anything unrecognized is UNKNOWN.
    """
    lowered = text.lower()
    verdict: "Verdict | None" = None
    for line in lowered.splitlines():
        stripped = line.strip()
        if stripped == "unsat":
            return Verdict.UNSAT, None
        if stripped.startswith("delta-sat") or stripped == "sat":
            verdict = Verdict.DELTA_SAT
            break
        if stripped == "unknown":
            return Verdict.UNKNOWN, None
    if verdict is None:
        return Verdict.UNKNOWN, None

    wanted = set(names)
    model: dict[str, tuple[float, float]] = {}
    for match in _DREAL_INTERVAL.finditer(text):
        name = _unquote(match.group(1))
        if name not in wanted:
            continue
        try:
            lo, hi = float(match.group(3)), float(match.group(4))
        except ValueError:
            continue
        if math.isfinite(lo) and math.isfinite(hi) and lo <= hi:
            model[name] = (lo, hi)
    return Verdict.DELTA_SAT, model


def result_from_model(
    verdict: Verdict,
    model: "dict[str, ModelValue] | None",
    query: SmtLibQuery,
    stats: "SolverStats | None" = None,
) -> SmtResult:
    """Land a parsed external verdict in our :class:`~repro.smt.SmtResult`.

    A δ-sat claim is only usable downstream if it carries a concrete
    witness the synthesis loop can simulate from, so a sat verdict whose
    model is missing any variable **downgrades to UNKNOWN** rather than
    returning ``DELTA_SAT`` with ``witness=None`` (which would crash the
    counterexample refinement).  Interval model values collapse to
    midpoints via :func:`repro.barrier.witness_point`, and the witness
    is re-checked against the original subproblems with δ slack to set
    ``witness_validated``.
    """
    stats = stats or SolverStats()
    if verdict is not Verdict.DELTA_SAT:
        return SmtResult(verdict, query.delta, stats=stats)
    if model is None or any(name not in model for name in query.names):
        return SmtResult(Verdict.UNKNOWN, query.delta, stats=stats)

    from ..barrier.falsify import witness_point  # heavy package; lazy

    try:
        witness = witness_point(model, query.names)
    except ReproError:
        return SmtResult(Verdict.UNKNOWN, query.delta, stats=stats)

    intervals = []
    for name in query.names:
        value = model[name]
        if isinstance(value, (tuple, list)):
            intervals.append(Interval(float(value[0]), float(value[1])))
        else:
            intervals.append(Interval(float(value), float(value)))
    witness_box = Box(intervals)

    validated = False
    for sub in query.subproblems:
        if not sub.region.inflate(absolute=query.delta).contains(witness):
            continue
        if all(
            c.satisfied_at(witness, query.names, slack=query.delta)
            for c in sub.constraints
        ):
            validated = True
            break
    return SmtResult(
        Verdict.DELTA_SAT,
        query.delta,
        witness=witness,
        witness_box=witness_box,
        witness_validated=validated,
        stats=stats,
    )


# ----------------------------------------------------------------------
# Subprocess adapters
# ----------------------------------------------------------------------


def _run_with_deadline(
    command: Sequence[str],
    timeout: float,
    cancel: "threading.Event | None",
) -> "tuple[str | None, bool]":
    """Run ``command``, killing it at the deadline or on ``cancel``.

    Returns ``(stdout, timed_out)``; stdout is None when the process
    could not be collected after a kill.  Polls in ~50 ms steps so a
    portfolio loser dies promptly once a rival wins.
    """
    try:
        process = subprocess.Popen(
            list(command),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            stdin=subprocess.DEVNULL,
            text=True,
        )
    except OSError as exc:
        raise SolverError(f"failed to launch {command[0]!r}: {exc}") from exc
    deadline = time.monotonic() + timeout
    while True:
        step = min(0.05, max(0.0, deadline - time.monotonic()))
        try:
            stdout, _ = process.communicate(timeout=step)
            return stdout, False
        except subprocess.TimeoutExpired:
            expired = time.monotonic() >= deadline
            cancelled = cancel is not None and cancel.is_set()
            if not (expired or cancelled):
                continue
            process.kill()
            try:
                stdout, _ = process.communicate(timeout=2.0)
            except subprocess.TimeoutExpired:
                stdout = None
            return stdout, True


class _SubprocessSolver:
    """Shared machinery: binary resolution, probe cache, temp-file solve."""

    name = ""
    env_var = ""
    default_binary = ""
    version_args: tuple[str, ...] = ("--version",)
    _version_pattern = re.compile(r"(\d+(?:\.\d+)+)")

    def __init__(self, binary: "str | None" = None):
        self._binary = binary
        self._probe_lock = threading.Lock()
        self._probe_cache: "tuple[str, SolverInfo] | None" = None

    def command_name(self) -> str:
        """Configured command: constructor arg > env var > default."""
        return self._binary or os.environ.get(self.env_var) or self.default_binary

    def probe(self, refresh: bool = False) -> SolverInfo:
        """Resolve + version-probe the binary, cached per command name.

        The cache keys on :meth:`command_name` so flipping the env var
        (tests do) re-probes instead of returning stale availability.
        """
        command = self.command_name()
        with self._probe_lock:
            cached = self._probe_cache
            if not refresh and cached is not None and cached[0] == command:
                return cached[1]
        info = self._probe(command)
        with self._probe_lock:
            self._probe_cache = (command, info)
        return info

    def _probe(self, command: str) -> SolverInfo:
        resolved = shutil.which(command)
        if resolved is None:
            return SolverInfo(
                self.name,
                command,
                False,
                reason=f"{command} binary not found on PATH",
            )
        try:
            completed = subprocess.run(
                [resolved, *self.version_args],
                capture_output=True,
                text=True,
                timeout=10.0,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            return SolverInfo(
                self.name, resolved, False, reason=f"version probe failed: {exc}"
            )
        blob = (completed.stdout or "") + (completed.stderr or "")
        match = self._version_pattern.search(blob)
        version = match.group(1) if match else "unknown"
        return SolverInfo(self.name, resolved, True, version=version)

    def supports(self, ops: frozenset[str]) -> bool:
        """Default: full operator coverage (dReal-style δ-completeness)."""
        return True

    def solve(
        self,
        query: SmtLibQuery,
        timeout: float = DEFAULT_TIMEOUT,
        cancel: "threading.Event | None" = None,
    ) -> SmtResult:
        """Write the script, dispatch the binary, parse the verdict.

        Timeout/cancel/garbage all collapse to UNKNOWN — an external
        solver can never make the pipeline worse than inconclusive.
        Outcomes feed the per-solver circuit breaker
        (:func:`solver_breaker`): spawn failures and unrecognizable
        transcripts count against it, recognized transcripts reset it,
        and timeouts are neutral.
        """
        from ..resilience import faults

        info = self.probe()
        if not info.available:
            raise SolverError(f"{self.name} is not available: {info.reason}")
        if timeout <= 0.0:
            raise SolverError(f"timeout must be positive, got {timeout}")
        breaker = solver_breaker(self.name)
        if faults.fire("solver.spawn", self.name) is not None:
            # Injected spawn loss takes the exact shape of the real one
            # (`failed to launch`, below) so recovery under test *is*
            # the production path: breaker counts it, portfolio skips.
            breaker.record_failure()
            raise SolverError(
                f"failed to launch {info.command!r}: injected spawn fault"
            )
        descriptor, path = tempfile.mkstemp(
            suffix=".smt2", prefix=f"repro-{self.name}-"
        )
        start = time.perf_counter()
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(self._script(query))
            command = self._command(info.command, path, query, timeout)
            stdout, timed_out = _run_with_deadline(command, timeout, cancel)
        except SolverError:
            breaker.record_failure()
            raise
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass
        stats = SolverStats(elapsed_seconds=time.perf_counter() - start)
        if timed_out or stdout is None:
            return SmtResult(Verdict.UNKNOWN, query.delta, stats=stats)
        action = faults.fire("solver.output", self.name)
        if action is not None:
            if action.kind == "hang":
                # A wedged solver holding its pipe open: wait out the
                # budget (cancel-aware, so a lost race still dies
                # promptly) and report the timeout-shaped UNKNOWN.
                waiter = cancel if cancel is not None else threading.Event()
                waiter.wait(min(timeout, faults.HANG_SECONDS))
                return SmtResult(Verdict.UNKNOWN, query.delta, stats=stats)
            stdout = action.payload or "Segmentation fault (core dumped)\n<<?>>"
        if not transcript_recognized(stdout):
            breaker.record_failure()
            return SmtResult(Verdict.UNKNOWN, query.delta, stats=stats)
        breaker.record_success()
        verdict, model = self._parse(stdout, query.names)
        return result_from_model(verdict, model, query, stats)

    # hooks ------------------------------------------------------------
    def _script(self, query: SmtLibQuery) -> str:
        return query.text

    def _command(
        self, binary: str, path: str, query: SmtLibQuery, timeout: float
    ) -> list[str]:
        raise NotImplementedError

    def _parse(self, text: str, names: Sequence[str]):
        raise NotImplementedError


class Z3Solver(_SubprocessSolver):
    """Z3 over ``QF_NRA``: exact verdicts, no transcendentals.

    ``supports`` declines any query using :data:`TRANSCENDENTAL_OPS` —
    Z3 parses ``sin`` as an uninterpreted function and would happily
    return an unsound ``sat``.  Scenarios whose NN activations are
    polynomial/rational (ReLU via ite, sigmoid-free) stay in reach.
    """

    name = "z3"
    env_var = "REPRO_Z3"
    default_binary = "z3"
    version_args = ("--version",)

    def supports(self, ops: frozenset[str]) -> bool:
        """True iff the query is transcendental-free."""
        return not (frozenset(ops) & TRANSCENDENTAL_OPS)

    def _script(self, query: SmtLibQuery) -> str:
        return query.text + "(get-model)\n"

    def _command(
        self, binary: str, path: str, query: SmtLibQuery, timeout: float
    ) -> list[str]:
        # -T is a belt-and-braces in-solver deadline; the subprocess
        # poll loop is the authoritative one.
        return [binary, "-smt2", f"-T:{max(1, math.ceil(timeout))}", path]

    def _parse(self, text: str, names: Sequence[str]):
        return parse_z3_output(text, names)


class DRealSolver(_SubprocessSolver):
    """dReal 4: δ-complete over the full operator set, interval models."""

    name = "dreal"
    env_var = "REPRO_DREAL"
    default_binary = "dreal"
    version_args = ("--version",)

    def _command(
        self, binary: str, path: str, query: SmtLibQuery, timeout: float
    ) -> list[str]:
        return [binary, "--precision", repr(query.delta), "--model", path]

    def _parse(self, text: str, names: Sequence[str]):
        return parse_dreal_output(text, names)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: "dict[str, ExternalSolver]" = {}
_REGISTRY_LOCK = threading.Lock()


def register_solver(solver: ExternalSolver, replace: bool = False) -> None:
    """Add an adapter to the portfolio's solver pool."""
    if not solver.name:
        raise SolverError("external solver must have a non-empty name")
    with _REGISTRY_LOCK:
        if solver.name in _REGISTRY and not replace:
            raise SolverError(
                f"solver {solver.name!r} already registered (replace=True to override)"
            )
        _REGISTRY[solver.name] = solver


def unregister_solver(name: str) -> None:
    """Remove an adapter from the pool (tests and the chaos harness)."""
    with _REGISTRY_LOCK:
        _REGISTRY.pop(name, None)


def get_solver(name: str) -> ExternalSolver:
    """Look up a registered adapter by name."""
    with _REGISTRY_LOCK:
        try:
            return _REGISTRY[name]
        except KeyError:
            known = ", ".join(sorted(_REGISTRY)) or "none"
            raise SolverError(
                f"unknown external solver {name!r}; registered: {known}"
            ) from None


def solver_names() -> tuple[str, ...]:
    """Sorted names of all registered adapters."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def external_solvers() -> "tuple[ExternalSolver, ...]":
    """All registered adapters in name order (available or not)."""
    with _REGISTRY_LOCK:
        return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def probe_all(refresh: bool = False) -> "dict[str, SolverInfo]":
    """Probe every registered adapter; name-ordered dict of infos."""
    return {solver.name: solver.probe(refresh=refresh) for solver in external_solvers()}


def _register_builtins() -> None:
    register_solver(Z3Solver())
    register_solver(DRealSolver())


_register_builtins()
