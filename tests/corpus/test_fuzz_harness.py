"""The differential fuzz harness: invariants, shrinking, reproducers.

The centerpiece is the injected-bug demo the acceptance criteria ask
for: a deliberately broken engine (its SMT backend claims *every*
condition-(5) query is delta-sat) is registered, fuzzed against the
healthy stack, caught by the cross-engine invariant, shrunk to the
family's default point, written as a reproducer, and replayed.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.corpus import (
    CHECK_KINDS,
    DEFAULT_ENGINES,
    FuzzFailure,
    check_point,
    fuzz,
    load_regressions,
    replay_failure,
    shrink_failure,
    write_regression,
)
from repro.corpus.fuzz import FUZZ_CLAMPS, STRICT_PARITY_ENGINES
from repro.engine import Engine, get_engine, register_engine
from repro.engine.base import unregister_engine
from repro.errors import ReproError
from repro.smt import SmtResult, Verdict


class _AlwaysSatBackend:
    """A broken SMT backend: every query 'finds' a counterexample.

    Condition (5) then never certifies, so the CEGIS loop churns until
    ``no-candidate`` — a verdict bug the differential harness must
    catch against the healthy engines.
    """

    name = "always-sat"

    def check(self, subproblems, names, config=None):
        return SmtResult(
            verdict=Verdict.DELTA_SAT,
            delta=config.delta if config is not None else 1e-3,
            witness=np.zeros(len(names)),
            witness_validated=True,
        )


@pytest.fixture
def broken_engine():
    healthy = get_engine("batched-icp")
    name = "test-broken-smt"
    register_engine(
        Engine(
            name=name,
            description="deliberately broken: every SMT query is delta-sat",
            sim=healthy.sim,
            lp=healthy.lp,
            smt=_AlwaysSatBackend(),
            tags=("test",),
        ),
        replace=True,
    )
    yield name
    unregister_engine(name)


def test_check_point_clean_on_linear_defaults():
    assert check_point("linear", {}, seed=0) is None


def test_check_point_rejects_unknown_kind():
    with pytest.raises(ReproError, match="unknown check kind"):
        check_point("linear", {}, seed=0, kinds=("bogus",))


def test_stress_families_stay_on_the_cheap_tier():
    """cartpole/quadrotor must not launch engine runs from the fuzzer."""
    assert check_point("cartpole", {}, seed=0) is None
    assert check_point("quadrotor", {}, seed=0) is None


def test_clamps_reference_real_parameters():
    from repro.api import get_family

    for family_name, clamps in FUZZ_CLAMPS.items():
        family = get_family(family_name)
        for param, (low, high) in clamps.items():
            spec = family.spec(param)
            assert low >= (spec.low if spec.low is not None else low)
            assert high <= (spec.high if spec.high is not None else high)


def test_failure_roundtrip_and_digest_stability():
    failure = FuzzFailure(
        kind="cross-engine",
        family="linear",
        params={"damping": 0.3, "rotation": 1.2},
        seed=7,
        engines=("native", "batched-icp"),
        detail="verdicts disagree",
    )
    assert FuzzFailure.from_dict(failure.to_dict()) == failure
    assert failure.digest() == failure.digest()
    relabeled = FuzzFailure.from_dict(
        {**failure.to_dict(), "detail": "different prose"}
    )
    assert relabeled.digest() == failure.digest()


def test_fuzz_campaign_is_seed_deterministic():
    kwargs = dict(
        samples=2,
        families=("linear",),
        engines=("batched-icp",),
        twins=False,
        shrink=False,
    )
    first = fuzz(seed=3, **kwargs)
    second = fuzz(seed=3, **kwargs)
    assert first.to_dict() == second.to_dict()
    assert first.ok


def test_injected_verdict_bug_is_caught_and_shrunk(broken_engine, tmp_path):
    """Acceptance demo: a verdict bug is found, minimised, and replayed."""
    engines = ("batched-icp", broken_engine)
    point = {"damping": 0.3700412, "rotation": 1.9134772}
    failure = check_point("linear", point, seed=0, engines=engines, twins=False)
    assert failure is not None
    assert failure.kind == "cross-engine"
    assert "verdicts disagree" in failure.detail
    assert broken_engine in failure.detail

    shrunk = shrink_failure(failure)
    assert shrunk.shrunk
    from repro.api import get_family

    defaults = {
        spec.name: spec.default
        for spec in get_family("linear").parameters
    }
    assert shrunk.params == defaults, "bug reproduces at defaults, so the minimal point IS the defaults"

    path = write_regression(shrunk, tmp_path)
    loaded = load_regressions(tmp_path)
    assert [p.name for p, _ in loaded] == [path.name]
    still_failing = replay_failure(loaded[0][1])
    assert still_failing is not None
    assert still_failing.kind == "cross-engine"


def test_replay_returns_none_once_fixed(broken_engine, tmp_path):
    """A reproducer against a since-fixed stack replays clean."""
    engines = ("batched-icp", broken_engine)
    failure = check_point("linear", {}, seed=0, engines=engines, twins=False)
    assert failure is not None
    unregister_engine(broken_engine)
    register_engine(
        Engine(
            name=broken_engine,
            description="fixed: healthy batched stack under the old name",
            sim=get_engine("batched-icp").sim,
            lp=get_engine("batched-icp").lp,
            smt=get_engine("batched-icp").smt,
            tags=("test",),
        ),
        replace=True,
    )
    assert replay_failure(failure.to_dict()) is None


def test_fuzz_writes_reproducers_on_failure(broken_engine, tmp_path):
    report = fuzz(
        samples=1,
        seed=0,
        families=("linear",),
        engines=("batched-icp", broken_engine),
        twins=False,
        shrink=True,
        regressions_dir=tmp_path,
    )
    assert not report.ok
    assert len(report.failures) == 1
    assert report.failures[0].shrunk
    assert len(report.written) == 1
    data = json.loads((tmp_path / report.written[0].split("/")[-1]).read_text())
    assert data["kind"] == "cross-engine"
    assert "FAIL [cross-engine]" in report.format()


def test_report_format_mentions_the_cheap_tier():
    report = fuzz(
        samples=1,
        seed=0,
        families=("quadrotor",),
        engines=("batched-icp",),
        twins=False,
    )
    assert report.ok
    assert report.skipped_stress == 1
    assert "stress points" in report.format()


def test_default_engine_set_is_the_full_matrix():
    assert DEFAULT_ENGINES == (
        "native",
        "batched-icp",
        "sharded-icp",
        "portfolio",
    )
    assert STRICT_PARITY_ENGINES <= set(DEFAULT_ENGINES)
    assert CHECK_KINDS == ("cache-key", "cross-engine", "round-trip", "twin")


def test_cli_fuzz_exits_zero_on_clean_tree(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "fuzz",
            "--samples",
            "1",
            "--families",
            "linear",
            "--engines",
            "batched-icp",
            "--no-twins",
            "--quiet",
            "--regressions",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert "all invariants held" in capsys.readouterr().out


def test_cli_fuzz_exits_nonzero_and_writes_corpus(
    broken_engine, tmp_path, capsys
):
    from repro.cli import main

    code = main(
        [
            "fuzz",
            "--samples",
            "1",
            "--families",
            "linear",
            "--engines",
            "batched-icp",
            broken_engine,
            "--no-twins",
            "--json",
            "--regressions",
            str(tmp_path),
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["failures"][0]["kind"] == "cross-engine"
    assert list(tmp_path.glob("*.json"))
