"""Public entry point: scenarios, families, pipeline, and runners.

The five-line quickstart::

    from repro import api

    artifact = api.run("dubins")
    print(artifact.status, artifact.level)
    print(artifact.to_json(indent=2))

Modules
-------
``repro.api.scenario``  :class:`Scenario` + the string-keyed registry
                        (pre-populated: ``dubins``, ``linear``,
                        ``double-integrator``, ``pendulum``,
                        ``bicycle``, ``cartpole``, ``vanderpol``)
``repro.api.family``    :class:`ScenarioFamily` — typed parameterized
                        scenario factories with grid/random samplers
``repro.api.pipeline``  :class:`VerificationPipeline` — the Figure-1
                        procedure with named, hookable stages
``repro.api.runner``    :func:`run` / :func:`run_batch` +
                        :class:`RunArtifact` (JSON round-trippable)
``repro.api.sweep``     :func:`sweep` — shard a family's parameter grid
                        across workers, skipping the artifact cache's
                        hits (:mod:`repro.store`)

The solver-stack registry of :mod:`repro.engine` (``native`` /
``vectorized`` / ``parallel-smt`` / ``batched-icp``) and the artifact
store of :mod:`repro.store` are re-exported here so one import serves
every registry::

    artifact = api.run("dubins", engine="vectorized", cache=True)
    report = api.sweep("dubins", grid={"speed": "1:2:3"})
"""

from ..engine import (
    Engine,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from ..store import ArtifactStore, run_key
from .family import (
    ParamSpec,
    ScenarioFamily,
    family_names,
    get_family,
    list_families,
    parse_grid_values,
    parse_point_spec,
    register_family,
    unregister_family,
)
from .pipeline import (
    PIPELINE_STAGES,
    PipelineRun,
    StageEvent,
    VerificationPipeline,
)
from .pool import WarmPool, WarmupSpec, get_warm_pool, shutdown_warm_pool
from .runner import RunArtifact, derive_scenario_seed, run, run_batch
from .sweep import SweepReport, sweep
from .scenario import (
    EPSILON,
    GAMMA,
    SPEED,
    Scenario,
    case_study_controller,
    dubins_scenario,
    get_scenario,
    list_scenarios,
    paper_initial_set,
    paper_problem,
    paper_unsafe_set,
    register_scenario,
    scenario_names,
    synthesis_config_from_dict,
    synthesis_config_to_dict,
    unregister_scenario,
)

__all__ = [
    "EPSILON",
    "ArtifactStore",
    "Engine",
    "GAMMA",
    "PIPELINE_STAGES",
    "ParamSpec",
    "PipelineRun",
    "RunArtifact",
    "SPEED",
    "Scenario",
    "ScenarioFamily",
    "StageEvent",
    "SweepReport",
    "VerificationPipeline",
    "WarmPool",
    "WarmupSpec",
    "case_study_controller",
    "derive_scenario_seed",
    "dubins_scenario",
    "engine_names",
    "family_names",
    "get_engine",
    "get_family",
    "get_scenario",
    "get_warm_pool",
    "list_engines",
    "list_families",
    "list_scenarios",
    "paper_initial_set",
    "paper_problem",
    "paper_unsafe_set",
    "parse_grid_values",
    "parse_point_spec",
    "register_engine",
    "register_family",
    "register_scenario",
    "run",
    "run_batch",
    "run_key",
    "scenario_names",
    "shutdown_warm_pool",
    "sweep",
    "synthesis_config_from_dict",
    "synthesis_config_to_dict",
    "unregister_engine",
    "unregister_family",
    "unregister_scenario",
]
