"""Verification-as-a-service: async jobs over the sharded artifact store.

This package composes the pieces PRs 1–5 built — the hookable
:class:`~repro.api.VerificationPipeline`, the content-addressed
:mod:`repro.store` cache, and the persistent
:class:`~repro.api.pool.WarmPool` — into a long-lived job service:

``service.jobs``       :class:`Job`/:class:`JobSpec` + the validated
                       state machine and the JSON-lines
                       :class:`JobJournal` (restart recovery)
``service.scheduler``  :class:`Scheduler` — cache-probing submission,
                       in-flight coalescing, shard-aware priority
                       dispatch onto the worker fleet
``service.events``     :class:`EventBus` — per-stage progress from
                       worker processes to streaming subscribers
``service.server``     :class:`ServiceServer` — the asyncio HTTP front
                       door (submit / status / result / cancel /
                       NDJSON events)
``service.client``     :class:`ServiceClient` — the thin Python client
                       the CLI commands wrap

Quickstart (server side is ``repro serve``)::

    from repro.service import ServiceClient

    client = ServiceClient()
    job = client.submit("linear", grid={"damping": "0.4:0.8:3"})
    client.wait(job["id"])
    print(client.result(job["id"])["job"]["state"])

See ``docs/service.md`` for architecture, endpoints, and deployment
notes.
"""

from .client import ServiceClient, ServiceError
from .events import EventBus, Subscription
from .jobs import Job, JobJournal, JobSpec, JobState, new_job_id
from .scheduler import Scheduler
from .server import DEFAULT_PORT, ServiceServer

__all__ = [
    "DEFAULT_PORT",
    "EventBus",
    "Job",
    "JobJournal",
    "JobSpec",
    "JobState",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Subscription",
    "new_job_id",
]
