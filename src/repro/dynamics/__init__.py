"""Plants, paths, and closed-loop system construction."""

from .closed_loop import Plant, compose
from .dubins import DubinsCar, PathFollowingLoop
from .errors_dynamics import (
    STATE_NAMES,
    error_dynamics_system,
    error_field_exprs,
    numeric_error_field,
)
from .library import (
    ackermann_plant,
    cartpole_plant,
    dubins_error_plant,
    inverted_pendulum_plant,
    kinematic_bicycle_plant,
    linear_plant,
    planar_quadrotor_plant,
    stable_linear_system,
    unicycle_plant,
    van_der_pol_system,
)
from .path import (
    PathErrors,
    PiecewiseLinearPath,
    StraightLinePath,
    heading_vector,
)
from .system import ContinuousSystem

__all__ = [
    "ContinuousSystem",
    "DubinsCar",
    "PathErrors",
    "PathFollowingLoop",
    "PiecewiseLinearPath",
    "Plant",
    "STATE_NAMES",
    "StraightLinePath",
    "ackermann_plant",
    "cartpole_plant",
    "compose",
    "dubins_error_plant",
    "error_dynamics_system",
    "error_field_exprs",
    "heading_vector",
    "inverted_pendulum_plant",
    "kinematic_bicycle_plant",
    "linear_plant",
    "numeric_error_field",
    "planar_quadrotor_plant",
    "stable_linear_system",
    "unicycle_plant",
    "van_der_pol_system",
]
