#!/usr/bin/env python
"""Verify an NN controller on a *custom* plant via the generic API.

The paper's method is not Dubins-specific: any plant of the form
x' = f_p(x, u), y = g(x) with a feedforward NN u = h(y) composes into an
autonomous system (Eq. 4) that the barrier machinery can verify.  This
example builds a torque-controlled inverted pendulum, stabilizes it with
a hand-weighted two-neuron tansig network, and proves the closed loop
never leaves a safe envelope around the upright equilibrium.

Run:  python examples/custom_plant.py
"""

import math

import numpy as np

from repro.barrier import (
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    VerificationProblem,
    verify_system,
)
from repro.dynamics import compose, inverted_pendulum_plant
from repro.expr import to_infix
from repro.nn import FeedforwardNetwork, Layer


def build_controller() -> FeedforwardNetwork:
    """A saturating PD controller as a tansig network.

    u = -(kp/c) tanh(c * theta) - (kd/c) tanh(c * omega): near the
    origin this is u = -kp*theta - kd*omega, and the tanh saturation
    bounds the torque magnitude by (kp + kd)/c.
    """
    kp, kd, squash = 12.0, 4.0, 0.5
    hidden = Layer(
        weights=np.array([[squash, 0.0], [0.0, squash]]),
        biases=np.zeros(2),
        activation="tansig",
    )
    output = Layer(
        weights=np.array([[-kp / squash, -kd / squash]]),
        biases=np.zeros(1),
        activation="linear",
    )
    return FeedforwardNetwork([hidden, output])


def main() -> None:
    # 1. Plant: x' = f_p(x, u) with symbolic dynamics.
    plant = inverted_pendulum_plant(mass=0.5, length=0.5, damping=0.1)
    print("plant:", plant)
    for name, expr in zip(plant.state_names, plant.field_exprs):
        print(f"  {name}' = {to_infix(expr, 70)}")

    # 2. Close the loop with the NN (Eq. 4): u = h(g(x)).
    network = build_controller()
    system = compose(plant, network, name="pendulum+pd-nn")
    print("closed loop:", system)

    # 3. Sanity simulation from a disturbed start.
    trace = system.simulator().simulate(np.array([0.4, 0.0]), 6.0, 0.01)
    print(
        f"simulation from theta=0.4: final state {trace.final_state.round(4)} "
        f"(max |theta| = {np.abs(trace.states[:, 0]).max():.3f})"
    )

    # 4. Safety: from |theta| <= 0.15, |omega| <= 0.15, never reach the
    #    unsafe envelope outside |theta| < 1.0 rad, |omega| < 3.0 rad/s.
    problem = VerificationProblem(
        system,
        initial_set=Rectangle([-0.15, -0.15], [0.15, 0.15]),
        unsafe_set=RectangleComplement(Rectangle([-1.0, -3.0], [1.0, 3.0])),
    )
    report = verify_system(problem, config=SynthesisConfig(seed=0))
    print(f"\nstatus: {report.status.value}")
    if report.verified:
        cert = report.certificate
        print(f"barrier level: {cert.level:.6g}")
        print("W(x) =", to_infix(cert.w_expr, 100))
        check = cert.verify()
        print(
            "conditions (5)/(6)/(7):",
            check.condition5.verdict.value,
            check.condition6.verdict.value,
            check.condition7.verdict.value,
        )
        print("\npendulum + NN controller PROVEN safe for unbounded time")
    else:
        raise SystemExit(f"verification incomplete: {report.status.value}")


if __name__ == "__main__":
    main()
