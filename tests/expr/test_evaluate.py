"""Numeric and interval evaluation tests, including cross-semantics properties."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.expr import (
    absolute,
    atan,
    cos,
    dot,
    evaluate,
    evaluate_box,
    exp,
    log,
    maximum,
    minimum,
    sigmoid,
    sin,
    sqrt,
    tan,
    tanh,
    var,
)
from repro.intervals import Box, Interval

X, Y = var("x"), var("y")


class TestNumeric:
    def test_arithmetic(self):
        e = (X + 2) * (Y - 1) / 2
        assert evaluate(e, {"x": 2.0, "y": 3.0}) == pytest.approx(4.0)

    def test_pow_and_neg(self):
        e = -(X**3)
        assert evaluate(e, {"x": 2.0}) == pytest.approx(-8.0)

    @pytest.mark.parametrize(
        "builder,ref",
        [
            (sin, math.sin),
            (cos, math.cos),
            (tan, math.tan),
            (tanh, math.tanh),
            (exp, math.exp),
            (atan, math.atan),
        ],
    )
    def test_unary(self, builder, ref):
        assert evaluate(builder(X), {"x": 0.7}) == pytest.approx(ref(0.7))

    def test_sigmoid(self):
        assert evaluate(sigmoid(X), {"x": 0.0}) == pytest.approx(0.5)

    def test_log_sqrt(self):
        assert evaluate(log(X), {"x": math.e}) == pytest.approx(1.0)
        assert evaluate(sqrt(X), {"x": 9.0}) == pytest.approx(3.0)

    def test_abs_min_max(self):
        assert evaluate(absolute(X), {"x": -4.0}) == 4.0
        assert evaluate(minimum(X, Y), {"x": 1.0, "y": 2.0}) == 1.0
        assert evaluate(maximum(X, Y), {"x": 1.0, "y": 2.0}) == 2.0

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(X + Y, {"x": 1.0})

    def test_dot_helper(self):
        e = dot([2.0, 0.0, -1.0], [X, Y, X])
        assert evaluate(e, {"x": 3.0, "y": 100.0}) == pytest.approx(3.0)


class TestIntervalSemantics:
    def test_mixed_env(self):
        result = evaluate(X + Y, {"x": Interval(0, 1), "y": 2.0})
        assert isinstance(result, Interval)
        assert result.contains(2.5)

    def test_evaluate_box(self):
        e = X * X + Y
        box = Box.from_bounds([-1, 0], [1, 1])
        result = evaluate_box(e, box, ["x", "y"])
        assert result.contains(0.0)
        assert result.contains(2.0)

    def test_evaluate_box_dimension_check(self):
        with pytest.raises(EvaluationError):
            evaluate_box(X, Box.from_bounds([0], [1]), ["x", "y"])

    @given(
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_interval_contains_numeric(self, x0, y0, wx, wy):
        """Interval evaluation must enclose numeric evaluation at any
        point of the box — for a representative nonlinear expression."""
        e = sin(X) * tanh(Y) + X * X - Y / (2 + cos(X))
        ix = Interval(x0, x0 + wx)
        iy = Interval(y0, y0 + wy)
        enclosure = evaluate(e, {"x": ix, "y": iy})
        for tx in (0.0, 0.5, 1.0):
            for ty in (0.0, 0.5, 1.0):
                px = x0 + tx * wx
                py = y0 + ty * wy
                value = evaluate(e, {"x": px, "y": py})
                assert enclosure.contains(value)
