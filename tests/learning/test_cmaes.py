"""CMA-ES optimizer tests on standard benchmark functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.learning import CmaEs, CmaEsConfig, minimize_cmaes


def sphere(x):
    return float(np.sum(x**2))


def ellipsoid(x):
    n = len(x)
    weights = 10.0 ** (3 * np.arange(n) / max(n - 1, 1))
    return float(np.sum(weights * x**2))


def rosenbrock(x):
    return float(np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2 + (1 - x[:-1]) ** 2))


class TestConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            CmaEsConfig(population_size=1)
        with pytest.raises(TrainingError):
            CmaEsConfig(sigma0=0.0)
        with pytest.raises(TrainingError):
            CmaEsConfig(max_iterations=0)

    def test_default_population_size(self):
        es = CmaEs(np.zeros(10))
        assert es.lam == 4 + int(3 * np.log(10))

    def test_bad_x0(self):
        with pytest.raises(TrainingError):
            CmaEs(np.zeros((2, 2)))


class TestAskTell:
    def test_ask_shape(self):
        es = CmaEs(np.zeros(3), CmaEsConfig(population_size=8, seed=0))
        assert es.ask().shape == (8, 3)

    def test_tell_without_ask(self):
        es = CmaEs(np.zeros(3), CmaEsConfig(population_size=8, seed=0))
        with pytest.raises(TrainingError):
            es.tell(np.zeros((8, 3)), np.zeros(8))

    def test_tell_wrong_fitness_count(self):
        es = CmaEs(np.zeros(3), CmaEsConfig(population_size=8, seed=0))
        pop = es.ask()
        with pytest.raises(TrainingError):
            es.tell(pop, np.zeros(5))

    def test_nan_fitness_rejected(self):
        es = CmaEs(np.zeros(3), CmaEsConfig(population_size=8, seed=0))
        pop = es.ask()
        fits = [sphere(c) for c in pop]
        fits[0] = float("nan")
        with pytest.raises(TrainingError):
            es.tell(pop, fits)

    def test_best_tracking_monotone(self):
        es = CmaEs(np.ones(4) * 2, CmaEsConfig(population_size=10, seed=1, max_iterations=30))
        while not es.should_stop():
            pop = es.ask()
            es.tell(pop, [sphere(c) for c in pop])
        history = es.history
        assert all(a >= b for a, b in zip(history, history[1:]))


class TestConvergence:
    def test_sphere(self):
        result = minimize_cmaes(
            sphere,
            np.full(5, 3.0),
            CmaEsConfig(seed=0, max_iterations=300, sigma0=1.0),
        )
        assert result.best_fitness < 1e-10
        assert np.allclose(result.best_solution, 0.0, atol=1e-4)

    def test_ellipsoid(self):
        result = minimize_cmaes(
            ellipsoid,
            np.full(4, 2.0),
            CmaEsConfig(seed=0, max_iterations=400, sigma0=1.0),
        )
        assert result.best_fitness < 1e-8

    def test_rosenbrock(self):
        result = minimize_cmaes(
            rosenbrock,
            np.zeros(4),
            CmaEsConfig(seed=3, max_iterations=800, sigma0=0.5, population_size=16),
        )
        assert result.best_fitness < 1e-6
        assert np.allclose(result.best_solution, 1.0, atol=1e-2)

    def test_shifted_optimum(self):
        target = np.array([1.5, -2.0, 0.7])
        result = minimize_cmaes(
            lambda x: float(np.sum((x - target) ** 2)),
            np.zeros(3),
            CmaEsConfig(seed=5, max_iterations=200),
        )
        assert np.allclose(result.best_solution, target, atol=1e-3)

    def test_seed_reproducibility(self):
        config = CmaEsConfig(seed=7, max_iterations=50)
        r1 = minimize_cmaes(sphere, np.ones(3), config)
        r2 = minimize_cmaes(sphere, np.ones(3), CmaEsConfig(seed=7, max_iterations=50))
        assert r1.best_fitness == r2.best_fitness
        assert np.allclose(r1.best_solution, r2.best_solution)

    def test_callback_and_histories(self):
        seen = []
        result = minimize_cmaes(
            sphere,
            np.ones(2),
            CmaEsConfig(seed=0, max_iterations=20),
            callback=lambda es: seen.append(es.iteration),
        )
        assert seen == list(range(1, result.iterations + 1))
        assert len(result.mean_history) == result.iterations

    def test_stop_reason_recorded(self):
        result = minimize_cmaes(sphere, np.ones(2), CmaEsConfig(seed=0, max_iterations=5))
        assert result.stop_reason in ("max_iterations", "tol_fun", "tol_x")
