"""Figure 5 — phase portrait with the certified barrier level set.

Regenerates the figure's content: verified ellipsoid between X0 and U,
sample trajectories, and the geometric claims the figure makes visually:

* every X0 corner lies inside the level set (X0 ⊂ L);
* the level set never touches the unsafe region (L ∩ U = ∅);
* sampled trajectories converge toward the origin (the blue curves).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import format_figure5, render_ascii, run_figure5


def test_figure5_phase_portrait(benchmark, emit):
    def run():
        return run_figure5(hidden_neurons=10, seed=0, num_trajectories=12)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("figure5", format_figure5(data) + "\n\n" + render_ascii(data))

    assert data.report.verified
    assert data.x0_corners_inside
    assert data.level_set_clear_of_unsafe

    # The certified ellipse must sit strictly between X0 and U:
    # wider than X0 in at least one direction, inside the safe envelope.
    boundary = data.ellipse_boundary
    assert np.abs(boundary[:, 0]).max() > 1.0  # beyond X0's derr extent
    assert np.abs(boundary[:, 0]).max() < 5.0  # inside U's derr bound
    assert np.abs(boundary[:, 1]).max() < np.pi / 2 - 0.1

    # All three SMT conditions were UNSAT.
    report = data.report
    assert report.final_check5.is_unsat
    assert report.final_check6.is_unsat
    assert report.final_check7.is_unsat
