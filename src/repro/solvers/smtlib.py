"""Deterministic SMT-LIB 2 emission for external δ-SAT solvers.

Walks the expression DAGs behind :class:`repro.smt.Constraint` into
``(declare-const …)`` + ``(assert …)`` text that both Z3 and dReal 4
accept.  Two hard rules keep the output portable and reproducible:

* **Decimal literals only.**  Every constant is printed as the *exact*
  fixed-point decimal expansion of its binary double — never scientific
  notation (``1e-05`` is not SMT-LIB and silently breaks some parsers,
  the trap the rospoly exemplar works around with string surgery).
  Exactness also means a solver re-parsing the literal recovers the
  original double bit-for-bit.
* **Lowest-common-denominator encodings.**  ``min``/``max``/``abs``
  become ``ite`` terms, ``sigmoid`` is expanded through ``exp``, and
  integer powers use ``(^ base n)``.  Transcendental functions are
  emitted directly (``sin``, ``tanh``, …) and *recorded* in
  :attr:`SmtLibQuery.ops` so backends that cannot handle them (Z3 on
  nonlinear-real logic) can decline the query instead of erroring.

The emitted query mirrors :func:`repro.smt.check_exists_on_boxes`
semantics: one ``(assert (or …))`` over the subproblem union, each
disjunct conjoining the region's bounds with its constraint atoms, plus
a bounding-hull assertion per variable (dReal requires bounded boxes).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Sequence

from ..errors import SolverError
from ..expr.node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)
from ..smt.constraint import Constraint, Relation
from ..smt.queries import Subproblem

__all__ = [
    "TRANSCENDENTAL_OPS",
    "SmtLibQuery",
    "decimal_literal",
    "symbol",
    "expr_to_smtlib",
    "constraint_to_smtlib",
    "emit_query",
]

#: Unary operations that leave pure ``QF_NRA`` — solvers lacking
#: transcendental support (Z3) must decline queries whose
#: :attr:`SmtLibQuery.ops` intersects this set.  ``sigmoid`` never
#: appears here because emission expands it through ``exp``.
TRANSCENDENTAL_OPS = frozenset(
    {"sin", "cos", "tan", "tanh", "exp", "log", "sqrt", "atan"}
)

_SIMPLE_SYMBOL = re.compile(r"^[A-Za-z~!@$%^&*_+=<>.?/-][A-Za-z0-9~!@$%^&*_+=<>.?/-]*$")

_RELATION_HEADS = {
    Relation.LE: "<=",
    Relation.LT: "<",
    Relation.GE: ">=",
    Relation.GT: ">",
    Relation.EQ: "=",
}


def decimal_literal(value: float) -> str:
    """Exact fixed-point SMT-LIB rendering of a binary double.

    ``Decimal(value)`` expands the float's binary fraction exactly, so
    the printed literal round-trips to the identical double — no
    precision is lost crossing the process boundary, and no scientific
    notation ever appears.  Negative values wrap in ``(- …)`` (SMT-LIB
    has no signed numerals).

    >>> decimal_literal(0.5)
    '0.5'
    >>> decimal_literal(-2.0)
    '(- 2.0)'
    >>> decimal_literal(1e-3)
    '0.001000000000000000020816681711721685132943093776702880859375'
    """
    if not math.isfinite(value):
        raise SolverError(f"cannot emit non-finite constant {value!r} as SMT-LIB")
    magnitude = abs(value)
    text = format(Decimal(magnitude), "f")
    if "." not in text:
        text += ".0"
    if value < 0.0 or (value == 0.0 and math.copysign(1.0, value) < 0.0):
        return f"(- {text})"
    return text


def symbol(name: str) -> str:
    """SMT-LIB rendering of a variable name (quoted when necessary)."""
    if _SIMPLE_SYMBOL.match(name):
        return name
    if "|" in name or "\\" in name:
        raise SolverError(f"variable name {name!r} cannot be an SMT-LIB symbol")
    return f"|{name}|"


def expr_to_smtlib(root: Expr) -> tuple[str, frozenset[str]]:
    """Render an expression DAG as an SMT-LIB 2 term.

    Returns ``(text, ops)`` where ``ops`` is the subset of
    :data:`TRANSCENDENTAL_OPS` the term uses after encoding (``abs``,
    ``min`` and ``max`` vanish into ``ite``; ``sigmoid`` contributes
    ``exp``).  Iterative over :func:`repro.expr.postorder` — shared
    subterms are rendered once into the memo but inlined textually,
    which keeps the output a pure term (no ``let``) at the cost of
    repetition; scenario constraint tapes stay small enough for this.
    """
    rendered: dict[int, str] = {}
    ops: set[str] = set()
    for node in postorder(root):
        rendered[id(node)] = _render_node(node, rendered, ops)
    return rendered[id(root)], frozenset(ops)


def _render_node(node: Expr, rendered: dict[int, str], ops: set[str]) -> str:
    if isinstance(node, Const):
        return decimal_literal(node.value)
    if isinstance(node, Var):
        return symbol(node.name)
    if isinstance(node, Add):
        return f"(+ {rendered[id(node.left)]} {rendered[id(node.right)]})"
    if isinstance(node, Sub):
        return f"(- {rendered[id(node.left)]} {rendered[id(node.right)]})"
    if isinstance(node, Mul):
        return f"(* {rendered[id(node.left)]} {rendered[id(node.right)]})"
    if isinstance(node, Div):
        return f"(/ {rendered[id(node.left)]} {rendered[id(node.right)]})"
    if isinstance(node, Neg):
        return f"(- {rendered[id(node.child)]})"
    if isinstance(node, Min2):
        a, b = rendered[id(node.left)], rendered[id(node.right)]
        return f"(ite (<= {a} {b}) {a} {b})"
    if isinstance(node, Max2):
        a, b = rendered[id(node.left)], rendered[id(node.right)]
        return f"(ite (>= {a} {b}) {a} {b})"
    if isinstance(node, Pow):
        base = rendered[id(node.base)]
        n = node.exponent
        if n == 0:
            return "1.0"
        if n == 1:
            return base
        if n > 1:
            return f"(^ {base} {n})"
        if n == -1:
            return f"(/ 1.0 {base})"
        return f"(/ 1.0 (^ {base} {-n}))"
    if isinstance(node, Unary):
        child = rendered[id(node.child)]
        if node.op == "abs":
            return f"(ite (>= {child} 0.0) {child} (- {child}))"
        if node.op == "sigmoid":
            ops.add("exp")
            return f"(/ 1.0 (+ 1.0 (exp (- {child}))))"
        ops.add(node.op)
        return f"({node.op} {child})"
    raise SolverError(f"cannot emit {type(node).__name__} node as SMT-LIB")


def constraint_to_smtlib(constraint: Constraint) -> tuple[str, frozenset[str]]:
    """Render ``expr ⋈ 0`` as an SMT-LIB atom, returning ``(text, ops)``."""
    term, ops = expr_to_smtlib(constraint.expr)
    return f"({_RELATION_HEADS[constraint.relation]} {term} 0.0)", ops


@dataclass(frozen=True)
class SmtLibQuery:
    """An emitted query plus the metadata backends dispatch on.

    ``text`` ends with ``(check-sat)`` and no model command — adapters
    append ``(get-model)`` or pass ``--model`` per their solver's
    dialect, so golden files stay solver-neutral.  ``subproblems`` keeps
    the original structured query alive for witness validation.
    """

    text: str
    names: tuple[str, ...]
    ops: frozenset[str]
    delta: float
    logic: str = "QF_NRA"
    subproblems: tuple[Subproblem, ...] = field(default=(), compare=False)


def emit_query(
    subproblems: Sequence[Subproblem],
    names: Sequence[str],
    delta: float,
    logic: str = "QF_NRA",
) -> SmtLibQuery:
    """Emit ``∃x ∈ ∪ subproblems`` as one SMT-LIB 2 script.

    Deterministic: identical subproblems and names yield byte-identical
    text (the golden-corpus tests pin this).  Raises
    :class:`~repro.errors.SolverError` on an empty union or an unbounded
    region — the portfolio falls back to the native solver in that case.
    """
    names = tuple(names)
    if not subproblems:
        raise SolverError("cannot emit an SMT-LIB query for an empty union")
    for sub in subproblems:
        if sub.region.dimension != len(names):
            raise SolverError(
                f"region dimension {sub.region.dimension} != {len(names)} variables"
            )
        if not sub.region.is_finite():
            raise SolverError("SMT-LIB emission requires bounded regions")

    ops: set[str] = set()
    disjuncts: list[str] = []
    labels: list[str] = []
    for index, sub in enumerate(subproblems):
        parts: list[str] = []
        for dim, name in enumerate(names):
            interval = sub.region[dim]
            sym = symbol(name)
            parts.append(f"(<= {decimal_literal(interval.lo)} {sym})")
            parts.append(f"(<= {sym} {decimal_literal(interval.hi)})")
        for constraint in sub.constraints:
            atom, atom_ops = constraint_to_smtlib(constraint)
            ops.update(atom_ops)
            parts.append(atom)
        disjuncts.append("(and " + " ".join(parts) + ")")
        labels.append(sub.label or f"subproblem-{index}")

    lines: list[str] = [
        "; repro.solvers SMT-LIB 2 emission",
        f"; delta = {decimal_literal(delta)}",
        f"; variables: {' '.join(names)}",
        f"; subproblems: {len(subproblems)} ({', '.join(labels)})",
        f"(set-logic {logic})",
    ]
    for name in names:
        lines.append(f"(declare-const {symbol(name)} Real)")
    # Bounding hull over all regions: dReal insists every variable is
    # boxed, and a global bound helps Z3's nlsat prune too.
    for dim, name in enumerate(names):
        lo = min(sub.region[dim].lo for sub in subproblems)
        hi = max(sub.region[dim].hi for sub in subproblems)
        sym = symbol(name)
        lines.append(
            f"(assert (and (<= {decimal_literal(lo)} {sym})"
            f" (<= {sym} {decimal_literal(hi)})))"
        )
    if len(disjuncts) == 1:
        lines.append(f"(assert {disjuncts[0]})")
    else:
        lines.append("(assert (or")
        for disjunct in disjuncts:
            lines.append(f"  {disjunct}")
        lines.append("))")
    lines.append("(check-sat)")
    text = "\n".join(lines) + "\n"
    return SmtLibQuery(
        text=text,
        names=names,
        ops=frozenset(ops & TRANSCENDENTAL_OPS),
        delta=delta,
        logic=logic,
        subproblems=tuple(subproblems),
    )
