"""Figure 4 — evolution of the NN controller during CMA-ES policy search.

Regenerates the figure's content as a table of tracking metrics per
training stage (random weights / early / mid / final).  The claim to
preserve is the *evolution*: tracking error and cost must fall from the
random-weights panel to the end-of-training panel, as in the paper's
four panels.

The paper used popsize 152 x 50 iterations; the benchmark default is a
scaled-down run (popsize 20 x 18) that preserves the qualitative
trajectory — pass the paper values through run_figure4 for a full match.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_figure4, run_figure4


def test_figure4_training_evolution(benchmark, emit):
    def run():
        return run_figure4(
            hidden_neurons=10,
            seed=0,
            population_size=28,
            max_iterations=32,
            snapshot_iterations=(5, 16),
            steps=520,
            dt=0.35,
        )

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("figure4", format_figure4(data))

    first, last = data.panels[0], data.panels[-1]
    # Figure 4's storyline: random weights wander, training tracks.
    assert last.cost < first.cost / 10.0
    assert last.mean_abs_distance_error < first.mean_abs_distance_error
    # Best-so-far cost history is monotone non-increasing.
    hist = data.cost_history
    assert all(a >= b for a, b in zip(hist, hist[1:]))
    # Intermediate snapshots are no worse than the random start.
    for panel in data.panels[1:]:
        assert panel.cost <= first.cost
