"""Frontier-wide HC4-revise: vectorized forward-backward contraction.

:mod:`repro.smt.contractor` runs the classic HC4 algorithm one box at a
time with scalar :class:`~repro.intervals.Interval` objects — correct,
but the dominant serial cost of every hard δ-SAT query.  This module
re-runs the *same* algorithm across the **whole solver frontier at
once**: every expression-DAG node holds one batch of intervals of shape
``(m,)`` (one member per frontier box) instead of one scalar interval,
so a forward-backward sweep costs one NumPy pass per node rather than
``m`` Python interpreter walks.

Three things keep the vectorized pass fast on the narrow frontiers real
branch-and-prune searches produce:

* **Raw endpoint arrays.**  The hot loop carries ``(lo, hi)`` ndarray
  pairs directly (transcendentals borrow the
  :class:`~repro.intervals.IntervalArray` kernels), avoiding wrapper
  churn on the ~10³ NumPy calls a revise pass makes.
* **Constant folding.**  Tape slots holding constants are kept as plain
  floats: multiplying by a coefficient costs two ufuncs instead of a
  four-product hull, and backward rules skip the (provably no-op)
  tightening of constant children entirely.  Polynomial Lie derivatives
  are mostly ``const * monomial`` sums, so this removes the bulk of the
  extended-division work.
* **Plan compilation.**  The contractor pre-plans the tape once at
  construction (:mod:`repro.perf` style): every instruction becomes one
  prebound closure with its slots, constant operands, and backward rule
  baked in, and the per-call slot tables come from an exclusive-checkout
  :class:`~repro.perf.BufferPool` — a revise pass is a plain loop over
  closures with zero per-call dict lookups, string dispatch, or slot
  table allocation.

The per-box semantics follow the scalar contractor rule-for-rule
(including extended division through zero and the even/odd ``pow``
backward rules); where the scalar code raises
:class:`~repro.errors.EmptyIntervalError` to prune a box, the batched
code marks the box's row in an ``alive`` mask and keeps going.  The
cross-check tests in ``tests/smt/test_hc4_batched.py`` assert the two
implementations agree on which boxes are refuted and that the batched
contraction always contains the true solution set.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..expr import CompiledExpression
from ..intervals import BoxArray, IntervalArray
from ..intervals.rounding import PAD, next_down_array, next_up_array
from ..perf.pool import BufferPool
from .constraint import Constraint, Relation

__all__ = ["FrontierContractor", "contract_frontier"]

_INF = math.inf
_HALF_PI = 0.5 * math.pi

_down = next_down_array
_up = next_up_array

_BINARY_OPS = frozenset({"add", "sub", "mul", "div", "min", "max"})


def _relation_bounds(relation: Relation) -> tuple[float, float]:
    if relation in (Relation.LE, Relation.LT):
        return (-_INF, 0.0)
    if relation in (Relation.GE, Relation.GT):
        return (0.0, _INF)
    return (0.0, 0.0)


class FrontierContractor:
    """HC4-revise for one constraint, batched over a whole frontier.

    Built once per (constraint, variable order) pair: construction
    pre-plans the tape into prebound forward/backward closures (constant
    operands folded to floats, backward rules specialized per child
    kind).  :meth:`revise` then contracts any
    :class:`~repro.intervals.BoxArray` in one vectorized
    forward-backward sweep over those closures, with slot tables leased
    from a per-contractor :class:`~repro.perf.BufferPool`.
    """

    def __init__(self, constraint: Constraint, variable_names: Sequence[str]):
        tape: CompiledExpression = constraint.compiled(variable_names)
        self._n_slots = tape.n_slots
        self._root = tape.result_slot
        self._target_bounds = _relation_bounds(constraint.relation)
        plan = _plan_tape(tape.instructions, tape.n_slots)
        #: slot template: constants (and folded constant subexpressions)
        #: prefilled as floats, everything else None
        self._template = plan.template
        self._forward_program = plan.forward
        self._backward_program = plan.backward
        self._var_reads = plan.var_reads
        self._pool = BufferPool(tape.n_slots)

    def revise(self, boxes: BoxArray) -> tuple[BoxArray, np.ndarray]:
        """One forward-backward pass over every box at once.

        Returns ``(contracted, alive)``: rows of ``contracted`` where
        ``alive`` is False were proven empty (the scalar contractor
        would have returned None for them) and hold their *input*
        bounds.
        """
        m = len(boxes)
        alive = np.ones(m, dtype=bool)
        if m == 0:
            return boxes, alive

        ws = self._pool.acquire(m)
        try:
            return self._revise_in(ws, boxes, alive, m)
        finally:
            # The slot tables hold views of the caller's frontier; clear
            # before the next lease so the pool never pins a dead
            # frontier (and never leaks one revise's state into another).
            ws.slots[:] = self._template
            targets = ws.data.get("targets")
            if targets is not None:
                targets[:] = self._template
            self._pool.release(ws)

    def _revise_in(
        self, ws, boxes: BoxArray, alive: np.ndarray, m: int
    ) -> tuple[BoxArray, np.ndarray]:
        blo, bhi = boxes.lo, boxes.hi

        # Forward pass: raw (lo, hi) pair per slot; const slots are
        # plain floats, prefilled from the plan template.
        forward = ws.slots
        forward[:] = self._template
        for run in self._forward_program:
            emp = run(forward, blo, bhi, m)
            if emp is not None:
                # Mirror the scalar EmptyIntervalError: the box left a
                # function domain (sqrt/log).  Dead rows were parked on
                # the whole line inside the closure.
                alive &= ~emp

        # Project the root onto the relation's satisfying set.
        root = forward[self._root]
        t_lo, t_hi = self._target_bounds
        if isinstance(root, float):
            # Constant constraint: nothing to contract; rows live iff the
            # constant satisfies the relation.
            if not (t_lo <= root <= t_hi):
                return boxes, np.zeros(m, dtype=bool)
            return boxes, alive
        p_lo = np.maximum(root[0], t_lo)
        p_hi = np.minimum(root[1], t_hi)
        emp = p_lo > p_hi
        if emp.any():
            alive &= ~emp
            p_lo = np.where(emp, root[0], p_lo)
            p_hi = np.where(emp, root[1], p_hi)

        # Backward pass: per-slot targets, children tightened after
        # parents; empties flip rows dead instead of raising.  Constant
        # slots are never tightened (their target stays the point value,
        # and with targets ⊆ forward the scalar exclusion check cannot
        # fire).
        targets = ws.data.get("targets")
        if targets is None:
            targets = ws.data["targets"] = [None] * self._n_slots
        targets[:] = forward
        targets[self._root] = (p_lo, p_hi)

        def tighten(slot: int, cand_lo, cand_hi) -> None:
            nonlocal alive
            current = targets[slot]
            if isinstance(current, float):
                # Folded-constant subexpression (e.g. an Add of two
                # Consts): nothing upstream to narrow.
                return
            cur_lo, cur_hi = current
            lo = np.maximum(cur_lo, cand_lo)
            hi = np.minimum(cur_hi, cand_hi)
            emp = lo > hi
            if emp.any():
                alive = alive & ~emp
                # Dead rows keep their previous target so later rules
                # still see well-formed intervals.
                lo = np.where(emp, cur_lo, lo)
                hi = np.where(emp, cur_hi, hi)
            targets[slot] = (lo, hi)

        for run in self._backward_program:
            dead = run(targets, forward, tighten, m)
            if dead is not None and dead.any():
                alive &= ~dead

        # Read back variable targets, intersecting duplicate occurrences.
        by_var: dict[int, tuple] = {}
        for slot, index in self._var_reads:
            t = targets[slot]
            seen = by_var.get(index)
            if seen is None:
                by_var[index] = t
            else:
                by_var[index] = (
                    np.maximum(seen[0], t[0]),
                    np.minimum(seen[1], t[1]),
                )

        lo = blo.copy()
        hi = bhi.copy()
        for index, (t_lo_arr, t_hi_arr) in by_var.items():
            lo[:, index] = np.maximum(lo[:, index], t_lo_arr)
            hi[:, index] = np.minimum(hi[:, index], t_hi_arr)
        emp = (lo > hi).any(axis=1)
        if emp.any():
            alive &= ~emp
            # Keep dead rows at their original bounds (they are pruned by
            # the caller; canonical-empty columns would poison widths).
            lo[emp] = blo[emp]
            hi[emp] = bhi[emp]
        return BoxArray(lo, hi), alive


def contract_frontier(
    contractors: Sequence[FrontierContractor],
    boxes: BoxArray,
    max_rounds: int = 4,
    min_shrink: float = 0.01,
) -> tuple[BoxArray, np.ndarray]:
    """Round-robin HC4 over all constraints, whole frontier at once.

    The per-box semantics mirror
    :func:`repro.smt.contractor.contract_fixpoint`: each box iterates
    until a full round shrinks its summed widths by less than
    ``min_shrink`` relatively, or ``max_rounds`` rounds elapse; boxes
    proven empty are flagged in the returned ``alive`` mask.
    """
    m = len(boxes)
    alive = np.ones(m, dtype=bool)
    if m == 0:
        return boxes, alive
    active = np.ones(m, dtype=bool)
    current = boxes
    for _ in range(max_rounds):
        before = current.widths().sum(axis=1)
        for contractor in contractors:
            contracted, ok = contractor.revise(current)
            newly_dead = active & ~ok
            if newly_dead.any():
                alive &= ~newly_dead
            # Only rows still iterating take the contraction; frozen and
            # dead rows keep their bounds (matching the scalar loop,
            # which never revisits a box after its early stop).
            if active.all():
                current = contracted
            else:
                keep = ~active
                current = BoxArray(
                    np.where(keep[:, None], current.lo, contracted.lo),
                    np.where(keep[:, None], current.hi, contracted.hi),
                )
            active &= alive
            if not active.any():
                return current, alive
        after = current.widths().sum(axis=1)
        with np.errstate(invalid="ignore"):
            shrunk = (before - after) / np.maximum(before, 1e-300)
        stop = (before <= 0.0) | (shrunk < min_shrink) | ~np.isfinite(before)
        active &= ~stop
        active &= alive
        if not active.any():
            break
    return current, alive


# ----------------------------------------------------------------------
# Plan compilation: one prebound closure per instruction
# ----------------------------------------------------------------------
class _TapePlan:
    __slots__ = ("template", "forward", "backward", "var_reads")

    def __init__(self, template, forward, backward, var_reads):
        self.template = template
        self.forward = forward
        self.backward = backward
        self.var_reads = var_reads


def _plan_tape(instructions, n_slots: int) -> _TapePlan:
    """Specialize every instruction against the tape's constant slots.

    Constness is a static property of the tape: a slot is a float when
    it holds a literal constant or a binary op of two float slots (the
    same folding the interpreted walker applied per call).  The
    specialization decisions here mirror the historical runtime checks
    — ``isinstance(value, float)`` in the forward rules and
    ``slot in const`` (literal constants only) in the backward rules —
    so the planned program is decision-for-decision identical.
    """
    template: list = [None] * n_slots
    #: literal-constant slots (the backward rules' ``const`` dict)
    literal: dict[int, float] = {}
    #: every float-valued slot (literals + folded binaries)
    floats: dict[int, float] = {}
    forward: list = []
    backward: list = []
    var_reads: list[tuple[int, int]] = []

    for instr in instructions:
        op, slot = instr[0], instr[1]
        if op == "const":
            value = instr[2]
            template[slot] = value
            literal[slot] = value
            floats[slot] = value
            continue
        if op == "var":
            var_reads.append((slot, instr[2]))
            forward.append(_fwd_var(slot, instr[2]))
            continue
        if op in _BINARY_OPS:
            left, right = instr[2], instr[3]
            a_const = left in floats
            b_const = right in floats
            if a_const and b_const:
                value = _fold_const(op, floats[left], floats[right])
                template[slot] = value
                floats[slot] = value
                continue
            forward.append(
                _fwd_binary(
                    op, slot, left, right,
                    floats.get(left), floats.get(right),
                )
            )
        elif op == "pow":
            forward.append(
                _fwd_pow(slot, instr[2], instr[3], floats.get(instr[2]))
            )
        else:
            forward.append(_fwd_unary(op, slot, instr[2], floats.get(instr[2])))

    for instr in reversed(instructions):
        op, slot = instr[0], instr[1]
        if op in ("const", "var") or slot in floats:
            # Constant subexpression: the runtime walker returned early
            # (float target), with no side effects to reproduce.
            continue
        rule = _plan_backward(instr, literal, floats)
        if rule is not None:
            backward.append(rule)

    return _TapePlan(template, forward, backward, var_reads)


# ----------------------------------------------------------------------
# Forward closures (mirror the historical _forward_op branches)
# ----------------------------------------------------------------------
def _fwd_var(out: int, column: int):
    def run(fwd, blo, bhi, m):
        fwd[out] = (blo[:, column], bhi[:, column])
        return None

    return run


def _fwd_binary(op, out, left, right, a_val, b_val):
    a_const = a_val is not None
    b_const = b_val is not None
    if op == "add":
        if a_const:
            def run(fwd, blo, bhi, m):
                b = fwd[right]
                fwd[out] = (_down(a_val + b[0]), _up(a_val + b[1]))
                return None
        elif b_const:
            def run(fwd, blo, bhi, m):
                a = fwd[left]
                fwd[out] = (_down(a[0] + b_val), _up(a[1] + b_val))
                return None
        else:
            def run(fwd, blo, bhi, m):
                a = fwd[left]
                b = fwd[right]
                fwd[out] = (_down(a[0] + b[0]), _up(a[1] + b[1]))
                return None
    elif op == "sub":
        if a_const:
            def run(fwd, blo, bhi, m):
                b = fwd[right]
                fwd[out] = (_down(a_val - b[1]), _up(a_val - b[0]))
                return None
        elif b_const:
            def run(fwd, blo, bhi, m):
                a = fwd[left]
                fwd[out] = (_down(a[0] - b_val), _up(a[1] - b_val))
                return None
        else:
            def run(fwd, blo, bhi, m):
                a = fwd[left]
                b = fwd[right]
                fwd[out] = (_down(a[0] - b[1]), _up(a[1] - b[0]))
                return None
    elif op == "mul":
        if a_const:
            def run(fwd, blo, bhi, m):
                fwd[out] = _const_mul(a_val, fwd[right])
                return None
        elif b_const:
            def run(fwd, blo, bhi, m):
                fwd[out] = _const_mul(b_val, fwd[left])
                return None
        else:
            def run(fwd, blo, bhi, m):
                a = fwd[left]
                b = fwd[right]
                res = IntervalArray(a[0], a[1]) * IntervalArray(b[0], b[1])
                fwd[out] = (res.lo, res.hi)
                return None
    elif op == "div":
        if b_const and b_val != 0.0:
            def run(fwd, blo, bhi, m):
                fwd[out] = _const_mul_like_div(b_val, fwd[left])
                return None
        else:
            def run(fwd, blo, bhi, m):
                a = _expand(fwd[left] if not a_const else a_val, m)
                b = _expand(fwd[right] if not b_const else b_val, m)
                res = IntervalArray(a[0], a[1]) / IntervalArray(b[0], b[1])
                fwd[out] = (res.lo, res.hi)
                return None
    elif op == "min":
        def run(fwd, blo, bhi, m):
            a = _expand(fwd[left] if not a_const else a_val, m)
            b = _expand(fwd[right] if not b_const else b_val, m)
            fwd[out] = (np.minimum(a[0], b[0]), np.minimum(a[1], b[1]))
            return None
    else:  # max
        def run(fwd, blo, bhi, m):
            a = _expand(fwd[left] if not a_const else a_val, m)
            b = _expand(fwd[right] if not b_const else b_val, m)
            fwd[out] = (np.maximum(a[0], b[0]), np.maximum(a[1], b[1]))
            return None
    return run


def _fwd_pow(out, child, exponent, c_val):
    def run(fwd, blo, bhi, m):
        a = _expand(fwd[child] if c_val is None else c_val, m)
        res = IntervalArray(a[0], a[1]) ** exponent
        fwd[out] = (res.lo, res.hi)
        return None

    return run


def _fwd_unary(op, out, child, c_val):
    domain = op in ("sqrt", "log")
    if op == "neg":
        def run(fwd, blo, bhi, m):
            a = _expand(fwd[child] if c_val is None else c_val, m)
            fwd[out] = (-a[1], -a[0])
            return None
        return run

    def run(fwd, blo, bhi, m):
        a = _expand(fwd[child] if c_val is None else c_val, m)
        res = getattr(IntervalArray(a[0], a[1]), op)()
        value = (res.lo, res.hi)
        if domain:
            lo, hi = value
            emp = lo > hi
            if emp.any():
                # Park dead rows on the whole line to keep arithmetic
                # NaN-free; the caller flips them dead.
                fwd[out] = (
                    np.where(emp, -_INF, lo),
                    np.where(emp, _INF, hi),
                )
                return emp
        fwd[out] = value
        return None

    return run


def _fold_const(op: str, a: float, b: float) -> float:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a / b if b != 0.0 else math.nan
    if op == "min":
        return min(a, b)
    return max(a, b)


def _expand(value, m: int) -> tuple[np.ndarray, np.ndarray]:
    """Promote a constant operand to endpoint arrays (rare slow path)."""
    if isinstance(value, float) or isinstance(value, int):
        arr = np.full(m, float(value))
        return arr, arr
    return value


def _const_mul(c: float, x) -> tuple[np.ndarray, np.ndarray]:
    """``c * [lo, hi]`` with outward rounding (two ufuncs + widening)."""
    if c == 0.0:
        # 0 * [lo, hi] is exactly {0} even for unbounded operands
        # (0 * inf would otherwise poison the row with NaN).
        zero = np.zeros_like(x[0])
        return zero, zero.copy()
    if c > 0.0:
        return _down(c * x[0]), _up(c * x[1])
    return _down(c * x[1]), _up(c * x[0])


def _const_mul_like_div(c: float, x) -> tuple[np.ndarray, np.ndarray]:
    """``[lo, hi] / c`` for a nonzero constant denominator."""
    if c > 0.0:
        return _down(x[0] / c), _up(x[1] / c)
    return _down(x[1] / c), _up(x[0] / c)


# ----------------------------------------------------------------------
# Backward (inverse) closures
#
# Specialization mirrors the historical runtime checks exactly: a child
# that is a *literal* constant is skipped the way ``slot in const`` did;
# a *folded* float child keeps any dead-mask side effects its rule had
# (extended-division emptiness, even-power emptiness) while its no-op
# tighten is dropped.
# ----------------------------------------------------------------------
def _plan_backward(instr, literal: dict[int, float], floats: dict[int, float]):
    op, slot = instr[0], instr[1]
    if op == "add":
        return _bwd_add(slot, instr[2], instr[3], floats)
    if op == "sub":
        return _bwd_sub(slot, instr[2], instr[3], floats)
    if op == "mul":
        return _bwd_mul(slot, instr[2], instr[3], literal, floats)
    if op == "div":
        return _bwd_div(slot, instr[2], instr[3], literal, floats)
    if op == "neg":
        child = instr[2]
        if child in floats:
            return None

        def run_neg(targets, forward, tighten, m):
            t_lo, t_hi = targets[slot]
            tighten(child, -t_hi, -t_lo)
            return None

        return run_neg
    if op == "pow":
        base, exponent = instr[2], instr[3]
        if base in literal:
            return None
        base_val = floats.get(base)

        def run_pow(targets, forward, tighten, m):
            f = forward[base] if base_val is None else base_val
            return _backward_pow(base, exponent, targets[slot], f, tighten, m)

        return run_pow
    if op in ("min", "max"):
        children = [c for c in (instr[2], instr[3]) if c not in floats]
        if not children:
            return None
        if op == "min":
            def run_min(targets, forward, tighten, m):
                t_lo = targets[slot][0]
                bound_hi = np.full(m, _INF)
                for child in children:
                    tighten(child, t_lo, bound_hi)
                return None

            return run_min

        def run_max(targets, forward, tighten, m):
            t_hi = targets[slot][1]
            bound_lo = np.full(m, -_INF)
            for child in children:
                tighten(child, bound_lo, t_hi)
            return None

        return run_max
    # Transcendental / unary rules: literal children are skipped; folded
    # children keep the target-derived dead masks (tighten no-ops).
    child = instr[2]
    if child in literal:
        return None
    if op in ("sin", "cos", "tan"):
        # Periodic inverse skipped (identity is sound) — no side effects.
        return None

    def run_unary(targets, forward, tighten, m):
        return _backward_unary(op, child, targets[slot], tighten, m)

    return run_unary


def _bwd_add(slot, left, right, floats):
    l_val = floats.get(left)
    r_val = floats.get(right)
    tighten_right = right not in floats
    tighten_left = left not in floats
    if not tighten_left and not tighten_right:
        return None

    def run(targets, forward, tighten, m):
        t_lo, t_hi = targets[slot]
        if tighten_right:
            if l_val is not None:
                tighten(right, _down(t_lo - l_val), _up(t_hi - l_val))
            else:
                f = forward[left]
                tighten(right, _down(t_lo - f[1]), _up(t_hi - f[0]))
        if tighten_left:
            if r_val is not None:
                tighten(left, _down(t_lo - r_val), _up(t_hi - r_val))
            else:
                f = forward[right]
                tighten(left, _down(t_lo - f[1]), _up(t_hi - f[0]))
        return None

    return run


def _bwd_sub(slot, left, right, floats):
    l_val = floats.get(left)
    r_val = floats.get(right)
    tighten_right = right not in floats
    tighten_left = left not in floats
    if not tighten_left and not tighten_right:
        return None

    def run(targets, forward, tighten, m):
        t_lo, t_hi = targets[slot]
        if tighten_left:
            if r_val is not None:
                tighten(left, _down(t_lo + r_val), _up(t_hi + r_val))
            else:
                f = forward[right]
                tighten(left, _down(t_lo + f[0]), _up(t_hi + f[1]))
        if tighten_right:
            if l_val is not None:
                tighten(right, _down(l_val - t_hi), _up(l_val - t_lo))
            else:
                f = forward[left]
                tighten(right, _down(f[0] - t_hi), _up(f[1] - t_lo))
        return None

    return run


def _bwd_mul_child(slot, child, other, literal, floats):
    """Rule tightening ``child`` of ``child * other``; None if a no-op."""
    c = literal.get(other)
    if c is not None:
        if c != 0.0:
            if child in floats:
                # tighten would no-op and the rule has no dead mask.
                return None

            def run_const(targets, forward, tighten, m):
                tighten(child, *_const_mul_like_div(c, targets[slot]))
                return None

            return run_const

        def run_zero(targets, forward, tighten, m):
            # child * 0 == 0: infeasible unless the target admits zero.
            t_lo, t_hi = targets[slot]
            return ~((t_lo <= 0.0) & (0.0 <= t_hi))

        return run_zero

    other_val = floats.get(other)

    def run(targets, forward, tighten, m):
        t_lo, t_hi = targets[slot]
        f = _expand(forward[other] if other_val is None else other_val, m)
        cand = IntervalArray(t_lo, t_hi).extended_divide_hull(
            IntervalArray(f[0], f[1])
        )
        return _tighten_hull(child, cand, tighten)

    return run


def _bwd_mul(slot, left, right, literal, floats):
    rules = []
    if left not in literal:
        rule = _bwd_mul_child(slot, left, right, literal, floats)
        if rule is not None:
            rules.append(rule)
    if right not in literal:
        rule = _bwd_mul_child(slot, right, left, literal, floats)
        if rule is not None:
            rules.append(rule)
    if not rules:
        return None
    if len(rules) == 1:
        return rules[0]

    def run(targets, forward, tighten, m):
        dead = None
        for rule in rules:
            dead = _merge(dead, rule(targets, forward, tighten, m))
        return dead

    return run


def _bwd_div(slot, left, right, literal, floats):
    rules = []
    if left not in literal and left not in floats:
        r_val = floats.get(right)
        if r_val is not None:
            def run_num_const(targets, forward, tighten, m):
                tighten(left, *_const_mul(r_val, targets[slot]))
                return None

            rules.append(run_num_const)
        else:
            def run_num(targets, forward, tighten, m):
                t_lo, t_hi = targets[slot]
                f = forward[right]
                cand = IntervalArray(t_lo, t_hi) * IntervalArray(f[0], f[1])
                tighten(left, cand.lo, cand.hi)
                return None

            rules.append(run_num)
    if right not in literal:
        l_val = floats.get(left)

        def run_den(targets, forward, tighten, m):
            t_lo, t_hi = targets[slot]
            f = _expand(forward[left] if l_val is None else l_val, m)
            num = IntervalArray(f[0], f[1])
            cand = num.extended_divide_hull(IntervalArray(t_lo, t_hi))
            return _tighten_hull(right, cand, tighten)

        rules.append(run_den)
    if not rules:
        return None
    if len(rules) == 1:
        return rules[0]

    def run(targets, forward, tighten, m):
        dead = None
        for rule in rules:
            dead = _merge(dead, rule(targets, forward, tighten, m))
        return dead

    return run


def _merge(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def _tighten_hull(slot: int, cand: IntervalArray, tighten) -> np.ndarray | None:
    """Tighten with an extended-division hull; empty members mean dead rows."""
    emp = cand.empty_mask()
    if emp.any():
        lo = np.where(emp, -_INF, cand.lo)
        hi = np.where(emp, _INF, cand.hi)
        tighten(slot, lo, hi)
        return emp
    tighten(slot, cand.lo, cand.hi)
    return None


def _pad_down(values: np.ndarray) -> np.ndarray:
    finite = np.isfinite(values)
    return np.where(finite, values - PAD * (1.0 + np.abs(values)), values)


def _pad_up(values: np.ndarray) -> np.ndarray:
    finite = np.isfinite(values)
    return np.where(finite, values + PAD * (1.0 + np.abs(values)), values)


def _backward_pow(
    base_slot: int, n: int, target, child_forward, tighten, m
) -> np.ndarray | None:
    # ``child_forward`` is the base's forward value: an endpoint pair,
    # or a baked float when the base folded to a constant.
    t_lo, t_hi = target
    if n == 0:
        return ~((t_lo <= 1.0) & (1.0 <= t_hi))
    dead = None
    if n < 0:
        # x^-n = 1 / x^n: invert through the reciprocal, then recurse shape.
        ones = np.ones(m)
        recip = IntervalArray(ones, ones).extended_divide_hull(
            IntervalArray(t_lo, t_hi)
        )
        emp = recip.empty_mask()
        if emp.any():
            dead = emp
            t_lo = np.where(emp, -_INF, recip.lo)
            t_hi = np.where(emp, _INF, recip.hi)
        else:
            t_lo, t_hi = recip.lo, recip.hi
        n = -n
    if n % 2 == 1:
        with np.errstate(invalid="ignore"):
            lo = np.where(
                np.isfinite(t_lo),
                np.copysign(np.abs(t_lo) ** (1.0 / n), t_lo),
                t_lo,
            )
            hi = np.where(
                np.isfinite(t_hi),
                np.copysign(np.abs(t_hi) ** (1.0 / n), t_hi),
                t_hi,
            )
        tighten(base_slot, _pad_down(lo), _pad_up(hi))
        return dead
    # Even power: image is nonnegative.
    c_lo = np.maximum(t_lo, 0.0)
    c_hi = t_hi
    emp = c_lo > c_hi
    if emp.any():
        dead = _merge(dead, emp)
        c_lo = np.where(emp, 0.0, c_lo)
        c_hi = np.where(emp, 0.0, c_hi)
    with np.errstate(invalid="ignore", over="ignore"):
        hi_root = np.where(c_hi < _INF, c_hi ** (1.0 / n), _INF)
        lo_root = c_lo ** (1.0 / n)
    hi_root = _pad_up(hi_root)
    lo_root = _pad_down(lo_root)
    child_f = _expand(child_forward, m)
    pos = child_f[0] >= 0.0
    neg = child_f[1] <= 0.0
    cand_lo = np.where(pos, np.maximum(lo_root, 0.0), -hi_root)
    cand_hi = np.where(neg, np.minimum(-lo_root, 0.0), hi_root)
    tighten(base_slot, cand_lo, cand_hi)
    return dead


def _backward_unary(op: str, child_slot: int, target, tighten, m) -> np.ndarray | None:
    """Vectorized mirror of the scalar ``_inverse_unary`` rules."""
    t_lo, t_hi = target
    if op == "tanh":
        dead = (t_hi < -1.0) | (t_lo > 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                t_lo <= -1.0,
                -_INF,
                _pad_down(np.arctanh(np.clip(t_lo, -1.0, 1.0))),
            )
            hi = np.where(
                t_hi >= 1.0,
                _INF,
                _pad_up(np.arctanh(np.clip(t_hi, -1.0, 1.0))),
            )
        tighten(child_slot, np.minimum(lo, hi), hi)
        return dead if dead.any() else None
    if op == "sigmoid":
        dead = (t_hi < 0.0) | (t_lo > 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                t_lo <= 0.0,
                -_INF,
                _pad_down(_logit(np.clip(t_lo, 0.0, 1.0))),
            )
            hi = np.where(
                t_hi >= 1.0,
                _INF,
                _pad_up(_logit(np.clip(t_hi, 0.0, 1.0))),
            )
        tighten(child_slot, np.minimum(lo, hi), hi)
        return dead if dead.any() else None
    if op == "exp":
        dead = t_hi <= 0.0
        any_dead = dead.any()
        # No subnormal clamp (see IntervalArray.log): np.log is correct
        # down to 5e-324; clamping would cut the child's true preimage.
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                t_lo <= 0.0,
                -_INF,
                _pad_down(np.log(np.abs(t_lo))),
            )
            hi = np.where(
                t_hi < _INF,
                _pad_up(np.log(np.abs(t_hi))),
                _INF,
            )
        if any_dead:
            lo = np.where(dead, -_INF, lo)
            hi = np.where(dead, _INF, hi)
        tighten(child_slot, np.minimum(lo, hi), hi)
        return dead if any_dead else None
    if op == "log":
        with np.errstate(over="ignore"):
            lo = np.where(t_lo == -_INF, 0.0, _pad_down(np.exp(t_lo)))
            hi = np.where(t_hi == _INF, _INF, _pad_up(np.exp(t_hi)))
        tighten(child_slot, np.maximum(lo, 0.0), hi)
        return None
    if op == "sqrt":
        c_lo = np.maximum(t_lo, 0.0)
        dead = c_lo > t_hi
        any_dead = dead.any()
        if any_dead:
            c_lo = np.where(dead, 0.0, c_lo)
            c_hi = np.where(dead, 0.0, t_hi)
        else:
            c_hi = t_hi
        squared = IntervalArray(c_lo, c_hi).sq()
        tighten(child_slot, _pad_down(squared.lo), _pad_up(squared.hi))
        return dead if any_dead else None
    if op == "abs":
        c_hi = t_hi
        dead = c_hi < 0.0
        if dead.any():
            c_hi = np.where(dead, _INF, c_hi)
            tighten(child_slot, -c_hi, c_hi)
            return dead
        tighten(child_slot, -c_hi, c_hi)
        return None
    if op == "atan":
        c_lo = np.maximum(t_lo, -_HALF_PI)
        c_hi = np.minimum(t_hi, _HALF_PI)
        dead = c_lo > c_hi
        if dead.any():
            c_lo = np.where(dead, 0.0, c_lo)
            c_hi = np.where(dead, 0.0, c_hi)
        with np.errstate(invalid="ignore"):
            lo = np.where(
                c_lo <= -_HALF_PI + 1e-12, -_INF, _pad_down(np.tan(c_lo))
            )
            hi = np.where(
                c_hi >= _HALF_PI - 1e-12, _INF, _pad_up(np.tan(c_hi))
            )
        tighten(child_slot, lo, hi)
        return dead if dead.any() else None
    # sin / cos / tan: periodic inverse skipped (identity is sound).
    return None  # pragma: no cover - planner drops identity rules


def _logit(p: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(p / (1.0 - p))
