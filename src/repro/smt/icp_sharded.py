"""Frontier-sharded branch-and-prune: the batched search on N cores.

:class:`~repro.smt.icp_batched.BatchedIcpSolver` contracts one
contiguous :class:`~repro.intervals.BoxArray` frontier on one core.
:class:`ShardedIcpSolver` keeps that solver's search loop **verbatim**
— same LIFO frontier order, same batch selection, same sequential
witness scan, same split interleaving, same stats — and fans only the
per-round row-wise heavy lifting (forward constraint evaluation and
HC4 contraction) out across forked worker processes:

* The master writes the round's rows into
  :class:`~repro.intervals.SharedFrontier` planes
  (``multiprocessing.shared_memory``), partitions them into contiguous
  per-worker row ranges (:func:`shard_bounds`), and pings each worker
  over a pipe.  Workers read and write *only their own rows*, in place,
  through copy-free ``BoxArray`` views — no pickling, no per-round
  allocation crossing the process boundary.
* Results merge in **deterministic shard-major order**: shard ``s``
  owns rows ``[a_s, b_s)``, so reading the planes back row-by-row *is*
  the serial order and the witness-ordering contract of
  ``solve``/``solve_union`` survives untouched.
* Workers are forked *after* the master compiles every tape kernel and
  HC4 contractor plan (the :class:`~repro.api.pool.WarmPool` trick), so
  each child starts with pre-compiled plans and builds only its own
  :class:`~repro.perf.BufferPool` workspaces — the post-fork pool reset
  of :mod:`repro.perf.pool` guarantees those start clean.

**Bit-identity.**  Every per-row operation in the forward pass and in
:func:`~repro.smt.hc4.contract_frontier` is elementwise with per-row
masks and per-row early stops — no cross-row reduction feeds back into
a row's bounds — so evaluating a row range in a worker produces the
same bits as evaluating it inside the full batch.  The parity suite
(``tests/smt/test_icp_sharded.py``, ``tests/engine/test_sharded_engine.py``
and the CI ``shard-parity`` gate) pins verdicts, witnesses, and stats
identical to the serial path at 1, 2, and 4 shards.

**Cancellation.**  ``should_stop`` is polled by the master once per
frontier batch exactly as in the serial solver; on stop (or any
exception, including ``KeyboardInterrupt``) the worker team is shut
down and every shared segment unlinked before ``solve`` returns, so the
``portfolio`` engine can kill a losing sharded race without orphaning
processes or shared memory.

With ``shards <= 1`` (the default: ``IcpConfig.shards`` unset and
``REPRO_SHARDS`` unset) no workers are forked and the solver *is* the
batched path, byte for byte.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import time
from typing import Callable, Iterator, Sequence

from ..errors import SolverError, WorkerDied
from ..intervals import Box, BoxArray, SharedFrontier
from .constraint import Constraint
from .hc4 import FrontierContractor, contract_frontier
from .icp import IcpConfig
from .icp_batched import BatchedIcpSolver, prune_masks
from .result import SmtResult

__all__ = [
    "ShardedIcpSolver",
    "fork_available",
    "resolve_shards",
    "shard_bounds",
]

#: worker commands (pipe messages are ``(cmd, start, stop, rounds)``)
_EVAL, _CONTRACT, _EXIT = 0, 1, 2

#: sentinel: the supervised round gave up on workers; run it serially
_DEGRADED = object()

#: don't dispatch a batch narrower than this many rows per worker — the
#: pipe round-trip would cost more than the row work it parallelizes.
#: Purely a latency knob: the parity gate holds for every split choice.
_MIN_ROWS_PER_SHARD = 2


def resolve_round_timeout(default: float = 30.0) -> float:
    """Per-round worker deadline: ``REPRO_SHARD_TIMEOUT`` seconds, else
    ``default``.  A worker that has not answered its pipe within this
    window is declared dead (:class:`~repro.errors.WorkerDied`) — rounds
    are row-elementwise and finish in milliseconds, so the default is
    pure headroom for loaded CI machines."""
    raw = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return default


def resolve_respawn_limit(default: int = 2) -> int:
    """How many times a solve re-warms a dead worker team before
    degrading its rounds to the serial path (``REPRO_SHARD_RETRIES``)."""
    raw = os.environ.get("REPRO_SHARD_RETRIES", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return default


def fork_available() -> bool:
    """Whether this platform can fork workers (POSIX yes, Windows no)."""
    return "fork" in mp.get_all_start_methods()


def resolve_shards(config: "IcpConfig | None" = None) -> int:
    """Effective shard count: ``config.shards``, else ``REPRO_SHARDS``, else 1.

    Unparseable or non-positive environment values fall back to 1 — the
    knob is an execution-layout hint, never a hard failure.
    """
    shards = getattr(config, "shards", None)
    if shards is None:
        raw = os.environ.get("REPRO_SHARDS", "").strip()
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            return 1
    return max(1, int(shards))


def shard_bounds(m: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous row ranges covering ``[0, m)``, one per shard.

    Deterministic shard-major partition: shard ``s`` owns ``[a_s, b_s)``
    with ``a_0 = 0`` and ``b_{s} = a_{s+1}``, sizes differing by at most
    one row.  Reading results back range-by-range therefore reproduces
    the serial row order exactly.
    """
    base, extra = divmod(m, shards)
    bounds = []
    a = 0
    for s in range(shards):
        b = a + base + (1 if s < extra else 0)
        bounds.append((a, b))
        a = b
    return bounds


def _worker_loop(
    conn,
    tapes: list,
    constraints: list,
    contractors: list,
    shared: SharedFrontier,
    parent_conn,
) -> None:
    """One forked worker: serve eval/contract requests over ``conn``.

    Everything heavy — compiled tapes, contractor plans, the shared
    planes — arrives through fork inheritance, never pickling.  The
    worker touches only the row range each message names, so its writes
    never race another worker's.
    """
    if parent_conn is not None:  # our copy of the master's pipe end
        parent_conn.close()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            cmd, a, b, rounds = msg
            if cmd == _EXIT:
                break
            try:
                if cmd == _EVAL:
                    alive, all_true = prune_masks(
                        tapes,
                        constraints,
                        shared.in_lo[a:b],
                        shared.in_hi[a:b],
                    )
                    shared.alive[a:b] = alive
                    shared.all_true[a:b] = all_true
                else:  # _CONTRACT
                    boxes = shared.input_view(a, b)  # zero-copy view
                    contracted, c_alive = contract_frontier(
                        contractors, boxes, max_rounds=rounds
                    )
                    shared.out_lo[a:b] = contracted.lo
                    shared.out_hi[a:b] = contracted.hi
                    shared.c_alive[a:b] = c_alive
                conn.send(("ok", None))
            except Exception as exc:  # noqa: BLE001 - reported to master
                try:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                except OSError:
                    break
    finally:
        shared.close_local()
        conn.close()


class _ShardTeam:
    """One solve call's worker processes + shared planes.

    Construction compiles every tape kernel and contractor plan in the
    master, *then* forks — children inherit the compiled state
    copy-on-write and start warm.  :meth:`close` is safe to call from a
    ``finally`` after any failure, including mid-round.
    """

    def __init__(
        self,
        constraints: Sequence[Constraint],
        names: Sequence[str],
        config: IcpConfig,
        n_workers: int,
    ):
        import numpy as np

        tapes = [c.compiled(names) for c in constraints]
        self.contract_ok = config.use_contractor and all(
            len(t) <= config.contractor_node_limit for t in tapes
        )
        contractors = (
            [FrontierContractor(c, names) for c in constraints]
            if self.contract_ok
            else []
        )
        # Warm the kernel plans (and their lazy box programs) before the
        # fork so every child inherits them pre-compiled.
        dim = len(names)
        probe = np.zeros((1, dim))
        for tape in tapes:
            tape.eval_boxes(probe, probe)

        self.capacity = max(int(config.batch_size), n_workers)
        self.shared = SharedFrontier(self.capacity, dim)
        self.n_workers = n_workers
        self.conns: list = []
        self.procs: list = []
        ctx = mp.get_context("fork")
        try:
            for _ in range(n_workers):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_loop,
                    args=(child, tapes, constraints, contractors,
                          self.shared, parent),
                    daemon=True,
                )
                proc.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(proc)
        except BaseException:
            self.close()
            raise

    def _inject_worker_fault(self) -> None:
        """Fire the ``shard.worker`` seam (master-side, once per round).

        Kill/hang faults are delivered as real signals to a live victim
        worker, so the supervision under test is exactly the production
        path: a SIGKILLed worker EOFs its pipe, a SIGSTOPped one goes
        silent until the round deadline.  Counting in the master keeps
        the schedule deterministic across respawns — a re-warmed team
        does not replay the fault.
        """
        from ..resilience import faults

        action = faults.fire("shard.worker")
        if action is None or not self.procs:
            return
        victim = self.procs[0]
        if not victim.is_alive() or victim.pid is None:
            return
        if action.kind == "kill":
            os.kill(victim.pid, signal.SIGKILL)
        elif action.kind == "hang":
            os.kill(victim.pid, signal.SIGSTOP)

    def run(self, cmd: int, m: int, rounds: int = 0, timeout: float = 30.0) -> None:
        """Dispatch rows ``[0, m)`` to the team and wait for every shard.

        Replies are read with a shared deadline (``timeout`` seconds for
        the whole round): each pipe is polled, interleaved with the
        worker's process sentinel, so a worker that died (pipe EOF,
        sentinel down) or wedged (no reply by the deadline) raises a
        typed :class:`~repro.errors.WorkerDied` instead of blocking
        ``recv()`` forever.  The caller owns recovery — this object is
        left as-is for a force :meth:`close`.
        """
        self._inject_worker_fault()
        live = []
        for conn, proc, (a, b) in zip(
            self.conns, self.procs, shard_bounds(m, self.n_workers)
        ):
            try:
                if b > a:
                    conn.send((cmd, a, b, rounds))
                    live.append((conn, proc))
            except (BrokenPipeError, OSError):
                raise WorkerDied(
                    f"sharded ICP worker pid={proc.pid} died before dispatch"
                )
        deadline = time.monotonic() + timeout
        errors = []
        for conn, proc in live:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerDied(
                        f"sharded ICP worker pid={proc.pid} missed the "
                        f"{timeout:.1f}s round deadline"
                    )
                if conn.poll(min(0.05, remaining)):
                    try:
                        status, detail = conn.recv()
                    except (EOFError, OSError):
                        raise WorkerDied(
                            f"sharded ICP worker pid={proc.pid} died mid-round"
                        )
                    if status != "ok":
                        errors.append(detail)
                    break
                if not proc.is_alive():
                    # Sentinel down and nothing buffered: the worker is
                    # gone.  (A worker that replied *then* died still
                    # counts — poll() above drains the buffered reply.)
                    raise WorkerDied(
                        f"sharded ICP worker pid={proc.pid} died mid-round "
                        f"(exitcode={proc.exitcode})"
                    )
        if errors:
            raise SolverError(
                "sharded ICP worker failed: " + "; ".join(errors)
            )

    def close(self, force: bool = False) -> None:
        """Stop workers and unlink every shared segment (idempotent).

        ``force`` skips the cooperative ``_EXIT`` handshake and SIGKILLs
        the team — the recovery path after :class:`WorkerDied`, where a
        sibling may be wedged (even SIGSTOPped, which only SIGKILL
        penetrates) and waiting 5s per worker would stall the retry.
        """
        if force:
            for proc in self.procs:
                if proc.is_alive() and proc.pid is not None:
                    with contextlib.suppress(OSError):
                        os.kill(proc.pid, signal.SIGKILL)
            for proc in self.procs:
                proc.join(timeout=2.0)
        else:
            for conn in self.conns:
                with contextlib.suppress(OSError, ValueError):
                    conn.send((_EXIT, 0, 0, 0))
            for proc in self.procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck-worker backstop
                    proc.terminate()
                    proc.join(timeout=1.0)
        for conn in self.conns:
            with contextlib.suppress(OSError):
                conn.close()
        self.conns = []
        self.procs = []
        self.shared.destroy()


class ShardedIcpSolver(BatchedIcpSolver):
    """Drop-in :class:`BatchedIcpSolver` with a forked row-work fan-out.

    Parameters
    ----------
    config, should_stop:
        Exactly as for the batched solver.
    shards:
        Worker count; ``None`` resolves ``config.shards`` then the
        ``REPRO_SHARDS`` environment variable (default 1).  With one
        shard — or on platforms without ``fork`` — no processes are
        created and this *is* the batched solver.
    """

    def __init__(
        self,
        config: IcpConfig | None = None,
        should_stop: "Callable[[], bool] | None" = None,
        shards: int | None = None,
        round_timeout: float | None = None,
        max_respawns: int | None = None,
    ):
        super().__init__(config, should_stop)
        self.shards = (
            resolve_shards(self.config) if shards is None
            else max(1, int(shards))
        )
        #: per-round worker reply deadline (seconds); env-tunable so the
        #: knob never touches IcpConfig (whose serialized dict feeds the
        #: artifact/cache-key contract)
        self.round_timeout = (
            resolve_round_timeout() if round_timeout is None
            else float(round_timeout)
        )
        #: team re-warm budget per solve before degrading to serial rounds
        self.max_respawns = (
            resolve_respawn_limit() if max_respawns is None
            else max(0, int(max_respawns))
        )
        self._team: "_ShardTeam | None" = None
        self._team_args: "tuple | None" = None
        self._respawns_used = 0
        #: segment names of every team this solver created (respawns
        #: accumulate), so tests and the chaos gate can assert unlink
        self.last_segment_names: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Public entry points: wrap the serial loop in a worker-team scope
    # ------------------------------------------------------------------
    def solve(
        self,
        constraints: Sequence[Constraint],
        region: Box,
        variable_names: Sequence[str],
    ) -> SmtResult:
        if not self._should_shard(constraints, variable_names, region):
            return super().solve(constraints, region, variable_names)
        with self._team_scope(constraints, variable_names):
            return super().solve(constraints, region, variable_names)

    def solve_union(
        self,
        constraints: Sequence[Constraint],
        regions: Sequence[Box],
        variable_names: Sequence[str],
    ) -> SmtResult:
        if not regions or not self._should_shard(
            constraints, variable_names, regions[0]
        ):
            return super().solve_union(constraints, regions, variable_names)
        with self._team_scope(constraints, variable_names):
            return super().solve_union(constraints, regions, variable_names)

    # ------------------------------------------------------------------
    # Hook overrides: same computation, sharded rows
    # ------------------------------------------------------------------
    def _prune_masks(self, tapes, constraints, batch):
        team = self._team
        m = len(batch)
        if team is None or m < _MIN_ROWS_PER_SHARD * team.n_workers:
            return super()._prune_masks(tapes, constraints, batch)

        def round_on(active: _ShardTeam):
            shared = active.shared
            shared.in_lo[:m] = batch.lo
            shared.in_hi[:m] = batch.hi
            active.run(_EVAL, m, timeout=self.round_timeout)
            return shared.alive[:m].copy(), shared.all_true[:m].copy()

        result = self._supervised_round(round_on)
        if result is _DEGRADED:
            return super()._prune_masks(tapes, constraints, batch)
        return result

    def _contract_rows(self, contractors, boxes, max_rounds):
        team = self._team
        m = len(boxes)
        if (
            team is None
            or not team.contract_ok
            or m < _MIN_ROWS_PER_SHARD * team.n_workers
        ):
            return super()._contract_rows(contractors, boxes, max_rounds)

        def round_on(active: _ShardTeam):
            shared = active.shared
            shared.in_lo[:m] = boxes.lo
            shared.in_hi[:m] = boxes.hi
            active.run(_CONTRACT, m, rounds=max_rounds, timeout=self.round_timeout)
            contracted = BoxArray(
                shared.out_lo[:m].copy(), shared.out_hi[:m].copy()
            )
            return contracted, shared.c_alive[:m].copy()

        result = self._supervised_round(round_on)
        if result is _DEGRADED:
            return super()._contract_rows(contractors, boxes, max_rounds)
        return result

    def _supervised_round(self, round_on):
        """Run one round on the team, healing dead workers.

        Rounds are idempotent: inputs are master-owned arrays copied
        into the shared planes, so a round that died half-written can
        simply be replayed.  On :class:`WorkerDied` the team is
        force-closed (shm unlinked), re-warmed with capped backoff, and
        the round retried; once the solve's respawn budget is spent the
        sentinel ``_DEGRADED`` tells the caller to run this round — and,
        since ``self._team`` is now ``None``, every later round — on the
        serial path, which is bit-identical by the parity contract.
        """
        from ..resilience.supervisor import Backoff, record_incident

        backoff = Backoff(base=0.02, cap=0.5, seed=self._respawns_used)
        while True:
            team = self._team
            if team is None:
                return _DEGRADED
            try:
                return round_on(team)
            except WorkerDied as exc:
                team.close(force=True)
                self._team = None
                record_incident("shard.worker_died", str(exc))
                if self._respawns_used >= self.max_respawns or self._team_args is None:
                    record_incident(
                        "shard.degrade",
                        f"respawn budget ({self.max_respawns}) spent; "
                        "remaining rounds run serially",
                    )
                    return _DEGRADED
                backoff.sleep(self._respawns_used)
                self._respawns_used += 1
                constraints, names = self._team_args
                fresh = _ShardTeam(constraints, names, self.config, self.shards)
                self.last_segment_names = (
                    self.last_segment_names + fresh.shared.segment_names()
                )
                self._team = fresh
                record_incident(
                    "shard.respawn",
                    f"worker team re-warmed (attempt {self._respawns_used})",
                )

    # ------------------------------------------------------------------
    # Team lifecycle
    # ------------------------------------------------------------------
    def _should_shard(self, constraints, names, region) -> bool:
        if self.shards <= 1 or not constraints or not fork_available():
            return False
        # Mirror the guards the serial solve applies before any tape
        # work: let the base class raise its own errors for bad input
        # rather than forking workers first.
        if region.dimension != len(list(names)) or not region.is_finite():
            return False
        return True

    @contextlib.contextmanager
    def _team_scope(
        self, constraints: Sequence[Constraint], names: Sequence[str]
    ) -> Iterator[_ShardTeam]:
        team = _ShardTeam(
            list(constraints), list(names), self.config, self.shards
        )
        self.last_segment_names = tuple(team.shared.segment_names())
        self._team_args = (list(constraints), list(names))
        self._respawns_used = 0
        self._team = team
        try:
            yield team
        finally:
            # The supervisor may have replaced (or dropped) the team
            # mid-solve — close whichever one is current, not the
            # original local.
            current, self._team = self._team, None
            self._team_args = None
            if current is not None:
                current.close()
