"""Activation registry and semantics-coherence tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.expr import evaluate, var
from repro.nn import (
    LINEAR,
    LOGSIG,
    RELU,
    TANSIG,
    available_activations,
    get_activation,
)


class TestRegistry:
    def test_matlab_aliases(self):
        assert get_activation("tansig") is TANSIG
        assert get_activation("tanh") is TANSIG
        assert get_activation("logsig") is LOGSIG
        assert get_activation("sigmoid") is LOGSIG
        assert get_activation("poslin") is RELU
        assert get_activation("purelin") is LINEAR

    def test_case_insensitive(self):
        assert get_activation("TanSig") is TANSIG

    def test_passthrough(self):
        assert get_activation(TANSIG) is TANSIG

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_activation("swish")

    def test_available(self):
        names = available_activations()
        assert "tansig" in names
        assert "linear" in names

    def test_smoothness_flags(self):
        assert TANSIG.smooth
        assert LOGSIG.smooth
        assert LINEAR.smooth
        assert not RELU.smooth


class TestSemanticCoherence:
    """numeric == symbolic == interval endpoints, for each activation."""

    @pytest.mark.parametrize("act", [TANSIG, LOGSIG, RELU, LINEAR], ids=lambda a: a.name)
    def test_numeric_vs_symbolic(self, act, rng):
        xs = rng.uniform(-3.0, 3.0, size=25)
        x_var = var("x")
        sym = act.symbolic(x_var)
        for x in xs:
            numeric = float(act.numeric(np.array([x]))[0])
            symbolic = evaluate(sym, {"x": float(x)})
            assert numeric == pytest.approx(symbolic, rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("act", [TANSIG, LOGSIG, RELU, LINEAR], ids=lambda a: a.name)
    def test_interval_encloses_numeric(self, act, rng):
        lo = rng.uniform(-3.0, 2.0, size=30)
        hi = lo + rng.uniform(0.0, 2.0, size=30)
        out_lo, out_hi = act.interval(lo, hi)
        for t in (0.0, 0.3, 1.0):
            x = lo + t * (hi - lo)
            y = act.numeric(x)
            assert np.all(y >= out_lo - 1e-12)
            assert np.all(y <= out_hi + 1e-12)

    def test_tansig_is_matlab_tansig(self):
        """tansig(v) = 2/(1+exp(-2v)) - 1 must equal tanh(v)."""
        v = np.linspace(-4, 4, 33)
        matlab = 2.0 / (1.0 + np.exp(-2.0 * v)) - 1.0
        assert np.allclose(TANSIG.numeric(v), matlab, atol=1e-14)

    def test_sigmoid_stable_at_extremes(self):
        out = LOGSIG.numeric(np.array([-800.0, 800.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-300)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))
