"""Covariance Matrix Adaptation Evolution Strategy (CMA-ES).

A from-scratch implementation of the standard (mu/mu_w, lambda)-CMA-ES
of Hansen & Ostermeier (2001) with rank-one and rank-mu covariance
updates and cumulative step-size adaptation — the optimizer the paper
uses for direct policy search (Section 4.2, refs [8, 10]).

The implementation follows Hansen's tutorial pseudocode; the unit tests
validate it on the sphere, ellipsoid, and Rosenbrock functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import TrainingError

__all__ = ["CmaEsConfig", "CmaEs", "CmaEsResult", "minimize_cmaes"]


@dataclass
class CmaEsConfig:
    """Hyperparameters; defaults follow Hansen's recommended settings.

    ``population_size`` of None selects ``4 + floor(3 ln n)``.  The paper
    uses population sizes up to 152 for controller training — pass it
    explicitly to reproduce that setting.
    """

    population_size: int | None = None
    max_iterations: int = 100
    sigma0: float = 0.5
    tol_fun: float = 1e-12
    tol_x: float = 1e-12
    sigma_max: float = 1e7
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.population_size is not None and self.population_size < 2:
            raise TrainingError("population_size must be >= 2")
        if self.sigma0 <= 0:
            raise TrainingError("sigma0 must be positive")
        if self.max_iterations < 1:
            raise TrainingError("max_iterations must be >= 1")


@dataclass
class CmaEsResult:
    """Outcome of a CMA-ES run."""

    best_solution: np.ndarray
    best_fitness: float
    iterations: int
    evaluations: int
    stop_reason: str
    #: best fitness after each iteration (monotone non-increasing)
    history: list[float] = field(default_factory=list)
    #: mean vector after each iteration (for snapshotting, e.g. Figure 4)
    mean_history: list[np.ndarray] = field(default_factory=list)


class CmaEs:
    """Ask/tell CMA-ES optimizer state.

    Example
    -------
    >>> es = CmaEs(np.zeros(4), CmaEsConfig(seed=1, max_iterations=200))
    >>> while not es.should_stop():
    ...     candidates = es.ask()
    ...     es.tell(candidates, [float(np.sum(c**2)) for c in candidates])
    >>> es.best_fitness < 1e-8
    True
    """

    def __init__(self, x0: Sequence[float], config: CmaEsConfig | None = None):
        self.config = config or CmaEsConfig()
        self.mean = np.asarray(x0, dtype=float).copy()
        if self.mean.ndim != 1 or self.mean.size == 0:
            raise TrainingError("x0 must be a non-empty vector")
        n = self.mean.size
        self.dimension = n
        self.rng = np.random.default_rng(self.config.seed)

        # Selection parameters.
        self.lam = self.config.population_size or (4 + int(3 * math.log(n)))
        self.mu = self.lam // 2
        raw_weights = np.log(self.mu + 0.5) - np.log(np.arange(1, self.mu + 1))
        self.weights = raw_weights / raw_weights.sum()
        self.mu_eff = 1.0 / np.sum(self.weights**2)

        # Adaptation parameters (Hansen's defaults).
        self.cc = (4 + self.mu_eff / n) / (n + 4 + 2 * self.mu_eff / n)
        self.cs = (self.mu_eff + 2) / (n + self.mu_eff + 5)
        self.c1 = 2 / ((n + 1.3) ** 2 + self.mu_eff)
        self.cmu = min(
            1 - self.c1,
            2 * (self.mu_eff - 2 + 1 / self.mu_eff) / ((n + 2) ** 2 + self.mu_eff),
        )
        self.damps = 1 + 2 * max(0.0, math.sqrt((self.mu_eff - 1) / (n + 1)) - 1) + self.cs
        self.chi_n = math.sqrt(n) * (1 - 1 / (4 * n) + 1 / (21 * n * n))

        # Dynamic state.
        self.sigma = self.config.sigma0
        self.cov = np.eye(n)
        self.path_sigma = np.zeros(n)
        self.path_cov = np.zeros(n)
        self._eigen_basis = np.eye(n)
        self._eigen_values = np.ones(n)
        self._eigen_stale = 0

        self.iteration = 0
        self.evaluations = 0
        self.best_solution = self.mean.copy()
        self.best_fitness = math.inf
        self.history: list[float] = []
        self.mean_history: list[np.ndarray] = []
        self._stop_reason: str | None = None
        self._pending: np.ndarray | None = None
        self._pending_z: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Ask / tell interface
    # ------------------------------------------------------------------
    def ask(self) -> np.ndarray:
        """Sample a population, shape ``(lambda, n)``."""
        self._update_eigen_decomposition()
        z = self.rng.standard_normal((self.lam, self.dimension))
        y = z @ np.diag(np.sqrt(self._eigen_values)) @ self._eigen_basis.T
        candidates = self.mean + self.sigma * y
        self._pending = candidates
        self._pending_z = y
        return candidates

    def tell(self, candidates: np.ndarray, fitnesses: Sequence[float]) -> None:
        """Report fitnesses for the population from the last :meth:`ask`."""
        candidates = np.asarray(candidates, dtype=float)
        fitnesses = np.asarray(fitnesses, dtype=float)
        if self._pending is None or candidates.shape != self._pending.shape:
            raise TrainingError("tell() must follow ask() with the same population")
        if fitnesses.shape != (self.lam,):
            raise TrainingError(
                f"expected {self.lam} fitness values, got {fitnesses.shape}"
            )
        if np.any(np.isnan(fitnesses)):
            raise TrainingError("fitness values contain NaN")

        self.evaluations += self.lam
        order = np.argsort(fitnesses)
        selected = candidates[order[: self.mu]]
        selected_y = (selected - self.mean) / self.sigma

        if fitnesses[order[0]] < self.best_fitness:
            self.best_fitness = float(fitnesses[order[0]])
            self.best_solution = candidates[order[0]].copy()

        old_mean = self.mean
        self.mean = self.weights @ selected
        mean_shift_y = (self.mean - old_mean) / self.sigma

        # Step-size path (in the isotropic coordinate system).
        inv_sqrt_c = (
            self._eigen_basis
            @ np.diag(1.0 / np.sqrt(self._eigen_values))
            @ self._eigen_basis.T
        )
        self.path_sigma = (1 - self.cs) * self.path_sigma + math.sqrt(
            self.cs * (2 - self.cs) * self.mu_eff
        ) * (inv_sqrt_c @ mean_shift_y)

        ps_norm = float(np.linalg.norm(self.path_sigma))
        hsig = ps_norm / math.sqrt(
            1 - (1 - self.cs) ** (2 * (self.iteration + 1))
        ) < (1.4 + 2 / (self.dimension + 1)) * self.chi_n

        # Covariance path and rank-one / rank-mu updates.
        self.path_cov = (1 - self.cc) * self.path_cov + (
            math.sqrt(self.cc * (2 - self.cc) * self.mu_eff) * mean_shift_y
            if hsig
            else 0.0
        )
        rank_one = np.outer(self.path_cov, self.path_cov)
        rank_mu = sum(
            w * np.outer(y, y) for w, y in zip(self.weights, selected_y)
        )
        correction = (1 - hsig) * self.cc * (2 - self.cc)
        self.cov = (
            (1 - self.c1 - self.cmu) * self.cov
            + self.c1 * (rank_one + correction * self.cov)
            + self.cmu * rank_mu
        )
        # Numerical symmetry guard.
        self.cov = 0.5 * (self.cov + self.cov.T)

        # Step-size update.
        self.sigma *= math.exp((self.cs / self.damps) * (ps_norm / self.chi_n - 1))
        self.sigma = min(self.sigma, self.config.sigma_max)

        self.iteration += 1
        self._eigen_stale += 1
        self.history.append(self.best_fitness)
        self.mean_history.append(self.mean.copy())
        self._pending = None
        self._pending_z = None

        self._check_stop(fitnesses)

    # ------------------------------------------------------------------
    # Stopping
    # ------------------------------------------------------------------
    def should_stop(self) -> bool:
        """True once any stop criterion fired."""
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        """Why the run stopped (None while running)."""
        return self._stop_reason

    def _check_stop(self, fitnesses: np.ndarray) -> None:
        if self.iteration >= self.config.max_iterations:
            self._stop_reason = "max_iterations"
        elif float(fitnesses.max() - fitnesses.min()) < self.config.tol_fun and (
            self.iteration > 10
        ):
            self._stop_reason = "tol_fun"
        elif self.sigma * math.sqrt(float(self._eigen_values.max())) < self.config.tol_x:
            self._stop_reason = "tol_x"
        elif not np.all(np.isfinite(self.cov)):
            self._stop_reason = "divergence"

    def _update_eigen_decomposition(self) -> None:
        # Re-decompose lazily; exact threshold is a performance detail.
        if self._eigen_stale == 0 and self.iteration > 0:
            return
        values, basis = np.linalg.eigh(self.cov)
        values = np.maximum(values, 1e-20)
        self._eigen_values = values
        self._eigen_basis = basis
        self._eigen_stale = 0

    def result(self) -> CmaEsResult:
        """Snapshot of the run outcome."""
        return CmaEsResult(
            best_solution=self.best_solution.copy(),
            best_fitness=self.best_fitness,
            iterations=self.iteration,
            evaluations=self.evaluations,
            stop_reason=self._stop_reason or "running",
            history=list(self.history),
            mean_history=[m.copy() for m in self.mean_history],
        )


def minimize_cmaes(
    objective: Callable[[np.ndarray], float],
    x0: Sequence[float],
    config: CmaEsConfig | None = None,
    callback: Callable[[CmaEs], None] | None = None,
) -> CmaEsResult:
    """Minimize ``objective`` with CMA-ES; returns the run result.

    ``callback`` (if given) runs after every iteration — the policy
    search uses it to snapshot controllers for Figure 4.
    """
    es = CmaEs(x0, config)
    while not es.should_stop():
        candidates = es.ask()
        fitnesses = [float(objective(c)) for c in candidates]
        es.tell(candidates, fitnesses)
        if callback is not None:
            callback(es)
    return es.result()
