"""Scheduler behaviour: caching, coalescing, cancellation, recovery."""

from __future__ import annotations

import threading
import time

import pytest

from repro import api
from repro.api.family import get_family
from repro.api.scenario import register_scenario, unregister_scenario
from repro.errors import ReproError
from repro.service import EventBus, JobState, Scheduler
from repro.service import scheduler as scheduler_module
from repro.store import ArtifactStore

GRID = {"damping": "0.4:0.8:3"}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def make_scheduler(store, **kwargs):
    kwargs.setdefault("pool", False)
    kwargs.setdefault("workers", 2)
    return Scheduler(store, **kwargs)


def wait_terminal(scheduler, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = scheduler.job(job_id)
        if job.state.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {scheduler.job(job_id).state}")


@pytest.fixture
def gate(monkeypatch):
    """Block every worker dispatch until released (thread mode only)."""
    event = threading.Event()
    real = scheduler_module._run_point

    def gated(*args, **kwargs):
        event.wait(timeout=30)
        return real(*args, **kwargs)

    monkeypatch.setattr(scheduler_module, "_run_point", gated)
    yield event
    event.set()


class TestSubmit:
    def test_grid_job_runs_to_done(self, store):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit({"target": "linear", "grid": GRID})
            assert job.total_points == 3
            assert job.dispatched == 3
            assert job.cached_points == 0
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.DONE
            assert all(a is not None for a in job.artifacts)
            assert all(a.verified for a in job.artifacts)
            assert store.stats().artifacts == 3
        finally:
            scheduler.shutdown(wait=True)

    def test_warm_resubmission_is_all_cache_no_dispatch(self, store):
        scheduler = make_scheduler(store)
        try:
            first = scheduler.submit({"target": "linear", "grid": GRID})
            wait_terminal(scheduler, first.id)
            second = scheduler.submit({"target": "linear", "grid": GRID})
            # Resolved synchronously inside submit: no worker dispatch.
            assert second.state is JobState.DONE
            assert second.cached_points == second.total_points == 3
            assert second.dispatched == 0
            assert all(a.cached for a in second.artifacts)
        finally:
            scheduler.shutdown(wait=True)

    def test_artifacts_byte_identical_to_direct_api_run(self, store):
        """Service results land in the shared store such that a direct
        ``api.run`` of the same point returns the identical bytes."""
        import dataclasses

        from repro.api.runner import derive_scenario_seed

        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit({"target": "linear", "grid": GRID})
            job = wait_terminal(scheduler, job.id)
        finally:
            scheduler.shutdown(wait=True)
        family = get_family("linear")
        for params, artifact in zip(job.params, job.artifacts):
            scenario = family.instantiate(**params)
            config = dataclasses.replace(
                scenario.config,
                seed=derive_scenario_seed(0, scenario.name),
            )
            direct = api.run(scenario, config=config, cache=store)
            assert direct.cached
            assert direct.to_json() == artifact.to_json()

    def test_scenario_target_single_point(self, store):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit({"target": "linear", "samples": 2, "seed": 3})
            assert job.total_points == 2
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.DONE
        finally:
            scheduler.shutdown(wait=True)

    def test_invalid_target_rejected_before_queueing(self, store):
        scheduler = make_scheduler(store)
        try:
            with pytest.raises(ReproError):
                scheduler.submit({"target": "no-such-family"})
            assert scheduler.jobs() == []
        finally:
            scheduler.shutdown()

    def test_duplicate_job_id_rejected(self, store):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit(
                {"target": "linear", "grid": {"damping": [0.5]}}
            )
            with pytest.raises(ReproError, match="already exists"):
                scheduler.submit(
                    {"target": "linear", "grid": {"damping": [0.5]}},
                    job_id=job.id,
                )
        finally:
            scheduler.shutdown(wait=True)

    def test_unknown_job_raises(self, store):
        scheduler = make_scheduler(store)
        try:
            with pytest.raises(ReproError, match="unknown job"):
                scheduler.job("job-nope")
        finally:
            scheduler.shutdown()


class TestCoalescing:
    def test_identical_inflight_keys_coalesce(self, store, gate):
        scheduler = make_scheduler(store)
        try:
            first = scheduler.submit({"target": "linear", "grid": GRID})
            second = scheduler.submit({"target": "linear", "grid": GRID})
            # Workers are gated, so every one of second's keys is still
            # in flight: nothing re-dispatches.
            assert second.dispatched == 0
            assert second.coalesced == 3
            gate.set()
            first = wait_terminal(scheduler, first.id)
            second = wait_terminal(scheduler, second.id)
            assert first.state is JobState.DONE
            assert second.state is JobState.DONE
            assert [a.to_json() for a in first.artifacts] == [
                a.to_json() for a in second.artifacts
            ]
        finally:
            gate.set()
            scheduler.shutdown(wait=True)

    def test_priority_orders_the_queue(self, store, gate):
        scheduler = make_scheduler(store, workers=1)
        try:
            low = scheduler.submit(
                {"target": "linear", "grid": {"damping": [0.41]}}, priority=0
            )
            high = scheduler.submit(
                {"target": "linear", "grid": {"damping": [0.82]}}, priority=5
            )
            with scheduler._lock:
                heap = sorted(scheduler._heap)
            assert heap[0][0] == -5  # the high-priority task pops first
            gate.set()
            wait_terminal(scheduler, low.id)
            wait_terminal(scheduler, high.id)
        finally:
            gate.set()
            scheduler.shutdown(wait=True)


class TestCancellation:
    def test_cancel_queued_job(self, store, gate):
        scheduler = make_scheduler(store, workers=1)
        try:
            job = scheduler.submit({"target": "linear", "grid": GRID})
            cancelled = scheduler.cancel(job.id)
            assert cancelled.state is JobState.CANCELLED
            assert cancelled.cancel_requested
            gate.set()
            # The in-flight point may still complete into the store, but
            # the job must stay CANCELLED.
            time.sleep(0.2)
            assert scheduler.job(job.id).state is JobState.CANCELLED
        finally:
            gate.set()
            scheduler.shutdown(wait=True)

    def test_cancel_terminal_job_is_noop(self, store):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit(
                {"target": "linear", "grid": {"damping": [0.5]}}
            )
            wait_terminal(scheduler, job.id)
            again = scheduler.cancel(job.id)
            assert again.state is JobState.DONE
        finally:
            scheduler.shutdown(wait=True)

    def test_cancel_unknown_job_raises(self, store):
        scheduler = make_scheduler(store)
        try:
            with pytest.raises(ReproError, match="unknown job"):
                scheduler.cancel("job-nope")
        finally:
            scheduler.shutdown()

    def test_cancelled_waiter_does_not_block_other_jobs(self, store, gate):
        scheduler = make_scheduler(store, workers=1)
        try:
            doomed = scheduler.submit({"target": "linear", "grid": GRID})
            survivor = scheduler.submit({"target": "linear", "grid": GRID})
            scheduler.cancel(doomed.id)
            gate.set()
            survivor = wait_terminal(scheduler, survivor.id)
            assert survivor.state is JobState.DONE
            assert scheduler.job(doomed.id).state is JobState.CANCELLED
        finally:
            gate.set()
            scheduler.shutdown(wait=True)


class TestFailure:
    @pytest.fixture
    def failing_scenario(self):
        base = get_family("linear").instantiate()
        import dataclasses

        def explode():
            raise RuntimeError("injected factory failure")

        scenario = dataclasses.replace(
            base, name="svc-test-failing", system_factory=explode
        )
        register_scenario(scenario, replace=True)
        yield scenario
        unregister_scenario("svc-test-failing")

    def test_error_point_fails_the_job(self, store, failing_scenario):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit({"target": "svc-test-failing"})
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.FAILED
            assert "injected factory failure" in (job.error or "")
        finally:
            scheduler.shutdown(wait=True)


class TestEventsAndStats:
    def test_point_and_job_events_published(self, store):
        bus = EventBus()
        scheduler = make_scheduler(store, events=bus)
        try:
            job = scheduler.submit(
                {"target": "linear", "grid": {"damping": [0.5]}}
            )
            wait_terminal(scheduler, job.id)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                types = {e["type"] for e in bus.history(job.id)}
                if {"point", "job"} <= types:
                    break
                time.sleep(0.05)
            events = bus.history(job.id)
            types = {e["type"] for e in events}
            assert {"stage", "point", "job"} <= types
            final = [e for e in events if e["type"] == "job"][-1]
            assert final["state"] == "DONE"
        finally:
            scheduler.shutdown(wait=True)

    def test_stats_shape(self, store):
        scheduler = make_scheduler(store)
        try:
            stats = scheduler.stats()
            assert stats["workers"] == 2
            assert stats["executor"] == "threads"
            assert stats["queued_tasks"] == 0
        finally:
            scheduler.shutdown()


class TestRecovery:
    def test_terminal_jobs_survive_restart(self, store):
        first = make_scheduler(store, journal=True)
        try:
            job = first.submit({"target": "linear", "grid": GRID})
            job = wait_terminal(first, job.id)
        finally:
            first.shutdown(wait=True)

        second = make_scheduler(store, journal=True)
        try:
            requeued = second.recover()
            assert requeued == []
            recovered = second.job(job.id)
            assert recovered.state is JobState.DONE
            # Artifacts hydrate from the content-addressed store by key.
            artifacts = second.job_result(job.id)
            assert all(a is not None for a in artifacts)
            assert [a.to_json() for a in artifacts] == [
                a.to_json() for a in job.artifacts
            ]
        finally:
            second.shutdown(wait=True)

    def test_interrupted_job_requeues_to_same_final_state(self, store, gate):
        first = make_scheduler(store, journal=True, workers=1)
        job = first.submit({"target": "linear", "grid": GRID})
        job_id = job.id
        # Simulated crash: shut down with the job still unfinished.
        first.shutdown(wait=False)
        gate.set()

        second = make_scheduler(store, journal=True)
        try:
            requeued = second.recover()
            assert [j.id for j in requeued] == [job_id]
            recovered = wait_terminal(second, job_id)
            assert recovered.state is JobState.DONE
            assert recovered.total_points == 3
        finally:
            second.shutdown(wait=True)

        # The journal itself replays to the same final state.
        assert second.journal.replay()[job_id].state is JobState.DONE

    def test_recover_without_journal_is_noop(self, store):
        scheduler = make_scheduler(store)
        try:
            assert scheduler.recover() == []
        finally:
            scheduler.shutdown()


class TestShutdown:
    def test_submit_after_shutdown_raises(self, store):
        scheduler = make_scheduler(store)
        scheduler.shutdown()
        with pytest.raises(ReproError, match="shut down"):
            scheduler.submit({"target": "linear", "grid": {"damping": [0.5]}})
