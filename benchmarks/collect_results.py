#!/usr/bin/env python
"""Aggregate the scattered ``BENCH_*.json`` files into one summary.

Every benchmark writes its own machine-readable artifact under
``benchmarks/results/`` (``BENCH_icp.json``, ``BENCH_sweep.json``,
``BENCH_engines.json``, ``BENCH_synthesis.json``, ...).  This collector
merges them into a single ``BENCH_summary.json`` with a flat
``headline`` section of the numbers worth tracking PR-over-PR, so the
perf trajectory is one file to diff instead of four.

Run directly (``python benchmarks/collect_results.py``) or let the
benchmark suite's final test regenerate it; CI uploads the result next
to the per-benchmark artifacts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_NAME = "BENCH_summary.json"


def _dig(data: dict, *path, default=None):
    for key in path:
        if not isinstance(data, dict) or key not in data:
            return default
        data = data[key]
    return data


def collect(results_dir: Path = RESULTS_DIR) -> dict:
    """Merge every ``BENCH_*.json`` under ``results_dir`` into one dict."""
    benchmarks: dict[str, object] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == SUMMARY_NAME:
            continue
        name = path.stem[len("BENCH_"):]
        try:
            benchmarks[name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            benchmarks[name] = {"error": f"unreadable: {error}"}

    headline = {
        "seed_sim_vectorized_speedup": _dig(
            benchmarks, "engines", "seed_sim", "speedup"
        ),
        "smt_stage_batched_speedup": _dig(
            benchmarks, "icp", "smt_stage", "speedup"
        ),
        "smt_shard4_speedup": _dig(
            benchmarks, "shard", "best", "speedup_4"
        ),
        "sweep_cold_scenarios_per_minute": _dig(
            benchmarks, "sweep", "cold", "scenarios_per_minute"
        ),
        "sweep_warm_hit_rate": _dig(
            benchmarks, "sweep", "warm", "cache_hit_rate"
        ),
        "end_to_end_dubins_speedup": _dig(
            benchmarks, "synthesis", "end_to_end", "speedup"
        ),
        "cold_sweep_scenarios_per_minute": _dig(
            benchmarks, "synthesis", "cold_sweep", "scenarios_per_minute"
        ),
        "corpus_fuzz_points_per_minute": _dig(
            benchmarks, "corpus", "full", "points_per_minute"
        ),
        "corpus_twin_tier_share": _dig(
            benchmarks, "corpus", "twin_tier_share"
        ),
        "seam_overhead_factor": _dig(
            benchmarks, "resilience", "seam_overhead", "overhead_factor"
        ),
        "supervisor_recovery_latency_s": _dig(
            benchmarks, "resilience", "recovery_latency", "recovery_latency_s"
        ),
    }
    return {
        "schema": 1,
        "benchmarks": benchmarks,
        "headline": {k: v for k, v in headline.items() if v is not None},
    }


def write_summary(results_dir: Path = RESULTS_DIR) -> Path:
    """Write ``BENCH_summary.json`` and return its path."""
    summary = collect(results_dir)
    target = results_dir / SUMMARY_NAME
    target.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return target


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results_dir = Path(argv[0]) if argv else RESULTS_DIR
    target = write_summary(results_dir)
    summary = json.loads(target.read_text())
    print(f"wrote {target} ({len(summary['benchmarks'])} benchmarks)")
    for key, value in summary["headline"].items():
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
