"""Target paths and path-following error computation.

Implements the paper's Section 4.1.2 conventions exactly:

* the vehicle orientation ``theta_v`` is the **clockwise** angle from the
  positive y-axis (Figure 3a);
* ``theta_err = theta_r - theta_v`` where ``theta_r`` is the tangent
  orientation of the path at the closest point (Eq. 11);
* ``d_err`` is the distance to the path, **negative when the vehicle is
  to the right** of the path (Section 4.1.2).

Two path classes are provided: an infinite straight line (the
verification case study) and a piecewise-linear chain of waypoints (the
training path of Figure 4).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import GeometryError

__all__ = ["PathErrors", "StraightLinePath", "PiecewiseLinearPath", "heading_vector"]


def heading_vector(theta_v: float) -> np.ndarray:
    """Unit direction of travel for a clockwise-from-+y orientation.

    With the paper's convention (Eqs. 8–9): ``x' = V sin(theta)``,
    ``y' = V cos(theta)``, so the heading is ``(sin(theta), cos(theta))``.
    """
    return np.array([math.sin(theta_v), math.cos(theta_v)])


class PathErrors:
    """The pair ``(d_err, theta_err)`` plus the closest path point."""

    def __init__(self, d_err: float, theta_err: float, closest_point: np.ndarray):
        self.d_err = float(d_err)
        self.theta_err = float(theta_err)
        self.closest_point = np.asarray(closest_point, dtype=float)

    def as_vector(self) -> np.ndarray:
        """``[d_err, theta_err]`` — the NN controller's input layout."""
        return np.array([self.d_err, self.theta_err])

    def __repr__(self) -> str:
        return f"PathErrors(d_err={self.d_err:.4g}, theta_err={self.theta_err:.4g})"


def _wrap_angle(angle: float) -> float:
    """Wrap to (-pi, pi]."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def _signed_errors(
    position: np.ndarray,
    closest: np.ndarray,
    tangent_angle: float,
    theta_v: float,
) -> PathErrors:
    """Common error computation given the closest point and tangent."""
    offset = position - closest
    distance = float(np.linalg.norm(offset))
    # Left-of-path test via the 2-D cross product tangent x offset.  For a
    # straight line through the origin this equals the paper's Eq. 12:
    # d_err = -xv*cos(theta_r) + yv*sin(theta_r), positive on the left.
    tangent = heading_vector(tangent_angle)
    cross = tangent[0] * offset[1] - tangent[1] * offset[0]
    d_err = distance if cross > 0.0 else -distance
    theta_err = _wrap_angle(tangent_angle - theta_v)
    return PathErrors(d_err, theta_err, closest)


class StraightLinePath:
    """An infinite straight line through ``origin`` with orientation ``theta_r``.

    ``theta_r`` follows the vehicle convention (clockwise from +y).
    """

    def __init__(self, theta_r: float = 0.0, origin: Sequence[float] = (0.0, 0.0)):
        self.theta_r = float(theta_r)
        self.origin = np.asarray(origin, dtype=float)
        if self.origin.shape != (2,):
            raise GeometryError("origin must be a 2-D point")
        self._direction = heading_vector(self.theta_r)

    def closest_point(self, position: Sequence[float]) -> tuple[np.ndarray, float]:
        """Orthogonal projection onto the line and the tangent angle there."""
        position = np.asarray(position, dtype=float)
        t = float(np.dot(position - self.origin, self._direction))
        return self.origin + t * self._direction, self.theta_r

    def errors(self, position: Sequence[float], theta_v: float) -> PathErrors:
        """Paper-convention ``(d_err, theta_err)`` for a vehicle pose."""
        closest, tangent = self.closest_point(position)
        return _signed_errors(np.asarray(position, float), closest, tangent, theta_v)

    def point_at(self, arc_length: float) -> np.ndarray:
        """Point at a given (signed) arc length from the origin."""
        return self.origin + arc_length * self._direction

    @property
    def end_point(self) -> np.ndarray:
        """Lines have no end; the origin stands in for cost bookkeeping."""
        return self.origin

    def __repr__(self) -> str:
        return f"StraightLinePath(theta_r={self.theta_r:.4g}, origin={self.origin.tolist()})"


class PiecewiseLinearPath:
    """A chain of straight segments through ``waypoints`` (Figure 4's path)."""

    def __init__(self, waypoints: Sequence[Sequence[float]]):
        self.waypoints = np.asarray(waypoints, dtype=float)
        if self.waypoints.ndim != 2 or self.waypoints.shape[1] != 2:
            raise GeometryError("waypoints must be an (k, 2) array")
        if self.waypoints.shape[0] < 2:
            raise GeometryError("a path needs at least two waypoints")
        segments = np.diff(self.waypoints, axis=0)
        lengths = np.linalg.norm(segments, axis=1)
        if np.any(lengths <= 0.0):
            raise GeometryError("degenerate (zero-length) path segment")
        self._segments = segments
        self._lengths = lengths
        self._cumulative = np.concatenate([[0.0], np.cumsum(lengths)])
        # Tangent angle per segment in the clockwise-from-+y convention:
        # direction (dx, dy) has angle atan2(dx, dy).
        self._angles = np.arctan2(segments[:, 0], segments[:, 1])

    @property
    def total_length(self) -> float:
        """Sum of segment lengths."""
        return float(self._cumulative[-1])

    @property
    def end_point(self) -> np.ndarray:
        """Final waypoint (used by the training cost's terminal term)."""
        return self.waypoints[-1]

    def closest_point(self, position: Sequence[float]) -> tuple[np.ndarray, float]:
        """Closest point over all segments and the tangent angle there."""
        position = np.asarray(position, dtype=float)
        best_dist = math.inf
        best_point = self.waypoints[0]
        best_angle = float(self._angles[0])
        for start, seg, length, angle in zip(
            self.waypoints[:-1], self._segments, self._lengths, self._angles
        ):
            t = float(np.dot(position - start, seg) / (length * length))
            t = min(max(t, 0.0), 1.0)
            candidate = start + t * seg
            dist = float(np.linalg.norm(position - candidate))
            if dist < best_dist:
                best_dist = dist
                best_point = candidate
                best_angle = float(angle)
        return best_point, best_angle

    def errors(self, position: Sequence[float], theta_v: float) -> PathErrors:
        """Paper-convention ``(d_err, theta_err)`` for a vehicle pose."""
        closest, tangent = self.closest_point(position)
        return _signed_errors(np.asarray(position, float), closest, tangent, theta_v)

    def point_at(self, arc_length: float) -> np.ndarray:
        """Point at an arc length from the start (clamped to the path)."""
        s = min(max(arc_length, 0.0), self.total_length)
        index = int(np.searchsorted(self._cumulative, s, side="right") - 1)
        index = min(index, len(self._segments) - 1)
        local = s - self._cumulative[index]
        return self.waypoints[index] + (local / self._lengths[index]) * self._segments[index]

    def __repr__(self) -> str:
        return (
            f"PiecewiseLinearPath({self.waypoints.shape[0]} waypoints, "
            f"length {self.total_length:.4g})"
        )
