"""External SMT solver portfolio (Z3 / dReal) over SMT-LIB emission.

The paper delegates its δ-SAT checks to an external nonlinear solver;
this package restores that option next to the in-house ICP:

* :mod:`repro.solvers.smtlib` — deterministic SMT-LIB 2 emission from
  the existing constraint/expression layer (exact decimal literals, no
  scientific notation, transcendental-op tracking);
* :mod:`repro.solvers.backends` — subprocess adapters for Z3 and dReal
  with hard wall-clock deadlines, verdict/model parsing, availability
  probing, and a registry for third-party adapters;
* :mod:`repro.solvers.portfolio` — the ``portfolio`` engine backend
  racing external solvers against the batched ICP solver
  (first-verdict-wins, losers cancelled, exact degrade to
  ``batched-icp`` when no binaries are installed).

See ``docs/solvers.md`` for the install matrix and timeout semantics.
"""

from .backends import (
    DEFAULT_TIMEOUT,
    DRealSolver,
    ExternalSolver,
    SolverInfo,
    Z3Solver,
    external_solvers,
    get_solver,
    parse_dreal_output,
    parse_z3_output,
    probe_all,
    register_solver,
    result_from_model,
    solver_names,
)
from .portfolio import PortfolioSmtBackend, effective_timeout, solver_fingerprint
from .smtlib import (
    TRANSCENDENTAL_OPS,
    SmtLibQuery,
    constraint_to_smtlib,
    decimal_literal,
    emit_query,
    expr_to_smtlib,
    symbol,
)

__all__ = [
    "DEFAULT_TIMEOUT",
    "TRANSCENDENTAL_OPS",
    "DRealSolver",
    "ExternalSolver",
    "PortfolioSmtBackend",
    "SmtLibQuery",
    "SolverInfo",
    "Z3Solver",
    "constraint_to_smtlib",
    "decimal_literal",
    "effective_timeout",
    "emit_query",
    "expr_to_smtlib",
    "external_solvers",
    "get_solver",
    "parse_dreal_output",
    "parse_z3_output",
    "probe_all",
    "register_solver",
    "result_from_model",
    "solver_fingerprint",
    "solver_names",
    "symbol",
]
