"""Atomic relational constraints ``expr ⋈ 0``.

Every constraint is normalized to compare an expression against zero,
which keeps the interval decision logic uniform:  ``g(x) <= c`` becomes
``g(x) - c <= 0``.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..errors import ExpressionError
from ..expr import CompiledExpression, Expr, as_expr, compile_expression, to_infix
from ..intervals import Box

__all__ = ["Relation", "Status", "Constraint", "le", "lt", "ge", "gt", "eq"]


class Relation(enum.Enum):
    """Comparison of an expression against zero."""

    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"
    EQ = "=="

    def flip(self) -> "Relation":
        """Relation satisfied by ``-expr`` whenever ``expr`` satisfies self."""
        return {
            Relation.LE: Relation.GE,
            Relation.LT: Relation.GT,
            Relation.GE: Relation.LE,
            Relation.GT: Relation.LT,
            Relation.EQ: Relation.EQ,
        }[self]

    def negate(self) -> "Relation":
        """Relation holding exactly when self does not."""
        return {
            Relation.LE: Relation.GT,
            Relation.LT: Relation.GE,
            Relation.GE: Relation.LT,
            Relation.GT: Relation.LE,
        }[self]


class Status(enum.IntEnum):
    """Three-valued interval verdict of a constraint over a box."""

    CERTAIN_FALSE = 0
    UNKNOWN = 1
    CERTAIN_TRUE = 2


class Constraint:
    """An atomic constraint ``expr ⋈ 0`` over named variables.

    Parameters
    ----------
    expr:
        Left-hand side expression.
    relation:
        One of :class:`Relation` (or its string value).
    name:
        Optional label used in reports.
    """

    def __init__(self, expr: "Expr | float", relation: "Relation | str", name: str = ""):
        self.expr = as_expr(expr)
        self.relation = Relation(relation)
        self.name = name
        self._compiled: dict[tuple[str, ...], CompiledExpression] = {}

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compiled(self, variable_names: Sequence[str]) -> CompiledExpression:
        """Tape compiled against ``variable_names`` (cached per ordering).

        One cache entry per distinct name tuple: alternating between two
        variable orders never evicts (or hands back) the other order's
        tape — a single-slot cache here would silently re-compile on
        every flip and, worse, made downstream caches keyed per tape
        (kernel plans, contractor plans) churn with it.
        """
        names = tuple(variable_names)
        tape = self._compiled.get(names)
        if tape is None:
            tape = self._compiled[names] = compile_expression(self.expr, names)
        return tape

    # ------------------------------------------------------------------
    # Decision logic
    # ------------------------------------------------------------------
    def status_from_bounds(
        self, lo: np.ndarray, hi: np.ndarray, slack: float = 0.0
    ) -> np.ndarray:
        """Vectorized three-valued verdicts from expression bounds.

        ``slack >= 0`` loosens CERTAIN_FALSE decisions (used for
        δ-weakening of equalities).  Returns an int array of
        :class:`Status` values.
        """
        out = np.full(lo.shape, int(Status.UNKNOWN), dtype=np.int8)
        if self.relation is Relation.LE:
            out[hi <= 0.0] = int(Status.CERTAIN_TRUE)
            out[lo > slack] = int(Status.CERTAIN_FALSE)
        elif self.relation is Relation.LT:
            out[hi < 0.0] = int(Status.CERTAIN_TRUE)
            out[lo >= slack] = int(Status.CERTAIN_FALSE)
        elif self.relation is Relation.GE:
            out[lo >= 0.0] = int(Status.CERTAIN_TRUE)
            out[hi < -slack] = int(Status.CERTAIN_FALSE)
        elif self.relation is Relation.GT:
            out[lo > 0.0] = int(Status.CERTAIN_TRUE)
            out[hi <= -slack] = int(Status.CERTAIN_FALSE)
        else:  # EQ
            degenerate = (lo == 0.0) & (hi == 0.0)
            out[degenerate] = int(Status.CERTAIN_TRUE)
            out[(lo > slack) | (hi < -slack)] = int(Status.CERTAIN_FALSE)
        return out

    def status_on_box(
        self, box: Box, variable_names: Sequence[str], slack: float = 0.0
    ) -> Status:
        """Three-valued verdict over a single box."""
        tape = self.compiled(variable_names)
        bounds = box.to_array()
        lo, hi = tape.eval_boxes(bounds[None, :, 0], bounds[None, :, 1])
        return Status(int(self.status_from_bounds(lo, hi, slack)[0]))

    def satisfied_at(
        self, point: Sequence[float], variable_names: Sequence[str], slack: float = 0.0
    ) -> bool:
        """Numeric check at a point, relaxed outward by ``slack``."""
        value = self.compiled(variable_names).eval_point(point)
        if self.relation is Relation.LE:
            return value <= slack
        if self.relation is Relation.LT:
            return value < slack
        if self.relation is Relation.GE:
            return value >= -slack
        if self.relation is Relation.GT:
            return value > -slack
        return abs(value) <= slack

    def negated(self) -> "Constraint":
        """Constraint holding exactly where this one fails.

        Equalities have no single-atom negation; callers should split
        ``expr != 0`` into a disjunction themselves.
        """
        if self.relation is Relation.EQ:
            raise ExpressionError("negation of an equality is a disjunction")
        label = f"not({self.name})" if self.name else ""
        return Constraint(self.expr, self.relation.negate(), label)

    def __repr__(self) -> str:
        label = f" '{self.name}'" if self.name else ""
        return f"<Constraint{label}: {to_infix(self.expr, 60)} {self.relation.value} 0>"


def le(expr: "Expr | float", bound: "Expr | float" = 0.0, name: str = "") -> Constraint:
    """``expr <= bound``."""
    return Constraint(as_expr(expr) - as_expr(bound), Relation.LE, name)


def lt(expr: "Expr | float", bound: "Expr | float" = 0.0, name: str = "") -> Constraint:
    """``expr < bound``."""
    return Constraint(as_expr(expr) - as_expr(bound), Relation.LT, name)


def ge(expr: "Expr | float", bound: "Expr | float" = 0.0, name: str = "") -> Constraint:
    """``expr >= bound``."""
    return Constraint(as_expr(expr) - as_expr(bound), Relation.GE, name)


def gt(expr: "Expr | float", bound: "Expr | float" = 0.0, name: str = "") -> Constraint:
    """``expr > bound``."""
    return Constraint(as_expr(expr) - as_expr(bound), Relation.GT, name)


def eq(expr: "Expr | float", bound: "Expr | float" = 0.0, name: str = "") -> Constraint:
    """``expr == bound`` (decided up to δ)."""
    return Constraint(as_expr(expr) - as_expr(bound), Relation.EQ, name)
