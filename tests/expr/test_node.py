"""Tests for AST nodes, operator overloading, and graph walkers."""

from __future__ import annotations

import pytest

from repro.errors import ExpressionError
from repro.expr import (
    Add,
    Const,
    Div,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    as_expr,
    count_nodes,
    postorder,
    sum_expr,
    var,
    variables_of,
)


class TestLeaves:
    def test_const(self):
        c = Const(3)
        assert c.value == 3.0
        assert isinstance(c.value, float)

    def test_var(self):
        v = Var("x")
        assert v.name == "x"

    def test_var_bad_name(self):
        with pytest.raises(ExpressionError):
            Var("")
        with pytest.raises(ExpressionError):
            Var(42)  # type: ignore[arg-type]

    def test_leaves_have_no_children(self):
        assert Const(1).children() == ()
        assert Var("x").children() == ()

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Const(1).value = 2.0
        with pytest.raises(AttributeError):
            Var("x").name = "y"


class TestOperators:
    def test_add_builds_node(self):
        e = var("x") + var("y")
        assert isinstance(e, Add)

    def test_scalar_coercion_left_right(self):
        assert isinstance(var("x") + 1, Add)
        assert isinstance(1 + var("x"), Add)
        assert isinstance(2.5 * var("x"), Mul)
        assert isinstance(var("x") / 2, Div)
        assert isinstance(3 - var("x"), Sub)
        assert isinstance(2 / var("x"), Div)

    def test_neg(self):
        assert isinstance(-var("x"), Neg)

    def test_pow_int_only(self):
        assert isinstance(var("x") ** 3, Pow)
        with pytest.raises(ExpressionError):
            Pow(var("x"), 1.5)  # type: ignore[arg-type]
        with pytest.raises(ExpressionError):
            Pow(var("x"), True)  # type: ignore[arg-type]

    def test_unary_unknown_op(self):
        with pytest.raises(ExpressionError):
            Unary("frobnicate", var("x"))

    def test_binary_requires_expr(self):
        with pytest.raises(ExpressionError):
            Add(var("x"), 1.0)  # type: ignore[arg-type]


class TestAsExpr:
    def test_passthrough(self):
        v = var("x")
        assert as_expr(v) is v

    def test_numbers(self):
        assert as_expr(2).value == 2.0
        assert as_expr(2.5).value == 2.5

    def test_bool_rejected(self):
        with pytest.raises(ExpressionError):
            as_expr(True)

    def test_garbage_rejected(self):
        with pytest.raises(ExpressionError):
            as_expr("x")  # type: ignore[arg-type]


class TestWalkers:
    def test_postorder_children_first(self):
        x, y = var("x"), var("y")
        e = x * y + x
        order = postorder(e)
        positions = {id(node): i for i, node in enumerate(order)}
        assert positions[id(x)] < positions[id(e)]
        assert positions[id(y)] < positions[id(e)]
        assert order[-1] is e

    def test_postorder_dedupes_shared(self):
        x = var("x")
        shared = x * x
        e = shared + shared
        order = postorder(e)
        assert sum(1 for node in order if node is shared) == 1

    def test_variables_of(self):
        e = var("b") + var("a") * var("b")
        assert variables_of(e) == ["a", "b"]

    def test_count_nodes(self):
        x = var("x")
        assert count_nodes(x) == 1
        assert count_nodes(x + x) == 2  # shared leaf counted once

    def test_deep_expression_no_recursion_error(self):
        # A 5000-node chain must not hit the recursion limit.
        e = var("x")
        for _ in range(5000):
            e = e + 1.0
        assert count_nodes(e) > 5000

    def test_sum_expr_balanced_depth(self):
        terms = [var(f"x{i}") for i in range(1024)]
        e = sum_expr(terms)

        def depth(node):
            stack = [(node, 1)]
            best = 1
            while stack:
                n, d = stack.pop()
                best = max(best, d)
                for c in n.children():
                    stack.append((c, d + 1))
            return best

        assert depth(e) <= 12  # log2(1024) + 1

    def test_sum_expr_empty(self):
        e = sum_expr([])
        assert isinstance(e, Const)
        assert e.value == 0.0
