"""Solver verdicts and result records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..intervals import Box

__all__ = ["Verdict", "SolverStats", "SmtResult"]


class Verdict(enum.Enum):
    """Outcome of a δ-decision query, mirroring dReal semantics.

    * ``UNSAT`` — proof: no point in the search region satisfies the
      formula.  Sound under outward-rounded interval arithmetic.
    * ``DELTA_SAT`` — a box of width at most δ (or a whole sub-box) could
      not be refuted; its midpoint is returned as a witness.  The
      δ-weakened formula is satisfiable there.
    * ``UNKNOWN`` — budget exhausted before reaching a verdict.
    """

    UNSAT = "unsat"
    DELTA_SAT = "delta-sat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters accumulated during a branch-and-prune run."""

    boxes_processed: int = 0
    boxes_pruned: int = 0
    boxes_split: int = 0
    boxes_certain: int = 0
    contractions: int = 0
    max_depth: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        """Accumulate another run's counters into this record."""
        self.boxes_processed += other.boxes_processed
        self.boxes_pruned += other.boxes_pruned
        self.boxes_split += other.boxes_split
        self.boxes_certain += other.boxes_certain
        self.contractions += other.contractions
        self.max_depth = max(self.max_depth, other.max_depth)
        self.elapsed_seconds += other.elapsed_seconds


@dataclass
class SmtResult:
    """Verdict plus witness and statistics.

    ``witness`` is a point (box midpoint) for ``DELTA_SAT`` verdicts and
    None otherwise; ``witness_box`` is the surviving box around it.
    ``witness_validated`` records whether the witness point numerically
    satisfies every constraint relaxed by δ.
    """

    verdict: Verdict
    delta: float
    witness: np.ndarray | None = None
    witness_box: Box | None = None
    witness_validated: bool = False
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_unsat(self) -> bool:
        """True for a proof of emptiness."""
        return self.verdict is Verdict.UNSAT

    @property
    def is_delta_sat(self) -> bool:
        """True when a δ-witness was found."""
        return self.verdict is Verdict.DELTA_SAT

    def __str__(self) -> str:
        if self.is_delta_sat and self.witness is not None:
            where = np.array2string(self.witness, precision=6)
            return f"{self.verdict.value} at {where} (delta={self.delta:g})"
        return f"{self.verdict.value} (delta={self.delta:g})"
