"""Policy-search harness tests (kept small: CMA-ES itself is tested separately)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import StraightLinePath
from repro.errors import TrainingError
from repro.learning import (
    PolicySearchConfig,
    policy_search,
    proportional_controller_network,
    tracking_cost,
    train_paper_controller,
)
from repro.nn import controller_network


SMALL = PolicySearchConfig(
    steps=80, dt=0.2, population_size=8, max_iterations=6, seed=0
)


class TestPolicySearch:
    def test_improves_over_initial(self):
        rng = np.random.default_rng(4)
        net = controller_network(4, rng=rng)
        path = StraightLinePath(0.0)
        start = [1.0, 0.0, 0.2]
        initial = tracking_cost(net, path, start, SMALL.steps, SMALL.dt)
        result = policy_search(net, path, start, SMALL)
        assert result.best_cost <= initial
        final = tracking_cost(result.network, path, start, SMALL.steps, SMALL.dt)
        assert final == pytest.approx(result.best_cost, rel=1e-9)

    def test_input_not_mutated(self):
        rng = np.random.default_rng(4)
        net = controller_network(4, rng=rng)
        before = net.get_parameters().copy()
        policy_search(net, StraightLinePath(0.0), [1.0, 0.0, 0.0], SMALL)
        assert np.allclose(net.get_parameters(), before)

    def test_shape_validation(self):
        bad = controller_network(4, inputs=3)
        with pytest.raises(TrainingError):
            policy_search(bad, StraightLinePath(0.0), [0.0, 0.0, 0.0], SMALL)

    def test_snapshots_collected(self):
        rng = np.random.default_rng(4)
        net = controller_network(4, rng=rng)
        config = PolicySearchConfig(
            steps=60, dt=0.2, population_size=8, max_iterations=5, seed=0,
            snapshot_iterations=(2, 4),
        )
        result = policy_search(net, StraightLinePath(0.0), [1.0, 0.0, 0.0], config)
        assert set(result.snapshots) == {2, 4}
        assert result.initial_network is not None

    def test_progress_callback(self):
        rng = np.random.default_rng(4)
        net = controller_network(4, rng=rng)
        calls = []
        policy_search(
            net,
            StraightLinePath(0.0),
            [1.0, 0.0, 0.0],
            SMALL,
            progress=lambda i, c: calls.append((i, c)),
        )
        assert len(calls) == SMALL.max_iterations
        assert calls[0][0] == 1


class TestTrainPaperController:
    def test_end_to_end_small(self):
        result = train_paper_controller(
            hidden_neurons=4,
            seed=1,
            population_size=8,
            max_iterations=5,
            steps=100,
            dt=0.5,
        )
        assert result.network.hidden_sizes == [4]
        assert result.cmaes.iterations == 5
        assert len(result.cmaes.history) == 5
