"""The ``parallel-smt`` engine's checker: thread-pool subproblem dispatch.

The barrier conditions decompose into independent box subproblems (the
``D \\ X0`` cover of check (5), the per-facet regions of check (7)), and
:func:`repro.smt.check_exists_on_boxes` walks them serially.  The
:class:`ParallelSmtBackend` dispatches each subproblem to its own
:class:`~repro.smt.IcpSolver` on a thread pool — the branch-and-prune
inner loop spends its time in vectorized NumPy evaluation of the
constraint tapes, which releases the GIL, so independent subproblems
overlap on multi-core hosts.

Verdict combination matches the serial semantics exactly, including
which witness is reported: the DELTA_SAT subproblem with the **lowest
index** wins, not whichever thread finishes first, so the
counterexample-guided synthesis loop stays deterministic.  Only the
merged solver statistics differ — the serial path stops accumulating at
the first hit, while the parallel path has already paid for every
subproblem and reports all of it.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from ..smt import IcpConfig, SmtResult, Subproblem
from ..smt.icp import IcpSolver
from ..smt.result import SolverStats, Verdict

__all__ = ["ParallelSmtBackend"]


class ParallelSmtBackend:
    """Check independent subproblems concurrently on a thread pool.

    Parameters
    ----------
    max_workers:
        Thread-pool width cap; None picks ``min(32, cpu_count + 4)``
        (the executor default).  Single-subproblem queries skip the pool
        entirely.
    """

    name = "parallel-smt"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def check(
        self,
        subproblems: Sequence[Subproblem],
        names: Sequence[str],
        config: IcpConfig | None = None,
    ) -> SmtResult:
        solver = IcpSolver(config)
        delta = solver.config.delta
        if not subproblems:
            return SmtResult(Verdict.UNSAT, delta)
        if len(subproblems) == 1:
            sub = subproblems[0]
            return solver.solve(sub.constraints, sub.region, names)

        workers = self.max_workers or min(32, (os.cpu_count() or 1) + 4)
        workers = min(workers, len(subproblems))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda sub: solver.solve(sub.constraints, sub.region, names),
                    subproblems,
                )
            )

        merged = SolverStats()
        for result in results:
            merged.merge(result.stats)
        for result in results:
            if result.verdict is Verdict.DELTA_SAT:
                result.stats = merged
                return result
        if any(result.verdict is Verdict.UNKNOWN for result in results):
            return SmtResult(Verdict.UNKNOWN, delta, stats=merged)
        return SmtResult(Verdict.UNSAT, delta, stats=merged)
