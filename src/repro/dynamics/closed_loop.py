"""Generic plant ⊕ NN-controller composition (Section 2 of the paper).

A :class:`Plant` is the open-loop model of Eqs. (1)–(2): a symbolic
vector field over state and input variables, plus an output map
``y = g(x)``.  :func:`compose` closes the loop with a feedforward
network ``u = h(y)`` (Eq. 3) by substituting the network's symbolic
outputs into the field, producing the autonomous system of Eq. (4) that
the barrier machinery verifies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..expr import (
    Expr,
    compile_expression,
    substitute,
    var,
)
from ..nn import FeedforwardNetwork
from .system import ContinuousSystem

__all__ = ["Plant", "compose"]


class Plant:
    """Open-loop dynamics ``x' = f_p(x, u)`` with outputs ``y = g(x)``.

    Parameters
    ----------
    state_names:
        Names of the plant states ``x``.
    input_names:
        Names of the control inputs ``u`` as they appear in the field
        expressions.
    field_exprs:
        One expression per state derivative, over states and inputs.
    output_exprs:
        The measurement map ``g``; defaults to full-state output.
    name:
        Label for reports.
    """

    def __init__(
        self,
        state_names: Sequence[str],
        input_names: Sequence[str],
        field_exprs: Sequence[Expr],
        output_exprs: Sequence[Expr] | None = None,
        name: str = "plant",
    ):
        self.state_names = list(state_names)
        self.input_names = list(input_names)
        self.field_exprs = list(field_exprs)
        self.name = name
        if output_exprs is None:
            output_exprs = [var(n) for n in self.state_names]
        self.output_exprs = list(output_exprs)
        if len(self.field_exprs) != len(self.state_names):
            raise ReproError(
                f"{len(self.field_exprs)} field expressions for "
                f"{len(self.state_names)} states"
            )
        if not self.state_names or not self.input_names:
            raise ReproError("plants need at least one state and one input")
        overlap = set(self.state_names) & set(self.input_names)
        if overlap:
            raise ReproError(f"state/input name collision: {sorted(overlap)}")

    @property
    def state_dimension(self) -> int:
        """Number of states."""
        return len(self.state_names)

    @property
    def input_dimension(self) -> int:
        """Number of control inputs."""
        return len(self.input_names)

    @property
    def output_dimension(self) -> int:
        """Number of measured outputs."""
        return len(self.output_exprs)

    def __repr__(self) -> str:
        return (
            f"<Plant '{self.name}' states={self.state_names} "
            f"inputs={self.input_names}>"
        )


def compose(plant: Plant, network: FeedforwardNetwork, name: str | None = None) -> ContinuousSystem:
    """Close the loop: substitute ``u = h(g(x))`` into the plant field.

    Returns the autonomous :class:`ContinuousSystem` of Eq. (4).  The
    numeric override evaluates ``g`` through compiled tapes, runs the
    network's matrix forward pass, and feeds the result to the plant
    field tapes — avoiding the symbolic expression on the hot path while
    the symbolic field (used by the solver) contains the exact same
    composition.
    """
    if network.input_dimension != plant.output_dimension:
        raise ReproError(
            f"network expects {network.input_dimension} inputs but plant "
            f"outputs {plant.output_dimension} signals"
        )
    if network.output_dimension != plant.input_dimension:
        raise ReproError(
            f"network produces {network.output_dimension} outputs but plant "
            f"takes {plant.input_dimension} inputs"
        )

    u_exprs = network.symbolic_outputs(plant.output_exprs)
    bindings = dict(zip(plant.input_names, u_exprs))
    closed_exprs = [substitute(expr, bindings) for expr in plant.field_exprs]

    # Numeric fast path: tapes for g and for f_p over (states + inputs).
    output_tapes = [
        compile_expression(expr, plant.state_names) for expr in plant.output_exprs
    ]
    extended_names = plant.state_names + plant.input_names
    field_tapes = [
        compile_expression(expr, extended_names) for expr in plant.field_exprs
    ]

    def numeric(x: np.ndarray) -> np.ndarray:
        point = x[None, :]
        y = np.array([float(t.eval_points(point)[0]) for t in output_tapes])
        u = np.atleast_1d(network.forward(y))
        extended = np.concatenate([x, u])[None, :]
        return np.array([float(t.eval_points(extended)[0]) for t in field_tapes])

    def numeric_batch(states: np.ndarray) -> np.ndarray:
        # Same pipeline, one array pass per tape: y for all states, one
        # matrix forward pass, then the plant field on (states | u).
        y = np.stack([t.eval_points(states) for t in output_tapes], axis=1)
        u = np.atleast_2d(network.forward(y))
        extended = np.hstack([states, u])
        return np.stack([t.eval_points(extended) for t in field_tapes], axis=1)

    return ContinuousSystem(
        state_names=plant.state_names,
        field_exprs=closed_exprs,
        numeric_override=numeric,
        numeric_batch_override=numeric_batch,
        name=name or f"{plant.name}+nn",
    )
