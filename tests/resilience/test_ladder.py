"""The engine degradation ladder: paths, stepping, parity."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, WorkerDied
from repro.resilience.ladder import (
    degradation_path,
    fallback_engine,
    run_with_degradation,
)
from repro.resilience.supervisor import clear_incidents, incidents


@pytest.fixture(autouse=True)
def _clean_incidents():
    clear_incidents()
    yield
    clear_incidents()


class TestPaths:
    def test_sharded_walks_to_native(self):
        assert degradation_path("sharded-icp") == (
            "sharded-icp",
            "batched-icp",
            "native",
        )

    def test_portfolio_degrades_to_batched(self):
        assert fallback_engine("portfolio") == "batched-icp"

    def test_native_is_the_bottom(self):
        assert fallback_engine("native") is None
        assert degradation_path("native") == ("native",)


class TestRunWithDegradation:
    def test_no_failure_no_degradation(self):
        calls = []
        result = run_with_degradation(lambda e: calls.append(e) or e, "sharded-icp")
        assert result == "sharded-icp"
        assert calls == ["sharded-icp"]
        assert incidents("engine.degrade") == []

    def test_machinery_loss_steps_down_and_records(self):
        def fn(engine):
            if engine == "sharded-icp":
                raise WorkerDied("shard 1 died")
            return engine

        assert run_with_degradation(fn, "sharded-icp") == "batched-icp"
        log = incidents("engine.degrade")
        assert len(log) == 1
        assert "sharded-icp -> batched-icp" in log[0]["detail"]

    def test_walks_all_the_way_down(self):
        def fn(engine):
            if engine != "native":
                raise WorkerDied(engine)
            return engine

        assert run_with_degradation(fn, "sharded-icp") == "native"
        assert len(incidents("engine.degrade")) == 2

    def test_bottom_rung_loss_propagates(self):
        def fn(engine):
            raise WorkerDied("nothing left")

        with pytest.raises(WorkerDied):
            run_with_degradation(fn, "native")

    def test_non_machinery_errors_propagate_unchanged(self):
        def fn(engine):
            raise ReproError("the problem itself is bad")

        with pytest.raises(ReproError, match="the problem itself"):
            run_with_degradation(fn, "sharded-icp")
        assert incidents("engine.degrade") == []


class TestEndToEndParity:
    def test_degraded_artifact_identical_to_fallback_run(self):
        """A run that loses its engine machinery re-executes on the next
        rung and matches that engine's direct output exactly (modulo the
        wall-clock timing fields, which vary between any two runs)."""
        import dataclasses

        from repro import api
        from repro.api.family import get_family
        from repro.api.runner import derive_scenario_seed
        from repro.corpus.fuzz import VOLATILE_FIELDS

        def stripped(artifact):
            data = artifact.to_dict()
            for volatile in VOLATILE_FIELDS:
                data.pop(volatile, None)
            return data

        scenario = get_family("linear").instantiate()
        config = dataclasses.replace(
            scenario.config, seed=derive_scenario_seed(0, scenario.name)
        )
        direct = api.run(scenario, config=config, engine="batched-icp", cache=False)

        attempts = []

        def fn(engine):
            attempts.append(engine)
            if engine == "sharded-icp":
                raise WorkerDied("injected machinery loss")
            return api.run(scenario, config=config, engine=engine, cache=False)

        degraded = run_with_degradation(fn, "sharded-icp")
        assert attempts == ["sharded-icp", "batched-icp"]
        assert stripped(degraded) == stripped(direct)
