"""Simulator driver tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def decay(x):
    return -x


def spiral_out(x):
    return np.array([x[0] - x[1], x[0] + x[1]])


class TestBasics:
    def test_trace_structure(self):
        sim = Simulator(decay)
        trace = sim.simulate(np.array([1.0]), 1.0, 0.1)
        assert trace.times[0] == 0.0
        assert trace.times[-1] == pytest.approx(1.0)
        assert trace.states[-1, 0] == pytest.approx(math.exp(-1.0), rel=1e-6)
        assert not trace.truncated

    def test_bad_initial_state(self):
        with pytest.raises(SimulationError):
            Simulator(decay).simulate(np.zeros((2, 2)), 1.0)

    def test_method_selection(self):
        euler = Simulator(decay, method="euler").simulate(np.array([1.0]), 1.0, 0.01)
        rk4 = Simulator(decay, method="rk4").simulate(np.array([1.0]), 1.0, 0.01)
        exact = math.exp(-1.0)
        assert abs(rk4.final_state[0] - exact) < abs(euler.final_state[0] - exact)

    def test_rk45_method(self):
        trace = Simulator(decay, method="rk45").simulate(np.array([1.0]), 1.0)
        assert trace.final_state[0] == pytest.approx(math.exp(-1.0), rel=1e-6)

    def test_input_recording(self):
        sim = Simulator(decay, input_function=lambda x: np.array([2.0 * x[0]]))
        trace = sim.simulate(np.array([1.0]), 0.5, 0.1)
        assert trace.inputs is not None
        assert trace.inputs.shape == (len(trace), 1)
        assert trace.inputs[0, 0] == pytest.approx(2.0)

    def test_batch(self):
        sim = Simulator(decay)
        traces = sim.simulate_batch(np.array([[1.0], [2.0]]), 0.5, 0.1)
        assert len(traces) == 2
        assert traces[1].initial_state[0] == 2.0


class TestStopsAndGuards:
    def test_stop_condition(self):
        sim = Simulator(spiral_out)
        trace = sim.simulate(
            np.array([0.1, 0.0]),
            20.0,
            0.01,
            stop_condition=lambda s: np.linalg.norm(s) > 1.0,
        )
        assert trace.truncated
        assert trace.duration < 20.0
        # The final state is the first one past the threshold.
        assert np.linalg.norm(trace.final_state) >= 1.0

    def test_blowup_guard(self):
        sim = Simulator(spiral_out, blowup_norm=10.0)
        trace = sim.simulate(np.array([1.0, 0.0]), 50.0, 0.01)
        assert trace.truncated
        assert np.linalg.norm(trace.final_state) > 10.0
        assert np.all(np.isfinite(trace.states))

    def test_blowup_guard_disabled(self):
        # With the guard off, a doubling system runs the full duration
        # (values large but finite).
        sim = Simulator(lambda x: x, blowup_norm=None)
        trace = sim.simulate(np.array([1.0]), 5.0, 0.01)
        assert not trace.truncated
        assert trace.final_state[0] == pytest.approx(math.exp(5.0), rel=1e-4)

    def test_rk45_post_hoc_trim(self):
        sim = Simulator(spiral_out, method="rk45")
        trace = sim.simulate(
            np.array([0.1, 0.0]),
            20.0,
            None,
            stop_condition=lambda s: np.linalg.norm(s) > 1.0,
        )
        assert trace.truncated
        assert np.linalg.norm(trace.final_state) >= 1.0

    def test_nonfinite_truncates(self):
        def nasty(x):
            return np.array([x[0] ** 3 * 1e6])

        sim = Simulator(nasty, blowup_norm=None)
        trace = sim.simulate(np.array([2.0]), 10.0, 0.5)
        assert trace.truncated
        assert np.all(np.isfinite(trace.states))
