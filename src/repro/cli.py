"""Command-line interface: ``python -m repro <command>``.

Commands
--------
verify    run the Figure-1 verification on a controller (hand-built,
          trained on the fly, or loaded from JSON)
train     CMA-ES policy search; optionally save the controller
falsify   simulation-based falsification baseline on the same problem
table1    regenerate Table 1
figure4   regenerate Figure 4's training-evolution metrics
figure5   regenerate Figure 5 (phase portrait, ASCII)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Barrier-certificate verification of NN-controlled CPS "
        "(reproduction of Tuncali et al., DAC 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="verify a controller")
    p_verify.add_argument("--neurons", type=int, default=10)
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument("--delta", type=float, default=1e-3)
    p_verify.add_argument("--gamma", type=float, default=1e-6)
    p_verify.add_argument(
        "--controller", type=str, default="",
        help="JSON file of a saved controller (default: hand-built)",
    )
    p_verify.add_argument(
        "--trained", action="store_true",
        help="train with CMA-ES before verifying",
    )

    p_train = sub.add_parser("train", help="CMA-ES policy search")
    p_train.add_argument("--neurons", type=int, default=10)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--population", type=int, default=24)
    p_train.add_argument("--iterations", type=int, default=30)
    p_train.add_argument("--safe", action="store_true",
                         help="add the simulated safety penalty (future-work mode)")
    p_train.add_argument("--save", type=str, default="")

    p_falsify = sub.add_parser("falsify", help="falsification baseline")
    p_falsify.add_argument("--neurons", type=int, default=10)
    p_falsify.add_argument("--seed", type=int, default=0)
    p_falsify.add_argument("--budget", type=int, default=200)
    p_falsify.add_argument(
        "--method", choices=("random", "cmaes"), default="cmaes"
    )
    p_falsify.add_argument(
        "--unsafe-controller", action="store_true",
        help="flip the controller gains to demo a successful falsification",
    )

    p_table1 = sub.add_parser("table1", help="regenerate Table 1")
    p_table1.add_argument(
        "--widths", type=int, nargs="+", default=None,
        help="hidden-layer widths (default: the paper's 12)",
    )
    p_table1.add_argument("--seeds", type=int, nargs="+", default=[0, 1])

    p_fig4 = sub.add_parser("figure4", help="regenerate Figure 4 metrics")
    p_fig4.add_argument("--neurons", type=int, default=10)
    p_fig4.add_argument("--seed", type=int, default=0)
    p_fig4.add_argument("--population", type=int, default=28)
    p_fig4.add_argument("--iterations", type=int, default=32)

    p_fig5 = sub.add_parser("figure5", help="regenerate Figure 5 (ASCII)")
    p_fig5.add_argument("--neurons", type=int, default=10)
    p_fig5.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_verify(args: argparse.Namespace) -> int:
    from .barrier import SynthesisConfig, verify_system
    from .experiments import case_study_controller, paper_problem
    from .nn import load_network
    from .smt import IcpConfig

    if args.controller:
        network = load_network(args.controller)
    else:
        network = case_study_controller(
            args.neurons, trained=args.trained, seed=args.seed
        )
    problem = paper_problem(network)
    config = SynthesisConfig(
        seed=args.seed, gamma=args.gamma, icp=IcpConfig(delta=args.delta)
    )
    report = verify_system(problem, config=config)
    print(f"status: {report.status.value}")
    print(f"candidate iterations: {report.candidate_iterations}")
    print(
        f"time: LP {report.lp_seconds:.2f}s, SMT {report.query_seconds:.2f}s, "
        f"other {report.other_seconds:.2f}s, total {report.total_seconds:.2f}s"
    )
    if report.verified:
        print(f"barrier level: {report.level:.6g}")
        return 0
    return 1


def _cmd_train(args: argparse.Namespace) -> int:
    from .learning import train_paper_controller
    from .learning.safe_train import train_safe_controller
    from .nn import save_network

    if args.safe:
        result = train_safe_controller(
            hidden_neurons=args.neurons,
            seed=args.seed,
            population_size=args.population,
            max_iterations=args.iterations,
        )
        network = result.network
        print(
            f"tracking cost {result.tracking_cost:.1f}, "
            f"safety penalty {result.safety_penalty:.1f}, "
            f"verified: {result.verified}"
        )
    else:
        outcome = train_paper_controller(
            hidden_neurons=args.neurons,
            seed=args.seed,
            population_size=args.population,
            max_iterations=args.iterations,
        )
        network = outcome.network
        history = outcome.cmaes.history
        print(f"cost J: {history[0]:.1f} -> {history[-1]:.1f}")
    if args.save:
        save_network(network, args.save)
        print(f"saved to {args.save}")
    return 0


def _cmd_falsify(args: argparse.Namespace) -> int:
    from .barrier.falsify import falsify_cmaes, falsify_random
    from .experiments import paper_problem
    from .learning import proportional_controller_network

    gain = -1.0 if args.unsafe_controller else 1.0
    network = proportional_controller_network(
        args.neurons, d_gain=0.6 * gain, theta_gain=2.0 * gain
    )
    problem = paper_problem(network)
    falsifier = falsify_cmaes if args.method == "cmaes" else falsify_random
    result = falsifier(
        problem.system,
        problem.initial_set,
        problem.unsafe_set,
        budget=args.budget,
        seed=args.seed,
    )
    print(result)
    if result.falsified:
        print(f"counterexample initial state: {result.best_initial_state}")
        return 0
    print("no counterexample found — run `repro verify` for an actual proof")
    return 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import PAPER_NEURON_COUNTS, format_table1, run_table1

    widths = tuple(args.widths) if args.widths else PAPER_NEURON_COUNTS
    rows = run_table1(neuron_counts=widths, seeds=tuple(args.seeds))
    print(format_table1(rows))
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .experiments import format_figure4, run_figure4

    data = run_figure4(
        hidden_neurons=args.neurons,
        seed=args.seed,
        population_size=args.population,
        max_iterations=args.iterations,
        snapshot_iterations=(5, args.iterations // 2),
    )
    print(format_figure4(data))
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from .experiments import format_figure5, render_ascii, run_figure5

    data = run_figure5(hidden_neurons=args.neurons, seed=args.seed)
    print(format_figure5(data))
    print()
    print(render_ascii(data))
    return 0


_COMMANDS = {
    "verify": _cmd_verify,
    "train": _cmd_train,
    "falsify": _cmd_falsify,
    "table1": _cmd_table1,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
