"""The ``portfolio`` engine: external solvers raced against batched ICP.

Every δ-SAT check is submitted simultaneously to the in-house ICP lane
(:class:`~repro.engine.sharded.ShardedSmtBackend` — the batched solver,
optionally fanned across forked workers when ``REPRO_SHARDS`` or
``IcpConfig.shards`` asks for it) and to every available
external solver that supports the query's operator set.  The first
definitive verdict (UNSAT or DELTA_SAT) wins; the losers are cancelled
— external subprocesses are killed, the native search stops at its next
frontier batch via the cooperative ``should_stop`` hook.

Two contracts matter more than the racing:

* **Exact degrade.**  With no external binaries installed (or none that
  support the query), ``check`` delegates *verbatim* to the batched
  backend — same call, no cancel hook — so verdicts, witnesses, stats
  and therefore cached run artifacts are byte-identical to
  ``--engine batched-icp``.  The acceptance tests pin this on all seven
  builtin scenarios.
* **Attributable verdicts.**  When an external solver decides a check,
  its identity + version is recorded (thread-locally, per run) so
  :mod:`repro.api` can fold the solver fingerprint into the
  :mod:`repro.store` run key — an artifact produced by z3 never
  collides with a pure-ICP one.

When native wins a race it may have been helped by externals losing
(nothing changes) — but note a race winner is whichever *finishes
first*, so with externals installed the engine is intentionally
nondeterministic in *which* sound verdict it returns, never in whether
the verdict is sound.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Sequence

from ..errors import SolverError
from ..smt import IcpConfig, SmtResult, Subproblem
from ..smt.result import Verdict
from .backends import (
    DEFAULT_TIMEOUT,
    ExternalSolver,
    external_solvers,
    solver_breaker,
)
from .smtlib import SmtLibQuery, emit_query

__all__ = ["PortfolioSmtBackend", "effective_timeout", "solver_fingerprint"]

_DEFINITIVE = (Verdict.UNSAT, Verdict.DELTA_SAT)


def effective_timeout(config: IcpConfig) -> float:
    """External-solve wall-clock budget for one check.

    ``solver_timeout`` wins; otherwise the ICP ``time_limit`` doubles as
    the budget (racers should not outlive the native search by much);
    otherwise :data:`~repro.solvers.backends.DEFAULT_TIMEOUT`.
    """
    if config.solver_timeout is not None:
        return config.solver_timeout
    if config.time_limit is not None:
        return config.time_limit
    return DEFAULT_TIMEOUT


def solver_fingerprint(
    solvers: "Sequence[ExternalSolver] | None" = None,
) -> str:
    """Identity string of every *available* external solver.

    Sorted ``name-version`` entries joined with ``;`` — e.g.
    ``"dreal-4.21.06.2;z3-4.13.0"`` — or ``""`` when nothing is
    installed.  :mod:`repro.api` mixes this into the run key whenever a
    run actually used an external verdict.
    """
    pool = external_solvers() if solvers is None else solvers
    entries = []
    for solver in pool:
        info = solver.probe()
        if not info.available:
            continue
        # An open circuit is part of the portfolio's effective identity:
        # a verdict decided while a flapping solver was being skipped
        # must not share a cache key with one decided by the full pool.
        suffix = (
            "!open"
            if solver_breaker(info.name).state == "open"
            else ""
        )
        entries.append(f"{info.name}-{info.version}{suffix}")
    return ";".join(sorted(entries))


class PortfolioSmtBackend:
    """SMT backend racing external solvers against the batched ICP.

    Parameters
    ----------
    solvers:
        Adapter pool; None means the live registry
        (:func:`repro.solvers.backends.external_solvers`) is consulted
        at every check, so registering a solver takes effect immediately.
    native:
        In-house backend to race (and degrade to).  Must accept
        ``check(..., should_stop=)``; defaults to
        :class:`~repro.engine.sharded.ShardedSmtBackend`, which at the
        default single shard computes exactly what
        :class:`~repro.engine.batched.BatchedSmtBackend` does — and
        with ``REPRO_SHARDS``/``IcpConfig.shards`` set runs the same
        search on forked workers, still bit-identical.
    """

    name = "portfolio"

    def __init__(
        self,
        solvers: "Sequence[ExternalSolver] | None" = None,
        native=None,
    ):
        self._solvers = tuple(solvers) if solvers is not None else None
        self._native = native
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Run-scoped external-usage accounting (thread-local: the service
    # layer checks many runs concurrently through one shared backend).
    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Reset the external-usage record for the calling thread's run."""
        self._local.used = []

    def external_solvers_used(self) -> tuple[str, ...]:
        """``name-version`` of solvers whose verdicts decided checks
        since :meth:`begin_run` (deduplicated, first-use order)."""
        return tuple(dict.fromkeys(getattr(self._local, "used", ())))

    def solver_fingerprint(self) -> str:
        """Identity of this backend's *available* external solvers.

        :mod:`repro.api` folds this into the run key whenever
        :meth:`external_solvers_used` is non-empty after a run.
        """
        return solver_fingerprint(self._pool())

    # ------------------------------------------------------------------
    # Introspection for `repro engines --json` / `repro solvers`
    # ------------------------------------------------------------------
    def availability(self) -> tuple[bool, str]:
        """Engine availability: always usable, reason says at what level.

        The portfolio never *fails* to load — with zero external
        binaries it silently becomes ``batched-icp`` — so ``available``
        is True and the reason spells out which racers are live.
        """
        infos = [solver.probe() for solver in self._pool()]
        ready = [i for i in infos if i.available]
        if ready:
            racers = ", ".join(f"{i.name} {i.version}" for i in ready)
            return True, f"racing {racers} against batched-icp"
        missing = "; ".join(f"{i.name}: {i.reason}" for i in infos)
        return True, f"no external solvers ({missing}); batched-icp only"

    def _pool(self) -> "tuple[ExternalSolver, ...]":
        if self._solvers is not None:
            return self._solvers
        return external_solvers()

    def _native_backend(self):
        native = self._native
        if native is None:
            from ..engine.sharded import ShardedSmtBackend  # avoid import cycle

            native = self._native = ShardedSmtBackend()
        return native

    # ------------------------------------------------------------------
    # The check itself
    # ------------------------------------------------------------------
    def check(
        self,
        subproblems: Sequence[Subproblem],
        names: Sequence[str],
        config: "IcpConfig | None" = None,
    ) -> SmtResult:
        """Race the query; degrade to the batched backend when alone.

        The degrade path is the *identical* call ``batched-icp`` makes —
        no cancel hook, no wrapper — which is what keeps artifacts
        byte-identical without external binaries.
        """
        config = config or IcpConfig()
        native = self._native_backend()
        if not subproblems:
            return native.check(subproblems, names, config)
        runnable: list[ExternalSolver] = [
            solver for solver in self._pool() if solver.probe().available
        ]
        query: "SmtLibQuery | None" = None
        if runnable:
            try:
                query = emit_query(subproblems, names, config.delta)
            except SolverError:
                runnable = []
            else:
                runnable = [s for s in runnable if s.supports(query.ops)]
                # Circuit-breaker gate, last so allow()'s half-open
                # probe slot is only claimed by a solver that will
                # actually race (and therefore report an outcome).
                admitted = []
                for solver in runnable:
                    if solver_breaker(solver.name).allow():
                        admitted.append(solver)
                    else:
                        from ..resilience.supervisor import record_incident

                        record_incident(
                            "breaker.skip",
                            f"portfolio skipped {solver.name} (circuit open)",
                        )
                runnable = admitted
        if not runnable or query is None:
            return native.check(subproblems, names, config)
        return self._race(native, runnable, query, subproblems, names, config)

    def _race(
        self,
        native,
        runnable: "list[ExternalSolver]",
        query: SmtLibQuery,
        subproblems: Sequence[Subproblem],
        names: Sequence[str],
        config: IcpConfig,
    ) -> SmtResult:
        timeout = effective_timeout(config)
        cancel = threading.Event()
        native_result: "SmtResult | None" = None
        native_error: "BaseException | None" = None
        winner: "tuple[ExternalSolver | None, SmtResult] | None" = None
        with ThreadPoolExecutor(
            max_workers=1 + len(runnable), thread_name_prefix="portfolio"
        ) as pool:
            futures = {
                pool.submit(
                    native.check,
                    subproblems,
                    names,
                    config,
                    should_stop=cancel.is_set,
                ): None
            }
            for solver in runnable:
                futures[
                    pool.submit(self._external_check, solver, query, timeout, cancel)
                ] = solver
            pending = set(futures)
            while pending and winner is None:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    solver = futures[future]
                    try:
                        result = future.result()
                    except BaseException as exc:  # noqa: BLE001 - rethrown below
                        if solver is None:
                            native_error = exc
                        continue
                    if solver is None:
                        native_result = result
                    if (
                        winner is None
                        and result is not None
                        and result.verdict in _DEFINITIVE
                    ):
                        winner = (solver, result)
            # Stop all losers before the executor join: subprocesses are
            # killed via `cancel`, the native search exits at its next
            # frontier poll.
            cancel.set()
        if winner is not None:
            solver, result = winner
            if solver is None:
                return result  # native verdict, untouched
            info = solver.probe()
            used = getattr(self._local, "used", None)
            if used is not None:
                used.append(f"{info.name}-{info.version}")
            return result
        if native_error is not None:
            raise native_error
        if native_result is not None:
            return native_result
        return SmtResult(Verdict.UNKNOWN, config.delta)

    @staticmethod
    def _external_check(
        solver: ExternalSolver,
        query: SmtLibQuery,
        timeout: float,
        cancel: threading.Event,
    ) -> "SmtResult | None":
        """One racer: None on any solver-side failure (never fatal)."""
        try:
            return solver.solve(query, timeout=timeout, cancel=cancel)
        except SolverError:
            return None
