"""End-to-end synthesis-loop tests (Figure 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.barrier import (
    PolynomialTemplate,
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    SynthesisStatus,
    VerificationProblem,
    verify_system,
)
from repro.dynamics import error_dynamics_system, stable_linear_system
from repro.errors import SynthesisError
from repro.learning import proportional_controller_network
from repro.smt import IcpConfig


@pytest.fixture
def linear_problem():
    system = stable_linear_system(np.array([[-0.5, 1.0], [-1.0, -0.5]]))
    return VerificationProblem(
        system,
        Rectangle([-0.4, -0.4], [0.4, 0.4]),
        RectangleComplement(Rectangle([-2.0, -2.0], [2.0, 2.0])),
    )


@pytest.fixture
def paper_problem_small(small_system, paper_sets):
    x0, unsafe, _ = paper_sets
    return VerificationProblem(small_system, x0, unsafe)


class TestConfigValidation:
    def test_gamma_positive(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(gamma=0.0)

    def test_traces_positive(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(num_seed_traces=0)

    def test_level_margin_range(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(level_margin=1.5)
        with pytest.raises(SynthesisError):
            SynthesisConfig(level_margin=0.0)


class TestLinearSystem:
    def test_verifies(self, linear_problem):
        report = verify_system(linear_problem, config=SynthesisConfig(seed=0))
        assert report.status is SynthesisStatus.VERIFIED
        assert report.verified
        assert report.certificate is not None
        assert report.level is not None
        assert report.candidate_iterations >= 1

    def test_certificate_separates_sets(self, linear_problem):
        report = verify_system(linear_problem, config=SynthesisConfig(seed=0))
        cert = report.certificate
        # X0 corners inside; unsafe boundary outside.
        for corner in linear_problem.initial_set.vertices():
            assert cert.level_set_contains(corner)
        for corner in linear_problem.unsafe_set.safe_rectangle.vertices():
            assert not cert.level_set_contains(corner * 1.001)

    def test_independent_recheck(self, linear_problem):
        report = verify_system(linear_problem, config=SynthesisConfig(seed=0))
        check = report.certificate.verify(IcpConfig(delta=1e-3))
        assert check.all_unsat

    def test_timing_fields_populated(self, linear_problem):
        report = verify_system(linear_problem, config=SynthesisConfig(seed=0))
        assert report.total_seconds > 0.0
        assert report.lp_seconds > 0.0
        assert report.query_seconds > 0.0
        assert report.other_seconds >= 0.0
        row = report.table1_row()
        assert row["total_seconds"] == report.total_seconds

    def test_seed_changes_traces_not_outcome(self, linear_problem):
        for seed in (0, 1, 2):
            report = verify_system(linear_problem, config=SynthesisConfig(seed=seed))
            assert report.verified


class TestPaperSystem:
    def test_small_controller_verifies(self, paper_problem_small):
        report = verify_system(paper_problem_small, config=SynthesisConfig(seed=1))
        assert report.verified
        # The paper's shape: very few candidate iterations.
        assert report.candidate_iterations <= 5

    def test_trajectories_stay_in_level_set(self, paper_problem_small):
        report = verify_system(paper_problem_small, config=SynthesisConfig(seed=1))
        cert = report.certificate
        sim = paper_problem_small.system.simulator()
        rng = np.random.default_rng(9)
        starts = paper_problem_small.initial_set.sample(5, rng)
        for x0 in starts:
            trace = sim.simulate(x0, 20.0, 0.05)
            w_along = cert.w_values(trace.states)
            assert w_along.max() <= cert.level + 1e-6

    def test_unsafe_controller_does_not_verify(self, paper_sets):
        """A destabilizing controller (wrong gain signs) must fail."""
        x0, unsafe, _ = paper_sets
        bad = proportional_controller_network(4, d_gain=-0.6, theta_gain=-2.0)
        system = error_dynamics_system(bad)
        problem = VerificationProblem(system, x0, unsafe)
        report = verify_system(
            problem,
            config=SynthesisConfig(seed=0, max_candidate_iterations=4),
        )
        assert report.status is not SynthesisStatus.VERIFIED
        assert report.certificate is None


class TestFailureModes:
    def test_unstable_linear_no_candidate(self):
        system = stable_linear_system(np.array([[0.3, 0.0], [0.0, 0.3]]))
        problem = VerificationProblem(
            system,
            Rectangle([-0.4, -0.4], [0.4, 0.4]),
            RectangleComplement(Rectangle([-2.0, -2.0], [2.0, 2.0])),
        )
        report = verify_system(problem, config=SynthesisConfig(seed=0))
        assert report.status is SynthesisStatus.NO_CANDIDATE
        assert not report.verified

    def test_non_quadratic_template_no_level_set(self, linear_problem):
        report = verify_system(
            linear_problem,
            template=PolynomialTemplate(2, max_degree=4, min_degree=2),
            config=SynthesisConfig(seed=0),
        )
        # Quartic template has no level-set geometry implemented.
        assert report.status is SynthesisStatus.NO_LEVEL_SET

    def test_tiny_budget_inconclusive(self, paper_problem_small):
        config = SynthesisConfig(
            seed=0, icp=IcpConfig(delta=1e-9, max_boxes=5, use_contractor=False)
        )
        report = verify_system(paper_problem_small, config=config)
        assert report.status in (
            SynthesisStatus.INCONCLUSIVE,
            SynthesisStatus.NO_CANDIDATE,
        )

    def test_cex_loop_records_counterexamples(self, paper_sets):
        """A marginally-stable controller takes multiple refinements or
        fails; either way counterexamples/iterations are recorded
        consistently."""
        x0, unsafe, _ = paper_sets
        weak = proportional_controller_network(4, d_gain=0.05, theta_gain=0.1)
        system = error_dynamics_system(weak)
        problem = VerificationProblem(system, x0, unsafe)
        report = verify_system(
            problem, config=SynthesisConfig(seed=0, max_candidate_iterations=3)
        )
        assert len(report.counterexamples) <= report.candidate_iterations
        if report.counterexamples:
            for cex in report.counterexamples:
                assert problem.domain.contains(cex, tol=1e-6)


class TestLyapunovSeeding:
    def test_lyapunov_first_verifies_without_simulation_loop(
        self, paper_problem_small
    ):
        from repro.barrier import SynthesisConfig, verify_system

        report = verify_system(
            paper_problem_small,
            config=SynthesisConfig(seed=0, try_lyapunov_first=True),
        )
        assert report.verified
        # The analytic path skips the LP entirely.
        assert report.lp_seconds == 0.0
        assert report.candidate_iterations == 0
        assert report.certificate.verify().all_unsat

    def test_lyapunov_fallback_on_unstable_linearization(self, paper_sets):
        from repro.barrier import SynthesisConfig, SynthesisStatus, verify_system
        from repro.dynamics import error_dynamics_system
        from repro.learning import proportional_controller_network

        x0, unsafe, _ = paper_sets
        bad = proportional_controller_network(4, d_gain=-0.6, theta_gain=-2.0)
        problem = VerificationProblem(error_dynamics_system(bad), x0, unsafe)
        report = verify_system(
            problem,
            config=SynthesisConfig(
                seed=0, try_lyapunov_first=True, max_candidate_iterations=3
            ),
        )
        # Falls through to the simulation loop and still refuses to verify.
        assert report.status is not SynthesisStatus.VERIFIED
