"""Frontier-wide HC4 vs the scalar contractor, plus edge-case rules.

Two properties anchor the batched contractor:

* **Soundness** — the contracted frontier must contain every true
  solution of the constraint inside the original boxes (checked by
  dense sampling), and a row may be flagged dead only when the box
  really contains no solution.
* **Agreement** — on the same frontier the batched pass prunes the same
  boxes as per-box :func:`repro.smt.contractor.hc4_revise` and contracts
  to (ulp-comparably) the same sub-boxes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import cos, exp, sin, sqrt, tanh, var
from repro.intervals import Box, BoxArray, Interval
from repro.smt import (
    FrontierContractor,
    contract_fixpoint,
    contract_frontier,
    hc4_revise,
)
from repro.smt.constraint import eq, ge, gt, le

RNG = np.random.default_rng(7)
X, Y = var("x"), var("y")
NAMES = ["x", "y"]


def random_frontier(m, scale=3.0):
    lo = RNG.uniform(-scale, scale, (m, 2))
    hi = lo + RNG.exponential(scale / 2.0, (m, 2))
    return BoxArray(lo, hi)


def sample_solutions(constraint, box_lo, box_hi, n=300):
    """Points of the box satisfying the constraint numerically."""
    pts = RNG.uniform(box_lo, box_hi, (n, len(box_lo)))
    tape = constraint.compiled(NAMES)
    vals = tape.eval_points(pts)
    rel = constraint.relation.value
    if rel == "<=":
        keep = vals <= 0
    elif rel == "<":
        keep = vals < 0
    elif rel == ">=":
        keep = vals >= 0
    elif rel == ">":
        keep = vals > 0
    else:
        keep = np.abs(vals) <= 1e-9
    return pts[keep]


CONSTRAINTS = [
    ge(X * X + Y * Y, 1.0),
    le(X * X + Y * Y, 2.0),
    ge(X * Y, 0.5),                      # extended division via Mul backward
    eq(X * Y - 1.0, 0.0),                # through-zero extended division
    le(X ** 2 - Y, 0.0),                 # even pow backward
    ge(X ** 3 + Y, 0.0),                 # odd pow backward
    le(X ** -2 - Y, 0.0),                # negative exponent backward
    ge(sin(X) + cos(Y), 1.2),
    le(tanh(X) - Y, 0.0),
    ge(exp(X) - 2.0 * Y, 0.0),
    ge(sqrt(X + 4.0) - Y, 1.0),
    gt(X / Y, 2.0),                      # Div node, denominator may span 0
    le(2.0 * X + 3.0 * Y - 1.0, 0.0),    # pure const-affine fast paths
]


@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=lambda c: repr(c)[:40])
def test_revise_sound_and_agrees_with_scalar(constraint):
    frontier = random_frontier(40)
    contractor = FrontierContractor(constraint, NAMES)
    contracted, alive = contractor.revise(frontier)

    for i in range(len(frontier)):
        box = frontier.box_at(i)
        scalar = hc4_revise(constraint, box, NAMES)
        sols = sample_solutions(constraint, frontier.lo[i], frontier.hi[i])
        if not alive[i]:
            # dead row: the box must genuinely contain no solution
            assert len(sols) == 0, f"row {i} wrongly pruned"
            assert scalar is None or len(sols) == 0
            continue
        # soundness: every sampled solution survives the contraction
        if len(sols):
            inside = (
                (contracted.lo[i] - 1e-9 <= sols)
                & (sols <= contracted.hi[i] + 1e-9)
            ).all()
            assert inside, f"row {i} lost solutions"
        # agreement: batched and scalar contract to comparable boxes
        if scalar is not None:
            s = scalar.to_array()
            assert np.allclose(contracted.lo[i], s[:, 0], atol=1e-6)
            assert np.allclose(contracted.hi[i], s[:, 1], atol=1e-6)


@pytest.mark.parametrize("constraint", CONSTRAINTS[:8], ids=lambda c: repr(c)[:40])
def test_contract_frontier_matches_fixpoint(constraint):
    frontier = random_frontier(25)
    contractors = [FrontierContractor(constraint, NAMES)]
    contracted, alive = contract_frontier(contractors, frontier, max_rounds=2)
    for i in range(len(frontier)):
        scalar = contract_fixpoint(
            [constraint], frontier.box_at(i), NAMES, max_rounds=2
        )
        if scalar is None:
            sols = sample_solutions(constraint, frontier.lo[i], frontier.hi[i])
            assert not alive[i] or len(sols) == 0
            continue
        if alive[i]:
            s = scalar.to_array()
            assert np.allclose(contracted.lo[i], s[:, 0], atol=1e-6)
            assert np.allclose(contracted.hi[i], s[:, 1], atol=1e-6)


class TestEdgeCases:
    def test_empty_contraction_kills_row(self):
        frontier = BoxArray.from_boxes(
            [
                Box([Interval(0.0, 1.0), Interval(0.0, 1.0)]),   # no solution
                Box([Interval(4.0, 6.0), Interval(0.0, 1.0)]),   # solutions
            ]
        )
        contractor = FrontierContractor(ge(X, 3.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert alive.tolist() == [False, True]
        assert contracted.lo[1, 0] >= 4.0 - 1e-12

    def test_extended_division_through_zero(self):
        # x * y == 1 with y spanning zero: the hull is entire, so x keeps
        # its bounds, but x is tightened where y is one-sided.
        frontier = BoxArray.from_boxes(
            [
                Box([Interval(-8.0, 8.0), Interval(-1.0, 1.0)]),
                Box([Interval(-8.0, 8.0), Interval(0.5, 1.0)]),
            ]
        )
        contractor = FrontierContractor(eq(X * Y - 1.0, 0.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert alive.all()
        # one-sided row: x = 1/y ∈ [1, 2]
        assert contracted.lo[1, 0] >= 1.0 - 1e-6
        assert contracted.hi[1, 0] <= 2.0 + 1e-6

    def test_even_pow_backward_symmetric(self):
        frontier = BoxArray.from_box(
            Box([Interval(-5.0, 5.0), Interval(0.0, 4.0)])
        )
        # x^2 <= y <= 4  =>  x in [-2, 2] (up to contractor padding)
        contractor = FrontierContractor(le(X ** 2 - 4.0, 0.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert alive[0]
        assert contracted.lo[0, 0] == pytest.approx(-2.0, abs=1e-6)
        assert contracted.hi[0, 0] == pytest.approx(2.0, abs=1e-6)

    def test_even_pow_backward_sign_aware(self):
        # child known nonnegative: only the positive root survives
        frontier = BoxArray.from_box(
            Box([Interval(0.5, 5.0), Interval(0.0, 1.0)])
        )
        contractor = FrontierContractor(le(X ** 2 - 4.0, 0.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert alive[0]
        assert contracted.lo[0, 0] >= 0.5 - 1e-12
        assert contracted.hi[0, 0] == pytest.approx(2.0, abs=1e-6)

    def test_odd_pow_backward(self):
        frontier = BoxArray.from_box(
            Box([Interval(-5.0, 5.0), Interval(0.0, 1.0)])
        )
        # x^3 <= 8  =>  x <= 2
        contractor = FrontierContractor(le(X ** 3 - 8.0, 0.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert alive[0]
        assert contracted.hi[0, 0] == pytest.approx(2.0, abs=1e-5)
        assert contracted.lo[0, 0] == -5.0

    def test_unbounded_endpoints_survive(self):
        # forward values become unbounded through 1/x near 0 — the pass
        # must stay NaN-free and sound
        frontier = BoxArray.from_boxes(
            [
                Box([Interval(-1.0, 1.0), Interval(-1.0, 1.0)]),
                Box([Interval(1e-300, 1.0), Interval(-1.0, 1.0)]),
            ]
        )
        contractor = FrontierContractor(ge(1.0 / X - Y, 0.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert not np.isnan(contracted.lo).any()
        assert not np.isnan(contracted.hi).any()
        assert alive[1]

    def test_sqrt_domain_violation_kills_row(self):
        frontier = BoxArray.from_boxes(
            [
                Box([Interval(-9.0, -5.0), Interval(0.0, 1.0)]),  # x+4 < 0
                Box([Interval(0.0, 5.0), Interval(0.0, 1.0)]),
            ]
        )
        contractor = FrontierContractor(ge(sqrt(X + 4.0), 0.0), NAMES)
        contracted, alive = contractor.revise(frontier)
        assert alive.tolist() == [False, True]

    def test_constant_constraint_decides_rows(self):
        frontier = random_frontier(3)
        sat = FrontierContractor(ge(var("x") * 0.0 + 1.0, 0.5), NAMES)
        contracted, alive = sat.revise(frontier)
        assert alive.all()
        unsat = FrontierContractor(ge(var("x") * 0.0 + 1.0, 2.0), NAMES)
        contracted, alive = unsat.revise(frontier)
        assert not alive.any()

    def test_empty_frontier_noop(self):
        contractor = FrontierContractor(ge(X, 0.0), NAMES)
        empty = BoxArray.empty(2)
        contracted, alive = contractor.revise(empty)
        assert len(contracted) == 0 and alive.shape == (0,)
        contracted, alive = contract_frontier([contractor], empty)
        assert len(contracted) == 0
