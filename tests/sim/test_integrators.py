"""Integrator tests: exact solutions, convergence orders, error handling."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    DormandPrince45,
    EulerIntegrator,
    RK4Integrator,
    euler_step,
    get_integrator,
    rk4_step,
)


def linear_decay(x):
    return -x


def harmonic(x):
    return np.array([x[1], -x[0]])


class TestSteps:
    def test_euler_step(self):
        x = np.array([1.0])
        assert euler_step(linear_decay, x, 0.1)[0] == pytest.approx(0.9)

    def test_rk4_step_more_accurate(self):
        x = np.array([1.0])
        exact = math.exp(-0.1)
        euler_err = abs(euler_step(linear_decay, x, 0.1)[0] - exact)
        rk4_err = abs(rk4_step(linear_decay, x, 0.1)[0] - exact)
        assert rk4_err < euler_err / 100


class TestFixedStep:
    def test_exponential_decay_euler(self):
        times, states = EulerIntegrator().integrate(
            linear_decay, np.array([1.0]), 1.0, 0.001
        )
        assert states[-1, 0] == pytest.approx(math.exp(-1.0), rel=1e-2)

    def test_exponential_decay_rk4(self):
        times, states = RK4Integrator().integrate(
            linear_decay, np.array([1.0]), 1.0, 0.01
        )
        assert states[-1, 0] == pytest.approx(math.exp(-1.0), rel=1e-8)

    def test_times_monotone_and_cover(self):
        times, states = RK4Integrator().integrate(
            linear_decay, np.array([1.0]), 0.55, 0.1
        )
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(0.55)
        assert np.all(np.diff(times) > 0)

    def test_partial_final_step(self):
        times, _ = EulerIntegrator().integrate(linear_decay, np.array([1.0]), 0.25, 0.1)
        assert times[-1] == pytest.approx(0.25)

    def test_invalid_dt(self):
        with pytest.raises(SimulationError):
            EulerIntegrator().integrate(linear_decay, np.array([1.0]), 1.0, 0.0)

    def test_negative_duration(self):
        with pytest.raises(SimulationError):
            EulerIntegrator().integrate(linear_decay, np.array([1.0]), -1.0, 0.1)

    def test_blowup_detected(self):
        times_states = lambda: RK4Integrator().integrate(
            lambda x: x * x * 1e4, np.array([10.0]), 10.0, 0.5
        )
        with pytest.raises(SimulationError):
            times_states()

    def test_euler_first_order_convergence(self):
        errors = []
        for dt in (0.1, 0.05, 0.025):
            _, states = EulerIntegrator().integrate(linear_decay, np.array([1.0]), 1.0, dt)
            errors.append(abs(states[-1, 0] - math.exp(-1.0)))
        # Halving dt should roughly halve the error.
        assert errors[0] / errors[1] == pytest.approx(2.0, rel=0.2)
        assert errors[1] / errors[2] == pytest.approx(2.0, rel=0.2)

    def test_rk4_fourth_order_convergence(self):
        errors = []
        for dt in (0.2, 0.1):
            _, states = RK4Integrator().integrate(harmonic, np.array([1.0, 0.0]), 2.0, dt)
            exact = np.array([math.cos(2.0), -math.sin(2.0)])
            errors.append(np.linalg.norm(states[-1] - exact))
        assert errors[0] / errors[1] == pytest.approx(16.0, rel=0.5)


class TestAdaptive:
    def test_harmonic_oscillator_accuracy(self):
        solver = DormandPrince45(rtol=1e-10, atol=1e-12)
        _, states = solver.integrate(harmonic, np.array([1.0, 0.0]), 10.0)
        exact = np.array([math.cos(10.0), -math.sin(10.0)])
        assert np.linalg.norm(states[-1] - exact) < 1e-7

    def test_agrees_with_rk4(self):
        f = lambda x: np.array([x[1], -math.sin(x[0])])  # pendulum
        x0 = np.array([1.0, 0.0])
        _, fixed = RK4Integrator().integrate(f, x0, 5.0, 0.001)
        _, adaptive = DormandPrince45(rtol=1e-10, atol=1e-12).integrate(f, x0, 5.0)
        assert np.allclose(fixed[-1], adaptive[-1], atol=1e-6)

    def test_zero_duration(self):
        times, states = DormandPrince45().integrate(harmonic, np.array([1.0, 0.0]), 0.0)
        assert len(times) == 1

    def test_stiff_problem_takes_small_steps(self):
        stiff = lambda x: -500.0 * x
        times, states = DormandPrince45().integrate(stiff, np.array([1.0]), 0.1)
        assert states[-1, 0] == pytest.approx(math.exp(-50.0), abs=1e-6)
        assert len(times) > 20  # forced many steps

    def test_invalid_tolerances(self):
        with pytest.raises(SimulationError):
            DormandPrince45(rtol=0.0)

    def test_max_steps_guard(self):
        solver = DormandPrince45(max_steps=5, rtol=1e-13, atol=1e-15)
        with pytest.raises(SimulationError):
            solver.integrate(harmonic, np.array([1.0, 0.0]), 100.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_integrator("euler"), EulerIntegrator)
        assert isinstance(get_integrator("rk4"), RK4Integrator)
        assert isinstance(get_integrator("RK45"), DormandPrince45)

    def test_unknown(self):
        with pytest.raises(SimulationError):
            get_integrator("leapfrog")

    def test_kwargs_passthrough(self):
        solver = get_integrator("rk45", rtol=1e-3)
        assert solver.rtol == 1e-3
