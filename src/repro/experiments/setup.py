"""Canonical case-study setup shared by all experiments.

Collects the constants of Section 4.3 in one place:

* ``X0`` — rectangle with diagonal corners ``(-1, -pi/16)`` and
  ``(1, pi/16)``;
* ``U`` — complement of the rectangle with corners
  ``(-5, -(pi/2 - eps))`` and ``(5, pi/2 - eps)``;
* ``gamma = 1e-6`` for the Lie-derivative slack;
* speed ``V = 1`` and a straight-line target path.
"""

from __future__ import annotations

import math

from ..barrier import Rectangle, RectangleComplement, VerificationProblem
from ..dynamics import error_dynamics_system
from ..learning import proportional_controller_network, train_paper_controller
from ..nn import FeedforwardNetwork

__all__ = [
    "EPSILON",
    "GAMMA",
    "SPEED",
    "paper_initial_set",
    "paper_unsafe_set",
    "paper_problem",
    "case_study_controller",
]

#: the paper's unsafe-set shrink parameter (U excludes a strip below pi/2)
EPSILON = 0.1
#: Lie-derivative slack of Eq. (5)
GAMMA = 1.0e-6
#: constant vehicle speed V
SPEED = 1.0


def paper_initial_set() -> Rectangle:
    """``X0 = [-1, 1] x [-pi/16, pi/16]``."""
    return Rectangle([-1.0, -math.pi / 16.0], [1.0, math.pi / 16.0])


def paper_unsafe_set(epsilon: float = EPSILON) -> RectangleComplement:
    """``U`` = outside ``[-5, 5] x [-(pi/2 - eps), pi/2 - eps]``."""
    bound = math.pi / 2.0 - epsilon
    return RectangleComplement(Rectangle([-5.0, -bound], [5.0, bound]))


def paper_problem(
    network: FeedforwardNetwork,
    speed: float = SPEED,
    epsilon: float = EPSILON,
) -> VerificationProblem:
    """The full verification problem for a given controller network."""
    system = error_dynamics_system(network, speed=speed)
    return VerificationProblem(
        system,
        initial_set=paper_initial_set(),
        unsafe_set=paper_unsafe_set(epsilon),
    )


def case_study_controller(
    hidden_neurons: int,
    trained: bool = False,
    seed: int = 0,
    train_iterations: int = 25,
    train_population: int = 16,
) -> FeedforwardNetwork:
    """A controller of the requested width.

    ``trained=False`` (default) returns the deterministic hand-built
    saturating-proportional network — verification cost depends only on
    width, which is the Table 1 axis.  ``trained=True`` runs the paper's
    CMA-ES policy search first (slow for large widths).
    """
    if not trained:
        return proportional_controller_network(hidden_neurons)
    result = train_paper_controller(
        hidden_neurons=hidden_neurons,
        seed=seed,
        population_size=train_population,
        max_iterations=train_iterations,
    )
    return result.network
