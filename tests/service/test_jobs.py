"""Job state machine, spec round-trips, and journal replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.service import Job, JobJournal, JobSpec, JobState, new_job_id


def make_job(**kwargs) -> Job:
    defaults = dict(
        id=new_job_id(),
        spec=JobSpec(target="linear"),
        points=["linear[damping=0.5,rotation=1]"],
        params=[{"damping": 0.5, "rotation": 1.0}],
        keys=["ab" + "0" * 62],
        artifacts=[None],
    )
    defaults.update(kwargs)
    return Job(**defaults)


class TestStateMachine:
    def test_initial_state_is_queued(self):
        assert make_job().state is JobState.QUEUED

    @pytest.mark.parametrize(
        "target",
        [JobState.RUNNING, JobState.DONE, JobState.FAILED, JobState.CANCELLED],
    )
    def test_queued_can_reach_every_other_state(self, target):
        job = make_job()
        job.transition(target)
        assert job.state is target

    @pytest.mark.parametrize(
        "target", [JobState.DONE, JobState.FAILED, JobState.CANCELLED]
    )
    def test_running_terminal_transitions(self, target):
        job = make_job()
        job.transition(JobState.RUNNING)
        job.transition(target)
        assert job.state is target
        assert job.finished is not None

    def test_running_cannot_requeue(self):
        job = make_job()
        job.transition(JobState.RUNNING)
        with pytest.raises(ReproError, match="illegal transition"):
            job.transition(JobState.QUEUED)

    @pytest.mark.parametrize(
        "terminal", [JobState.DONE, JobState.FAILED, JobState.CANCELLED]
    )
    @pytest.mark.parametrize(
        "after", [JobState.QUEUED, JobState.RUNNING, JobState.DONE,
                  JobState.FAILED, JobState.CANCELLED],
    )
    def test_terminal_states_are_final(self, terminal, after):
        job = make_job()
        job.transition(terminal)
        if after is terminal:  # self-transition is a quiet no-op
            job.transition(after)
            assert job.state is terminal
        else:
            with pytest.raises(ReproError, match="illegal transition"):
                job.transition(after)

    def test_terminal_property(self):
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal

    def test_progress_counters(self):
        job = make_job(points=["a", "b"], params=[{}, {}],
                       keys=["ab" + "0" * 62, "cd" + "0" * 62],
                       artifacts=[None, None])
        assert job.total_points == 2
        assert job.done_points == 0
        assert not job.resolved


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(
            target="dubins",
            grid={"speed": "1:2:2", "nn_width": [8, 10]},
            seed=7,
            engine="vectorized",
        )
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.target == "dubins"
        assert again.grid == {"speed": "1:2:2", "nn_width": [8, 10]}
        assert again.seed == 7
        assert again.engine == "vectorized"

    def test_needs_target(self):
        with pytest.raises(ReproError, match="target"):
            JobSpec(target="")

    def test_grid_and_samples_conflict(self):
        with pytest.raises(ReproError, match="not both"):
            JobSpec(target="linear", grid={"damping": "0.5"}, samples=3)

    def test_status_dict_is_json_ready(self):
        payload = json.dumps(make_job().status_dict())
        assert json.loads(payload)["state"] == "QUEUED"


class TestJournal:
    @pytest.fixture
    def journal(self, tmp_path):
        return JobJournal(tmp_path / "service" / "journal.jsonl")

    def test_replay_empty_journal(self, journal):
        assert journal.replay() == {}

    def test_submit_point_state_round_trip(self, journal):
        job = make_job()
        journal.record_submit(job)
        journal.record_point(job.id, 0, "verified", cached=False)
        journal.record_state(job.id, JobState.RUNNING)
        journal.record_state(job.id, JobState.DONE)
        replayed = journal.replay()
        assert set(replayed) == {job.id}
        again = replayed[job.id]
        assert again.state is JobState.DONE
        assert again.points == job.points
        assert again.keys == job.keys
        assert again.replayed_statuses == {0: "verified"}

    def test_cached_points_recovered(self, journal):
        job = make_job(points=["a", "b"], params=[{}, {}],
                       keys=["ab" + "0" * 62, "cd" + "0" * 62],
                       artifacts=[None, None])
        journal.record_submit(job)
        journal.record_point(job.id, 0, "verified", cached=True)
        journal.record_point(job.id, 1, "verified", cached=False)
        assert journal.replay()[job.id].cached_points == 1

    def test_duplicate_submit_resets_progress(self, journal):
        """Recovery resubmits unfinished jobs; replay keeps the latest."""
        job = make_job()
        journal.record_submit(job)
        journal.record_point(job.id, 0, "verified", cached=False)
        journal.record_submit(job)  # the restart's resubmission
        journal.record_state(job.id, JobState.RUNNING)
        replayed = journal.replay()[job.id]
        assert replayed.state is JobState.RUNNING
        assert replayed.replayed_statuses == {}

    def test_torn_final_line_is_skipped(self, journal):
        job = make_job()
        journal.record_submit(job)
        journal.record_state(job.id, JobState.DONE)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "state", "job": "tr')  # crash mid-append
        replayed = journal.replay()
        assert replayed[job.id].state is JobState.DONE

    def test_replayed_job_reports_full_progress(self, journal):
        """A recovered DONE job keeps lazy artifacts but must still
        report its journal-recorded done/verified counts."""
        job = make_job(points=["a", "b"], params=[{}, {}],
                       keys=["ab" + "0" * 62, "cd" + "0" * 62],
                       artifacts=[None, None])
        journal.record_submit(job)
        journal.record_point(job.id, 0, "verified", cached=True)
        journal.record_point(job.id, 1, "verified", cached=False)
        journal.record_state(job.id, JobState.DONE)
        replayed = journal.replay()[job.id]
        assert replayed.done_points == 2
        status = replayed.status_dict()
        assert status["done_points"] == 2
        assert status["verified_points"] == 2
        # Lazy artifacts never finalize a job a second time.
        assert not replayed.resolved

    def test_records_are_single_json_lines(self, journal):
        journal.record_submit(make_job())
        lines = journal.path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "submit"
