"""The ``parallel-smt`` engine's checker: thread-pool subproblem dispatch.

The barrier conditions decompose into independent box subproblems (the
``D \\ X0`` cover of check (5), the per-facet regions of check (7)), and
:func:`repro.smt.check_exists_on_boxes` walks them serially.  The
:class:`ParallelSmtBackend` dispatches each subproblem to its own
solver on a thread pool — by default the structure-of-arrays
:class:`~repro.smt.BatchedIcpSolver`, so conditions (5)/(6)/(7) each
run the frontier-wide vectorized HC4 contractor *and* overlap on
multi-core hosts (the NumPy passes release the GIL).  Pass
``solver_factory=IcpSolver`` to restore the scalar per-box solver.

Verdict combination matches the serial semantics exactly, including
which witness is reported: the DELTA_SAT subproblem with the **lowest
index** wins, not whichever thread finishes first, so the
counterexample-guided synthesis loop stays deterministic.  Only the
merged solver statistics differ — the serial path stops accumulating at
the first hit, while the parallel path has already paid for every
subproblem and reports all of it.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from ..smt import IcpConfig, SmtResult, Subproblem
from ..smt.icp_batched import BatchedIcpSolver
from ..smt.result import SolverStats, Verdict

__all__ = ["ParallelSmtBackend"]


class ParallelSmtBackend:
    """Check independent subproblems concurrently on a thread pool.

    Parameters
    ----------
    max_workers:
        Thread-pool width cap; None picks ``min(32, cpu_count + 4)``
        (the executor default).  Single-subproblem queries skip the pool
        entirely.
    solver_factory:
        Callable building the per-query conjunction solver from an
        :class:`~repro.smt.IcpConfig`; the default is the vectorized
        :class:`~repro.smt.BatchedIcpSolver`.
    """

    name = "parallel-smt"

    def __init__(
        self,
        max_workers: int | None = None,
        solver_factory: "Callable[[IcpConfig | None], object]" = BatchedIcpSolver,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.solver_factory = solver_factory

    def check(
        self,
        subproblems: Sequence[Subproblem],
        names: Sequence[str],
        config: IcpConfig | None = None,
    ) -> SmtResult:
        """Dispatch independent subproblem boxes across a thread pool.

        Witness selection is serial-identical: results merge in input
        order, so the reported witness matches the serial backend's.
        """
        solver = self.solver_factory(config)
        delta = solver.config.delta
        if not subproblems:
            return SmtResult(Verdict.UNSAT, delta)
        if len(subproblems) == 1:
            sub = subproblems[0]
            return solver.solve(sub.constraints, sub.region, names)

        workers = self.max_workers or min(32, (os.cpu_count() or 1) + 4)
        workers = min(workers, len(subproblems))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda sub: solver.solve(sub.constraints, sub.region, names),
                    subproblems,
                )
            )

        merged = SolverStats()
        for result in results:
            merged.merge(result.stats)
        for result in results:
            if result.verdict is Verdict.DELTA_SAT:
                result.stats = merged
                return result
        if any(result.verdict is Verdict.UNKNOWN for result in results):
            return SmtResult(Verdict.UNKNOWN, delta, stats=merged)
        return SmtResult(Verdict.UNSAT, delta, stats=merged)
