"""Certificate condition-builder and re-verification tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.barrier import (
    QuadraticTemplate,
    Rectangle,
    RectangleComplement,
    BarrierCertificate,
    VerificationProblem,
    condition5_subproblems,
    condition6_subproblems,
    condition7_subproblems,
    lie_derivative_expr,
)
from repro.dynamics import stable_linear_system
from repro.errors import GeometryError
from repro.expr import evaluate, var
from repro.smt import IcpConfig


@pytest.fixture
def linear_problem():
    system = stable_linear_system(np.array([[-1.0, 0.5], [-0.5, -1.0]]))
    return VerificationProblem(
        system,
        initial_set=Rectangle([-0.5, -0.5], [0.5, 0.5]),
        unsafe_set=RectangleComplement(Rectangle([-2.0, -2.0], [2.0, 2.0])),
    )


def analytic_certificate(problem, level=2.0):
    tmpl = QuadraticTemplate(2)
    coeffs = np.array([1.0, 0.0, 1.0])  # W = x0^2 + x1^2
    expr = tmpl.build_expression(coeffs, problem.state_names)
    return BarrierCertificate(
        expr, level, problem, gamma=1e-6, template=tmpl, coefficients=coeffs
    )


class TestProblemValidation:
    def test_dimension_mismatch(self):
        system = stable_linear_system(np.array([[-1.0]]))
        with pytest.raises(GeometryError):
            VerificationProblem(
                system,
                Rectangle([-1, -1], [1, 1]),
                RectangleComplement(Rectangle([-2, -2], [2, 2])),
            )

    def test_x0_must_be_inside_safe(self):
        system = stable_linear_system(np.array([[-1.0, 0.0], [0.0, -1.0]]))
        with pytest.raises(GeometryError):
            VerificationProblem(
                system,
                Rectangle([-3, -3], [3, 3]),
                RectangleComplement(Rectangle([-2, -2], [2, 2])),
            )

    def test_domain_defaults_to_safe_rect(self, linear_problem):
        assert np.allclose(linear_problem.domain.lower, [-2, -2])


class TestLieDerivative:
    def test_linear_system_closed_form(self, linear_problem):
        """For W = |x|^2 and x' = Ax: dW/dt = x^T (A + A^T) x."""
        w = var("x0") ** 2 + var("x1") ** 2
        lie = lie_derivative_expr(w, linear_problem.system)
        a = np.array([[-1.0, 0.5], [-0.5, -1.0]])
        sym = a + a.T
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(-2, 2, size=2)
            expected = float(x @ sym @ x)
            got = evaluate(lie, {"x0": float(x[0]), "x1": float(x[1])})
            assert got == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestConditionBuilders:
    def test_condition5_covers_domain_minus_x0(self, linear_problem):
        w = var("x0") ** 2 + var("x1") ** 2
        subs = condition5_subproblems(w, linear_problem, gamma=1e-6)
        assert 1 <= len(subs) <= 4
        # The union must not include X0's interior.
        x0_center = linear_problem.initial_set.center()
        assert not any(s.region.contains(x0_center) for s in subs)
        # But must include points between X0 and the safe boundary.
        assert any(s.region.contains([1.5, 0.0]) for s in subs)

    def test_condition6_region_is_x0(self, linear_problem):
        cert = analytic_certificate(linear_problem)
        subs = condition6_subproblems(cert.w_expr, linear_problem, cert.level)
        assert len(subs) == 1
        assert np.allclose(subs[0].region.lower(), [-0.5, -0.5])

    def test_condition7_clipped_regions(self, linear_problem):
        cert = analytic_certificate(linear_problem, level=2.0)
        region = cert.level_region()
        subs = condition7_subproblems(
            cert.w_expr, linear_problem, cert.level, region
        )
        # Level set radius sqrt(2) < 2: every facet clip is empty.
        assert subs == []

    def test_condition7_nonempty_when_level_reaches(self, linear_problem):
        cert = analytic_certificate(linear_problem, level=5.0)
        region = cert.level_region()
        subs = condition7_subproblems(
            cert.w_expr, linear_problem, cert.level, region
        )
        assert len(subs) >= 1


class TestVerify:
    def test_good_certificate_verifies(self, linear_problem):
        cert = analytic_certificate(linear_problem, level=2.0)
        check = cert.verify(IcpConfig(delta=1e-3))
        assert check.condition5.is_unsat
        assert check.condition6.is_unsat
        assert check.condition7.is_unsat
        assert check.all_unsat

    def test_level_too_small_fails_condition6(self, linear_problem):
        cert = analytic_certificate(linear_problem, level=0.1)
        check = cert.verify(IcpConfig(delta=1e-3))
        assert not check.condition6.is_unsat
        assert not check.all_unsat

    def test_level_too_large_fails_condition7(self, linear_problem):
        cert = analytic_certificate(linear_problem, level=4.5)
        check = cert.verify(IcpConfig(delta=1e-3))
        assert not check.condition7.is_unsat

    def test_bad_dynamics_fails_condition5(self):
        """An unstable system cannot satisfy the Lie condition."""
        system = stable_linear_system(np.array([[1.0, 0.0], [0.0, 1.0]]))
        problem = VerificationProblem(
            system,
            Rectangle([-0.5, -0.5], [0.5, 0.5]),
            RectangleComplement(Rectangle([-2, -2], [2, 2])),
        )
        cert = analytic_certificate(problem, level=2.0)
        check = cert.verify(IcpConfig(delta=1e-3))
        assert not check.condition5.is_unsat


class TestCertificateQueries:
    def test_values_and_membership(self, linear_problem):
        cert = analytic_certificate(linear_problem, level=2.0)
        assert cert.level_set_contains([1.0, 0.5])
        assert not cert.level_set_contains([1.5, 1.0])
        values = cert.barrier_values(np.array([[0.0, 0.0], [2.0, 0.0]]))
        assert values[0] == pytest.approx(-2.0)
        assert values[1] == pytest.approx(2.0)

    def test_level_region_requires_template(self, linear_problem):
        cert = BarrierCertificate(
            var("x0") ** 2 + var("x1") ** 2, 1.0, linear_problem, 1e-6
        )
        with pytest.raises(GeometryError):
            cert.level_region()
