#!/usr/bin/env python
"""Quickstart: prove an NN-controlled vehicle safe in under a minute.

The paper's case study — a Dubins car tracking a straight line under a
tansig neural-network steering controller — ships as the registered
``dubins`` scenario, so the whole verification is one
:func:`repro.api.run` call.  This script runs it with a live per-stage
progress callback, then digs into the returned artifact: certificate,
stage timings, JSON round-trip, and an independent re-check.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro import api


def main() -> None:
    # 1. One call: look up the "dubins" scenario (closed-loop error
    #    dynamics + the Section 4.3 sets) and run the Figure-1 pipeline,
    #    printing each stage as it completes.
    def progress(event: api.StageEvent) -> None:
        if event.kind == "end":
            print(f"  [{event.stage}] iteration {event.iteration}: "
                  f"{event.seconds:.2f}s")

    print("verifying scenario 'dubins'...")
    artifact = api.run("dubins", progress=progress)

    print(f"\nstatus: {artifact.status}")
    print(f"candidate iterations: {artifact.candidate_iterations}")
    stage_total = sum(artifact.stage_seconds.values())
    print(
        f"stage time {stage_total:.2f}s of {artifact.total_seconds:.2f}s total"
    )
    if not artifact.verified:
        raise SystemExit("verification did not complete — try more traces")

    # 2. The artifact is plain data: it JSON-round-trips losslessly, so
    #    results can be archived and compared across runs/machines.
    restored = api.RunArtifact.from_json(artifact.to_json())
    assert restored.to_dict() == artifact.to_dict()
    print(f"\nbarrier certificate: B(x) = W(x) - {artifact.level:.6g}")
    print("W(x) =", artifact.certificate["w_infix"][:100])

    # 3. In-process runs also keep the live report + certificate object;
    #    independently re-check all three barrier conditions.
    certificate = artifact.report.certificate
    check = certificate.verify()
    print(
        "\nre-verification:",
        f"(5) {check.condition5.verdict.value},",
        f"(6) {check.condition6.verdict.value},",
        f"(7) {check.condition7.verdict.value}",
    )
    assert check.all_unsat, "certificate failed re-verification"

    # 4. The certificate is a *proof*, but sanity-check with simulation:
    #    a trajectory from an X0 corner must stay inside the level set.
    system = api.get_scenario("dubins").system_factory()
    trace = system.simulator().simulate(
        np.array([1.0, math.pi / 16]), duration=20.0, dt=0.05
    )
    w_along = certificate.w_values(trace.states)
    print(
        f"\nsimulated corner trajectory: max W = {w_along.max():.4f} "
        f"<= level {certificate.level:.4f} -> stays certified-safe"
    )
    assert w_along.max() <= certificate.level + 1e-9
    print("\nSystem proven safe for unbounded time.")


if __name__ == "__main__":
    main()
