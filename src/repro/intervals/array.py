"""Structure-of-arrays interval arithmetic: batched boxes for the solver.

The scalar :class:`~repro.intervals.Interval` is the soundness oracle;
this module is its vectorized twin.  An :class:`IntervalArray` holds a
whole *batch* of intervals as two ndarrays of endpoints, and a
:class:`BoxArray` holds an entire ICP frontier as ``(m, n)`` lower/upper
bound matrices — the same structure-of-arrays move IBEX and dReal make
in C++.  Every operation runs one NumPy pass over the batch, so the HC4
contractor (:mod:`repro.smt.hc4`) and the batched branch-and-prune
solver (:mod:`repro.smt.icp_batched`) never drop back to per-box Python.

Soundness contract
------------------

Each operation returns endpoint arrays guaranteed to contain the exact
real image for every member of the batch:

* Operations whose NumPy kernels are IEEE-correctly rounded and
  bit-identical to the ``math`` scalars on float64 (``+ - * /``,
  ``sqrt``, ``sin``, ``cos``, negation, abs, min/max) are widened by one
  ulp via ``np.nextafter`` — *bit-identical* to the scalar
  :class:`Interval` result.
* Operations whose kernels may stray from libm (``pow``, ``exp``,
  ``log``, ``tan``, ``atan`` by one ulp; ``tanh``/``sigmoid`` by up to
  three) are widened by two or four ulps respectively, which keeps the
  array result a superset of the scalar result (the property tests in
  ``tests/intervals/test_array.py`` cross-check this containment on
  random batches).

Unlike the scalar class, an :class:`IntervalArray` may hold *empty*
members (``lo > hi``, canonically ``[+inf, -inf]``): batched contraction
needs to keep dead rows in the arrays.  Domain violations that make the
scalar class raise (``sqrt`` of a negative interval, ``log`` of a
non-positive one) mark the affected rows empty instead; callers observe
them through :meth:`IntervalArray.empty_mask`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import IntervalError
from .interval import Interval
from .rounding import next_down_array, next_up_array, trig_slack

__all__ = ["IntervalArray", "BoxArray"]

_INF = math.inf
_PI = math.pi
_TWO_PI = 2.0 * math.pi
_HALF_PI = 0.5 * math.pi


_F64 = np.dtype(np.float64)


def _as_float_array(values) -> np.ndarray:
    if type(values) is np.ndarray and values.dtype == _F64:
        return values
    return np.asarray(values, dtype=float)


class IntervalArray:
    """A batch of closed intervals stored as parallel endpoint ndarrays.

    ``lo`` and ``hi`` share one shape; member ``i`` is ``[lo[i], hi[i]]``.
    Rows with ``lo > hi`` are *empty* members (see module docstring).
    Instances are cheap, immutable-by-convention views: operations
    return new ``IntervalArray`` objects and never mutate operands.

    Examples
    --------
    >>> x = IntervalArray([0.0, -1.0], [1.0, 2.0])
    >>> bool((x + x).hi[0] >= 2.0)
    True
    >>> x.contains(0.5).tolist()
    [True, True]
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        lo = _as_float_array(lo)
        hi = _as_float_array(hi)
        if lo.shape != hi.shape:
            lo, hi = np.broadcast_arrays(lo, hi)
            lo = np.array(lo)
            hi = np.array(hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntervalArray is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(values) -> "IntervalArray":
        """Degenerate members ``[v, v]``."""
        values = _as_float_array(values)
        return IntervalArray(values, values.copy())

    @staticmethod
    def entire(shape) -> "IntervalArray":
        """A batch of whole-real-line members."""
        return IntervalArray(np.full(shape, -_INF), np.full(shape, _INF))

    @staticmethod
    def empty(shape) -> "IntervalArray":
        """A batch of canonically empty members ``[+inf, -inf]``."""
        return IntervalArray(np.full(shape, _INF), np.full(shape, -_INF))

    @staticmethod
    def from_intervals(intervals: Iterable[Interval]) -> "IntervalArray":
        """Pack scalar intervals into one batch."""
        pairs = [(ival.lo, ival.hi) for ival in intervals]
        if not pairs:
            return IntervalArray(np.empty(0), np.empty(0))
        arr = np.array(pairs, dtype=float)
        return IntervalArray(arr[:, 0], arr[:, 1])

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape shared by the ``lo``/``hi`` endpoint arrays."""
        return self.lo.shape

    @property
    def size(self) -> int:
        """Total number of interval members in the batch."""
        return self.lo.size

    def __len__(self) -> int:
        return len(self.lo)

    def __iter__(self) -> Iterator[Interval]:
        for lo, hi in zip(self.lo.ravel(), self.hi.ravel()):
            yield Interval(lo, hi)

    def __getitem__(self, index) -> "IntervalArray":
        return IntervalArray(self.lo[index], self.hi[index])

    def interval_at(self, index) -> Interval:
        """Member ``index`` as a scalar :class:`Interval` (must be non-empty)."""
        return Interval(float(self.lo[index]), float(self.hi[index]))

    def empty_mask(self) -> np.ndarray:
        """Boolean mask of empty members (``lo > hi``)."""
        return self.lo > self.hi

    def width(self) -> np.ndarray:
        """Per-member upper-bounded width (inf for unbounded members)."""
        unbounded = np.isinf(self.lo) | np.isinf(self.hi)
        diff = np.where(unbounded, _INF, self.hi - self.lo)
        return np.where(unbounded, _INF, next_up_array(diff))

    def magnitude(self) -> np.ndarray:
        """Per-member ``max |x|``."""
        return np.maximum(np.abs(self.lo), np.abs(self.hi))

    def mignitude(self) -> np.ndarray:
        """Per-member ``min |x|`` (0 where the member contains 0)."""
        crosses = (self.lo <= 0.0) & (self.hi >= 0.0)
        return np.where(crosses, 0.0, np.minimum(np.abs(self.lo), np.abs(self.hi)))

    def midpoint(self) -> np.ndarray:
        """Per-member finite inner point, mirroring ``Interval.midpoint``."""
        lo, hi = self.lo, self.hi
        mid = 0.5 * (lo + hi)
        overflow = ~np.isfinite(mid)
        if overflow.any():
            mid = np.where(overflow, 0.5 * lo + 0.5 * hi, mid)
        mid = np.minimum(np.maximum(mid, lo), hi)
        lo_inf = lo == -_INF
        hi_inf = hi == _INF
        mid = np.where(lo_inf & hi_inf, 0.0, mid)
        mid = np.where(lo_inf & ~hi_inf, hi - 1.0, mid)
        mid = np.where(~lo_inf & hi_inf, lo + 1.0, mid)
        return mid

    def is_finite(self) -> np.ndarray:
        """Per-member finiteness mask."""
        return np.isfinite(self.lo) & np.isfinite(self.hi)

    def contains(self, values) -> np.ndarray:
        """Per-member membership mask for scalars or a matching array."""
        values = _as_float_array(values)
        return (self.lo <= values) & (values <= self.hi)

    def contains_interval_array(self, other: "IntervalArray") -> np.ndarray:
        """Per-member subset mask: does each member contain ``other``'s?"""
        return (self.lo <= other.lo) & (other.hi <= self.hi)

    def strictly_contains_zero(self) -> np.ndarray:
        """Per-member mask: does the open interior contain zero?"""
        return (self.lo < 0.0) & (0.0 < self.hi)

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def intersection(self, other: "IntervalArray") -> "IntervalArray":
        """Per-member intersection; disjoint members come back empty
        (canonical ``[+inf, -inf]``), flagged by :meth:`empty_mask`."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        emp = lo > hi
        if emp.any():
            lo = np.where(emp, _INF, lo)
            hi = np.where(emp, -_INF, hi)
        return IntervalArray(lo, hi)

    def hull(self, other: "IntervalArray") -> "IntervalArray":
        """Per-member smallest interval containing both operands."""
        return IntervalArray(
            np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    def where(self, mask: np.ndarray, other: "IntervalArray") -> "IntervalArray":
        """Members from ``self`` where ``mask`` holds, else from ``other``."""
        return IntervalArray(
            np.where(mask, self.lo, other.lo), np.where(mask, self.hi, other.hi)
        )

    # ------------------------------------------------------------------
    # Arithmetic (formulas mirror Interval op-for-op; see module docstring
    # for which ops are bit-identical and which carry the 2-ulp widening)
    # ------------------------------------------------------------------
    def __neg__(self) -> "IntervalArray":
        return IntervalArray(-self.hi, -self.lo)  # negation is exact

    def __add__(self, other: "IntervalArray | float") -> "IntervalArray":
        other = _coerce(other, self.shape)
        return IntervalArray(
            next_down_array(self.lo + other.lo), next_up_array(self.hi + other.hi)
        )

    __radd__ = __add__

    def __sub__(self, other: "IntervalArray | float") -> "IntervalArray":
        other = _coerce(other, self.shape)
        return IntervalArray(
            next_down_array(self.lo - other.hi), next_up_array(self.hi - other.lo)
        )

    def __rsub__(self, other: "IntervalArray | float") -> "IntervalArray":
        return _coerce(other, self.shape) - self

    def __mul__(self, other: "IntervalArray | float") -> "IntervalArray":
        other = _coerce(other, self.shape)
        lo, hi = _mul_bounds(self.lo, self.hi, other.lo, other.hi)
        return IntervalArray(next_down_array(lo), next_up_array(hi))

    __rmul__ = __mul__

    def __truediv__(self, other: "IntervalArray | float") -> "IntervalArray":
        other = _coerce(other, self.shape)
        return _divide(self, other)

    def __rtruediv__(self, other: "IntervalArray | float") -> "IntervalArray":
        return _coerce(other, self.shape) / self

    def reciprocal(self) -> "IntervalArray":
        """Per-member ``1 / x``; members spanning zero become entire.

        Where the scalar class raises on ``[0, 0]`` this returns the
        (sound) whole line instead — batches cannot raise per member.
        """
        rec_lo, rec_hi = _reciprocal_bounds(self.lo, self.hi)
        return IntervalArray(rec_lo, rec_hi)

    def extended_divide_hull(self, other: "IntervalArray") -> "IntervalArray":
        """Hull of the generalized division used by backward contractors.

        Mirrors ``hull(Interval.extended_divide(...))``: denominators
        strictly spanning zero hull to the whole line; a ``[0, 0]``
        denominator gives the whole line when the numerator can be zero
        and the *empty* member otherwise.
        """
        res = self / other
        den_zero = (other.lo == 0.0) & (other.hi == 0.0)
        if den_zero.any():
            num_zero = self.contains(0.0)
            emp = den_zero & ~num_zero
            lo = np.where(emp, _INF, res.lo)
            hi = np.where(emp, -_INF, res.hi)
            res = IntervalArray(lo, hi)
        return res

    def __pow__(self, exponent: int) -> "IntervalArray":
        if not isinstance(exponent, int):
            raise IntervalError(f"interval power requires an integer, got {exponent!r}")
        if exponent == 0:
            ones = np.ones_like(self.lo)
            return IntervalArray(ones, ones.copy())
        if exponent < 0:
            return (self ** (-exponent)).reciprocal()
        with np.errstate(over="ignore", invalid="ignore"):
            lo_p = self.lo ** exponent
            hi_p = self.hi ** exponent
        if exponent % 2 == 1:
            return IntervalArray(
                next_down_array(lo_p, 2), next_up_array(hi_p, 2)
            )
        crosses = (self.lo <= 0.0) & (0.0 <= self.hi)
        hi = next_up_array(np.maximum(lo_p, hi_p), 2)
        lo = np.where(
            crosses, 0.0, next_down_array(np.minimum(lo_p, hi_p), 2)
        )
        return IntervalArray(lo, hi)

    def sq(self) -> "IntervalArray":
        """``x**2`` (contractor-friendly name)."""
        return self ** 2

    def abs(self) -> "IntervalArray":
        """Per-member ``|x|`` (exact)."""
        crosses = (self.lo < 0.0) & (self.hi > 0.0)
        lo = np.where(crosses, 0.0, self.mignitude())
        hi = self.magnitude()
        # Entirely-negative members mirror exactly like the scalar -self.
        return IntervalArray(lo, hi)

    def min_with(self, other: "IntervalArray | float") -> "IntervalArray":
        """Per-member interval image of ``min(self, other)``."""
        other = _coerce(other, self.shape)
        return IntervalArray(
            np.minimum(self.lo, other.lo), np.minimum(self.hi, other.hi)
        )

    def max_with(self, other: "IntervalArray | float") -> "IntervalArray":
        """Per-member interval image of ``max(self, other)``."""
        other = _coerce(other, self.shape)
        return IntervalArray(
            np.maximum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )

    # ------------------------------------------------------------------
    # Elementary functions
    # ------------------------------------------------------------------
    def sqrt(self) -> "IntervalArray":
        """Square root; members entirely below zero come back empty."""
        with np.errstate(invalid="ignore"):
            lo = np.maximum(next_down_array(np.sqrt(np.maximum(self.lo, 0.0))), 0.0)
            hi = next_up_array(np.sqrt(np.maximum(self.hi, 0.0)))
        emp = self.hi < 0.0
        if emp.any():
            lo = np.where(emp, _INF, lo)
            hi = np.where(emp, -_INF, hi)
        return IntervalArray(lo, hi)

    def exp(self) -> "IntervalArray":
        """Exponential (monotone; endpoints widened by 2 ulps)."""
        with np.errstate(over="ignore"):
            lo = np.maximum(next_down_array(np.exp(self.lo), 2), 0.0)
            hi = next_up_array(np.exp(self.hi), 2)
        return IntervalArray(lo, hi)

    def log(self) -> "IntervalArray":
        """Natural log; members entirely non-positive come back empty."""
        # No subnormal clamp: np.log is correct down to 5e-324, and
        # clamping would raise the lower bound above the true infimum
        # (unsound).  Non-positive operands are routed by the wheres.
        with np.errstate(divide="ignore", invalid="ignore"):
            lo = np.where(
                self.lo <= 0.0,
                -_INF,
                next_down_array(np.log(np.abs(self.lo)), 2),
            )
            hi = np.where(
                self.hi < _INF,
                next_up_array(np.log(np.abs(self.hi)), 2),
                _INF,
            )
        emp = self.hi <= 0.0
        if emp.any():
            lo = np.where(emp, _INF, lo)
            hi = np.where(emp, -_INF, hi)
        return IntervalArray(lo, hi)

    def tanh(self) -> "IntervalArray":
        """Hyperbolic tangent, clamped to [-1, 1]."""
        # NumPy's SIMD tanh strays up to ~3 ulps from libm's: widen by 4.
        return IntervalArray(
            np.maximum(next_down_array(np.tanh(self.lo), 4), -1.0),
            np.minimum(next_up_array(np.tanh(self.hi), 4), 1.0),
        )

    def sigmoid(self) -> "IntervalArray":
        """Logistic sigmoid ``1 / (1 + exp(-x))``, clamped to [0, 1]."""
        # Composed through exp and a divide: widen by 4 like tanh.
        return IntervalArray(
            np.maximum(next_down_array(_sigmoid(self.lo), 4), 0.0),
            np.minimum(next_up_array(_sigmoid(self.hi), 4), 1.0),
        )

    def atan(self) -> "IntervalArray":
        """Arctangent (monotone; endpoints widened by 2 ulps)."""
        return IntervalArray(
            next_down_array(np.arctan(self.lo), 2),
            next_up_array(np.arctan(self.hi), 2),
        )

    def sin(self) -> "IntervalArray":
        """Sine, with peak/trough detection across the period."""
        return _periodic_image(self, np.sin, peak_offset=_HALF_PI)

    def cos(self) -> "IntervalArray":
        """Cosine, with peak/trough detection across the period."""
        return _periodic_image(self, np.cos, peak_offset=0.0)

    def tan(self) -> "IntervalArray":
        """Tangent; members that may contain a pole become entire."""
        finite = self.is_finite()
        slack = trig_slack(self.magnitude())
        with np.errstate(invalid="ignore"):
            k = np.ceil((self.lo - slack - _HALF_PI) / _PI)
            pole = _HALF_PI + _PI * k
            has_pole = pole <= self.hi + slack
        wide = ~finite | (self.width() >= _PI) | has_pole
        with np.errstate(invalid="ignore"):
            lo = next_down_array(np.tan(self.lo), 2)
            hi = next_up_array(np.tan(self.hi), 2)
        lo = np.where(wide, -_INF, lo)
        hi = np.where(wide, _INF, hi)
        return IntervalArray(lo, hi)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"IntervalArray(shape={self.shape})"




def _coerce(value, shape) -> IntervalArray:
    if isinstance(value, IntervalArray):
        return value
    if isinstance(value, Interval):
        return IntervalArray(
            np.full(shape, value.lo), np.full(shape, value.hi)
        )
    values = np.broadcast_to(_as_float_array(value), shape)
    return IntervalArray(values.copy(), values.copy())


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    with np.errstate(over="ignore"):
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        e = np.exp(x[~pos])
        out[~pos] = e / (1.0 + e)
    return out


def _mul_bounds(alo, ahi, blo, bhi):
    """Raw four-product multiplication bounds (no widening)."""
    with np.errstate(invalid="ignore"):
        p1 = alo * blo
        p2 = alo * bhi
        p3 = ahi * blo
        p4 = ahi * bhi
    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    # 0 * inf yields NaN; in interval algebra that product contributes 0.
    # NaN propagates through minimum/maximum, so one check on the reduced
    # bounds covers all four products (the common all-finite case pays
    # for two isnan calls instead of four copyto passes).
    if np.isnan(lo).any() or np.isnan(hi).any():
        for p in (p1, p2, p3, p4):
            np.copyto(p, 0.0, where=np.isnan(p))
        lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
        hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    return lo, hi


def _reciprocal_bounds(blo, bhi):
    """Reciprocal endpoints mirroring ``Interval.reciprocal`` branch-wise.

    ``[0, 0]`` denominators yield the whole line (the scalar raises; a
    batch cannot), as do members strictly spanning zero.
    """
    lo_zero = blo == 0.0
    hi_zero = bhi == 0.0
    if not lo_zero.any() and not hi_zero.any():
        # Fast path: no endpoint touches zero, so only the spans-zero
        # case needs masking after the plain reciprocal.
        with np.errstate(divide="ignore", over="ignore"):
            rec_lo = next_down_array(1.0 / bhi)
            rec_hi = next_up_array(1.0 / blo)
        spans = (blo < 0.0) & (0.0 < bhi)
        if spans.any():
            rec_lo = np.where(spans, -_INF, rec_lo)
            rec_hi = np.where(spans, _INF, rec_hi)
        return rec_lo, rec_hi
    spans = (blo < 0.0) & (0.0 < bhi)
    zero = lo_zero & hi_zero
    safe_hi = np.where(hi_zero, 1.0, bhi)
    safe_lo = np.where(lo_zero, 1.0, blo)
    with np.errstate(divide="ignore", over="ignore"):
        inv_hi = next_down_array(1.0 / safe_hi)
        inv_lo = next_up_array(1.0 / safe_lo)
    rec_lo = np.where(hi_zero, -_INF, inv_hi)
    rec_hi = np.where(lo_zero, _INF, inv_lo)
    rec_lo = np.where(spans | zero, -_INF, rec_lo)
    rec_hi = np.where(spans | zero, _INF, rec_hi)
    return rec_lo, rec_hi


def _divide(num: IntervalArray, den: IntervalArray) -> IntervalArray:
    """Mirror of ``Interval.__truediv__``: reciprocal then multiply.

    Denominators strictly spanning zero (and the scalar-raising ``[0,0]``)
    produce the whole line.
    """
    rec_lo, rec_hi = _reciprocal_bounds(den.lo, den.hi)
    lo, hi = _mul_bounds(num.lo, num.hi, rec_lo, rec_hi)
    lo = next_down_array(lo)
    hi = next_up_array(hi)
    spans = ((den.lo < 0.0) & (0.0 < den.hi)) | ((den.lo == 0.0) & (den.hi == 0.0))
    if spans.any():
        lo = np.where(spans, -_INF, lo)
        hi = np.where(spans, _INF, hi)
    return IntervalArray(lo, hi)


def _periodic_image(ival: IntervalArray, func, peak_offset: float) -> IntervalArray:
    """Vectorized sound image of sin/cos, sharing the scalar slack logic."""
    with np.errstate(invalid="ignore"):
        v_lo = func(ival.lo)
        v_hi = func(ival.hi)
    lower = next_down_array(np.minimum(v_lo, v_hi))
    upper = next_up_array(np.maximum(v_lo, v_hi))
    slack = trig_slack(ival.magnitude())
    upper = np.where(
        _has_critical(ival.lo, ival.hi, peak_offset, slack), 1.0, upper
    )
    lower = np.where(
        _has_critical(ival.lo, ival.hi, peak_offset + _PI, slack), -1.0, lower
    )
    wide = ~ival.is_finite() | (ival.width() >= _TWO_PI)
    lower = np.where(wide, -1.0, np.maximum(lower, -1.0))
    upper = np.where(wide, 1.0, np.minimum(upper, 1.0))
    return IntervalArray(lower, upper)


def _has_critical(alo, ahi, offset: float, slack):
    with np.errstate(invalid="ignore"):
        k = np.ceil((alo - slack - offset) / _TWO_PI)
        point = offset + _TWO_PI * k
        result = point <= ahi + slack
    return np.where(np.isfinite(alo) & np.isfinite(ahi), result, True)


class BoxArray:
    """An ICP frontier: ``m`` axis-aligned ``n``-boxes in two matrices.

    ``lo`` and ``hi`` have shape ``(m, n)``; row ``i`` is one box, column
    ``j`` one variable.  The batched solver keeps its whole frontier in
    one ``BoxArray`` and splits/prunes with boolean masks — no per-box
    Python objects on the hot path.  Like :class:`IntervalArray` the
    class is immutable-by-convention; operations return new instances.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        lo = np.atleast_2d(_as_float_array(lo))
        hi = np.atleast_2d(_as_float_array(hi))
        if lo.shape != hi.shape:
            raise IntervalError(
                f"BoxArray bound shapes differ: {lo.shape} vs {hi.shape}"
            )
        if lo.ndim != 2:
            raise IntervalError(f"BoxArray bounds must be (m, n), got {lo.shape}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BoxArray is immutable")

    # ------------------------------------------------------------------
    # Constructors / conversions
    # ------------------------------------------------------------------
    @staticmethod
    def from_box(box) -> "BoxArray":
        """A one-row frontier from a scalar :class:`~repro.intervals.Box`."""
        arr = box.to_array()
        return BoxArray(arr[None, :, 0], arr[None, :, 1])

    @staticmethod
    def from_boxes(boxes: Sequence) -> "BoxArray":
        """Stack scalar boxes (all of one dimension) into a frontier."""
        if not boxes:
            raise IntervalError("from_boxes needs at least one box")
        arrs = np.stack([box.to_array() for box in boxes])
        return BoxArray(arrs[:, :, 0], arrs[:, :, 1])

    @staticmethod
    def empty(dimension: int) -> "BoxArray":
        """A zero-row frontier of the given dimension."""
        return BoxArray(np.empty((0, dimension)), np.empty((0, dimension)))

    def to_boxes(self) -> list:
        """Unpack into scalar :class:`~repro.intervals.Box` objects."""
        from .box import Box

        return [self.box_at(i) for i in range(len(self))]

    def box_at(self, index: int):
        """Row ``index`` as a scalar :class:`~repro.intervals.Box`."""
        from .box import Box

        return Box(
            Interval(lo, hi) for lo, hi in zip(self.lo[index], self.hi[index])
        )

    def to_array(self) -> np.ndarray:
        """``(m, n, 2)`` array of ``[lo, hi]`` pairs."""
        return np.stack([self.lo, self.hi], axis=-1)

    def column(self, index: int) -> IntervalArray:
        """Variable ``index`` across the whole frontier."""
        return IntervalArray(self.lo[:, index], self.hi[:, index])

    def replace_column(self, index: int, column: IntervalArray) -> "BoxArray":
        """New frontier with variable ``index`` swapped out."""
        lo = self.lo.copy()
        hi = self.hi.copy()
        lo[:, index] = column.lo
        hi[:, index] = column.hi
        return BoxArray(lo, hi)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Ambient state dimension ``n`` of every box in the frontier."""
        return self.lo.shape[1]

    def __len__(self) -> int:
        return self.lo.shape[0]

    def widths(self) -> np.ndarray:
        """Per-component widths, shape ``(m, n)`` (scalar width rule)."""
        return IntervalArray(self.lo, self.hi).width()

    def raw_widths(self) -> np.ndarray:
        """Plain ``hi - lo`` without outward rounding, shape ``(m, n)``."""
        return self.hi - self.lo

    def max_widths(self) -> np.ndarray:
        """Per-box largest component width, shape ``(m,)``."""
        if self.dimension == 0:
            return np.zeros(len(self))
        return self.widths().max(axis=1)

    def midpoints(self) -> np.ndarray:
        """Per-box midpoint vectors, shape ``(m, n)``."""
        return IntervalArray(self.lo, self.hi).midpoint()

    def is_finite(self) -> np.ndarray:
        """Per-box all-components-finite mask, shape ``(m,)``."""
        return (np.isfinite(self.lo) & np.isfinite(self.hi)).all(axis=1)

    def empty_mask(self) -> np.ndarray:
        """Per-box any-component-empty mask, shape ``(m,)``."""
        return (self.lo > self.hi).any(axis=1)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Row-wise membership of ``(m, n)`` points, shape ``(m,)``."""
        points = _as_float_array(points)
        return ((self.lo <= points) & (points <= self.hi)).all(axis=1)

    # ------------------------------------------------------------------
    # Frontier operations
    # ------------------------------------------------------------------
    def select(self, index) -> "BoxArray":
        """Row subset by mask, index array, or slice."""
        return BoxArray(self.lo[index], self.hi[index])

    @staticmethod
    def concatenate(parts: Sequence["BoxArray"]) -> "BoxArray":
        """Stack frontiers row-wise."""
        parts = [p for p in parts if len(p)]
        if not parts:
            raise IntervalError("concatenate needs at least one non-empty BoxArray")
        return BoxArray(
            np.concatenate([p.lo for p in parts]),
            np.concatenate([p.hi for p in parts]),
        )

    def intersection(self, other: "BoxArray") -> "BoxArray":
        """Component-wise intersection (empty components flagged via
        :meth:`empty_mask`, canonically ``[+inf, -inf]``)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        emp = lo > hi
        if emp.any():
            lo = np.where(emp, _INF, lo)
            hi = np.where(emp, -_INF, hi)
        return BoxArray(lo, hi)

    def widest_dimensions(self) -> np.ndarray:
        """Per-box index of the widest component (first among ties)."""
        return np.argmax(self.widths(), axis=1)

    def bisect_widest(self) -> tuple["BoxArray", "BoxArray"]:
        """Split every box along its widest component at the midpoint.

        Returns the two half frontiers in matching row order; the split
        point is the component's :meth:`IntervalArray.midpoint`, which
        mirrors the scalar ``Interval.split()`` bit-for-bit.
        """
        rows = np.arange(len(self))
        dims = self.widest_dimensions()
        cols = IntervalArray(self.lo[rows, dims], self.hi[rows, dims])
        mids = cols.midpoint()
        left_hi = self.hi.copy()
        left_hi[rows, dims] = mids
        right_lo = self.lo.copy()
        right_lo[rows, dims] = mids
        return BoxArray(self.lo.copy(), left_hi), BoxArray(right_lo, self.hi.copy())

    def __repr__(self) -> str:
        return f"BoxArray({len(self)} boxes, dimension {self.dimension})"
