#!/usr/bin/env python
"""Verify an NN controller on a *custom* plant via the scenario API.

The paper's method is not Dubins-specific: any plant of the form
x' = f_p(x, u), y = g(x) with a feedforward NN u = h(y) composes into an
autonomous system (Eq. 4) that the barrier machinery can verify.  This
example builds a torque-controlled inverted pendulum, stabilizes it with
a hand-weighted two-neuron tansig network, registers the workload as a
named :class:`repro.api.Scenario`, and proves the closed loop never
leaves a safe envelope around the upright equilibrium with one
:func:`repro.api.run` call.

Run:  python examples/custom_plant.py
"""

import numpy as np

from repro import api
from repro.barrier import Rectangle, RectangleComplement
from repro.dynamics import ContinuousSystem, compose, inverted_pendulum_plant
from repro.expr import to_infix
from repro.nn import FeedforwardNetwork, Layer


def build_controller() -> FeedforwardNetwork:
    """A saturating PD controller as a tansig network.

    u = -(kp/c) tanh(c * theta) - (kd/c) tanh(c * omega): near the
    origin this is u = -kp*theta - kd*omega, and the tanh saturation
    bounds the torque magnitude by (kp + kd)/c.
    """
    kp, kd, squash = 9.0, 3.0, 0.4
    hidden = Layer(
        weights=np.array([[squash, 0.0], [0.0, squash]]),
        biases=np.zeros(2),
        activation="tansig",
    )
    output = Layer(
        weights=np.array([[-kp / squash, -kd / squash]]),
        biases=np.zeros(1),
        activation="linear",
    )
    return FeedforwardNetwork([hidden, output])


def build_closed_loop() -> ContinuousSystem:
    """Plant x' = f_p(x, u) closed with the NN (Eq. 4): u = h(g(x)).

    Deliberately *not* the registered ``pendulum`` scenario: a lighter,
    longer, less-damped pendulum under softer gains — the point is
    registering a workload of your own next to the builtins.
    """
    plant = inverted_pendulum_plant(mass=0.3, length=0.7, damping=0.05)
    return compose(plant, build_controller(), name="my-pendulum+pd-nn")


def main() -> None:
    # 1. Inspect the symbolic closed loop and sanity-simulate it.
    system = build_closed_loop()
    print("closed loop:", system)
    trace = system.simulator().simulate(np.array([0.4, 0.0]), 6.0, 0.01)
    print(
        f"simulation from theta=0.4: final state {trace.final_state.round(4)} "
        f"(max |theta| = {np.abs(trace.states[:, 0]).max():.3f})"
    )

    # 2. Package the safety question as a registered scenario: from
    #    |theta|, |omega| <= 0.15, never reach the unsafe envelope
    #    outside |theta| < 1.0 rad, |omega| < 3.0 rad/s.
    scenario = api.register_scenario(
        api.Scenario(
            name="my-pendulum",
            description="hand-built pendulum workload from examples/custom_plant.py",
            system_factory=build_closed_loop,
            initial_set=Rectangle([-0.15, -0.15], [0.15, 0.15]),
            unsafe_set=RectangleComplement(Rectangle([-1.0, -3.0], [1.0, 3.0])),
        )
    )
    print("\nregistered scenarios:", ", ".join(api.scenario_names()))

    # 3. One call runs the full Figure-1 pipeline on it.
    artifact = api.run(scenario.name)
    print(f"\nstatus: {artifact.status}")
    if not artifact.verified:
        raise SystemExit(f"verification incomplete: {artifact.status}")

    cert = artifact.report.certificate
    print(f"barrier level: {cert.level:.6g}")
    print("W(x) =", to_infix(cert.w_expr, 100))
    check = cert.verify()
    print(
        "conditions (5)/(6)/(7):",
        check.condition5.verdict.value,
        check.condition6.verdict.value,
        check.condition7.verdict.value,
    )
    print("\npendulum + NN controller PROVEN safe for unbounded time")


if __name__ == "__main__":
    main()
