"""Simulation engine: integrators, traces, samplers, and the driver."""

from .integrators import (
    DormandPrince45,
    EulerIntegrator,
    FixedStepIntegrator,
    RK4Integrator,
    euler_step,
    get_integrator,
    rk4_step,
)
from .sampling import (
    sample_boundary,
    sample_grid,
    sample_latin_hypercube,
    sample_uniform,
)
from .simulator import Simulator, StopCondition
from .trace import Trace

__all__ = [
    "DormandPrince45",
    "EulerIntegrator",
    "FixedStepIntegrator",
    "RK4Integrator",
    "Simulator",
    "StopCondition",
    "Trace",
    "euler_step",
    "get_integrator",
    "rk4_step",
    "sample_boundary",
    "sample_grid",
    "sample_latin_hypercube",
    "sample_uniform",
]
