"""SmtResult / SolverStats record tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.intervals import Box
from repro.smt import SmtResult, SolverStats, Verdict


class TestSolverStats:
    def test_merge_accumulates(self):
        a = SolverStats(boxes_processed=10, boxes_pruned=4, max_depth=3)
        b = SolverStats(boxes_processed=5, boxes_pruned=1, max_depth=7)
        a.merge(b)
        assert a.boxes_processed == 15
        assert a.boxes_pruned == 5
        assert a.max_depth == 7

    def test_merge_elapsed(self):
        a = SolverStats(elapsed_seconds=1.0)
        a.merge(SolverStats(elapsed_seconds=2.5))
        assert a.elapsed_seconds == pytest.approx(3.5)


class TestSmtResult:
    def test_verdict_flags(self):
        unsat = SmtResult(Verdict.UNSAT, 1e-3)
        assert unsat.is_unsat and not unsat.is_delta_sat
        sat = SmtResult(Verdict.DELTA_SAT, 1e-3, witness=np.zeros(2))
        assert sat.is_delta_sat and not sat.is_unsat
        unknown = SmtResult(Verdict.UNKNOWN, 1e-3)
        assert not unknown.is_unsat and not unknown.is_delta_sat

    def test_str_with_witness(self):
        result = SmtResult(
            Verdict.DELTA_SAT,
            1e-3,
            witness=np.array([1.0, 2.0]),
            witness_box=Box.from_bounds([0.9, 1.9], [1.1, 2.1]),
        )
        text = str(result)
        assert "delta-sat" in text
        assert "1." in text

    def test_str_unsat(self):
        assert "unsat" in str(SmtResult(Verdict.UNSAT, 1e-3))
