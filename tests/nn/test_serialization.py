"""Network JSON serialization tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn import (
    FeedforwardNetwork,
    Layer,
    controller_network,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.fixture
def net():
    return controller_network(6, rng=np.random.default_rng(0))


class TestRoundtrip:
    def test_dict_roundtrip(self, net):
        rebuilt = network_from_dict(network_to_dict(net))
        assert np.allclose(rebuilt.get_parameters(), net.get_parameters())
        assert rebuilt.layers[0].activation.name == "tansig"

    def test_file_roundtrip(self, net, tmp_path):
        path = tmp_path / "controller.json"
        save_network(net, path)
        rebuilt = load_network(path)
        y = np.array([0.3, -0.2])
        assert np.allclose(rebuilt.forward(y), net.forward(y))

    def test_file_is_plain_json(self, net, tmp_path):
        path = tmp_path / "controller.json"
        save_network(net, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-ffnn-v1"
        assert len(payload["layers"]) == 2


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_network(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_network(path)

    def test_wrong_format_tag(self, net):
        payload = network_to_dict(net)
        payload["format"] = "other-v9"
        with pytest.raises(SerializationError):
            network_from_dict(payload)

    def test_missing_layers(self):
        with pytest.raises(SerializationError):
            network_from_dict({"format": "repro-ffnn-v1"})

    def test_empty_layers(self):
        with pytest.raises(SerializationError):
            network_from_dict({"format": "repro-ffnn-v1", "layers": []})

    def test_malformed_layer(self, net):
        payload = network_to_dict(net)
        del payload["layers"][0]["biases"]
        with pytest.raises(SerializationError):
            network_from_dict(payload)

    def test_non_dict_payload(self):
        with pytest.raises(SerializationError):
            network_from_dict([1, 2, 3])  # type: ignore[arg-type]
