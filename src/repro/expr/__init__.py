"""Symbolic expressions: the modeling language of the library.

Vector fields, controllers, and barrier templates are all expressions.
They evaluate numerically, evaluate soundly over interval boxes, compile
to batched tapes for the δ-SAT solver, differentiate symbolically, and
print to infix or SMT-LIB.
"""

from .build import (
    absolute,
    atan,
    const,
    cos,
    dot,
    exp,
    log,
    maximum,
    minimum,
    relu,
    sigmoid,
    sin,
    sqrt,
    sum_expr,
    tan,
    tanh,
    var,
    variables,
)
from .compile import CompiledExpression, compile_expression
from .differentiate import differentiate, gradient
from .evaluate import evaluate, evaluate_box, evaluate_box_array
from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    as_expr,
    count_nodes,
    postorder,
    variables_of,
)
from .printer import to_infix, to_smtlib
from .simplify import simplify, structurally_equal
from .substitute import substitute

__all__ = [
    "Add",
    "CompiledExpression",
    "Const",
    "Div",
    "Expr",
    "Max2",
    "Min2",
    "Mul",
    "Neg",
    "Pow",
    "Sub",
    "Unary",
    "Var",
    "absolute",
    "as_expr",
    "atan",
    "compile_expression",
    "const",
    "cos",
    "count_nodes",
    "differentiate",
    "dot",
    "evaluate",
    "evaluate_box",
    "evaluate_box_array",
    "exp",
    "gradient",
    "log",
    "maximum",
    "minimum",
    "postorder",
    "relu",
    "sigmoid",
    "simplify",
    "sin",
    "sqrt",
    "structurally_equal",
    "substitute",
    "sum_expr",
    "tan",
    "tanh",
    "to_infix",
    "to_smtlib",
    "var",
    "variables",
    "variables_of",
]
