#!/usr/bin/env python
"""Quickstart: prove an NN-controlled vehicle safe in under a minute.

Builds the paper's case study — a Dubins car tracking a straight line
under a tansig neural-network steering controller — and runs the full
verification pipeline:

1. define the closed-loop error dynamics;
2. synthesize a candidate barrier generator from simulations (LP);
3. verify the barrier conditions with the δ-SAT solver;
4. print the certificate and double-check it.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro.barrier import (
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    VerificationProblem,
    verify_system,
)
from repro.dynamics import error_dynamics_system
from repro.expr import to_infix
from repro.learning import proportional_controller_network


def main() -> None:
    # 1. A 10-neuron tansig controller u = h(d_err, theta_err).  Swap in
    #    repro.learning.train_paper_controller(...) to train one with
    #    CMA-ES instead of using the hand-built stabilizer.
    network = proportional_controller_network(hidden_neurons=10)
    print("controller:", network)

    # 2. The closed-loop error dynamics of the paper (Section 4.1.4):
    #    d_err' = V sin(theta_err),  theta_err' = -h(d_err, theta_err).
    system = error_dynamics_system(network, speed=1.0)

    # 3. The safety question (Section 4.3): starting anywhere in X0,
    #    never reach U = outside the +-5 m / +-(pi/2 - 0.1) rad envelope.
    problem = VerificationProblem(
        system,
        initial_set=Rectangle([-1.0, -math.pi / 16], [1.0, math.pi / 16]),
        unsafe_set=RectangleComplement(
            Rectangle([-5.0, -(math.pi / 2 - 0.1)], [5.0, math.pi / 2 - 0.1])
        ),
    )

    # 4. Run the Figure-1 procedure.
    report = verify_system(problem, config=SynthesisConfig(seed=0))
    print(f"\nstatus: {report.status.value}")
    print(f"candidate iterations: {report.candidate_iterations}")
    print(
        f"time: LP {report.lp_seconds:.2f}s + SMT {report.query_seconds:.2f}s "
        f"+ other {report.other_seconds:.2f}s = {report.total_seconds:.2f}s"
    )

    if not report.verified:
        raise SystemExit("verification did not complete — try more traces")

    certificate = report.certificate
    print(f"\nbarrier certificate: B(x) = W(x) - {certificate.level:.6g}")
    print("W(x) =", to_infix(certificate.w_expr, max_length=100))

    # 5. Independent re-check of all three barrier conditions.
    check = certificate.verify()
    print(
        "\nre-verification:",
        f"(5) {check.condition5.verdict.value},",
        f"(6) {check.condition6.verdict.value},",
        f"(7) {check.condition7.verdict.value}",
    )
    assert check.all_unsat, "certificate failed re-verification"

    # 6. The certificate is a *proof*, but sanity-check with simulation:
    #    a trajectory from an X0 corner must stay inside the level set.
    trace = system.simulator().simulate(
        np.array([1.0, math.pi / 16]), duration=20.0, dt=0.05
    )
    w_along = certificate.w_values(trace.states)
    print(
        f"\nsimulated corner trajectory: max W = {w_along.max():.4f} "
        f"<= level {certificate.level:.4f} -> stays certified-safe"
    )
    assert w_along.max() <= certificate.level + 1e-9
    print("\nSystem proven safe for unbounded time.")


if __name__ == "__main__":
    main()
