"""Ablation: activation functions beyond ReLU.

A headline claim of the paper is that the method handles *arbitrary
nonlinear activations* (unlike ReLU-only SMT encodings).  This ablation
verifies controllers built from tansig and logsig hidden layers through
the identical pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_ablation, run_activation_comparison


def test_activation_comparison(benchmark, emit):
    def run():
        return run_activation_comparison(hidden_neurons=10)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_activation",
        format_ablation(rows, "activation-function comparison (Nh=10)"),
    )

    by_label = {row.label: row for row in rows}
    # Both smooth nonlinear activations verify through the same pipeline.
    assert by_label["activation=tansig"].status == "verified"
    assert by_label["activation=logsig"].status == "verified"
