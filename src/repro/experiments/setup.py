"""Canonical case-study setup (Section 4.3 constants).

The definitions moved to :mod:`repro.api.scenario` — the single public
home of scenario setup — and are re-exported here so existing imports
(``from repro.experiments.setup import paper_problem``) keep working.
"""

from __future__ import annotations

from ..api.scenario import (
    EPSILON,
    GAMMA,
    SPEED,
    case_study_controller,
    paper_initial_set,
    paper_problem,
    paper_unsafe_set,
)

__all__ = [
    "EPSILON",
    "GAMMA",
    "SPEED",
    "paper_initial_set",
    "paper_unsafe_set",
    "paper_problem",
    "case_study_controller",
]
