"""Barrier certificates and their verification conditions.

A :class:`BarrierCertificate` packages the verified artifact: the
generator function ``W``, the level ``l``, and ``B(x) = W(x) - l``,
together with the machinery to (re-)check the paper's three conditions

(5) ``∃x ∈ D \\ X0 : ∇W(x)·f(x) >= -gamma``      — must be UNSAT
(6) ``∃x ∈ X0 : W(x) > l``                        — must be UNSAT
(7) ``∃x : W(x) <= l ∧ x ∈ U``                    — must be UNSAT

against the δ-SAT solver.  :meth:`BarrierCertificate.verify` re-runs all
three and returns a :class:`CertificateCheck` report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dynamics import ContinuousSystem
from ..errors import GeometryError
from ..expr import Expr, compile_expression, gradient, simplify, sum_expr
from ..smt import (
    IcpConfig,
    SmtResult,
    Subproblem,
    ge,
    gt,
    le,
)
from .levelset import ellipsoid_bounding_rectangle, quadratic_forms
from .sets import Halfspace, Rectangle, RectangleComplement, box_difference
from .templates import QuadraticTemplate

__all__ = [
    "VerificationProblem",
    "lie_derivative_expr",
    "condition5_subproblems",
    "condition6_subproblems",
    "condition7_subproblems",
    "CertificateCheck",
    "BarrierCertificate",
]


@dataclass
class VerificationProblem:
    """The safety question: system + initial set + unsafe set + domain.

    ``domain`` is the rectangle whose interior (minus ``X0`` and ``U``)
    is the paper's search region ``D``.  In the case study it equals the
    unsafe set's inner rectangle, so ``D = (X0 ∪ U)'`` exactly.
    """

    system: ContinuousSystem
    initial_set: Rectangle
    unsafe_set: RectangleComplement
    domain: Rectangle | None = None

    def __post_init__(self) -> None:
        n = self.system.dimension
        if self.initial_set.dimension != n or self.unsafe_set.dimension != n:
            raise GeometryError("set dimensions do not match the system")
        if self.domain is None:
            self.domain = self.unsafe_set.safe_rectangle
        if self.domain.dimension != n:
            raise GeometryError("domain dimension does not match the system")
        inner = self.unsafe_set.safe_rectangle
        if not (
            inner.contains(self.initial_set.lower)
            and inner.contains(self.initial_set.upper)
        ):
            raise GeometryError("the initial set must lie inside the safe rectangle")

    @property
    def state_names(self) -> list[str]:
        """State variable names (column order everywhere)."""
        return self.system.state_names


def lie_derivative_expr(w_expr: Expr, system: ContinuousSystem) -> Expr:
    """Symbolic ``∇W(x) · f(x)``."""
    grads = gradient(w_expr, system.state_names)
    terms = [g * f for g, f in zip(grads, system.field_exprs)]
    return simplify(sum_expr(terms))


def condition5_subproblems(
    w_expr: Expr,
    problem: VerificationProblem,
    gamma: float,
) -> list[Subproblem]:
    """Eq. (5): ``∇W·f >= -gamma`` somewhere in ``D \\ X0``.

    The search region ``domain \\ X0`` is covered exactly by boxes, so
    the membership constraints reduce to the single Lie-derivative
    inequality per box.
    """
    lie = lie_derivative_expr(w_expr, problem.system)
    constraint = ge(lie, -float(gamma), name="lie-derivative")
    regions = box_difference(problem.domain, problem.initial_set)
    return [
        Subproblem([constraint], region, label=f"eq5-box{i}")
        for i, region in enumerate(regions)
    ]


def condition6_subproblems(
    w_expr: Expr, problem: VerificationProblem, level: float
) -> list[Subproblem]:
    """Eq. (6): some point of ``X0`` escapes the level set (``W > l``)."""
    constraint = gt(w_expr, float(level), name="outside-level-set")
    return [Subproblem([constraint], problem.initial_set.to_box(), label="eq6")]


def condition7_subproblems(
    w_expr: Expr,
    problem: VerificationProblem,
    level: float,
    level_region: Rectangle,
) -> list[Subproblem]:
    """Eq. (7): the level set meets the unsafe set.

    ``level_region`` is a bounding rectangle of ``{W <= l}`` (for
    quadratic ``W``, the exact ellipsoid bounding box); each unsafe
    halfspace contributes one bounded subproblem: the part of the level
    region on the unsafe side of the facet.
    """
    inside = le(w_expr, float(level), name="inside-level-set")
    subproblems: list[Subproblem] = []
    names = problem.state_names
    for i, halfspace in enumerate(problem.unsafe_set.halfspaces()):
        region = _clip_to_halfspace(level_region, halfspace)
        if region is None:
            continue  # level region provably clear of this facet
        membership = halfspace.membership_constraint(names)
        subproblems.append(
            Subproblem([inside, membership], region.to_box(), label=f"eq7-hs{i}")
        )
    return subproblems


def _clip_to_halfspace(region: Rectangle, halfspace: Halfspace) -> Rectangle | None:
    """Intersect a rectangle with an *axis-aligned* halfspace.

    Unsafe sets built from rectangle complements always have axis-aligned
    facets; general halfspaces fall back to the whole rectangle (sound,
    just less tight).
    """
    normal = halfspace.normal
    nonzero = np.flatnonzero(normal)
    if len(nonzero) != 1:
        return region
    axis = int(nonzero[0])
    coefficient = normal[axis]
    bound = halfspace.offset / coefficient
    lower = region.lower.copy()
    upper = region.upper.copy()
    if coefficient > 0:  # x_axis >= bound
        lower[axis] = max(lower[axis], bound)
    else:  # x_axis <= bound
        upper[axis] = min(upper[axis], bound)
    if lower[axis] >= upper[axis]:
        return None
    return Rectangle(lower, upper)


@dataclass
class CertificateCheck:
    """Verdicts of the three conditions for one certificate."""

    condition5: SmtResult
    condition6: SmtResult
    condition7: SmtResult

    @property
    def all_unsat(self) -> bool:
        """True when all three checks prove their condition."""
        return (
            self.condition5.is_unsat
            and self.condition6.is_unsat
            and self.condition7.is_unsat
        )


class BarrierCertificate:
    """A proven (or candidate) barrier ``B(x) = W(x) - l``."""

    def __init__(
        self,
        w_expr: Expr,
        level: float,
        problem: VerificationProblem,
        gamma: float,
        template: QuadraticTemplate | None = None,
        coefficients: np.ndarray | None = None,
    ):
        self.w_expr = w_expr
        self.level = float(level)
        self.problem = problem
        self.gamma = float(gamma)
        self.template = template
        self.coefficients = (
            None if coefficients is None else np.asarray(coefficients, dtype=float)
        )
        self._w_tape = compile_expression(w_expr, problem.state_names)

    @property
    def barrier_expr(self) -> Expr:
        """``B(x) = W(x) - l``."""
        return self.w_expr - self.level

    def w_values(self, points: np.ndarray) -> np.ndarray:
        """Numeric ``W`` at points."""
        return self._w_tape.eval_points(np.atleast_2d(points))

    def barrier_values(self, points: np.ndarray) -> np.ndarray:
        """Numeric ``B = W - l`` at points."""
        return self.w_values(points) - self.level

    def level_set_contains(self, point: Sequence[float]) -> bool:
        """True when the point lies in ``L = {W <= l}`` (certified safe)."""
        return float(self.w_values(np.asarray(point)[None, :])[0]) <= self.level

    def level_region(self, padding: float = 1e-9) -> Rectangle:
        """Bounding rectangle of the level set (quadratic templates only)."""
        if self.template is None or self.coefficients is None:
            raise GeometryError(
                "level_region requires the quadratic template and coefficients"
            )
        p_matrix, q_vector = quadratic_forms(self.template, self.coefficients)
        return ellipsoid_bounding_rectangle(p_matrix, q_vector, self.level, padding)

    def verify(
        self,
        icp_config: IcpConfig | None = None,
        engine: "str | object | None" = None,
    ) -> CertificateCheck:
        """Re-run the three SMT conditions from scratch.

        ``engine`` selects the δ-SAT backend (a registered engine name or
        :class:`~repro.engine.Engine`); the default is ``"native"``'s
        serial dispatch.
        """
        # Imported here: repro.engine's builtin backends wrap this
        # package's solvers, so a module-level import would be circular.
        from ..engine import resolve_engine

        smt = resolve_engine(engine).smt
        names = self.problem.state_names
        result5 = smt.check(
            condition5_subproblems(self.w_expr, self.problem, self.gamma),
            names,
            icp_config,
        )
        result6 = smt.check(
            condition6_subproblems(self.w_expr, self.problem, self.level),
            names,
            icp_config,
        )
        result7 = smt.check(
            condition7_subproblems(
                self.w_expr, self.problem, self.level, self.level_region()
            ),
            names,
            icp_config,
        )
        return CertificateCheck(result5, result6, result7)

    def __repr__(self) -> str:
        return f"<BarrierCertificate level={self.level:.6g} gamma={self.gamma:g}>"
