"""Symbolic expression AST.

Expressions are immutable DAG nodes with operator overloading, so the
closed-loop vector fields, neural-network outputs, and barrier templates
can all be written in natural Python and then evaluated numerically,
evaluated over intervals, differentiated symbolically, simplified, and
handed to the δ-SAT solver.

The node zoo is intentionally small and closed:

* :class:`Const`, :class:`Var` — leaves;
* :class:`Add`, :class:`Sub`, :class:`Mul`, :class:`Div` — binary arithmetic;
* :class:`Neg` — unary minus;
* :class:`Pow` — integer powers only (keeps interval/diff semantics exact);
* :class:`Unary` — table-driven elementary functions (sin, cos, tan,
  tanh, sigmoid, exp, log, sqrt, abs, atan);
* :class:`Min2`, :class:`Max2` — binary min/max (for ReLU-style pieces).

Deep/wide expressions (e.g. thousand-neuron networks) are handled by the
iterative walkers in :mod:`repro.expr.evaluate` — nothing here recurses.
"""

from __future__ import annotations

from ..errors import ExpressionError

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Neg",
    "Pow",
    "Unary",
    "Min2",
    "Max2",
    "UNARY_OPS",
    "as_expr",
    "postorder",
    "variables_of",
    "count_nodes",
]

#: Names of supported elementary functions for :class:`Unary` nodes.
UNARY_OPS = (
    "sin",
    "cos",
    "tan",
    "tanh",
    "sigmoid",
    "exp",
    "log",
    "sqrt",
    "abs",
    "atan",
)


class Expr:
    """Base class of all expression nodes.

    Supports Python arithmetic operators, which build new nodes.  Nodes
    compare by identity (they form a DAG); use
    :func:`repro.expr.simplify.structurally_equal` for structural tests.
    """

    __slots__ = ()

    #: subclasses set this to their child tuple attribute names
    _child_slots: tuple[str, ...] = ()

    def children(self) -> tuple["Expr", ...]:
        """Child nodes in positional order."""
        return tuple(getattr(self, slot) for slot in self._child_slots)

    # ------------------------------------------------------------------
    # Operator overloading
    # ------------------------------------------------------------------
    def __add__(self, other: "Expr | float") -> "Expr":
        return Add(self, as_expr(other))

    def __radd__(self, other: "Expr | float") -> "Expr":
        return Add(as_expr(other), self)

    def __sub__(self, other: "Expr | float") -> "Expr":
        return Sub(self, as_expr(other))

    def __rsub__(self, other: "Expr | float") -> "Expr":
        return Sub(as_expr(other), self)

    def __mul__(self, other: "Expr | float") -> "Expr":
        return Mul(self, as_expr(other))

    def __rmul__(self, other: "Expr | float") -> "Expr":
        return Mul(as_expr(other), self)

    def __truediv__(self, other: "Expr | float") -> "Expr":
        return Div(self, as_expr(other))

    def __rtruediv__(self, other: "Expr | float") -> "Expr":
        return Div(as_expr(other), self)

    def __neg__(self) -> "Expr":
        return Neg(self)

    def __pow__(self, exponent: int) -> "Expr":
        return Pow(self, exponent)

    def __repr__(self) -> str:
        from .printer import to_infix  # local import avoids a cycle

        return f"<{type(self).__name__}: {to_infix(self, max_length=80)}>"

    # Hash/eq by identity: expressions form DAGs and are interned by id
    # in every walker's memo table.
    __hash__ = object.__hash__


class Const(Expr):
    """A real constant leaf."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        value = float(value)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Const is immutable")


class Var(Expr):
    """A named real variable leaf."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ExpressionError(f"variable name must be a non-empty string: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Var is immutable")


class _Binary(Expr):
    __slots__ = ("left", "right")
    _child_slots = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        _require_expr(left)
        _require_expr(right)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")


class Add(_Binary):
    """``left + right``."""

    __slots__ = ()


class Sub(_Binary):
    """``left - right``."""

    __slots__ = ()


class Mul(_Binary):
    """``left * right``."""

    __slots__ = ()


class Div(_Binary):
    """``left / right``."""

    __slots__ = ()


class Min2(_Binary):
    """``min(left, right)``."""

    __slots__ = ()


class Max2(_Binary):
    """``max(left, right)``."""

    __slots__ = ()


class Neg(Expr):
    """``-child``."""

    __slots__ = ("child",)
    _child_slots = ("child",)

    def __init__(self, child: Expr):
        _require_expr(child)
        object.__setattr__(self, "child", child)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Neg is immutable")


class Pow(Expr):
    """``base ** exponent`` with a literal integer exponent."""

    __slots__ = ("base", "exponent")
    _child_slots = ("base",)

    def __init__(self, base: Expr, exponent: int):
        _require_expr(base)
        if not isinstance(exponent, int) or isinstance(exponent, bool):
            raise ExpressionError(
                f"Pow exponent must be a Python int, got {exponent!r}; "
                "use exp/log for real exponents"
            )
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "exponent", exponent)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Pow is immutable")


class Unary(Expr):
    """Elementary function application ``op(child)``.

    ``op`` must be one of :data:`UNARY_OPS`.
    """

    __slots__ = ("op", "child")
    _child_slots = ("child",)

    def __init__(self, op: str, child: Expr):
        if op not in UNARY_OPS:
            raise ExpressionError(f"unknown unary op {op!r}; supported: {UNARY_OPS}")
        _require_expr(child)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "child", child)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Unary is immutable")


def _require_expr(node: object) -> None:
    if not isinstance(node, Expr):
        raise ExpressionError(
            f"expected an Expr, got {node!r}; wrap literals with as_expr()"
        )


def as_expr(value: "Expr | float | int") -> Expr:
    """Coerce a Python number to :class:`Const` (passes expressions through)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise ExpressionError("booleans are not expression values")
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise ExpressionError(f"cannot coerce {value!r} to an expression")


def postorder(root: Expr) -> list[Expr]:
    """All DAG nodes reachable from ``root`` in child-before-parent order.

    Iterative (no recursion) and deduplicated: each shared subexpression
    appears exactly once.
    """
    order: list[Expr] = []
    visited: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for child in node.children():
            if id(child) not in visited:
                stack.append((child, False))
    return order


def variables_of(root: Expr) -> list[str]:
    """Sorted names of all variables appearing under ``root``."""
    names = {node.name for node in postorder(root) if isinstance(node, Var)}
    return sorted(names)


def count_nodes(root: Expr) -> int:
    """Number of distinct DAG nodes reachable from ``root``."""
    return len(postorder(root))
