#!/usr/bin/env python
"""Train a steering controller with CMA-ES, then prove it safe.

Reproduces the paper's full workflow (Sections 4.2-4.3) end to end:

1. direct policy search: CMA-ES optimizes a tansig network's weights
   against the quadratic tracking cost J on a piecewise-linear path
   (Figure 4's training setup, scaled down for quick runs);
2. validation rollout on the training path;
3. barrier-certificate verification of the trained controller on the
   straight-line error dynamics (Figure 5's setting).

Run:  python examples/train_and_verify.py [--paper-scale]

--paper-scale uses the published population size (152) and iteration
count (50); expect several minutes.
"""

import argparse
import math

import numpy as np

from repro.barrier import SynthesisConfig, verify_system
from repro.experiments import paper_problem
from repro.learning import (
    figure4_training_path,
    rollout,
    train_paper_controller,
    training_start_state,
)
from repro.nn import save_network


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's CMA-ES settings (popsize 152, 50 iterations)",
    )
    parser.add_argument("--neurons", type=int, default=10)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--save", type=str, default="", help="save trained net JSON")
    args = parser.parse_args()

    population = 152 if args.paper_scale else 24
    iterations = 50 if args.paper_scale else 30

    # ------------------------------------------------------------------
    # 1. Policy search (Section 4.2).
    # ------------------------------------------------------------------
    print(
        f"training {args.neurons}-neuron tansig controller "
        f"(CMA-ES popsize={population}, iterations={iterations}) ..."
    )
    result = train_paper_controller(
        hidden_neurons=args.neurons,
        seed=args.seed,
        population_size=population,
        max_iterations=iterations,
    )
    history = result.cmaes.history
    print(f"cost J: {history[0]:.1f} -> {history[-1]:.1f} over {len(history)} iters")

    # ------------------------------------------------------------------
    # 2. Validation rollout on the training path.
    # ------------------------------------------------------------------
    path = figure4_training_path()
    start = training_start_state(path)
    run = rollout(result.network, path, start, steps=400, dt=0.35)
    print(
        f"tracking: mean |d_err| = {np.mean(np.abs(run.d_errs)):.3f} m, "
        f"end-point error = {np.linalg.norm(run.states[-1, :2] - path.end_point):.3f} m"
    )

    if args.save:
        save_network(result.network, args.save)
        print(f"saved controller to {args.save}")

    # ------------------------------------------------------------------
    # 3. Safety verification (Section 4.3).
    # ------------------------------------------------------------------
    print("\nverifying the trained controller on the straight-line error dynamics ...")
    problem = paper_problem(result.network)
    report = verify_system(problem, config=SynthesisConfig(seed=args.seed))
    print(f"status: {report.status.value}")
    print(
        f"iterations: {report.candidate_iterations}, "
        f"LP {report.lp_seconds:.2f}s, SMT {report.query_seconds:.2f}s, "
        f"total {report.total_seconds:.2f}s"
    )
    if report.verified:
        cert = report.certificate
        print(f"certified barrier level: {cert.level:.6g}")
        print("the trained controller is PROVEN safe for unbounded time")
    else:
        print(
            "not verified — training does not guarantee verifiability; "
            "re-run with a different seed or more training iterations"
        )


if __name__ == "__main__":
    main()
