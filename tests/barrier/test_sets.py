"""Set-geometry tests, including the box_difference cover property."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.barrier import Halfspace, Rectangle, RectangleComplement, box_difference
from repro.errors import GeometryError
from repro.smt import to_dnf


class TestRectangle:
    def test_validation(self):
        with pytest.raises(GeometryError):
            Rectangle([1.0], [1.0])  # degenerate
        with pytest.raises(GeometryError):
            Rectangle([1.0, 0.0], [0.0])
        with pytest.raises(GeometryError):
            Rectangle([], [])

    def test_contains(self):
        rect = Rectangle([-1, -1], [1, 1])
        assert rect.contains([0, 0])
        assert rect.contains([1, 1])
        assert not rect.contains([1.01, 0])
        assert rect.contains([1.01, 0], tol=0.02)

    def test_vertices(self):
        rect = Rectangle([-1, -2], [1, 2])
        vertices = rect.vertices()
        assert vertices.shape == (4, 2)
        assert {tuple(v) for v in vertices} == {
            (-1, -2), (-1, 2), (1, -2), (1, 2)
        }

    def test_center(self):
        assert np.allclose(Rectangle([0, 0], [2, 4]).center(), [1, 2])

    def test_to_box_roundtrip(self):
        rect = Rectangle([-1, 0], [1, 3])
        box = rect.to_box()
        assert np.allclose(box.lower(), rect.lower)
        assert np.allclose(box.upper(), rect.upper)

    def test_membership_constraints(self):
        rect = Rectangle([-1, -2], [1, 2])
        constraints = rect.membership_constraints(["x", "y"])
        assert len(constraints) == 4
        inside = [0.0, 0.0]
        outside = [3.0, 0.0]
        assert all(c.satisfied_at(inside, ["x", "y"]) for c in constraints)
        assert not all(c.satisfied_at(outside, ["x", "y"]) for c in constraints)

    def test_complement_formula(self):
        rect = Rectangle([-1, -2], [1, 2])
        dnf = to_dnf(rect.complement_formula(["x", "y"]))
        assert len(dnf) == 4

        def in_complement(p):
            return any(
                all(c.satisfied_at(p, ["x", "y"]) for c in conj) for conj in dnf
            )

        assert not in_complement([0.0, 0.0])
        assert in_complement([2.0, 0.0])
        assert in_complement([0.0, -3.0])

    def test_halfspaces(self):
        rect = Rectangle([-1, -2], [1, 2])
        spaces = rect.halfspaces()
        assert len(spaces) == 4
        outside_point = [5.0, 0.0]
        assert any(h.contains(outside_point) for h in spaces)
        inside_point = [0.0, 0.0]
        assert not any(h.contains(inside_point) for h in spaces)

    def test_inflate(self):
        rect = Rectangle([0, 0], [1, 1]).inflate(0.5)
        assert rect.contains([-0.5, 1.5])

    def test_name_count_check(self):
        with pytest.raises(GeometryError):
            Rectangle([0, 0], [1, 1]).membership_constraints(["x"])


class TestHalfspace:
    def test_validation(self):
        with pytest.raises(GeometryError):
            Halfspace([0.0, 0.0], 1.0)

    def test_contains(self):
        h = Halfspace([1.0, 0.0], 2.0)  # x >= 2
        assert h.contains([3.0, 0.0])
        assert not h.contains([1.0, 0.0])
        assert h.contains([1.95, 0.0], tol=0.1)

    def test_membership_constraint(self):
        h = Halfspace([0.0, -1.0], 0.5)  # -y >= 0.5, i.e. y <= -0.5
        c = h.membership_constraint(["x", "y"])
        assert c.satisfied_at([0.0, -1.0], ["x", "y"])
        assert not c.satisfied_at([0.0, 0.0], ["x", "y"])


class TestRectangleComplement:
    def test_contains_is_outside(self, paper_sets):
        _, unsafe, safe = paper_sets
        assert unsafe.contains([5.5, 0.0])
        assert unsafe.contains([0.0, math.pi / 2])
        assert not unsafe.contains([0.0, 0.0])

    def test_halfspace_union_equals_complement(self, paper_sets, rng):
        _, unsafe, safe = paper_sets
        points = rng.uniform([-8, -2.5], [8, 2.5], size=(300, 2))
        for p in points:
            in_union = any(h.contains(p) for h in unsafe.halfspaces())
            assert in_union == unsafe.contains(p)


class TestBoxDifference:
    def test_paper_geometry(self, paper_sets):
        x0, _, safe = paper_sets
        boxes = box_difference(safe, x0)
        assert 1 <= len(boxes) <= 4

    def test_cover_property(self, rng):
        """Every point of outer\\inner is covered; no box meets the
        inner rectangle's interior."""
        outer = Rectangle([-5, -2], [5, 2])
        inner = Rectangle([-1, -0.5], [1, 0.5])
        boxes = box_difference(outer, inner)
        points = rng.uniform(outer.lower, outer.upper, size=(500, 2))
        for p in points:
            covered = any(b.contains(p) for b in boxes)
            strictly_inside_inner = np.all(p > inner.lower) and np.all(
                p < inner.upper
            )
            strictly_inside_outer = np.all(p > outer.lower) and np.all(
                p < outer.upper
            )
            if strictly_inside_inner:
                assert not any(
                    np.all(p > b.lower()) and np.all(p < b.upper()) for b in boxes
                )
            elif strictly_inside_outer:
                assert covered

    def test_disjoint_inner(self):
        outer = Rectangle([0, 0], [1, 1])
        inner = Rectangle([5, 5], [6, 6])
        boxes = box_difference(outer, inner)
        assert len(boxes) == 1
        assert np.allclose(boxes[0].lower(), [0, 0])
        assert np.allclose(boxes[0].upper(), [1, 1])

    def test_inner_covers_outer(self):
        outer = Rectangle([0, 0], [1, 1])
        inner = Rectangle([-1, -1], [2, 2])
        assert box_difference(outer, inner) == []

    def test_inner_touches_side(self):
        outer = Rectangle([0, 0], [4, 4])
        inner = Rectangle([0, 0], [2, 2])  # shares the lower-left corner
        boxes = box_difference(outer, inner)
        total_area = sum(b.volume() for b in boxes)
        assert total_area == pytest.approx(16.0 - 4.0)

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            box_difference(Rectangle([0], [1]), Rectangle([0, 0], [1, 1]))

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5), min_size=8, max_size=8
        )
    )
    def test_area_identity(self, values):
        """area(outer \\ inner) = area(outer) - area(outer ∩ inner)."""
        v = values
        try:
            outer = Rectangle(
                [min(v[0], v[1]), min(v[2], v[3])],
                [max(v[0], v[1]) + 0.1, max(v[2], v[3]) + 0.1],
            )
            inner = Rectangle(
                [min(v[4], v[5]), min(v[6], v[7])],
                [max(v[4], v[5]) + 0.1, max(v[6], v[7]) + 0.1],
            )
        except GeometryError:
            return
        boxes = box_difference(outer, inner)
        overlap_w = max(
            0.0, min(outer.upper[0], inner.upper[0]) - max(outer.lower[0], inner.lower[0])
        )
        overlap_h = max(
            0.0, min(outer.upper[1], inner.upper[1]) - max(outer.lower[1], inner.lower[1])
        )
        outer_area = float(np.prod(outer.upper - outer.lower))
        expected = outer_area - overlap_w * overlap_h
        assert sum(b.volume() for b in boxes) == pytest.approx(expected, abs=1e-6)
