"""Frontier bound planes in POSIX shared memory, viewed as ndarrays.

The sharded ICP solver (:mod:`repro.smt.icp_sharded`) fans one batch of
frontier rows out across forked worker processes.  The bulk data —
``(capacity, dimension)`` lower/upper bound planes in, contracted
bounds and row masks out — crosses the process boundary through
:class:`multiprocessing.shared_memory.SharedMemory` segments rather
than pipes: the master writes rows once, every worker reads and writes
its contiguous row range in place, and nothing is pickled or copied per
round.

:meth:`SharedFrontier.input_view` wraps a row range of the input planes
in a :class:`~repro.intervals.BoxArray` **without copying**:
``BoxArray.__init__`` passes float64 ndarrays through as-is, so the
view's ``lo``/``hi`` alias the shared segment directly and an HC4
contraction pass reads frontier bounds straight out of shared memory.

Lifecycle: the creating (master) process owns the segments and must
call :meth:`SharedFrontier.destroy` (close + unlink) exactly once —
the sharded solver does so in a ``finally`` so cancellation and
``KeyboardInterrupt`` never orphan a segment.  Forked children inherit
the mapping and only :meth:`close <SharedFrontier.close_local>` their
side.  ``segment_names`` exposes the kernel object names so tests can
assert the segments are really gone.
"""

from __future__ import annotations

import threading
from collections import deque
from multiprocessing import shared_memory

import numpy as np

from .array import BoxArray

__all__ = ["SharedPlane", "SharedFrontier", "recent_segment_names"]

#: bounded log of segment names recently created in this process, so
#: leak auditors (the chaos gate, resilience tests) can sweep every
#: segment the run could have touched without threading names through
#: each layer.  Registration is append-only; liveness is checked by
#: attempting to attach (``SharedMemory(name=...)``), never stored.
_RECENT_SEGMENTS: "deque[str]" = deque(maxlen=4096)
_RECENT_LOCK = threading.Lock()


def _register_segment(name: str) -> None:
    with _RECENT_LOCK:
        _RECENT_SEGMENTS.append(name)


def recent_segment_names() -> tuple[str, ...]:
    """Names of segments created by this process, oldest first.

    A name appearing here says nothing about liveness — destroyed
    segments stay listed.  Auditors probe each name with
    ``SharedMemory(name=...)`` and expect ``FileNotFoundError`` once the
    owning solver has cleaned up.
    """
    with _RECENT_LOCK:
        return tuple(_RECENT_SEGMENTS)


class SharedPlane:
    """One ndarray living in its own shared-memory segment."""

    def __init__(self, shape: tuple, dtype=np.float64):
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        _register_segment(self._shm.name)

    @property
    def name(self) -> str:
        """Kernel object name of the backing segment."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        # The ndarray exports a pointer into the mapping; release it
        # first or SharedMemory.close() raises BufferError.
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, once)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-destroy guard
            pass


class SharedFrontier:
    """The sharded solver's per-batch shared planes.

    ``in_lo``/``in_hi`` carry the rows the master dispatches each round;
    workers write forward-pass verdict masks into ``alive``/``all_true``
    and contraction results into ``out_lo``/``out_hi``/``c_alive``, each
    touching only its own row range — so no two processes ever write the
    same bytes and no locking is needed.
    """

    def __init__(self, capacity: int, dimension: int):
        if capacity < 1 or dimension < 1:
            raise ValueError("capacity and dimension must be >= 1")
        self.capacity = capacity
        self.dimension = dimension
        self._planes = {
            "in_lo": SharedPlane((capacity, dimension)),
            "in_hi": SharedPlane((capacity, dimension)),
            "out_lo": SharedPlane((capacity, dimension)),
            "out_hi": SharedPlane((capacity, dimension)),
            "alive": SharedPlane((capacity,), dtype=np.bool_),
            "all_true": SharedPlane((capacity,), dtype=np.bool_),
            "c_alive": SharedPlane((capacity,), dtype=np.bool_),
        }
        self._destroyed = False

    def __getattr__(self, key: str) -> np.ndarray:
        planes = self.__dict__.get("_planes")
        if planes is not None and key in planes:
            return planes[key].array
        raise AttributeError(key)

    def input_view(self, start: int, stop: int) -> BoxArray:
        """``BoxArray`` over input rows ``[start, stop)`` — zero copies."""
        return BoxArray(self.in_lo[start:stop], self.in_hi[start:stop])

    def segment_names(self) -> tuple[str, ...]:
        """Backing segment names (for leak assertions in tests)."""
        return tuple(plane.name for plane in self._planes.values())

    def close_local(self) -> None:
        """Forked-child side: unmap without unlinking (owner cleans up)."""
        for plane in self._planes.values():
            try:
                plane.close()
            except BufferError:  # pragma: no cover - stray view in child
                pass

    def destroy(self) -> None:
        """Owner side: unmap *and* unlink every segment (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        for plane in self._planes.values():
            try:
                plane.close()
            except BufferError:  # pragma: no cover - caller kept a view
                pass
            plane.unlink()
