"""The service scheduler: queueing semantics over artifact semantics.

The scheduler is the layer between the HTTP front door and the solver
fleet.  It separates *queueing* (priorities, fairness, cancellation,
progress) from *artifact* semantics (what a result is, where it lives)
— the artifact side is entirely the content-addressed
:class:`~repro.store.ArtifactStore` the sweep runner already uses, so
results fetched through the service are byte-identical to direct
:func:`repro.api.run` artifacts of the same points.

Submission pipeline, per job:

1. expand the :class:`~repro.service.jobs.JobSpec` into parameter
   points (family grid/sample via the ``ParamSpec`` mini-language, or
   one point for a plain scenario) with the sweep runner's per-point
   seed derivation,
2. probe the store with each point's :func:`~repro.store.run_key` —
   hits resolve immediately, with **zero** worker dispatches,
3. coalesce: a miss whose key is already queued or in flight attaches
   to that computation instead of dispatching a duplicate,
4. everything else becomes a :class:`_PointTask` in the priority queue.

The dispatcher thread drains the queue into the executor — a shared
:class:`~repro.api.pool.WarmPool` of processes, or an in-process thread
pool for tests and single-machine smoke runs — keeping at most one
in-flight task per worker.  Queue order is ``(priority desc, shard,
submission order)``: the *shard* component is the integer value of the
key's first two hex digits, i.e. exactly the store's directory shards,
so consecutive dispatches touch the same shard directories (warm dentry
/ page cache) and a future multi-node router can map shard ranges to
nodes without changing queue semantics.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Mapping

from ..api.family import family_names, get_family
from ..api.pool import WarmPool, WarmupSpec
from ..api.runner import (
    RunArtifact,
    _resolve_run_engine,
    derive_scenario_seed,
    run,
)
from ..api.scenario import (
    Scenario,
    get_scenario,
    synthesis_config_to_dict,
)
from ..api.sweep import instantiate_points
from ..errors import ReproError
from ..resilience.supervisor import Backoff, incidents, record_incident
from ..store import ArtifactStore, run_key
from .events import EventBus, stage_event_dict
from .jobs import Job, JobJournal, JobSpec, JobState, JOURNAL_NAME, new_job_id

__all__ = ["Scheduler"]


def _run_point(key, scenario, config, engine, store, events_queue):
    """Worker entry point: solve one parameter point.

    Never raises — failures become error artifacts, mirroring
    :func:`repro.api.runner._execute` — and never returns the live
    report (it must not cross the process boundary).  ``events_queue``
    (optional) receives serialized stage events for the server's bus.
    """
    progress = None
    if events_queue is not None:
        def progress(event):  # noqa: ANN001 - StageEvent
            try:
                events_queue.put(stage_event_dict(event, key, scenario.name))
            except Exception:  # noqa: BLE001 - streaming is best effort
                pass
    try:
        artifact = run(
            scenario, config=config, engine=engine,
            progress=progress, cache=store if store is not None else False,
        )
    except Exception as exc:  # noqa: BLE001 - one bad point must not kill a worker
        artifact = RunArtifact(
            scenario=scenario.name,
            status="error",
            verified=False,
            error=f"{type(exc).__name__}: {exc}",
            config=synthesis_config_to_dict(config),
            engine=getattr(engine, "name", str(engine)),
        )
    artifact.report = None
    return artifact


class _PointTask:
    """One distinct computation (run key) and the job points awaiting it."""

    __slots__ = ("key", "scenario", "config", "engine", "waiters", "running")

    def __init__(self, key: str, scenario: Scenario, config, engine):
        self.key = key
        self.scenario = scenario
        self.config = config
        self.engine = engine
        #: (job_id, point index) pairs to resolve with this task's artifact
        self.waiters: list[tuple[str, int]] = []
        self.running = False

    @property
    def shard(self) -> int:
        """The store shard this key lives in (first two hex digits)."""
        return int(self.key[:2], 16)


class Scheduler:
    """Async job orchestrator over the artifact store + worker pool.

    Parameters
    ----------
    store:
        The :class:`~repro.store.ArtifactStore` backing cache probes and
        result persistence (``None`` disables both — every point runs).
    pool:
        ``True`` (default) builds a :class:`~repro.api.pool.WarmPool`
        of ``workers`` processes; a :class:`WarmPool` shares an existing
        one; ``False`` executes in-process on a thread pool (tests,
        single-machine smoke runs — no process spawn cost).
    workers:
        Parallelism (and the in-flight cap); default 2.
    events:
        An :class:`~repro.service.events.EventBus` to publish stage /
        point / job events on (``None`` disables streaming).
    journal:
        A :class:`~repro.service.jobs.JobJournal`, or ``True`` to place
        one under ``<store root>/service/journal.jsonl``; ``None``
        disables persistence.
    """

    def __init__(
        self,
        store: "ArtifactStore | None",
        pool: "WarmPool | bool" = True,
        workers: int = 2,
        events: "EventBus | None" = None,
        journal: "JobJournal | bool | None" = None,
    ):
        if workers < 1:
            raise ReproError(f"scheduler needs workers >= 1, got {workers}")
        self.store = store
        self.workers = workers
        self.events = events
        if journal is True:
            if store is None:
                raise ReproError("journal=True needs an artifact store root")
            journal = JobJournal(store.root / "service" / JOURNAL_NAME)
        self.journal: "JobJournal | None" = journal or None

        self._owns_pool = pool is True
        self._pool: "WarmPool | None" = None
        self._thread_executor: "ThreadPoolExecutor | None" = None
        if pool is False:
            self._thread_executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-service-worker"
            )
        elif isinstance(pool, WarmPool):
            self._pool = pool
        else:
            self._pool = WarmPool(workers)

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._tasks_by_key: dict[str, _PointTask] = {}
        self._heap: list[tuple[int, int, int, _PointTask]] = []
        self._seq = itertools.count()
        self._inflight = 0
        self._stopped = False
        self._retry_timers: "set[threading.Timer]" = set()

        self._events_queue = None
        self._events_stop = None
        if events is not None:
            self._events_queue = self._make_events_queue()
            self._events_stop = events.drain_from(
                self._events_queue, translate=self._translate_stage_event
            )

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_events_queue(self):
        """A queue workers can publish stage events to.

        Thread-pool execution shares the process, so a plain
        ``queue.Queue`` suffices; process pools need a picklable
        manager-proxy queue.
        """
        if self._thread_executor is not None:
            import queue

            return queue.Queue()
        import multiprocessing

        self._events_manager = multiprocessing.Manager()
        return self._events_manager.Queue()

    def _translate_stage_event(self, raw: dict) -> list[dict]:
        """Map a worker's key-addressed stage event onto waiting jobs."""
        key = raw.get("key")
        with self._lock:
            task = self._tasks_by_key.get(key)
            waiters = list(task.waiters) if task is not None else []
        return [
            {
                "type": "stage",
                "job": job_id,
                "index": index,
                "point": raw.get("point"),
                "stage": raw.get("stage"),
                "kind": raw.get("kind"),
                "iteration": raw.get("iteration"),
                "seconds": raw.get("seconds"),
            }
            for job_id, index in waiters
        ]

    @property
    def _executor(self):
        if self._thread_executor is not None:
            return self._thread_executor
        return self._pool.executor

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _expand_spec(
        self, spec: JobSpec
    ) -> tuple[list[dict], list[Scenario], list, list]:
        """Resolve a spec into (points, scenarios, configs, engines).

        Families win name collisions with scenarios (the family
        interpretation is strictly more general); a plain scenario
        target must carry no grid/samples.
        """
        if spec.target in family_names():
            family = get_family(spec.target)
            if spec.grid is None and spec.samples is None:
                points = [family.resolve_params(dict(spec.overrides or {}))]
            else:
                points = instantiate_points(
                    family, spec.grid, spec.samples, spec.seed, spec.overrides
                )
            scenarios = [family.instantiate(**point) for point in points]
        else:
            if spec.grid is not None or spec.samples is not None:
                raise ReproError(
                    f"target {spec.target!r} is not a registered family "
                    "(grids/samples need a family target)"
                )
            scenarios = [get_scenario(spec.target)]
            points = [{}]
        configs = []
        engines = []
        for scenario in scenarios:
            cfg = dataclasses.replace(
                scenario.config,
                seed=derive_scenario_seed(spec.seed, scenario.name),
            )
            configs.append(cfg)
            engines.append(_resolve_run_engine(scenario, cfg, spec.engine))
        return points, scenarios, configs, engines

    def submit(
        self,
        spec: "JobSpec | Mapping[str, object]",
        priority: int = 0,
        job_id: "str | None" = None,
    ) -> Job:
        """Queue one job; returns it with cache hits already resolved.

        Raises :class:`~repro.errors.ReproError` on an invalid spec
        (unknown target/engine, malformed grid) *before* anything is
        journaled or queued.
        """
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        points, scenarios, configs, engines = self._expand_spec(spec)
        keys = [
            run_key(scenario, config, engine.name)
            for scenario, config, engine in zip(scenarios, configs, engines)
        ]
        hits: "list[RunArtifact | None]" = [None] * len(keys)
        if self.store is not None:
            for i, key in enumerate(keys):
                hits[i] = self.store.get(key)

        job = Job(
            id=job_id or new_job_id(),
            spec=spec,
            priority=priority,
            points=[scenario.name for scenario in scenarios],
            params=[dict(point) for point in points],
            keys=list(keys),
            artifacts=[None] * len(keys),
        )
        if self._pool is not None and spec.target in family_names():
            # Best effort: pre-compile this family's kernels in workers.
            self._pool.ensure_warm(WarmupSpec(families=(spec.target,)))

        with self._cond:
            if self._stopped:
                raise ReproError("scheduler is shut down")
            if job.id in self._jobs:
                raise ReproError(f"job id {job.id!r} already exists")
            self._jobs[job.id] = job
            if self.journal is not None:
                self.journal.record_submit(job)
            for i, (key, hit) in enumerate(zip(keys, hits)):
                if hit is not None:
                    hit.cached = True
                    job.artifacts[i] = hit
                    job.cached_points += 1
                    if self.journal is not None:
                        self.journal.record_point(job.id, i, hit.status, True)
                    self._publish_point(job, i, hit)
                    continue
                task = self._tasks_by_key.get(key)
                if task is not None:
                    task.waiters.append((job.id, i))
                    job.coalesced += 1
                else:
                    task = _PointTask(key, scenarios[i], configs[i], engines[i])
                    task.waiters.append((job.id, i))
                    self._tasks_by_key[key] = task
                    heapq.heappush(
                        self._heap,
                        (-priority, task.shard, next(self._seq), task),
                    )
                    job.dispatched += 1
            if job.resolved:
                self._finalize_job(job)
            self._cond.notify_all()
        return job

    # ------------------------------------------------------------------
    # Dispatch + completion
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and (
                    not self._heap or self._inflight >= self.workers
                ):
                    self._cond.wait()
                if self._stopped:
                    return
                _, _, _, task = heapq.heappop(self._heap)
                if not task.waiters:
                    # Every waiter cancelled before dispatch.
                    self._tasks_by_key.pop(task.key, None)
                    continue
                task.running = True
                self._inflight += 1
                for job_id, _ in task.waiters:
                    job = self._jobs.get(job_id)
                    if job is not None and job.state is JobState.QUEUED:
                        job.transition(JobState.RUNNING)
                        if self.journal is not None:
                            self.journal.record_state(job.id, JobState.RUNNING)
            try:
                future: Future = self._executor.submit(
                    _run_point,
                    task.key,
                    task.scenario,
                    task.config,
                    task.engine,
                    self.store,
                    self._events_queue,
                )
            except Exception as exc:  # noqa: BLE001 - executor torn down
                self._complete_task(
                    task,
                    RunArtifact(
                        scenario=task.scenario.name,
                        status="error",
                        verified=False,
                        error=f"{type(exc).__name__}: {exc}",
                        engine=task.engine.name,
                    ),
                )
                continue
            future.add_done_callback(
                lambda f, t=task: self._on_future_done(t, f)
            )

    def _on_future_done(self, task: _PointTask, future: Future) -> None:
        try:
            artifact = future.result()
        except BaseException as exc:  # noqa: BLE001 - broken pool / cancellation
            artifact = RunArtifact(
                scenario=task.scenario.name,
                status="error",
                verified=False,
                error=f"{type(exc).__name__}: {exc}",
                engine=task.engine.name,
            )
        self._complete_task(task, artifact)

    def _complete_task(self, task: _PointTask, artifact: RunArtifact) -> None:
        with self._cond:
            self._tasks_by_key.pop(task.key, None)
            if task.running:
                task.running = False
                self._inflight -= 1
            waiters = list(task.waiters)
            task.waiters.clear()
            for job_id, index in waiters:
                job = self._jobs.get(job_id)
                if job is None or job.state.terminal:
                    continue
                job.artifacts[index] = artifact
                if self.journal is not None:
                    self.journal.record_point(
                        job.id, index, artifact.status, False
                    )
                self._publish_point(job, index, artifact)
                if job.resolved:
                    self._finalize_job(job)
            self._cond.notify_all()

    def _publish_point(self, job: Job, index: int, artifact: RunArtifact) -> None:
        if self.events is not None:
            self.events.publish(
                {
                    "type": "point",
                    "job": job.id,
                    "index": index,
                    "point": job.points[index],
                    "status": artifact.status,
                    "verified": artifact.verified,
                    "cached": bool(artifact.cached),
                    "seconds": artifact.total_seconds,
                }
            )

    def _finalize_job(self, job: Job) -> None:
        """Move a fully resolved job to its terminal state (lock held).

        Jobs with a retry budget (``spec.max_retries > 0``) intercept
        the failure path: erroring points that actually ran (cache-hit
        errors are deterministic and not retried) are cleared and
        re-queued after a jittered backoff, the job stays RUNNING, and
        only an exhausted budget dead-letters it to ``DEAD``.
        """
        failed = [
            i
            for i, a in enumerate(job.artifacts)
            if a is not None and a.status == "error"
        ]
        retryable = [
            i for i in failed if not bool(getattr(job.artifacts[i], "cached", False))
        ]
        if job.cancel_requested:
            state = JobState.CANCELLED
        elif failed:
            if retryable and job.retries < job.spec.max_retries:
                self._schedule_retry(job, retryable)
                return
            state = (
                JobState.DEAD
                if retryable and job.spec.max_retries > 0
                else JobState.FAILED
            )
            job.error = next(
                job.artifacts[i].error or job.artifacts[i].status for i in failed
            )
        else:
            state = JobState.DONE
        job.transition(state)
        if self.journal is not None:
            self.journal.record_state(job.id, state, job.error)
        if self.events is not None:
            self.events.publish(
                {
                    "type": "job",
                    "job": job.id,
                    "state": state.value,
                    "error": job.error,
                }
            )

    def _schedule_retry(self, job: Job, indexes: "list[int]") -> None:
        """Discard error artifacts and arm a backoff re-dispatch (lock held)."""
        job.retries += 1
        attempt = job.retries
        for index in indexes:
            job.artifacts[index] = None
        if self.journal is not None:
            self.journal.record_retry(job.id, attempt, indexes)
        record_incident(
            "job.retry",
            f"{job.id} retry {attempt}/{job.spec.max_retries} "
            f"({len(indexes)} points)",
        )
        if self.events is not None:
            self.events.publish(
                {
                    "type": "retry",
                    "job": job.id,
                    "attempt": attempt,
                    "points": list(indexes),
                }
            )
        delay = Backoff(base=0.2, cap=5.0, seed=attempt).delay(attempt - 1)
        timer = threading.Timer(
            delay, self._requeue_points, args=(job.id, tuple(indexes))
        )
        timer.daemon = True
        self._retry_timers = {t for t in self._retry_timers if t.is_alive()}
        self._retry_timers.add(timer)
        timer.start()

    def _requeue_points(self, job_id: str, indexes: "tuple[int, ...]") -> None:
        """Timer callback: push a retrying job's points back in the queue."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return
        try:
            # Deterministic re-expansion: same spec, same seeds, same keys.
            _, scenarios, configs, engines = self._expand_spec(job.spec)
        except ReproError as exc:
            with self._cond:
                if not job.state.terminal:
                    job.error = f"retry failed: {exc}"
                    job.transition(JobState.DEAD)
                    if self.journal is not None:
                        self.journal.record_state(job.id, JobState.DEAD, job.error)
                self._cond.notify_all()
            return
        with self._cond:
            if self._stopped or job.state.terminal:
                return
            for index in indexes:
                if index >= len(scenarios) or job.artifacts[index] is not None:
                    continue
                key = job.keys[index]
                task = self._tasks_by_key.get(key)
                if task is not None:
                    if (job.id, index) not in task.waiters:
                        task.waiters.append((job.id, index))
                    continue
                task = _PointTask(
                    key, scenarios[index], configs[index], engines[index]
                )
                task.waiters.append((job.id, index))
                self._tasks_by_key[key] = task
                heapq.heappush(
                    self._heap,
                    (-job.priority, task.shard, next(self._seq), task),
                )
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Queries + control
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ReproError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        """Every known job, newest submission first."""
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.created, reverse=True
            )

    def job_result(self, job_id: str) -> "list[RunArtifact | None]":
        """Per-point artifacts (journal-recovered jobs hydrate from the
        store by key; points that never finished stay None)."""
        job = self.job(job_id)
        with self._lock:
            artifacts = list(job.artifacts)
            keys = list(job.keys)
        if self.store is not None:
            for i, artifact in enumerate(artifacts):
                if artifact is None and i < len(keys):
                    artifacts[i] = self.store.get(keys[i])
        return artifacts

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued points are dropped, running points
        finish into the store but no longer count toward the job.

        Cancelling a terminal job is a no-op; the job is returned either
        way so callers can render its (possibly pre-existing) state.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise ReproError(f"unknown job {job_id!r}")
            if job.state.terminal:
                return job
            job.cancel_requested = True
            for index, artifact in enumerate(job.artifacts):
                if artifact is not None:
                    continue
                task = self._tasks_by_key.get(job.keys[index])
                if task is not None:
                    task.waiters = [
                        w for w in task.waiters if w != (job.id, index)
                    ]
            job.transition(JobState.CANCELLED)
            if self.journal is not None:
                self.journal.record_state(job.id, JobState.CANCELLED)
            if self.events is not None:
                self.events.publish(
                    {
                        "type": "job",
                        "job": job.id,
                        "state": JobState.CANCELLED.value,
                        "error": None,
                    }
                )
            self._cond.notify_all()
            return job

    def stats(self) -> dict:
        """Queue/fleet telemetry for the health endpoint."""
        incident_counts: dict[str, int] = {}
        for entry in incidents():
            kind = entry["kind"]
            incident_counts[kind] = incident_counts.get(kind, 0) + 1
        with self._lock:
            states = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "jobs": states,
                "queued_tasks": len(self._heap),
                "inflight_tasks": self._inflight,
                "workers": self.workers,
                "executor": "threads" if self._thread_executor else "processes",
                "retries": sum(j.retries for j in self._jobs.values()),
                "dead_jobs": states.get(JobState.DEAD.value, 0),
                "incidents": incident_counts,
            }

    def recover(self) -> list[Job]:
        """Replay the journal: keep terminal jobs, re-queue the rest.

        Re-queued jobs go through the normal submission path (same id,
        spec, priority), so points that finished before the restart
        resolve from the content-addressed store immediately.  Returns
        the jobs that were re-queued.
        """
        if self.journal is None:
            return []
        requeued: list[Job] = []
        for job_id, job in self.journal.replay().items():
            if job.state.terminal:
                with self._lock:
                    self._jobs.setdefault(job_id, job)
                continue
            try:
                requeued.append(
                    self.submit(job.spec, priority=job.priority, job_id=job_id)
                )
            except ReproError:
                # Spec no longer resolvable (e.g. unregistered family):
                # surface it as a failed job rather than dropping it.
                with self._lock:
                    job.state = JobState.FAILED
                    job.error = "recovery failed: spec no longer resolvable"
                    self._jobs.setdefault(job_id, job)
        return requeued

    def shutdown(self, wait: bool = False) -> None:
        """Stop dispatching; queued tasks are abandoned.

        ``wait=True`` blocks until in-flight tasks finish delivering.
        """
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
            timers, self._retry_timers = self._retry_timers, set()
            self._cond.notify_all()
        for timer in timers:
            timer.cancel()
        self._dispatcher.join(timeout=5.0)
        if wait:
            with self._cond:
                while self._inflight > 0:
                    self._cond.wait(timeout=0.1)
        if self._events_stop is not None:
            self._events_stop()
        if self._thread_executor is not None:
            self._thread_executor.shutdown(wait=wait, cancel_futures=True)
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
        manager = getattr(self, "_events_manager", None)
        if manager is not None:
            manager.shutdown()
