"""Integration tests: the paper's complete workflow at reduced scale.

These tests run whole pipelines — training, verification, experiment
drivers — so each one covers many modules at once.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.barrier import SynthesisConfig, SynthesisStatus, verify_system
from repro.dynamics import error_dynamics_system
from repro.experiments import (
    case_study_controller,
    paper_initial_set,
    paper_problem,
    paper_unsafe_set,
    run_figure5,
)
from repro.learning import (
    proportional_controller_network,
    train_paper_controller,
)
from repro.smt import IcpConfig


class TestSetupConstants:
    def test_paper_sets(self):
        x0 = paper_initial_set()
        assert np.allclose(x0.lower, [-1.0, -math.pi / 16])
        assert np.allclose(x0.upper, [1.0, math.pi / 16])
        unsafe = paper_unsafe_set()
        safe = unsafe.safe_rectangle
        assert np.allclose(safe.lower, [-5.0, -(math.pi / 2 - 0.1)])
        assert np.allclose(safe.upper, [5.0, math.pi / 2 - 0.1])

    def test_problem_construction(self):
        problem = paper_problem(case_study_controller(4))
        assert problem.state_names == ["derr", "thetaerr"]


class TestVerificationAcrossWidths:
    @pytest.mark.parametrize("neurons", [2, 10, 50])
    def test_hand_built_controller_verifies(self, neurons):
        problem = paper_problem(case_study_controller(neurons))
        report = verify_system(problem, config=SynthesisConfig(seed=0))
        assert report.verified, f"width {neurons}: {report.status}"
        # Table 1 shape: few iterations, query dominates LP.
        assert report.candidate_iterations <= 3

    def test_certificate_internally_consistent(self):
        problem = paper_problem(case_study_controller(10))
        report = verify_system(problem, config=SynthesisConfig(seed=0))
        cert = report.certificate
        # W must vanish at the origin and be positive elsewhere.
        assert cert.w_values(np.zeros((1, 2)))[0] == pytest.approx(0.0, abs=1e-12)
        rng = np.random.default_rng(0)
        pts = rng.uniform([-4, -1.2], [4, 1.2], size=(100, 2))
        pts = pts[np.linalg.norm(pts, axis=1) > 0.1]
        assert np.all(cert.w_values(pts) > 0.0)

    def test_lie_derivative_negative_inside_domain(self):
        problem = paper_problem(case_study_controller(10))
        report = verify_system(problem, config=SynthesisConfig(seed=0))
        candidate = report.candidate
        rng = np.random.default_rng(1)
        pts = rng.uniform([-4.9, -1.4], [4.9, 1.4], size=(200, 2))
        outside_x0 = [
            p for p in pts if not problem.initial_set.contains(p)
        ]
        lie = candidate.lie_derivative_values(
            np.array(outside_x0), problem.system
        )
        assert np.all(lie < 0.0)


class TestTrainedControllerPipeline:
    def test_train_then_verify(self):
        """The paper's full workflow: CMA-ES training, then proof."""
        result = train_paper_controller(
            hidden_neurons=6,
            seed=5,
            population_size=16,
            max_iterations=18,
            steps=260,
            dt=0.5,
        )
        # Training must have improved the cost substantially.
        assert result.cmaes.history[-1] < result.cmaes.history[0]
        problem = paper_problem(result.network)
        report = verify_system(
            problem,
            config=SynthesisConfig(seed=0, max_candidate_iterations=8),
        )
        # Trained controllers are not guaranteed verifiable, but the
        # pipeline must terminate in a defined state either way.
        assert report.status in (
            SynthesisStatus.VERIFIED,
            SynthesisStatus.NO_CANDIDATE,
            SynthesisStatus.NO_LEVEL_SET,
        )
        if report.verified:
            assert report.certificate.verify(IcpConfig(delta=1e-2)).all_unsat


class TestFigure5Integration:
    def test_figure5_claims(self):
        data = run_figure5(hidden_neurons=6, seed=0, num_trajectories=6)
        assert data.x0_corners_inside
        assert data.level_set_clear_of_unsafe
        assert len(data.trajectories) == 6
        # The ellipse boundary must lie between X0 and the unsafe set.
        boundary = data.ellipse_boundary
        x0 = paper_initial_set()
        safe = paper_unsafe_set().safe_rectangle
        for p in boundary:
            assert safe.contains(p, tol=1e-6)
        # At least one boundary point outside X0 (the set is larger).
        assert any(not x0.contains(p) for p in boundary)

    def test_figure5_trajectories_converge(self):
        data = run_figure5(hidden_neurons=6, seed=0, num_trajectories=6)
        ends = np.array(
            [t.final_state for t in data.trajectories if not t.truncated]
        )
        if len(ends):
            assert np.abs(ends).max() < 0.5


class TestGammaRole:
    def test_large_gamma_blocks_verification(self):
        """gamma so large that no controller can satisfy (5): the
        procedure must fail rather than claim safety."""
        problem = paper_problem(case_study_controller(4))
        config = SynthesisConfig(seed=0, gamma=100.0, max_candidate_iterations=3)
        report = verify_system(problem, config=config)
        assert not report.verified
