"""Property-based cross-checks of the SoA interval core against the oracle.

The scalar :class:`repro.intervals.Interval` is the soundness oracle;
every batched operation must return endpoints that *contain* the scalar
result for each member (bit-identical for the correctly-rounded ops,
within the documented ulp widening for the transcendental kernels).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import DomainError
from repro.intervals import Box, BoxArray, Interval, IntervalArray

RNG = np.random.default_rng(20260730)
N_CASES = 400


def random_endpoints(n, include_inf=True, scale=10.0):
    lo = RNG.uniform(-scale, scale, n)
    width = RNG.exponential(scale / 4.0, n)
    # sprinkle special members: points, zero-crossers, huge, unbounded
    kind = RNG.integers(0, 10, n)
    width = np.where(kind == 0, 0.0, width)  # degenerate points
    lo = np.where(kind == 1, -width / 2.0, lo)  # symmetric about zero
    hi = lo + width
    lo = np.where(kind == 2, 0.0, lo)  # touching zero from above
    hi = np.maximum(lo, hi)
    if include_inf:
        lo = np.where(kind == 3, -np.inf, lo)
        hi = np.where(kind == 4, np.inf, hi)
    return lo, hi


def scalars_of(lo, hi):
    return [Interval(float(a), float(b)) for a, b in zip(lo, hi)]


def assert_contains(arr: IntervalArray, scalars, exact=False, context=""):
    for i, s in enumerate(scalars):
        if s is None:
            continue
        a_lo, a_hi = float(arr.lo[i]), float(arr.hi[i])
        if exact:
            assert a_lo == s.lo and a_hi == s.hi, (
                f"{context}[{i}]: array [{a_lo}, {a_hi}] != scalar [{s.lo}, {s.hi}]"
            )
        else:
            assert a_lo <= s.lo and s.hi <= a_hi, (
                f"{context}[{i}]: array [{a_lo}, {a_hi}] !⊇ scalar [{s.lo}, {s.hi}]"
            )
            # the widening is documented as a few ulps, never a blowup
            if math.isfinite(s.lo):
                assert s.lo - a_lo <= 1e-9 * (1.0 + abs(s.lo))
            if math.isfinite(s.hi):
                assert a_hi - s.hi <= 1e-9 * (1.0 + abs(s.hi))


class TestBinaryOps:
    """Arithmetic whose kernels are correctly rounded: bit-identical."""

    def setup_method(self):
        self.alo, self.ahi = random_endpoints(N_CASES)
        self.blo, self.bhi = random_endpoints(N_CASES)
        self.a = IntervalArray(self.alo, self.ahi)
        self.b = IntervalArray(self.blo, self.bhi)
        self.sa = scalars_of(self.alo, self.ahi)
        self.sb = scalars_of(self.blo, self.bhi)

    def test_add(self):
        assert_contains(
            self.a + self.b,
            [x + y for x, y in zip(self.sa, self.sb)],
            exact=True,
            context="add",
        )

    def test_sub(self):
        assert_contains(
            self.a - self.b,
            [x - y for x, y in zip(self.sa, self.sb)],
            exact=True,
            context="sub",
        )

    def test_mul(self):
        assert_contains(
            self.a * self.b,
            [x * y for x, y in zip(self.sa, self.sb)],
            exact=True,
            context="mul",
        )

    def test_div(self):
        scalars = []
        for x, y in zip(self.sa, self.sb):
            if y.lo == 0.0 and y.hi == 0.0:
                scalars.append(None)  # scalar raises; array yields entire
            else:
                scalars.append(x / y)
        assert_contains(self.a / self.b, scalars, exact=True, context="div")

    def test_div_by_zero_point_is_entire(self):
        res = IntervalArray([1.0], [2.0]) / IntervalArray([0.0], [0.0])
        assert res.lo[0] == -math.inf and res.hi[0] == math.inf

    def test_min_max(self):
        assert_contains(
            self.a.min_with(self.b),
            [x.min_with(y) for x, y in zip(self.sa, self.sb)],
            exact=True,
        )
        assert_contains(
            self.a.max_with(self.b),
            [x.max_with(y) for x, y in zip(self.sa, self.sb)],
            exact=True,
        )

    def test_float_operand_broadcast(self):
        assert_contains(
            self.a + 2.5, [x + 2.5 for x in self.sa], exact=True
        )
        assert_contains(
            3.0 * self.a, [x * 3.0 for x in self.sa], exact=True
        )


class TestUnaryOps:
    def setup_method(self):
        self.lo, self.hi = random_endpoints(N_CASES)
        self.a = IntervalArray(self.lo, self.hi)
        self.s = scalars_of(self.lo, self.hi)

    def test_neg_abs_exact(self):
        assert_contains(-self.a, [-x for x in self.s], exact=True)
        assert_contains(self.a.abs(), [x.abs() for x in self.s], exact=True)

    def test_sin_cos_bit_identical(self):
        assert_contains(self.a.sin(), [x.sin() for x in self.s], exact=True)
        assert_contains(self.a.cos(), [x.cos() for x in self.s], exact=True)

    def test_sqrt(self):
        scalars = [x.sqrt() if x.hi >= 0.0 else None for x in self.s]
        res = self.a.sqrt()
        assert_contains(res, scalars, exact=True, context="sqrt")
        empty = self.hi < 0.0
        assert np.array_equal(res.empty_mask(), empty)

    def test_log(self):
        scalars = [x.log() if x.hi > 0.0 else None for x in self.s]
        res = self.a.log()
        assert_contains(res, scalars, context="log")
        assert np.array_equal(res.empty_mask(), self.hi <= 0.0)

    @pytest.mark.parametrize(
        "name", ["exp", "tanh", "sigmoid", "atan", "tan"]
    )
    def test_transcendental_containment(self, name):
        res = getattr(self.a, name)()
        scalars = [getattr(x, name)() for x in self.s]
        assert_contains(res, scalars, context=name)

    @pytest.mark.parametrize("exponent", [0, 1, 2, 3, 4, 5, -1, -2, -3])
    def test_pow_containment(self, exponent):
        res = self.a ** exponent
        scalars = [x ** exponent for x in self.s]
        assert_contains(res, scalars, context=f"pow{exponent}")

    def test_trig_near_pi_multiples(self):
        """Near-multiple-of-pi endpoints: the shared slack logic must make
        scalar and array agree bit-for-bit (the satellite fix)."""
        ks = np.arange(-12, 13, dtype=float)
        lo = ks * math.pi - 1e-13
        hi = lo + 2e-13
        arr = IntervalArray(lo, hi)
        scalars = scalars_of(lo, hi)
        assert_contains(arr.sin(), [x.sin() for x in scalars], exact=True)
        assert_contains(arr.cos(), [x.cos() for x in scalars], exact=True)
        # the images stay sound: contain the true sin/cos of the midpoint
        mid = 0.5 * (lo + hi)
        assert np.all(arr.sin().contains(np.sin(mid)))
        assert np.all(arr.cos().contains(np.cos(mid)))

    def test_tan_pole_detection_matches_scalar(self):
        lo = np.array([0.0, math.pi / 2 - 1e-13, 1.0, -0.3])
        hi = lo + np.array([0.3, 2e-13, 1.0, 0.6])
        arr = IntervalArray(lo, hi).tan()
        for i, s in enumerate(scalars_of(lo, hi)):
            st = s.tan()
            assert (arr.lo[i] == -math.inf) == (st.lo == -math.inf)
            assert (arr.hi[i] == math.inf) == (st.hi == math.inf)

    def test_reciprocal(self):
        scalars = []
        for x in self.s:
            if x.lo == 0.0 and x.hi == 0.0:
                scalars.append(None)
            else:
                scalars.append(x.reciprocal())
        assert_contains(self.a.reciprocal(), scalars, exact=True)


class TestLattice:
    def test_intersection_and_empty(self):
        a = IntervalArray([0.0, 0.0, 5.0], [1.0, 2.0, 6.0])
        b = IntervalArray([0.5, 3.0, 5.5], [1.5, 4.0, 5.6])
        got = a.intersection(b)
        assert got.interval_at(0) == Interval(0.5, 1.0)
        assert got.empty_mask().tolist() == [False, True, False]
        assert got.lo[1] == math.inf and got.hi[1] == -math.inf

    def test_hull_midpoint_width_match_scalar(self):
        lo, hi = random_endpoints(200)
        arr = IntervalArray(lo, hi)
        scalars = scalars_of(lo, hi)
        assert np.array_equal(
            arr.width(), np.array([s.width() for s in scalars])
        )
        assert np.array_equal(
            arr.midpoint(), np.array([s.midpoint() for s in scalars])
        )
        assert np.array_equal(
            arr.magnitude(), np.array([s.magnitude() for s in scalars])
        )
        assert np.array_equal(
            arr.mignitude(), np.array([s.mignitude() for s in scalars])
        )

    def test_extended_divide_hull_matches_scalar(self):
        cases = [
            # (num, den) covering: through-zero, one-sided, zero point
            ((1.0, 2.0), (-1.0, 1.0)),
            ((-2.0, -1.0), (-1.0, 2.0)),
            ((1.0, 2.0), (0.0, 1.0)),
            ((1.0, 2.0), (-1.0, 0.0)),
            ((-1.0, 1.0), (-1.0, 1.0)),
            ((0.0, 1.0), (0.0, 0.0)),
            ((1.0, 2.0), (0.0, 0.0)),
            ((1.0, 2.0), (3.0, 4.0)),
        ]
        num = IntervalArray([c[0][0] for c in cases], [c[0][1] for c in cases])
        den = IntervalArray([c[1][0] for c in cases], [c[1][1] for c in cases])
        got = num.extended_divide_hull(den)
        for i, (n, d) in enumerate(cases):
            pieces = Interval(*n).extended_divide(Interval(*d))
            if not pieces:
                assert got.empty_mask()[i], f"case {i} should be empty"
                continue
            hull = pieces[0]
            for piece in pieces[1:]:
                hull = hull.hull(piece)
            assert got.lo[i] <= hull.lo and hull.hi <= got.hi[i], (
                f"case {i}: [{got.lo[i]}, {got.hi[i]}] !⊇ {hull}"
            )


class TestBoxArray:
    def make_boxes(self, m=7, n=3):
        boxes = []
        for _ in range(m):
            lo, hi = random_endpoints(n, include_inf=False, scale=3.0)
            boxes.append(Box.from_bounds(lo, hi))
        return boxes

    def test_round_trip(self):
        boxes = self.make_boxes()
        arr = BoxArray.from_boxes(boxes)
        assert len(arr) == len(boxes) and arr.dimension == 3
        assert arr.to_boxes() == boxes
        assert arr.box_at(2) == boxes[2]

    def test_widths_midpoints_match_scalar(self):
        boxes = self.make_boxes()
        arr = BoxArray.from_boxes(boxes)
        assert np.array_equal(
            arr.widths(), np.array([b.widths() for b in boxes])
        )
        assert np.array_equal(
            arr.midpoints(), np.array([b.midpoint() for b in boxes])
        )
        assert np.array_equal(
            arr.max_widths(), np.array([b.max_width() for b in boxes])
        )

    def test_bisect_widest_matches_scalar(self):
        boxes = self.make_boxes()
        arr = BoxArray.from_boxes(boxes)
        left, right = arr.bisect_widest()
        for i, box in enumerate(boxes):
            sl, sr = box.bisect()
            assert left.box_at(i) == sl
            assert right.box_at(i) == sr

    def test_select_and_concatenate(self):
        boxes = self.make_boxes(6)
        arr = BoxArray.from_boxes(boxes)
        picked = arr.select(np.array([0, 3, 5]))
        assert picked.to_boxes() == [boxes[0], boxes[3], boxes[5]]
        mask = np.array([True, False, True, False, False, True])
        assert arr.select(mask).to_boxes() == [boxes[0], boxes[2], boxes[5]]
        both = BoxArray.concatenate([picked, arr.select(mask)])
        assert len(both) == 6

    def test_from_box_single_row(self):
        box = Box([Interval(0, 1), Interval(-2, 2)])
        arr = BoxArray.from_box(box)
        assert len(arr) == 1 and arr.box_at(0) == box

    def test_contains_points(self):
        boxes = self.make_boxes(5, 2)
        arr = BoxArray.from_boxes(boxes)
        pts = arr.midpoints()
        assert arr.contains_points(pts).all()
        assert not arr.contains_points(pts + 1e6).any()

    def test_intersection_flags_empty_rows(self):
        a = BoxArray(np.array([[0.0, 0.0], [0.0, 0.0]]), np.array([[1.0, 1.0], [1.0, 1.0]]))
        b = BoxArray(np.array([[0.5, 0.5], [2.0, 0.0]]), np.array([[2.0, 2.0], [3.0, 1.0]]))
        got = a.intersection(b)
        assert got.empty_mask().tolist() == [False, True]


class TestMixedOperands:
    def test_imin_imax_with_scalar_interval(self):
        from repro.intervals import imax, imin

        arr = IntervalArray([0.0, 0.0], [1.0, 1.0])
        got = imin(arr, Interval(-5.0, 0.5))
        assert got.lo.tolist() == [-5.0, -5.0]
        assert got.hi.tolist() == [0.5, 0.5]
        got = imax(Interval(-5.0, 0.5), arr)
        assert got.lo.tolist() == [0.0, 0.0]
        assert got.hi.tolist() == [1.0, 1.0]

    def test_arithmetic_with_scalar_interval(self):
        arr = IntervalArray([0.0, 1.0], [1.0, 2.0])
        got = arr + Interval(2.0, 3.0)
        assert np.all(got.lo <= [2.0, 3.0]) and np.all(got.hi >= [4.0, 5.0])


class TestScalarOracleUnchanged:
    """The satellite fix must keep the scalar class sound."""

    def test_scalar_tan_near_pole_is_entire(self):
        assert Interval(math.pi / 2 - 1e-13, math.pi / 2 - 1e-14).tan() == (
            Interval.entire()
        )

    def test_scalar_tan_away_from_pole_finite(self):
        got = Interval(0.1, 0.2).tan()
        assert math.isfinite(got.lo) and math.isfinite(got.hi)
        assert got.contains(math.tan(0.15))

    def test_scalar_sqrt_raises_below_domain(self):
        with pytest.raises(DomainError):
            Interval(-2.0, -1.0).sqrt()
