"""Engine dataclass + registry semantics."""

from __future__ import annotations

import pytest

from repro.engine import (
    Engine,
    LpBackend,
    NativeLpBackend,
    NativeSimBackend,
    ParallelSmtBackend,
    SerialSmtBackend,
    SimBackend,
    SmtBackend,
    VectorizedSimBackend,
    engine_names,
    get_engine,
    list_engines,
    register_engine,
    resolve_engine,
    unregister_engine,
)
from repro.errors import ReproError


class TestBuiltins:
    def test_three_builtins_registered(self):
        assert set(engine_names()) >= {"native", "vectorized", "parallel-smt"}

    def test_list_is_sorted(self):
        names = [e.name for e in list_engines()]
        assert names == sorted(names)

    def test_native_is_all_native_backends(self):
        native = get_engine("native")
        assert isinstance(native.sim, NativeSimBackend)
        assert isinstance(native.lp, NativeLpBackend)
        assert isinstance(native.smt, SerialSmtBackend)

    def test_vectorized_swaps_only_sim(self):
        vectorized = get_engine("vectorized")
        assert isinstance(vectorized.sim, VectorizedSimBackend)
        assert isinstance(vectorized.lp, NativeLpBackend)
        assert isinstance(vectorized.smt, SerialSmtBackend)

    def test_parallel_smt_swaps_only_smt(self):
        parallel = get_engine("parallel-smt")
        assert isinstance(parallel.sim, NativeSimBackend)
        assert isinstance(parallel.smt, ParallelSmtBackend)

    def test_backends_satisfy_protocols(self):
        for engine in list_engines():
            assert isinstance(engine.sim, SimBackend)
            assert isinstance(engine.lp, LpBackend)
            assert isinstance(engine.smt, SmtBackend)

    def test_describe_is_plain_data(self):
        info = get_engine("native").describe()
        assert info["name"] == "native"
        assert info["sim"] == "NativeSimBackend"
        assert isinstance(info["tags"], list)


class TestRegistry:
    def _custom(self, name="custom-test-engine"):
        base = get_engine("native")
        return Engine(
            name=name,
            description="test stack",
            sim=base.sim,
            lp=base.lp,
            smt=base.smt,
        )

    def test_register_get_unregister(self):
        engine = self._custom()
        register_engine(engine)
        try:
            assert get_engine(engine.name) is engine
            assert engine.name in engine_names()
        finally:
            unregister_engine(engine.name)
        assert engine.name not in engine_names()

    def test_duplicate_name_raises_without_replace(self):
        engine = self._custom()
        register_engine(engine)
        try:
            with pytest.raises(ReproError, match="already registered"):
                register_engine(self._custom())
            replacement = self._custom()
            assert register_engine(replacement, replace=True) is replacement
        finally:
            unregister_engine(engine.name)

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ReproError, match="unknown engine"):
            get_engine("warp-drive")

    def test_unregister_missing_is_noop(self):
        unregister_engine("never-registered")


class TestResolve:
    def test_none_resolves_to_native(self):
        assert resolve_engine(None).name == "native"

    def test_name_resolves(self):
        assert resolve_engine("vectorized").name == "vectorized"

    def test_engine_object_passes_through(self):
        engine = get_engine("parallel-smt")
        assert resolve_engine(engine) is engine

    def test_bad_type_rejected(self):
        with pytest.raises(ReproError, match="expected engine name"):
            resolve_engine(42)


class TestValidation:
    def test_empty_name_rejected(self):
        base = get_engine("native")
        with pytest.raises(ReproError, match="non-empty name"):
            Engine(name="", description="", sim=base.sim, lp=base.lp, smt=base.smt)

    def test_wrong_backend_rejected(self):
        base = get_engine("native")
        with pytest.raises(ReproError, match="does not implement"):
            Engine(
                name="bad",
                description="",
                sim=object(),  # no simulate()
                lp=base.lp,
                smt=base.smt,
            )

    def test_custom_backend_satisfies_protocol(self):
        class MySim:
            name = "my-sim"

            def simulate(self, system, initial_states, duration, dt,
                         method="rk4", stop_condition=None):
                return []

        base = get_engine("native")
        engine = Engine(
            name="custom-sim-stack",
            description="",
            sim=MySim(),
            lp=base.lp,
            smt=base.smt,
        )
        assert isinstance(engine.sim, SimBackend)
