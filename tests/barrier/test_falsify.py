"""Falsification-baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import (
    FalsificationResult,
    falsify_cmaes,
    falsify_random,
    trajectory_robustness,
    witness_point,
)
from repro.dynamics import error_dynamics_system
from repro.errors import ReproError
from repro.experiments import paper_initial_set, paper_unsafe_set
from repro.learning import proportional_controller_network


@pytest.fixture
def safe_problem():
    net = proportional_controller_network(4)
    return error_dynamics_system(net), paper_initial_set(), paper_unsafe_set()


@pytest.fixture
def unsafe_problem():
    net = proportional_controller_network(4, d_gain=-0.6, theta_gain=-2.0)
    return error_dynamics_system(net), paper_initial_set(), paper_unsafe_set()


class TestRobustness:
    def test_positive_for_safe_trajectory(self, safe_problem):
        system, x0, unsafe = safe_problem
        rob = trajectory_robustness(
            system, [0.5, 0.1], unsafe.safe_rectangle, 10.0, 0.05
        )
        assert rob > 0.0

    def test_negative_for_escaping_trajectory(self, unsafe_problem):
        system, x0, unsafe = unsafe_problem
        rob = trajectory_robustness(
            system, [1.0, 0.15], unsafe.safe_rectangle, 20.0, 0.05
        )
        assert rob < 0.0

    def test_monotone_in_start_distance(self, safe_problem):
        """Starting nearer the envelope leaves less margin."""
        system, _, unsafe = safe_problem
        near = trajectory_robustness(
            system, [4.0, 0.0], unsafe.safe_rectangle, 10.0, 0.05
        )
        far = trajectory_robustness(
            system, [0.5, 0.0], unsafe.safe_rectangle, 10.0, 0.05
        )
        assert near < far


class TestFalsifiers:
    def test_random_does_not_falsify_safe(self, safe_problem):
        system, x0, unsafe = safe_problem
        result = falsify_random(system, x0, unsafe, budget=30, seed=0)
        assert not result.falsified
        assert result.simulations == 30
        assert result.min_robustness > 0.0

    def test_random_falsifies_unsafe(self, unsafe_problem):
        system, x0, unsafe = unsafe_problem
        result = falsify_random(system, x0, unsafe, budget=50, seed=0)
        assert result.falsified
        assert result.min_robustness < 0.0
        assert x0.contains(result.best_initial_state)

    def test_cmaes_falsifies_unsafe(self, unsafe_problem):
        system, x0, unsafe = unsafe_problem
        result = falsify_cmaes(system, x0, unsafe, budget=60, seed=0)
        assert result.falsified
        assert x0.contains(result.best_initial_state, tol=1e-9)

    def test_cmaes_does_not_falsify_safe(self, safe_problem):
        system, x0, unsafe = safe_problem
        result = falsify_cmaes(system, x0, unsafe, budget=40, seed=0)
        assert not result.falsified

    def test_counterexample_is_reproducible(self, unsafe_problem):
        """The reported initial state really escapes when re-simulated."""
        system, x0, unsafe = unsafe_problem
        result = falsify_random(system, x0, unsafe, budget=50, seed=0)
        rob = trajectory_robustness(
            system, result.best_initial_state, unsafe.safe_rectangle, 20.0, 0.05
        )
        assert rob < 0.0

    def test_budget_validation(self, safe_problem):
        system, x0, unsafe = safe_problem
        with pytest.raises(ReproError):
            falsify_random(system, x0, unsafe, budget=0)
        with pytest.raises(ReproError):
            falsify_cmaes(system, x0, unsafe, budget=2, population_size=10)

    def test_str_rendering(self, safe_problem):
        system, x0, unsafe = safe_problem
        result = falsify_random(system, x0, unsafe, budget=5, seed=0)
        assert "not falsified" in str(result)


class TestWitnessPoint:
    """δ-sat model → simulation seed (the external-solver witness path)."""

    def test_scalar_values_pass_through(self):
        point = witness_point({"x": -0.25, "y": 1.5}, ("x", "y"))
        np.testing.assert_array_equal(point, [-0.25, 1.5])

    def test_closed_interval_takes_midpoint(self):
        point = witness_point({"x": (1.0, 3.0)}, ("x",))
        np.testing.assert_array_equal(point, [2.0])

    def test_open_interval_midpoint_strictly_inside(self):
        # dReal reports open intervals like `x : ( 0.4, 0.6 )`; the
        # midpoint lies strictly inside, so openness never matters.
        point = witness_point({"x": (0.4, 0.6)}, ("x",))
        assert point[0] == pytest.approx(0.5)
        assert 0.4 < point[0] < 0.6

    def test_degenerate_interval_is_the_point(self):
        np.testing.assert_array_equal(
            witness_point({"x": [1.25, 1.25]}, ("x",)), [1.25]
        )

    def test_mixed_model_and_name_order(self):
        model = {"b": (0.0, 1.0), "a": -2.0}
        np.testing.assert_array_equal(
            witness_point(model, ("a", "b")), [-2.0, 0.5]
        )

    def test_missing_name_raises(self):
        with pytest.raises(ReproError, match="no value"):
            witness_point({"x": 1.0}, ("x", "y"))

    def test_wrong_length_interval_raises(self):
        with pytest.raises(ReproError, match="lo, hi"):
            witness_point({"x": (1.0, 2.0, 3.0)}, ("x",))

    def test_inverted_interval_raises(self):
        with pytest.raises(ReproError, match="empty interval"):
            witness_point({"x": (2.0, 1.0)}, ("x",))

    def test_nonfinite_raises(self):
        for bad in (float("nan"), float("inf"), (0.0, float("inf"))):
            with pytest.raises(ReproError, match="non-finite"):
                witness_point({"x": bad}, ("x",))
