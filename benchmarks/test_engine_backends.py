"""Engine-backend benchmark: native vs vectorized seed-sim, serial vs
parallel SMT, on the paper's dubins workload.

Writes ``benchmarks/results/BENCH_engines.json`` — the seed of the
engine-layer perf trajectory — alongside the human-readable text
artifact.  The vectorized simulator must beat the native per-trace loop
by >= 3x (the PR-2 acceptance bar); the SMT comparison is recorded
without a bar since thread-level speedup depends on the host's core
count (a single-core CI box will show ~1x).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.api import get_scenario
from repro.barrier import QuadraticTemplate, condition5_subproblems
from repro.engine import get_engine
from repro.sim import sample_uniform

#: seed traces integrated per timing pass (the Table-1 default is ~25;
#: a larger batch makes the wall-clock contrast stable under CI noise)
TRACES = 200
DURATION = 12.0
DT = 0.05
REPEATS = 3


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_engine_backends(emit, results_dir):
    scenario = get_scenario("dubins")
    problem = scenario.problem()
    system = problem.system
    rng = np.random.default_rng(0)
    starts = sample_uniform(problem.domain.to_box(), TRACES, rng)

    native = get_engine("native")
    vectorized = get_engine("vectorized")
    parallel = get_engine("parallel-smt")

    # ------------------------------------------------------------------
    # Seed-sim stage: per-trace Python loop vs one array pass.
    # ------------------------------------------------------------------
    native_sim_s, native_traces = _best_of(
        REPEATS,
        lambda: native.sim.simulate(system, starts, DURATION, DT),
    )
    vector_sim_s, vector_traces = _best_of(
        REPEATS,
        lambda: vectorized.sim.simulate(system, starts, DURATION, DT),
    )
    assert len(native_traces) == len(vector_traces) == TRACES
    for a, b in zip(native_traces[:10], vector_traces[:10]):
        np.testing.assert_allclose(a.states, b.states, atol=1e-8)
    sim_speedup = native_sim_s / vector_sim_s

    # ------------------------------------------------------------------
    # SMT check (5): serial vs thread-pool dispatch over the box cover.
    # ------------------------------------------------------------------
    candidate = native.lp.fit(
        QuadraticTemplate(system.dimension),
        np.vstack([t.states for t in native_traces]),
        system,
        scenario.config.lp,
    )
    subproblems = condition5_subproblems(
        candidate.expression, problem, scenario.config.gamma
    )
    names = problem.state_names
    icp = scenario.config.icp
    serial_smt_s, serial_result = _best_of(
        REPEATS, lambda: native.smt.check(subproblems, names, icp)
    )
    parallel_smt_s, parallel_result = _best_of(
        REPEATS, lambda: parallel.smt.check(subproblems, names, icp)
    )
    assert serial_result.verdict is parallel_result.verdict
    smt_speedup = serial_smt_s / parallel_smt_s

    payload = {
        "scenario": "dubins",
        "cpu_count": os.cpu_count(),
        "seed_sim": {
            "traces": TRACES,
            "steps_per_trace": len(native_traces[0]) - 1,
            "native_seconds": round(native_sim_s, 6),
            "vectorized_seconds": round(vector_sim_s, 6),
            "speedup": round(sim_speedup, 2),
        },
        "smt_check5": {
            "subproblems": len(subproblems),
            "verdict": serial_result.verdict.value,
            "serial_seconds": round(serial_smt_s, 6),
            "parallel_seconds": round(parallel_smt_s, 6),
            "speedup": round(smt_speedup, 2),
        },
    }
    (results_dir / "BENCH_engines.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"seed-sim ({TRACES} traces x {payload['seed_sim']['steps_per_trace']} steps):",
        f"  native     {native_sim_s:8.4f}s",
        f"  vectorized {vector_sim_s:8.4f}s   ({sim_speedup:.1f}x)",
        f"smt check(5) ({len(subproblems)} subproblems, {serial_result.verdict.value}):",
        f"  serial     {serial_smt_s:8.4f}s",
        f"  parallel   {parallel_smt_s:8.4f}s   ({smt_speedup:.1f}x, "
        f"{os.cpu_count()} cpu)",
    ]
    emit("engine_backends", "\n".join(lines))

    assert sim_speedup >= 3.0, (
        f"vectorized seed-sim speedup {sim_speedup:.2f}x below the 3x bar"
    )
