"""Exception-hierarchy tests."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.EmptyIntervalError, errors.IntervalError)
        assert issubclass(errors.DomainError, errors.IntervalError)
        assert issubclass(errors.EvaluationError, errors.ExpressionError)
        assert issubclass(errors.InfeasibleLPError, errors.LinearProgramError)
        assert issubclass(errors.MaxIterationsError, errors.SynthesisError)
        assert issubclass(errors.LevelSetError, errors.SynthesisError)
        assert issubclass(errors.BudgetExceededError, errors.SolverError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SimulationError("boom")


class TestPublicApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.barrier
        import repro.dynamics
        import repro.expr
        import repro.experiments
        import repro.intervals
        import repro.learning
        import repro.nn
        import repro.sim
        import repro.smt

        for module in (
            repro.barrier,
            repro.dynamics,
            repro.expr,
            repro.experiments,
            repro.intervals,
            repro.learning,
            repro.nn,
            repro.sim,
            repro.smt,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__,
                    name,
                )
