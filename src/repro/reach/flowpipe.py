"""Interval reachability: bounded-time flowpipes (the tool-family baseline).

Research tools contemporaneous with the paper (NNV, Verisig, ReachNN)
attack NN-CPS safety with *bounded-time reachable-set computation*.  This
module implements the classic interval flowpipe so the repository can
compare both philosophies head-to-head:

* **Flowpipe** (here): propagate an interval box through time with a
  validated Euler enclosure — sound for a *finite horizon*, wrapping
  effect grows the tube over time;
* **Barrier certificate** (`repro.barrier`): one inductive invariant,
  *unbounded* horizon, no wrapping — the paper's pitch.

The step enclosure is the standard two-stage scheme:

1. find an a-priori bounding box ``B`` with ``X + [0, h]·F(B) ⊆ B``
   (Picard/Euler fixed-point with geometric inflation);
2. tighten: ``X(h) ⊆ X + h·F(B)`` — the interval Euler step with the
   remainder absorbed by evaluating ``F`` over the whole-step box ``B``.

Everything is evaluated through the compiled interval tapes, so the same
sound arithmetic underlies both the solver and the flowpipe.

Scope note: this is the *first-order interval* flowpipe.  Its box widths
grow like ``(1 + h L)^k`` even on contracting dynamics (the dependency
problem: ``x - h x`` evaluated intervally widens), which is precisely
why production reachability tools moved to Taylor models and zonotopes.
The module exists as the honest baseline for the barrier comparison: it
proves short horizons from small initial boxes and visibly degrades
beyond them, while the certificate is horizon-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from ..dynamics import ContinuousSystem
from ..errors import SimulationError
from ..barrier.sets import Rectangle, RectangleComplement
from ..intervals import Box

__all__ = ["ReachConfig", "ReachResult", "reach_tube", "check_bounded_safety"]


@dataclass
class ReachConfig:
    """Flowpipe parameters.

    ``inflation`` is the relative growth used when searching for the
    a-priori box; ``max_inflations`` bounds that search per step.
    ``max_width`` aborts the tube when wrapping has destroyed all
    precision (standard failure mode of interval flowpipes).
    """

    dt: float = 0.01
    inflation: float = 0.1
    max_inflations: int = 30
    max_width: float = 50.0

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise SimulationError("dt must be positive")
        if self.inflation <= 0.0:
            raise SimulationError("inflation must be positive")


@dataclass
class ReachResult:
    """A computed flowpipe."""

    boxes: list[Box]
    times: np.ndarray
    completed: bool
    #: index of the first box that intersected the unsafe set (or None)
    first_violation: int | None = None

    @property
    def final_box(self) -> Box:
        return self.boxes[-1]

    def max_width(self) -> float:
        """Widest box in the tube (wrapping indicator)."""
        return max(box.max_width() for box in self.boxes)


def _step_enclosure(
    system: ContinuousSystem, box: Box, config: ReachConfig
) -> Box:
    """One validated Euler step of size ``config.dt``."""
    h = config.dt
    tapes = system.tapes()
    arr = box.to_array()

    def field_bounds(b: Box) -> tuple[np.ndarray, np.ndarray]:
        a = b.to_array()
        lows, highs = [], []
        for tape in tapes:
            lo, hi = tape.eval_boxes(a[None, :, 0], a[None, :, 1])
            lows.append(lo[0])
            highs.append(hi[0])
        return np.array(lows), np.array(highs)

    # Stage 1: a-priori box B with X + [0,h] F(B) subset of B.
    candidate = box
    for _ in range(config.max_inflations):
        f_lo, f_hi = field_bounds(candidate)
        # X + [0, h] * F(candidate): each component's reach interval.
        step_lo = arr[:, 0] + h * np.minimum(f_lo, 0.0)
        step_hi = arr[:, 1] + h * np.maximum(f_hi, 0.0)
        hull = Box.from_bounds(step_lo, step_hi)
        if candidate.contains_box(hull):
            break
        candidate = hull.inflate(
            absolute=1e-12, relative=config.inflation
        ).hull(candidate)
    else:
        raise SimulationError(
            "a-priori enclosure did not stabilize; reduce dt "
            f"(dt={h}, box width {box.max_width():.3g})"
        )

    # Stage 2: tightened Euler step over the a-priori box.
    f_lo, f_hi = field_bounds(candidate)
    new_lo = arr[:, 0] + h * f_lo
    new_hi = arr[:, 1] + h * f_hi
    return Box.from_bounds(np.minimum(new_lo, new_hi), np.maximum(new_lo, new_hi))


def reach_tube(
    system: ContinuousSystem,
    initial: "Box | Rectangle",
    duration: float,
    config: ReachConfig | None = None,
    unsafe: "RectangleComplement | None" = None,
) -> ReachResult:
    """Compute the flowpipe of ``initial`` over ``[0, duration]``.

    Stops early when a box exceeds ``config.max_width`` (wrapping blowup,
    ``completed=False``) or — if ``unsafe`` is given — when a box meets
    the unsafe set (recorded in ``first_violation``; note an *interval*
    intersection is a potential violation, not a proof of one).
    """
    config = config or ReachConfig()
    box = initial.to_box() if isinstance(initial, Rectangle) else initial
    if duration < 0.0:
        raise SimulationError("duration must be non-negative")
    boxes = [box]
    times = [0.0]
    t = 0.0
    violation: int | None = None
    completed = True
    while t < duration - 1e-12:
        box = _step_enclosure(system, box, config)
        t += config.dt
        boxes.append(box)
        times.append(t)
        if unsafe is not None and violation is None:
            if _intersects_unsafe(box, unsafe):
                violation = len(boxes) - 1
        if box.max_width() > config.max_width:
            completed = False
            break
    return ReachResult(
        boxes=boxes,
        times=np.array(times),
        completed=completed,
        first_violation=violation,
    )


def _intersects_unsafe(box: Box, unsafe: "RectangleComplement") -> bool:
    """Could the box contain an unsafe point? (Interval over-approximation.)"""
    safe = unsafe.safe_rectangle
    inner = Box.from_bounds(safe.lower, safe.upper)
    return not inner.contains_box(box)


def check_bounded_safety(
    system: ContinuousSystem,
    initial: "Rectangle",
    unsafe: "RectangleComplement",
    duration: float,
    config: ReachConfig | None = None,
) -> tuple[bool, ReachResult]:
    """Bounded-time safety by flowpipe containment.

    Returns ``(proved, tube)``: ``proved`` is True when every tube box
    stays inside the safe rectangle for the whole horizon — a *bounded*
    guarantee, in contrast to the barrier certificate's unbounded one.
    """
    tube = reach_tube(system, initial, duration, config, unsafe=unsafe)
    proved = tube.completed and tube.first_violation is None
    return proved, tube
