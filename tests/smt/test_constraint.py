"""Constraint normalization and three-valued interval decision tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.expr import sin, var
from repro.intervals import Box
from repro.smt import Constraint, Relation, Status, eq, ge, gt, le, lt

X, Y = var("x"), var("y")
NAMES = ["x", "y"]


class TestConstructors:
    def test_le_normalizes_bound(self):
        c = le(X, 5.0)
        assert c.relation is Relation.LE
        # x <= 5 holds at x=5, fails at x=6.
        assert c.satisfied_at([5.0, 0.0], NAMES)
        assert not c.satisfied_at([6.0, 0.0], NAMES)

    def test_expression_bound(self):
        c = lt(X, Y)
        assert c.satisfied_at([1.0, 2.0], NAMES)
        assert not c.satisfied_at([2.0, 1.0], NAMES)

    def test_ge_gt(self):
        assert ge(X, 1.0).satisfied_at([1.0, 0.0], NAMES)
        assert not gt(X, 1.0).satisfied_at([1.0, 0.0], NAMES)

    def test_eq(self):
        c = eq(X * X, 4.0)
        assert c.satisfied_at([2.0, 0.0], NAMES)
        assert not c.satisfied_at([2.1, 0.0], NAMES)
        assert c.satisfied_at([2.001, 0.0], NAMES, slack=0.01)

    def test_relation_string_coercion(self):
        c = Constraint(X, "<=")
        assert c.relation is Relation.LE


class TestNegation:
    def test_negate_le(self):
        c = le(X, 0.0).negated()
        assert c.relation is Relation.GT

    def test_negate_roundtrip(self):
        for make in (le, lt, ge, gt):
            c = make(X, 1.0)
            assert c.negated().negated().relation is c.relation

    def test_negate_eq_raises(self):
        with pytest.raises(ExpressionError):
            eq(X, 0.0).negated()

    def test_negation_is_complement(self):
        c = lt(X, 2.0)
        n = c.negated()
        for v in (-1.0, 2.0, 5.0):
            assert c.satisfied_at([v, 0.0], NAMES) != n.satisfied_at([v, 0.0], NAMES)


class TestStatusOnBox:
    def test_certainly_true(self):
        c = le(X, 10.0)
        box = Box.from_bounds([0.0, 0.0], [1.0, 1.0])
        assert c.status_on_box(box, NAMES) is Status.CERTAIN_TRUE

    def test_certainly_false(self):
        c = le(X, -10.0)
        box = Box.from_bounds([0.0, 0.0], [1.0, 1.0])
        assert c.status_on_box(box, NAMES) is Status.CERTAIN_FALSE

    def test_unknown(self):
        c = le(X, 0.5)
        box = Box.from_bounds([0.0, 0.0], [1.0, 1.0])
        assert c.status_on_box(box, NAMES) is Status.UNKNOWN

    def test_nonlinear_constraint(self):
        c = gt(sin(X), 0.5)
        box = Box.from_bounds([1.0, 0.0], [2.0, 1.0])  # sin in [0.84, 1]
        assert c.status_on_box(box, NAMES) is Status.CERTAIN_TRUE

    def test_status_from_bounds_vectorized(self):
        c = le(X, 0.0)
        lo = np.array([-2.0, -1.0, 0.5])
        hi = np.array([-1.0, 1.0, 2.0])
        statuses = c.status_from_bounds(lo, hi)
        assert statuses[0] == int(Status.CERTAIN_TRUE)
        assert statuses[1] == int(Status.UNKNOWN)
        assert statuses[2] == int(Status.CERTAIN_FALSE)

    def test_eq_status(self):
        c = eq(X, 0.0)
        assert c.status_from_bounds(np.array([0.1]), np.array([0.2]))[0] == int(
            Status.CERTAIN_FALSE
        )
        assert c.status_from_bounds(np.array([-0.1]), np.array([0.1]))[0] == int(
            Status.UNKNOWN
        )

    def test_slack_weakens_false(self):
        c = le(X, 0.0)
        lo = np.array([0.005])
        hi = np.array([0.01])
        assert c.status_from_bounds(lo, hi)[0] == int(Status.CERTAIN_FALSE)
        assert c.status_from_bounds(lo, hi, slack=0.02)[0] == int(Status.UNKNOWN)

    def test_compiled_cache_per_ordering(self):
        c = le(X + Y, 0.0)
        t1 = c.compiled(["x", "y"])
        t2 = c.compiled(["x", "y"])
        assert t1 is t2
        t3 = c.compiled(["y", "x"])
        assert t3 is not t1
