"""Scenario families: typed, parameterized scenario factories.

A :class:`ScenarioFamily` turns one hand-built :class:`Scenario` into an
unbounded parameterized workload: a registered factory taking typed
parameters (``dubins(nn_width, speed)``, ``bicycle(wheelbase,
lane_width, speed)``, ...) that instantiates concrete scenarios on
demand.  Families carry :class:`ParamSpec` metadata — kind, default,
bounds — so parameter points can be validated, coerced, *enumerated*
(:meth:`ScenarioFamily.grid`) and *sampled*
(:meth:`ScenarioFamily.sample`) without touching the factory.

Instantiated scenarios record their ``(family, params)`` identity, which
is what the content-addressed artifact cache of :mod:`repro.store` keys
runs on, and what :func:`repro.api.sweep` shards across worker
processes.

A string-keyed registry mirrors the scenario and engine registries;
``repro families`` lists it.  Five families ship built in: ``dubins``,
``bicycle``, ``cartpole``, ``pendulum``, and ``linear``.

The grid mini-language used by the CLI (``repro sweep dubins --grid
speed=2:6:3 nn_width=8,10``) is :func:`parse_grid_values`:
``lo:hi:count`` is an inclusive linspace, ``a,b,c`` an explicit list,
and a bare token a single value.
"""

from __future__ import annotations

import dataclasses
import functools
import importlib
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..barrier import Rectangle, RectangleComplement, SynthesisConfig
from ..dynamics import (
    ContinuousSystem,
    cartpole_plant,
    compose,
    inverted_pendulum_plant,
    kinematic_bicycle_plant,
    stable_linear_system,
)
from ..errors import ReproError
from ..nn import FeedforwardNetwork, Layer
from ..smt import IcpConfig
from .scenario import (
    GAMMA,
    Scenario,
    _dubins_system,
    paper_initial_set,
    paper_unsafe_set,
)

__all__ = [
    "ParamSpec",
    "ScenarioFamily",
    "family_names",
    "format_param_value",
    "get_family",
    "list_families",
    "parse_grid_values",
    "parse_point_spec",
    "register_family",
    "unregister_family",
]


# ----------------------------------------------------------------------
# Parameter specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParamSpec:
    """One typed parameter of a scenario family.

    Parameters
    ----------
    name:
        The keyword the family's factory accepts.
    kind:
        ``"float"``, ``"int"``, or ``"choice"`` — drives coercion,
        validation, and random sampling.
    default:
        Value used when an instantiation omits the parameter.
    low, high:
        Inclusive bounds for numeric parameters; both are required for
        :meth:`ScenarioFamily.sample` and enforced (when set) by
        :meth:`ScenarioFamily.instantiate`.
    choices:
        The admissible values of a ``"choice"`` parameter.
    """

    name: str
    kind: str = "float"
    default: float | int | str | None = None
    low: float | None = None
    high: float | None = None
    choices: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int", "choice"):
            raise ReproError(
                f"parameter {self.name!r}: kind must be float/int/choice, "
                f"got {self.kind!r}"
            )
        if self.kind == "choice" and not self.choices:
            raise ReproError(f"choice parameter {self.name!r} needs choices")

    def bounds_text(self) -> str:
        """Human-readable admissible range of this parameter.

        ``[low, high]`` when both bounds are set, half-open forms when
        only one is, the choice list for choice parameters, and
        ``"unbounded"`` otherwise — so every rejection message can name
        what *would* have been accepted.
        """
        if self.kind == "choice":
            return f"one of {', '.join(self.choices)}"
        if self.low is not None and self.high is not None:
            return f"valid range [{self.low:g}, {self.high:g}]"
        if self.low is not None:
            return f"valid range [{self.low:g}, inf)"
        if self.high is not None:
            return f"valid range (-inf, {self.high:g}]"
        return "unbounded"

    def coerce(self, value: object) -> float | int | str:
        """Validate ``value`` against this spec and return it typed.

        Floats are accepted for ``"int"`` parameters only when integral
        (``8.0`` coerces to ``8``; ``8.5`` raises), so grid specs like
        ``nn_width=8:16:3`` stay exact.  Every rejection names the
        offending parameter, the offending value, and the admissible
        bounds (:meth:`bounds_text`).
        """
        if self.kind == "choice":
            value = str(value)
            if value not in self.choices:
                raise ReproError(
                    f"parameter {self.name!r}={value!r} is not "
                    f"{self.bounds_text()}"
                )
            return value
        try:
            number = float(value)
        except (TypeError, ValueError):
            raise ReproError(
                f"parameter {self.name!r}: expected a number, got {value!r} "
                f"({self.bounds_text()})"
            ) from None
        if not math.isfinite(number):
            raise ReproError(
                f"parameter {self.name!r}={value!r} must be finite "
                f"({self.bounds_text()})"
            )
        if self.kind == "int":
            if not float(number).is_integer():
                raise ReproError(
                    f"parameter {self.name!r}={value!r} must be an integer "
                    f"({self.bounds_text()})"
                )
            result: float | int = int(number)
        else:
            result = number
        if self.low is not None and number < self.low:
            raise ReproError(
                f"parameter {self.name!r}={value!r} is below the minimum "
                f"{self.low:g} ({self.bounds_text()})"
            )
        if self.high is not None and number > self.high:
            raise ReproError(
                f"parameter {self.name!r}={value!r} is above the maximum "
                f"{self.high:g} ({self.bounds_text()})"
            )
        return result


def format_param_value(value: float | int | str) -> str:
    """Canonical short rendering of a parameter value.

    Used for instantiated scenario names (``dubins[speed=2,nn_width=8]``)
    and report keys; floats use ``%g`` so ``2.0`` prints as ``2``.

    >>> format_param_value(2.0)
    '2'
    >>> format_param_value(0.125)
    '0.125'
    >>> format_param_value("tansig")
    'tansig'
    """
    if isinstance(value, bool) or isinstance(value, str):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:g}"


# ----------------------------------------------------------------------
# Grid / point spec parsing (the CLI mini-language)
# ----------------------------------------------------------------------
def parse_grid_values(text: str) -> list[float | str]:
    """Parse one grid value spec into a list of raw values.

    Three forms:

    * ``lo:hi:count`` — inclusive linspace with ``count`` points,
    * ``a,b,c`` — explicit comma-separated list,
    * a bare token — a single value.

    Numeric tokens parse to floats (the family's :class:`ParamSpec`
    coerces them later); anything else stays a string (for ``choice``
    parameters).

    >>> parse_grid_values("2:6:3")
    [2.0, 4.0, 6.0]
    >>> parse_grid_values("8,10")
    [8.0, 10.0]
    >>> parse_grid_values("1.5")
    [1.5]
    >>> parse_grid_values("rk4,euler")
    ['rk4', 'euler']
    """
    text = text.strip()
    if not text:
        raise ReproError("empty grid value spec")
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise ReproError(
                f"range spec must be lo:hi:count, got {text!r}"
            )
        try:
            lo, hi = float(parts[0]), float(parts[1])
            count = int(parts[2])
        except ValueError:
            raise ReproError(f"bad range spec {text!r}") from None
        if count < 1:
            raise ReproError(f"range spec {text!r}: count must be >= 1")
        if count == 1:
            return [lo]
        return [float(v) for v in np.linspace(lo, hi, count)]
    values: list[float | str] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            raise ReproError(f"empty element in list spec {text!r}")
        try:
            values.append(float(token))
        except ValueError:
            values.append(token)
    return values


def parse_point_spec(text: str) -> tuple[str, dict[str, float | str]]:
    """Parse a single-point family spec ``family:key=value,key=value``.

    Used by ``repro table1 --families`` and anywhere one concrete
    instantiation (not a grid) is named on a command line.

    >>> parse_point_spec("bicycle:wheelbase=1.2,speed=2")
    ('bicycle', {'wheelbase': 1.2, 'speed': 2.0})
    >>> parse_point_spec("dubins")
    ('dubins', {})
    """
    name, _, rest = text.partition(":")
    name = name.strip()
    if not name:
        raise ReproError(f"family point spec {text!r} needs a family name")
    params: dict[str, float | str] = {}
    if rest.strip():
        for token in rest.split(","):
            key, eq, value = token.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise ReproError(
                    f"bad parameter token {token!r} in {text!r} "
                    "(expected key=value)"
                )
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return name, params


# ----------------------------------------------------------------------
# ScenarioFamily
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioFamily:
    """A registered factory mapping typed parameters to scenarios.

    Parameters
    ----------
    name:
        Registry key (``repro families``, :func:`repro.api.sweep`).
    description:
        One-line human summary.
    factory:
        Module-level callable taking the family's parameters as
        keywords and returning a :class:`Scenario`.  Module-level (or
        :func:`functools.partial` over module-level) so instantiated
        scenarios pickle into sweep worker processes.
    parameters:
        The typed :class:`ParamSpec` tuple; instantiation rejects
        anything outside it.
    tags:
        Free-form grouping labels.
    """

    name: str
    description: str
    factory: Callable[..., Scenario]
    parameters: tuple[ParamSpec, ...]
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("families need a non-empty name")
        if not callable(self.factory):
            raise ReproError("family factory must be callable")
        seen = set()
        for spec in self.parameters:
            if spec.name in seen:
                raise ReproError(
                    f"family {self.name!r}: duplicate parameter {spec.name!r}"
                )
            seen.add(spec.name)

    @property
    def parameter_names(self) -> tuple[str, ...]:
        """The declared parameter names, in declaration order."""
        return tuple(spec.name for spec in self.parameters)

    def spec(self, name: str) -> ParamSpec:
        """Look up one parameter spec by name."""
        for spec in self.parameters:
            if spec.name == name:
                return spec
        known = ", ".join(self.parameter_names) or "<none>"
        raise ReproError(
            f"family {self.name!r} has no parameter {name!r} "
            f"(parameters: {known})"
        )

    def resolve_params(
        self, params: Mapping[str, object]
    ) -> dict[str, float | int | str]:
        """Coerce/validate a parameter mapping, filling in defaults."""
        unknown = set(params) - set(self.parameter_names)
        if unknown:
            known = ", ".join(self.parameter_names) or "<none>"
            raise ReproError(
                f"family {self.name!r}: unknown parameter(s) "
                f"{', '.join(sorted(unknown))} (parameters: {known})"
            )
        resolved: dict[str, float | int | str] = {}
        for spec in self.parameters:
            if spec.name in params:
                resolved[spec.name] = spec.coerce(params[spec.name])
            elif spec.default is not None:
                resolved[spec.name] = spec.coerce(spec.default)
            else:
                raise ReproError(
                    f"family {self.name!r}: parameter {spec.name!r} has no "
                    "default and was not given"
                )
        return resolved

    def scenario_name(self, params: Mapping[str, float | int | str]) -> str:
        """Canonical instantiated-scenario name (params name-sorted)."""
        inner = ",".join(
            f"{key}={format_param_value(params[key])}" for key in sorted(params)
        )
        return f"{self.name}[{inner}]"

    def instantiate(self, **params: object) -> Scenario:
        """Build the concrete :class:`Scenario` for one parameter point.

        Parameters are validated and coerced against the family's specs
        (defaults fill the gaps); the returned scenario carries its
        ``(family, params)`` identity and the canonical name
        ``family[key=value,...]``.
        """
        resolved = self.resolve_params(params)
        scenario = self.factory(**resolved)
        return dataclasses.replace(
            scenario,
            name=self.scenario_name(resolved),
            family=self.name,
            family_params=tuple(sorted(resolved.items())),
        )

    def grid(
        self, axes: Mapping[str, Sequence[object] | str]
    ) -> list[dict[str, float | int | str]]:
        """Cartesian product of per-parameter value lists.

        Each axis value may be a sequence of raw values or a grid spec
        string for :func:`parse_grid_values`.  Unswept parameters keep
        their defaults (they are *not* part of the returned points).
        Axis order follows the family's parameter declaration order, so
        the point list is deterministic regardless of mapping order.
        """
        expanded: dict[str, list[float | int | str]] = {}
        for name, values in axes.items():
            spec = self.spec(name)
            raw = parse_grid_values(values) if isinstance(values, str) else values
            coerced = [spec.coerce(v) for v in raw]
            if not coerced:
                raise ReproError(f"grid axis {name!r} has no values")
            expanded[name] = coerced
        ordered = [n for n in self.parameter_names if n in expanded]
        points = [
            dict(zip(ordered, combo))
            for combo in itertools.product(*(expanded[n] for n in ordered))
        ]
        return points

    def sample(
        self,
        count: int,
        seed: int = 0,
        overrides: Mapping[str, object] | None = None,
    ) -> list[dict[str, float | int | str]]:
        """Draw ``count`` random parameter points (uniform in bounds).

        Numeric parameters need ``low``/``high`` in their spec; choice
        parameters draw uniformly from their choices.  ``overrides``
        pins named parameters to fixed values instead of sampling them.
        Deterministic in ``seed``.
        """
        if count < 1:
            raise ReproError("sample count must be >= 1")
        rng = np.random.default_rng(seed)
        fixed = dict(overrides or {})
        points = []
        for _ in range(count):
            point: dict[str, float | int | str] = {}
            for spec in self.parameters:
                if spec.name in fixed:
                    point[spec.name] = spec.coerce(fixed[spec.name])
                    continue
                if spec.kind == "choice":
                    point[spec.name] = str(rng.choice(list(spec.choices)))
                    continue
                if spec.low is None or spec.high is None:
                    raise ReproError(
                        f"family {self.name!r}: parameter {spec.name!r} has "
                        "no low/high bounds — pin it via overrides to sample"
                    )
                if spec.kind == "int":
                    point[spec.name] = int(
                        rng.integers(int(spec.low), int(spec.high) + 1)
                    )
                else:
                    point[spec.name] = float(
                        rng.uniform(spec.low, spec.high)
                    )
            points.append(point)
        return points


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FAMILIES: dict[str, ScenarioFamily] = {}

#: extension modules whose import registers additional families
_EXTRA_FAMILY_MODULES = ("repro.corpus.families",)
_extras_loaded = False


def _load_extra_families() -> None:
    """Import extension family modules once (they register on import).

    Deferred to the first registry *read* — not done at module import —
    because the extension modules import :class:`ScenarioFamily` and
    :func:`register_family` from here, and an eager import would cycle.
    """
    global _extras_loaded
    if _extras_loaded:
        return
    _extras_loaded = True
    for module in _EXTRA_FAMILY_MODULES:
        importlib.import_module(module)


def register_family(
    family: ScenarioFamily, replace: bool = False
) -> ScenarioFamily:
    """Add a family to the global registry and return it.

    Re-registering an existing name raises unless ``replace=True``.
    """
    if not replace and family.name in _FAMILIES:
        raise ReproError(
            f"family {family.name!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    _FAMILIES[family.name] = family
    return family


def unregister_family(name: str) -> None:
    """Remove a family from the registry (missing names are ignored)."""
    _FAMILIES.pop(name, None)


def get_family(name: str) -> ScenarioFamily:
    """Look up a registered family by name."""
    _load_extra_families()
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES)) or "<none>"
        raise ReproError(
            f"unknown family {name!r}; registered families: {known}"
        ) from None


def family_names() -> tuple[str, ...]:
    """Registered family names, sorted."""
    _load_extra_families()
    return tuple(sorted(_FAMILIES))


def list_families() -> tuple[ScenarioFamily, ...]:
    """All registered families, sorted by name."""
    _load_extra_families()
    return tuple(_FAMILIES[name] for name in sorted(_FAMILIES))


# ----------------------------------------------------------------------
# Built-in family system builders (module-level: picklable)
# ----------------------------------------------------------------------
def _bicycle_family_system(
    speed: float, wheelbase: float, max_steer: float = 0.4
) -> ContinuousSystem:
    """Kinematic bicycle + the registered saturating lane-keeping NN."""
    k1, k2 = 0.5, 1.2
    plant = kinematic_bicycle_plant(speed=speed, wheelbase=wheelbase)
    network = FeedforwardNetwork(
        [
            Layer(
                np.array([[k1 / max_steer, k2 / max_steer]]),
                np.zeros(1),
                "tansig",
            ),
            Layer(np.array([[-max_steer]]), np.zeros(1), "linear"),
        ]
    )
    return compose(plant, network, name="bicycle+lane-keep-nn")


def _pendulum_family_system(
    mass: float, length: float, damping: float
) -> ContinuousSystem:
    """Inverted pendulum + the registered saturating tansig PD network."""
    plant = inverted_pendulum_plant(mass=mass, length=length, damping=damping)
    kp, kd, squash = 12.0, 4.0, 0.5
    network = FeedforwardNetwork(
        [
            Layer(np.array([[squash, 0.0], [0.0, squash]]), np.zeros(2), "tansig"),
            Layer(np.array([[-kp / squash, -kd / squash]]), np.zeros(1), "linear"),
        ]
    )
    return compose(plant, network, name="pendulum+pd-nn")


def _cartpole_family_system(
    pole_length: float, max_accel: float
) -> ContinuousSystem:
    """Cart-pole (acceleration input) + saturating LQR-gain network."""
    gains = np.array([[1.0, 2.2, 28.62, 6.52]])
    plant = cartpole_plant(pole_length=pole_length, control="acceleration")
    network = FeedforwardNetwork(
        [
            Layer(gains / max_accel, np.zeros(1), "tansig"),
            Layer(np.array([[max_accel]]), np.zeros(1), "linear"),
        ]
    )
    return compose(plant, network, name="cartpole+lqr-nn")


def _linear_family_system(damping: float, rotation: float) -> ContinuousSystem:
    """Stable spiral ``x' = [[-a, b], [-b, -a]] x`` (a=damping, b=rotation)."""
    return stable_linear_system(
        np.array([[-damping, rotation], [-rotation, -damping]])
    )


# ----------------------------------------------------------------------
# Built-in family scenario factories
# ----------------------------------------------------------------------
def _dubins_family(nn_width: int, speed: float) -> Scenario:
    """Paper case study at an arbitrary controller width and speed."""
    return Scenario(
        name="dubins",
        description=(
            f"Dubins error dynamics, width-{nn_width} tansig controller, "
            f"speed {format_param_value(speed)}"
        ),
        system_factory=functools.partial(
            _dubins_system, hidden_neurons=nn_width, speed=speed
        ),
        initial_set=paper_initial_set(),
        unsafe_set=paper_unsafe_set(),
        config=SynthesisConfig(gamma=GAMMA),
        tags=("paper", "family"),
    )


def _bicycle_family(speed: float, wheelbase: float, lane_width: float) -> Scenario:
    """Lane keeping with the lane half-width as the unsafe boundary."""
    half = lane_width / 2.0
    return Scenario(
        name="bicycle",
        description=(
            f"Kinematic-bicycle lane keeping, speed "
            f"{format_param_value(speed)}, wheelbase "
            f"{format_param_value(wheelbase)}, lane width "
            f"{format_param_value(lane_width)}"
        ),
        system_factory=functools.partial(
            _bicycle_family_system, speed=speed, wheelbase=wheelbase
        ),
        initial_set=Rectangle([-0.2, -0.15], [0.2, 0.15]),
        unsafe_set=RectangleComplement(Rectangle([-half, -0.8], [half, 0.8])),
        tags=("paper", "family"),
    )


def _cartpole_family(pole_length: float, max_accel: float) -> Scenario:
    """4-D stress workload; keeps the registered capped solver budget."""
    return Scenario(
        name="cartpole",
        description=(
            f"Cart-pole, pole length {format_param_value(pole_length)}, "
            f"acceleration cap {format_param_value(max_accel)} "
            "(capped budget: expect inconclusive)"
        ),
        system_factory=functools.partial(
            _cartpole_family_system,
            pole_length=pole_length,
            max_accel=max_accel,
        ),
        initial_set=Rectangle(
            [-0.05, -0.05, -0.05, -0.05], [0.05, 0.05, 0.05, 0.05]
        ),
        unsafe_set=RectangleComplement(
            Rectangle([-1.0, -1.2, -0.3, -1.2], [1.0, 1.2, 0.3, 1.2])
        ),
        config=SynthesisConfig(
            icp=IcpConfig(delta=1e-2, max_boxes=50_000, time_limit=5.0),
            max_candidate_iterations=2,
            max_levelset_iterations=3,
        ),
        tags=("family", "stress"),
    )


def _pendulum_family(mass: float, length: float, damping: float) -> Scenario:
    """Inverted pendulum across physical-parameter space."""
    return Scenario(
        name="pendulum",
        description=(
            f"Inverted pendulum, mass {format_param_value(mass)}, length "
            f"{format_param_value(length)}, damping "
            f"{format_param_value(damping)}"
        ),
        system_factory=functools.partial(
            _pendulum_family_system, mass=mass, length=length, damping=damping
        ),
        initial_set=Rectangle([-0.15, -0.15], [0.15, 0.15]),
        unsafe_set=RectangleComplement(Rectangle([-1.0, -3.0], [1.0, 3.0])),
        tags=("family",),
    )


def _linear_family(damping: float, rotation: float) -> Scenario:
    """Analytic stable spiral — the fastest family (tests, smoke runs)."""
    return Scenario(
        name="linear",
        description=(
            f"Stable linear spiral, damping {format_param_value(damping)}, "
            f"rotation {format_param_value(rotation)}"
        ),
        system_factory=functools.partial(
            _linear_family_system, damping=damping, rotation=rotation
        ),
        initial_set=Rectangle([-0.4, -0.4], [0.4, 0.4]),
        unsafe_set=RectangleComplement(Rectangle([-2.0, -2.0], [2.0, 2.0])),
        tags=("family",),
    )


def _register_builtin_families() -> None:
    register_family(
        ScenarioFamily(
            name="dubins",
            description="Paper case study across controller width and speed",
            factory=_dubins_family,
            parameters=(
                ParamSpec(
                    "nn_width", "int", default=10, low=2, high=1000,
                    description="hidden-layer width of the tansig controller",
                ),
                ParamSpec(
                    "speed", "float", default=1.0, low=0.25, high=6.0,
                    description="constant vehicle speed V",
                ),
            ),
            tags=("paper",),
        )
    )
    register_family(
        ScenarioFamily(
            name="bicycle",
            description="Lane keeping across speed, wheelbase, and lane width",
            factory=_bicycle_family,
            parameters=(
                ParamSpec(
                    "speed", "float", default=1.0, low=0.25, high=4.0,
                    description="longitudinal speed V",
                ),
                ParamSpec(
                    "wheelbase", "float", default=1.0, low=0.5, high=3.0,
                    description="wheelbase L",
                ),
                ParamSpec(
                    "lane_width", "float", default=3.0, low=1.0, high=6.0,
                    description="full lane width (unsafe beyond half of it)",
                ),
            ),
            tags=("paper",),
        )
    )
    register_family(
        ScenarioFamily(
            name="cartpole",
            description="4-D cart-pole stress workload across pole length "
            "and actuation cap (capped budget)",
            factory=_cartpole_family,
            parameters=(
                ParamSpec(
                    "pole_length", "float", default=0.5, low=0.25, high=1.0,
                    description="half-length of the pole",
                ),
                ParamSpec(
                    "max_accel", "float", default=10.0, low=5.0, high=20.0,
                    description="commanded-acceleration saturation",
                ),
            ),
            tags=("stress",),
        )
    )
    register_family(
        ScenarioFamily(
            name="pendulum",
            description="Inverted pendulum across mass, length, and damping",
            factory=_pendulum_family,
            parameters=(
                ParamSpec("mass", "float", default=0.5, low=0.1, high=1.0),
                ParamSpec("length", "float", default=0.5, low=0.25, high=1.0),
                ParamSpec("damping", "float", default=0.1, low=0.01, high=0.5),
            ),
        )
    )
    register_family(
        ScenarioFamily(
            name="linear",
            description="Analytic stable spiral across damping and rotation "
            "(the cheapest family — smoke tests and cache demos)",
            factory=_linear_family,
            parameters=(
                ParamSpec("damping", "float", default=0.5, low=0.1, high=2.0),
                ParamSpec("rotation", "float", default=1.0, low=0.1, high=2.0),
            ),
        )
    )


_register_builtin_families()
