"""Sound interval arithmetic: the numeric substrate of the δ-SAT solver.

Public surface:

* :class:`Interval` — outward-rounded scalar interval (the oracle).
* :class:`Box` — interval vector (ICP search region).
* :class:`IntervalArray` / :class:`BoxArray` — structure-of-arrays
  batches of intervals/boxes; one NumPy pass per operation over a whole
  solver frontier.
* ``i*`` free functions — dual-semantics (float or interval) elementary
  functions, plus vectorized interval linear algebra for the NN hot path.
* :class:`SharedFrontier` — frontier bound planes in shared memory with
  copy-free :class:`BoxArray` views, for the sharded ICP workers.
"""

from .array import BoxArray, IntervalArray
from .box import Box
from .functions import (
    iabs,
    iatan,
    icos,
    iexp,
    ilog,
    imax,
    imin,
    interval_affine,
    interval_matvec,
    interval_relu_bounds,
    interval_sigmoid_bounds,
    interval_tanh_bounds,
    ipow,
    isigmoid,
    isin,
    isqrt,
    itan,
    itanh,
)
from .interval import Interval
from .rounding import (
    PAD,
    TRIG_SLACK,
    next_down,
    next_down_array,
    next_up,
    next_up_array,
    trig_slack,
    widen,
)
from .shared import SharedFrontier, SharedPlane, recent_segment_names

__all__ = [
    "Box",
    "BoxArray",
    "Interval",
    "IntervalArray",
    "PAD",
    "SharedFrontier",
    "SharedPlane",
    "recent_segment_names",
    "TRIG_SLACK",
    "iabs",
    "iatan",
    "icos",
    "iexp",
    "ilog",
    "imax",
    "imin",
    "interval_affine",
    "interval_matvec",
    "interval_relu_bounds",
    "interval_sigmoid_bounds",
    "interval_tanh_bounds",
    "ipow",
    "isigmoid",
    "isin",
    "isqrt",
    "itan",
    "itanh",
    "next_down",
    "next_down_array",
    "next_up",
    "next_up_array",
    "trig_slack",
    "widen",
]
