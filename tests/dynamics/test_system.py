"""ContinuousSystem abstraction tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics import ContinuousSystem
from repro.errors import ReproError
from repro.expr import sin, var


@pytest.fixture
def pendulum_like():
    x0, x1 = var("x0"), var("x1")
    return ContinuousSystem(["x0", "x1"], [x1, -sin(x0) - 0.2 * x1])


class TestValidation:
    def test_count_mismatch(self):
        with pytest.raises(ReproError):
            ContinuousSystem(["a", "b"], [var("a")])

    def test_empty(self):
        with pytest.raises(ReproError):
            ContinuousSystem([], [])

    def test_state_shape_checked(self, pendulum_like):
        with pytest.raises(ReproError):
            pendulum_like.f(np.zeros(3))


class TestEvaluation:
    def test_f_from_tapes(self, pendulum_like):
        x = np.array([0.3, -0.1])
        expected = np.array([-0.1, -np.sin(0.3) + 0.02])
        assert np.allclose(pendulum_like.f(x), expected)

    def test_f_batch(self, pendulum_like, rng):
        states = rng.uniform(-1, 1, size=(15, 2))
        batch = pendulum_like.f_batch(states)
        assert batch.shape == (15, 2)
        for i, x in enumerate(states):
            assert np.allclose(batch[i], pendulum_like.f(x))

    def test_numeric_override_used(self):
        calls = []

        def override(x):
            calls.append(x.copy())
            return -x

        system = ContinuousSystem(["a"], [var("a")], numeric_override=override)
        out = system.f(np.array([2.0]))
        assert out[0] == -2.0
        assert len(calls) == 1
        # symbolic_f bypasses the override.
        assert system.symbolic_f(np.array([2.0]))[0] == 2.0

    def test_tapes_cached(self, pendulum_like):
        assert pendulum_like.tapes() is pendulum_like.tapes()

    def test_simulator_integration(self, pendulum_like):
        trace = pendulum_like.simulator().simulate(np.array([0.5, 0.0]), 60.0, 0.01)
        # Damped pendulum settles at the origin.
        assert np.linalg.norm(trace.final_state) < 0.01
