"""Fast tier-1 cross-engine parity floor over all builtin scenarios.

A local, <2-minute subset of the CI shard-parity job: every builtin
scenario runs under the full engine matrix — native, batched-icp,
sharded-icp at 1 and 2 shards, portfolio (degraded, no binaries) — and

* every engine returns the same **status**, and
* the exact-degrade trio (batched / sharded / portfolio) returns the
  same **artifact** field-for-field (minus timing).

Cartpole uses the same deterministic trim as the sharded/portfolio
parity suites; each (scenario, engine) pair runs exactly once via a
module-level cache, so the whole floor costs one run per cell.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.api import get_scenario, scenario_names
from repro.corpus.fuzz import VOLATILE_FIELDS
from repro.smt.icp_sharded import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="sharded ICP needs fork"
)

#: (engine name, shard count or None) — the parity-floor matrix
ENGINE_VARIANTS = (
    ("native", None),
    ("batched-icp", None),
    ("sharded-icp", 1),
    ("sharded-icp", 2),
    ("portfolio", None),
)

_cache: dict = {}


def _floor_config(name, shards=None):
    """Deterministic-trim idiom shared with the sharded parity suite."""
    config = get_scenario(name).config
    if name == "cartpole":
        config = dataclasses.replace(
            config,
            num_seed_traces=2,
            trace_duration=1.0,
            max_candidate_iterations=1,
            max_levelset_iterations=1,
            lp=dataclasses.replace(
                config.lp, max_points=150, separation_samples=8
            ),
            icp=dataclasses.replace(
                config.icp, time_limit=None, max_boxes=5000
            ),
        )
    if shards is not None:
        config = dataclasses.replace(
            config, icp=dataclasses.replace(config.icp, shards=shards)
        )
    return config


def _artifact_dict(name, engine, shards=None):
    key = (name, engine, shards)
    if key not in _cache:
        artifact = api.run(
            name,
            config=_floor_config(name, shards),
            engine=engine,
            cache=False,
        )
        data = artifact.to_dict()
        for volatile in VOLATILE_FIELDS:
            data.pop(volatile, None)
        data["config"].pop("engine", None)
        _cache[key] = data
    return _cache[key]


@needs_fork
@pytest.mark.parametrize("name", scenario_names())
def test_statuses_agree_across_the_matrix(name):
    statuses = {
        f"{engine}@{shards}" if shards else engine: _artifact_dict(
            name, engine, shards
        )["status"]
        for engine, shards in ENGINE_VARIANTS
    }
    assert len(set(statuses.values())) == 1, statuses


@needs_fork
@pytest.mark.parametrize("name", scenario_names())
def test_exact_degrade_trio_matches_field_for_field(name):
    batched = _artifact_dict(name, "batched-icp")
    for engine, shards in ENGINE_VARIANTS:
        if engine not in ("sharded-icp", "portfolio"):
            continue
        candidate = _artifact_dict(name, engine, shards)
        assert candidate == batched, (
            f"{engine}@{shards} diverged from batched-icp on {name}"
        )
