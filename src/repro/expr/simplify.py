"""Algebraic simplification: constant folding plus local identities.

The simplifier is deliberately conservative — it applies only rewrites
valid for every real (and interval) valuation:

* constant folding of any node with all-constant children;
* ``x + 0``, ``0 + x``, ``x - 0``, ``x * 1``, ``1 * x``, ``x / 1``;
* ``x * 0`` and ``0 * x`` to ``0`` (sound: operands are total functions
  of the variables — partial-domain ops like log keep their argument);
* ``--x`` to ``x``; ``0 - x`` to ``-x``; ``x ** 1`` to ``x``; ``x ** 0`` to ``1``;
* ``neg`` constant fusion.

It runs bottom-up over the DAG once (iterative), so cost is linear in
the number of distinct nodes.
"""

from __future__ import annotations

import math

from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)

__all__ = ["simplify", "structurally_equal", "is_zero", "is_one", "constant_value"]


def is_zero(node: Expr) -> bool:
    """True for the literal constant 0."""
    return isinstance(node, Const) and node.value == 0.0


def is_one(node: Expr) -> bool:
    """True for the literal constant 1."""
    return isinstance(node, Const) and node.value == 1.0


def constant_value(node: Expr) -> float | None:
    """The float value of a constant node, else None."""
    return node.value if isinstance(node, Const) else None


def simplify(root: Expr) -> Expr:
    """Return a semantically equal, locally simplified expression."""
    rebuilt: dict[int, Expr] = {}
    for node in postorder(root):
        rebuilt[id(node)] = _simplify_node(node, rebuilt)
    return rebuilt[id(root)]


def _simplify_node(node: Expr, rebuilt: dict[int, Expr]) -> Expr:
    if isinstance(node, (Const, Var)):
        return node
    if isinstance(node, Neg):
        child = rebuilt[id(node.child)]
        if isinstance(child, Const):
            return Const(-child.value)
        if isinstance(child, Neg):
            return child.child
        return Neg(child)
    if isinstance(node, Add):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(left.value + right.value)
        if is_zero(left):
            return right
        if is_zero(right):
            return left
        return Add(left, right)
    if isinstance(node, Sub):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(left.value - right.value)
        if is_zero(right):
            return left
        if is_zero(left):
            return Neg(right) if not isinstance(right, Neg) else right.child
        return Sub(left, right)
    if isinstance(node, Mul):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(left.value * right.value)
        if is_zero(left) or is_zero(right):
            return Const(0.0)
        if is_one(left):
            return right
        if is_one(right):
            return left
        return Mul(left, right)
    if isinstance(node, Div):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if isinstance(right, Const) and right.value != 0.0:
            if isinstance(left, Const):
                return Const(left.value / right.value)
            if right.value == 1.0:
                return left
        if is_zero(left) and not is_zero(right):
            # 0 / x is 0 wherever defined; keep the denominator's domain
            # restriction only when it can actually vanish symbolically.
            if isinstance(right, Const):
                return Const(0.0)
        return Div(left, right)
    if isinstance(node, Pow):
        base = rebuilt[id(node.base)]
        if node.exponent == 0:
            return Const(1.0)
        if node.exponent == 1:
            return base
        if isinstance(base, Const):
            return Const(base.value**node.exponent)
        return Pow(base, node.exponent)
    if isinstance(node, Unary):
        child = rebuilt[id(node.child)]
        if isinstance(child, Const):
            folded = _fold_unary(node.op, child.value)
            if folded is not None:
                return Const(folded)
        return Unary(node.op, child)
    if isinstance(node, Min2):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(min(left.value, right.value))
        return Min2(left, right)
    if isinstance(node, Max2):
        left = rebuilt[id(node.left)]
        right = rebuilt[id(node.right)]
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(max(left.value, right.value))
        return Max2(left, right)
    return node


def _fold_unary(op: str, value: float) -> float | None:
    try:
        if op == "sin":
            return math.sin(value)
        if op == "cos":
            return math.cos(value)
        if op == "tan":
            return math.tan(value)
        if op == "tanh":
            return math.tanh(value)
        if op == "sigmoid":
            if value >= 0:
                return 1.0 / (1.0 + math.exp(-value))
            e = math.exp(value)
            return e / (1.0 + e)
        if op == "exp":
            return math.exp(value)
        if op == "log":
            return math.log(value) if value > 0 else None
        if op == "sqrt":
            return math.sqrt(value) if value >= 0 else None
        if op == "abs":
            return abs(value)
        if op == "atan":
            return math.atan(value)
    except (OverflowError, ValueError):
        return None
    return None


def structurally_equal(a: Expr, b: Expr) -> bool:
    """Structural (shape + value) equality of two expressions.

    Iterative pairwise walk; shared-node identity short-circuits.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if type(x) is not type(y):
            return False
        if isinstance(x, Const):
            if x.value != y.value and not (math.isnan(x.value) and math.isnan(y.value)):
                return False
            continue
        if isinstance(x, Var):
            if x.name != y.name:
                return False
            continue
        if isinstance(x, Pow) and x.exponent != y.exponent:
            return False
        if isinstance(x, Unary) and x.op != y.op:
            return False
        xc = x.children()
        yc = y.children()
        if len(xc) != len(yc):
            return False
        stack.extend(zip(xc, yc))
    return True
