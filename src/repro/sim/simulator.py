"""Closed-loop simulation driver.

:class:`Simulator` integrates an autonomous vector field and produces
:class:`~repro.sim.trace.Trace` objects, with optional early stopping
(domain-exit events) and a blow-up guard.  The synthesis loop uses it to
generate the seed traces ``Φs`` and the counterexample traces ``Φf`` of
the paper's Figure 1.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import SimulationError
from .integrators import FixedStepIntegrator, fixed_step_schedule, get_integrator
from .trace import Trace

__all__ = ["Simulator", "StopCondition"]

#: Predicate deciding whether to stop the simulation at a state.
StopCondition = Callable[[np.ndarray], bool]


class Simulator:
    """Integrates ``x' = f(x)`` into traces.

    Parameters
    ----------
    vector_field:
        Autonomous dynamics ``f(x) -> x_dot`` (numpy in, numpy out).
    input_function:
        Optional map ``x -> u`` recorded alongside the states (the NN
        controller output in the closed-loop case).
    method:
        Integrator name: ``"euler"``, ``"rk4"`` (default), or ``"rk45"``.
    blowup_norm:
        Euclidean norm beyond which integration stops and the trace is
        marked truncated; None disables the guard.
    """

    def __init__(
        self,
        vector_field: Callable[[np.ndarray], np.ndarray],
        input_function: Callable[[np.ndarray], np.ndarray] | None = None,
        method: str = "rk4",
        blowup_norm: float | None = 1e6,
        **integrator_options,
    ):
        self.vector_field = vector_field
        self.input_function = input_function
        self.integrator = get_integrator(method, **integrator_options)
        self.blowup_norm = blowup_norm

    def simulate(
        self,
        initial_state: Sequence[float],
        duration: float,
        dt: float = 0.01,
        stop_condition: StopCondition | None = None,
    ) -> Trace:
        """Integrate from ``initial_state`` for ``duration`` seconds.

        Fixed-step methods honor ``stop_condition`` and the blow-up
        guard per step; the adaptive method applies them post hoc by
        trimming the dense output.
        """
        x0 = np.asarray(initial_state, dtype=float)
        if x0.ndim != 1:
            raise SimulationError(f"initial state must be a vector, got {x0.shape}")
        if isinstance(self.integrator, FixedStepIntegrator):
            times, states, truncated = self._run_fixed(
                x0, duration, dt, stop_condition
            )
        else:
            times, states = self.integrator.integrate(
                self.vector_field, x0, duration, dt
            )
            times, states, truncated = self._trim(times, states, stop_condition)
        inputs = None
        if self.input_function is not None:
            inputs = np.array([np.atleast_1d(self.input_function(x)) for x in states])
        return Trace(times, states, inputs, truncated)

    def simulate_batch(
        self,
        initial_states: np.ndarray,
        duration: float,
        dt: float = 0.01,
        stop_condition: StopCondition | None = None,
    ) -> list[Trace]:
        """One trace per row of ``initial_states``."""
        initial_states = np.atleast_2d(np.asarray(initial_states, dtype=float))
        return [
            self.simulate(x0, duration, dt, stop_condition) for x0 in initial_states
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_fixed(
        self,
        x0: np.ndarray,
        duration: float,
        dt: float,
        stop_condition: StopCondition | None,
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        _, schedule = fixed_step_schedule(duration, dt)
        x = x0.copy()
        times = [0.0]
        states = [x.copy()]
        truncated = False
        t = 0.0
        for h in schedule:
            x = self.integrator.step(self.vector_field, x, h)
            t += h
            if not np.all(np.isfinite(x)):
                truncated = True
                break
            if self.blowup_norm is not None and np.linalg.norm(x) > self.blowup_norm:
                times.append(t)
                states.append(x.copy())
                truncated = True
                break
            times.append(t)
            states.append(x.copy())
            if stop_condition is not None and stop_condition(x):
                truncated = True
                break
        return np.array(times), np.array(states), truncated

    def _trim(
        self,
        times: np.ndarray,
        states: np.ndarray,
        stop_condition: StopCondition | None,
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        cut = len(times)
        truncated = False
        for k in range(len(times)):
            state = states[k]
            exceeded = (
                self.blowup_norm is not None
                and np.linalg.norm(state) > self.blowup_norm
            )
            stopped = stop_condition is not None and stop_condition(state)
            if exceeded or stopped:
                cut = k + 1
                truncated = True
                break
        return times[:cut], states[:cut], truncated
