"""Symbolic differentiation.

Builds derivative expressions bottom-up over the DAG postorder (iterative,
shared subexpressions differentiated once).  Results are lightly folded by
:func:`repro.expr.simplify.simplify` so gradients of quadratic templates
stay readably small.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import DifferentiationError
from .build import cos, exp, sigmoid, sin, sqrt, tan, tanh
from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)
from .simplify import simplify

__all__ = ["differentiate", "gradient"]

_ZERO = Const(0.0)
_ONE = Const(1.0)


def differentiate(root: Expr, wrt: "Var | str") -> Expr:
    """Symbolic partial derivative of ``root`` with respect to ``wrt``.

    Raises
    ------
    DifferentiationError
        For non-smooth nodes (abs, min, max) whose derivative is not a
        total function; barrier templates never contain them.
    """
    name = wrt.name if isinstance(wrt, Var) else str(wrt)
    derivs: dict[int, Expr] = {}
    for node in postorder(root):
        derivs[id(node)] = _derive(node, derivs, name)
    return simplify(derivs[id(root)])


def gradient(root: Expr, wrt: Sequence["Var | str"]) -> list[Expr]:
    """Gradient vector ``[d root / d v for v in wrt]``."""
    return [differentiate(root, v) for v in wrt]


def _derive(node: Expr, derivs: dict[int, Expr], name: str) -> Expr:
    if isinstance(node, Const):
        return _ZERO
    if isinstance(node, Var):
        return _ONE if node.name == name else _ZERO
    if isinstance(node, Add):
        return derivs[id(node.left)] + derivs[id(node.right)]
    if isinstance(node, Sub):
        return derivs[id(node.left)] - derivs[id(node.right)]
    if isinstance(node, Mul):
        left, right = node.left, node.right
        return derivs[id(left)] * right + left * derivs[id(right)]
    if isinstance(node, Div):
        num, den = node.left, node.right
        return (derivs[id(num)] * den - num * derivs[id(den)]) / (den * den)
    if isinstance(node, Neg):
        return -derivs[id(node.child)]
    if isinstance(node, Pow):
        base_d = derivs[id(node.base)]
        n = node.exponent
        if n == 0:
            return _ZERO
        return Const(float(n)) * Pow(node.base, n - 1) * base_d
    if isinstance(node, Unary):
        inner = derivs[id(node.child)]
        return _unary_chain(node, inner)
    if isinstance(node, (Min2, Max2)):
        raise DifferentiationError(
            f"{type(node).__name__} is not differentiable; "
            "smooth the expression before differentiating"
        )
    raise DifferentiationError(f"unknown node type: {type(node).__name__}")


def _unary_chain(node: Unary, inner: Expr) -> Expr:
    x = node.child
    if node.op == "sin":
        outer: Expr = cos(x)
    elif node.op == "cos":
        outer = -sin(x)
    elif node.op == "tan":
        outer = _ONE + tan(x) * tan(x)
    elif node.op == "tanh":
        outer = _ONE - tanh(x) * tanh(x)
    elif node.op == "sigmoid":
        s = sigmoid(x)
        outer = s * (_ONE - s)
    elif node.op == "exp":
        outer = exp(x)
    elif node.op == "log":
        outer = _ONE / x
    elif node.op == "sqrt":
        outer = _ONE / (Const(2.0) * sqrt(x))
    elif node.op == "atan":
        outer = _ONE / (_ONE + x * x)
    elif node.op == "abs":
        raise DifferentiationError("abs is not differentiable at 0")
    else:  # pragma: no cover - UNARY_OPS is closed
        raise DifferentiationError(f"no derivative rule for {node.op!r}")
    return outer * inner
