"""δ-satisfiability solving over nonlinear real arithmetic.

This package replaces dReal in the paper's toolchain: a branch-and-prune
interval constraint propagation (ICP) solver with HC4 contractors that
returns sound **UNSAT** proofs or **δ-SAT** witnesses for existential
queries over Type-2 computable functions (polynomials, trigonometry,
exponentials, sigmoids).
"""

from .constraint import Constraint, Relation, Status, eq, ge, gt, le, lt
from .contractor import contract_fixpoint, hc4_revise
from .formula import And, Atom, Formula, Or, conjunction_of, to_dnf
from .hc4 import FrontierContractor, contract_frontier
from .icp import IcpConfig, IcpSolver, solve_conjunction
from .icp_batched import BatchedIcpSolver, solve_conjunction_batched
from .icp_sharded import ShardedIcpSolver, resolve_shards
from .queries import Subproblem, check_exists, check_exists_on_boxes
from .result import SmtResult, SolverStats, Verdict

__all__ = [
    "And",
    "Atom",
    "BatchedIcpSolver",
    "Constraint",
    "Formula",
    "FrontierContractor",
    "IcpConfig",
    "IcpSolver",
    "Or",
    "Relation",
    "ShardedIcpSolver",
    "SmtResult",
    "SolverStats",
    "Status",
    "Subproblem",
    "Verdict",
    "check_exists",
    "check_exists_on_boxes",
    "conjunction_of",
    "contract_fixpoint",
    "contract_frontier",
    "eq",
    "ge",
    "gt",
    "hc4_revise",
    "le",
    "lt",
    "resolve_shards",
    "solve_conjunction",
    "solve_conjunction_batched",
    "to_dnf",
]
