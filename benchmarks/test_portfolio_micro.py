"""Portfolio micro-benchmark: the cost of the degraded race path.

With no external binaries installed (the CI default) the ``portfolio``
backend must delegate to ``batched-icp`` with negligible overhead —
this benchmark times the Table-1 dubins condition-(5) check through
both and records the ratio, plus the SMT-LIB emission throughput for
every builtin scenario (the fixed cost a real race would pay before
dispatch).

Writes ``benchmarks/results/BENCH_portfolio.json``.  Acceptance bar:
degraded-portfolio wall clock within ``OVERHEAD_BAR`` of batched-icp.
"""

from __future__ import annotations

import json
import os
import time

from repro.api import get_scenario, scenario_names
from repro.barrier.certificate import condition5_subproblems
from repro.engine import get_engine
from repro.expr import sum_expr, var
from repro.solvers import PortfolioSmtBackend, emit_query, probe_all

REPEATS = 3
#: degraded portfolio may cost at most this factor over batched-icp
#: (plus an absolute grace for timer noise on near-instant checks)
OVERHEAD_BAR = 1.5
GRACE_SECONDS = 0.05


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _condition5(name):
    scenario = get_scenario(name)
    problem = scenario.problem()
    w = sum_expr([var(n) * var(n) for n in problem.state_names])
    subs = condition5_subproblems(w, problem, gamma=1e-6)
    return subs, problem.state_names, scenario.config.icp


def test_portfolio_degrade_overhead(emit, results_dir):
    subs, names, icp = _condition5("dubins")
    batched = get_engine("batched-icp").smt
    portfolio = PortfolioSmtBackend(solvers=[])  # force the degrade path

    batched_s, batched_res = _best_of(
        REPEATS, lambda: batched.check(subs, names, icp)
    )
    portfolio_s, portfolio_res = _best_of(
        REPEATS, lambda: portfolio.check(subs, names, icp)
    )
    assert portfolio_res.verdict is batched_res.verdict
    assert portfolio_s <= batched_s * OVERHEAD_BAR + GRACE_SECONDS, (
        f"degraded portfolio {portfolio_s:.4f}s vs batched {batched_s:.4f}s"
    )

    emission = {}
    for scenario in sorted(scenario_names()):
        e_subs, e_names, e_icp = _condition5(scenario)
        seconds, query = _best_of(
            REPEATS, lambda: emit_query(e_subs, e_names, e_icp.delta)
        )
        emission[scenario] = {
            "seconds": round(seconds, 6),
            "bytes": len(query.text),
            "ops": sorted(query.ops),
        }

    solvers = {
        name: {"available": info.available, "version": info.version}
        for name, info in probe_all().items()
    }

    payload = {
        "scenario": "dubins",
        "cpu_count": os.cpu_count(),
        "external_solvers": solvers,
        "condition5": {
            "subproblems": len(subs),
            "verdict": batched_res.verdict.value,
            "batched_seconds": round(batched_s, 6),
            "degraded_portfolio_seconds": round(portfolio_s, 6),
            "overhead_ratio": round(portfolio_s / batched_s, 3),
        },
        "emission": emission,
        "overhead_bar": OVERHEAD_BAR,
    }
    (results_dir / "BENCH_portfolio.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    lines = [
        f"condition5 ({len(subs)} subproblems, verdict "
        f"{batched_res.verdict.value}):",
        f"  batched-icp          {batched_s * 1e3:8.2f} ms",
        f"  portfolio (degraded) {portfolio_s * 1e3:8.2f} ms  "
        f"(x{portfolio_s / batched_s:.2f})",
        "emission (best of "
        f"{REPEATS}): "
        + ", ".join(
            f"{name} {info['bytes']}B/{info['seconds'] * 1e3:.1f}ms"
            for name, info in emission.items()
        ),
        "external solvers: "
        + ", ".join(
            f"{name}={'yes ' + info['version'] if info['available'] else 'no'}"
            for name, info in solvers.items()
        ),
    ]
    emit("portfolio", "\n".join(lines))
