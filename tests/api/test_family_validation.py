"""Every family-parameter rejection names the parameter and its bounds."""

from __future__ import annotations

import math

import pytest

from repro.api import get_family
from repro.api.family import ParamSpec
from repro.errors import ReproError


@pytest.fixture(scope="module")
def linear():
    return get_family("linear")


@pytest.fixture(scope="module")
def dubins():
    return get_family("dubins-nn")


def test_unknown_parameter_names_itself_and_the_family(linear):
    with pytest.raises(
        ReproError,
        match=r"family 'linear': unknown parameter\(s\) warp",
    ):
        linear.instantiate(warp=9)


def test_unknown_parameter_lists_the_valid_ones(linear):
    with pytest.raises(ReproError, match="damping"):
        linear.instantiate(warp=9)


def test_missing_parameter_without_default():
    spec = ParamSpec(name="required", kind="float", default=None)
    from repro.api.family import ScenarioFamily

    family = ScenarioFamily(
        name="needs-param",
        description="test",
        factory=lambda required: None,
        parameters=(spec,),
    )
    with pytest.raises(
        ReproError,
        match="parameter 'required' has no default and was not given",
    ):
        family.resolve_params({})


def test_non_number_names_parameter_and_bounds(linear):
    with pytest.raises(
        ReproError,
        match=r"parameter 'damping': expected a number, got \[1\].*valid range",
    ):
        linear.instantiate(damping=[1])


def test_non_finite_names_parameter_and_bounds(linear):
    with pytest.raises(
        ReproError,
        match=r"parameter 'damping'=nan must be finite.*valid range",
    ):
        linear.instantiate(damping=math.nan)


def test_non_integer_names_parameter_and_bounds(dubins):
    with pytest.raises(
        ReproError,
        match=r"parameter 'nn_width'=8\.5 must be an integer.*valid range",
    ):
        dubins.instantiate(nn_width=8.5)


def test_integral_float_coerces_cleanly(dubins):
    scenario = dubins.instantiate(nn_width=8.0)
    params = dict(scenario.family_params)
    assert params["nn_width"] == 8
    assert isinstance(params["nn_width"], int)


def test_below_minimum_names_parameter_value_and_bounds(linear):
    spec = linear.spec("damping")
    with pytest.raises(ReproError) as excinfo:
        linear.instantiate(damping=spec.low - 1)
    message = str(excinfo.value)
    assert "'damping'" in message
    assert "below the minimum" in message
    assert f"{spec.low:g}" in message
    assert f"{spec.high:g}" in message


def test_above_maximum_names_parameter_value_and_bounds(linear):
    spec = linear.spec("damping")
    with pytest.raises(ReproError) as excinfo:
        linear.instantiate(damping=spec.high + 1)
    message = str(excinfo.value)
    assert "'damping'" in message
    assert "above the maximum" in message
    assert f"{spec.high:g}" in message


def test_bad_choice_lists_the_choices(dubins):
    with pytest.raises(
        ReproError,
        match=r"parameter 'activation'='relu' is not one of tansig, logsig",
    ):
        dubins.instantiate(activation="relu")


@pytest.mark.parametrize(
    "spec, expected",
    [
        (ParamSpec("p", "float", 1.0, low=0.5, high=2.0), "[0.5, 2]"),
        (ParamSpec("p", "float", 1.0, low=0.5), "[0.5, inf)"),
        (ParamSpec("p", "float", 1.0, high=2.0), "(-inf, 2]"),
        (ParamSpec("p", "float", 1.0), "unbounded"),
        (
            ParamSpec("p", "choice", "a", choices=("a", "b")),
            "one of a, b",
        ),
    ],
)
def test_bounds_text_covers_every_shape(spec, expected):
    assert expected in spec.bounds_text()
