"""Frontier-sharded ICP: bitwise parity, cancellation, segment hygiene.

The sharded solver's whole value proposition is that it is the batched
solver, bit for bit, at any shard count — so these tests compare
verdicts, witnesses (exact array equality, not allclose), and every
``SolverStats`` counter against :class:`~repro.smt.BatchedIcpSolver`,
then check the operational contracts: cooperative cancellation reaches
the workers within one batch round, and no shared-memory segment
survives a solve — not even one killed by ``KeyboardInterrupt``.
"""

from __future__ import annotations

import contextlib
import dataclasses
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import SolverError
from repro.expr import cos, exp, sin, tanh, var
from repro.intervals import Box, Interval
from repro.smt import (
    BatchedIcpSolver,
    IcpConfig,
    ShardedIcpSolver,
    Verdict,
    eq,
    ge,
    le,
    resolve_shards,
)
from repro.smt.icp_sharded import fork_available, shard_bounds

X, Y = var("x"), var("y")
NAMES = ["x", "y"]
BOX22 = Box([Interval(-2.0, 2.0), Interval(-2.0, 2.0)])
BOX44 = Box([Interval(-4.0, 4.0), Interval(-4.0, 4.0)])

#: queries chosen to build real frontiers (hundreds of live boxes), so
#: the sharded dispatch path actually runs instead of falling back.
CASES = [
    ([ge(X * X + Y * Y, 1.0), le(X * X + Y * Y, 1.1)], BOX22),
    ([ge(sin(X) + cos(Y), 1.9)], BOX44),
    ([ge(sin(X) + cos(Y), 2.5)], BOX44),
    ([le(tanh(X) * 2.0 - Y, 0.0), ge(X - Y * Y, 0.5)], BOX22),
    ([eq(X * X - 2.0, 0.0)], Box([Interval(0, 2), Interval(0, 1)])),
    ([ge(exp(X) - 3.0 * Y, 0.0), le(X + Y, -1.0), ge(Y, 0.25)], BOX22),
]

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="sharded ICP needs fork"
)


def _strip_time(stats):
    return dataclasses.replace(stats, elapsed_seconds=0.0)


def _assert_identical(sharded, reference):
    assert sharded.verdict is reference.verdict
    assert sharded.delta == reference.delta
    assert sharded.witness_validated == reference.witness_validated
    if reference.witness is None:
        assert sharded.witness is None
    else:
        np.testing.assert_array_equal(sharded.witness, reference.witness)
    assert _strip_time(sharded.stats) == _strip_time(reference.stats)


def _assert_segments_unlinked(solver):
    assert solver.last_segment_names, "no team was ever started"
    for name in solver.last_segment_names:
        with pytest.raises(FileNotFoundError):
            seg = shared_memory.SharedMemory(name=name)
            seg.close()  # pragma: no cover - only on leak


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------


class TestShardBounds:
    def test_covers_contiguously_in_order(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_sizes_differ_by_at_most_one(self):
        for m in range(0, 40):
            for shards in range(1, 7):
                bounds = shard_bounds(m, shards)
                assert len(bounds) == shards
                sizes = [b - a for a, b in bounds]
                assert sum(sizes) == m
                assert max(sizes) - min(sizes) <= 1
                assert bounds[0][0] == 0
                assert all(
                    bounds[i][1] == bounds[i + 1][0]
                    for i in range(shards - 1)
                )

    def test_fewer_rows_than_shards_leaves_empty_ranges(self):
        assert shard_bounds(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]


class TestResolveShards:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(IcpConfig()) == 1
        assert resolve_shards(None) == 1

    def test_config_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert resolve_shards(IcpConfig(shards=3)) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(IcpConfig()) == 4

    def test_garbage_env_means_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "many")
        assert resolve_shards(IcpConfig()) == 1
        monkeypatch.setenv("REPRO_SHARDS", "0")
        assert resolve_shards(IcpConfig()) == 1

    def test_negative_config_rejected(self):
        with pytest.raises(SolverError):
            IcpConfig(shards=0)
        with pytest.raises(SolverError):
            IcpConfig(shards=-2)


# ----------------------------------------------------------------------
# Bitwise parity with the batched solver
# ----------------------------------------------------------------------


@pytest.mark.parametrize("case", range(len(CASES)))
@pytest.mark.parametrize("shards", [2, 3, 4])
def test_solve_bit_identical(case, shards):
    constraints, region = CASES[case]
    config = IcpConfig(delta=1e-3)
    reference = BatchedIcpSolver(config).solve(constraints, region, NAMES)
    solver = ShardedIcpSolver(config, shards=shards)
    sharded = solver.solve(constraints, region, NAMES)
    _assert_identical(sharded, reference)
    _assert_segments_unlinked(solver)


@pytest.mark.parametrize("shards", [2, 4])
def test_solve_union_bit_identical(shards):
    constraints = [ge(sin(X) + cos(Y), 1.9)]
    regions = [
        Box([Interval(-4, -1), Interval(-4, 0)]),
        Box([Interval(-1, 2), Interval(-2, 2)]),
        Box([Interval(2, 4), Interval(0, 4)]),
    ]
    config = IcpConfig(delta=1e-3)
    reference = BatchedIcpSolver(config).solve_union(
        constraints, regions, NAMES
    )
    solver = ShardedIcpSolver(config, shards=shards)
    sharded = solver.solve_union(constraints, regions, NAMES)
    _assert_identical(sharded, reference)
    _assert_segments_unlinked(solver)


def test_one_shard_never_forks():
    solver = ShardedIcpSolver(IcpConfig(delta=1e-3), shards=1)
    constraints, region = CASES[0]
    reference = BatchedIcpSolver(IcpConfig(delta=1e-3)).solve(
        constraints, region, NAMES
    )
    _assert_identical(solver.solve(constraints, region, NAMES), reference)
    assert solver.last_segment_names == ()  # no team, no segments


def test_shards_from_config_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert ShardedIcpSolver(IcpConfig(shards=3)).shards == 3
    monkeypatch.setenv("REPRO_SHARDS", "2")
    assert ShardedIcpSolver().shards == 2
    assert ShardedIcpSolver(shards=5).shards == 5  # explicit arg wins


def test_no_fork_platform_falls_back(monkeypatch):
    import repro.smt.icp_sharded as mod

    monkeypatch.setattr(mod, "fork_available", lambda: False)
    solver = ShardedIcpSolver(IcpConfig(delta=1e-3), shards=4)
    constraints, region = CASES[0]
    reference = BatchedIcpSolver(IcpConfig(delta=1e-3)).solve(
        constraints, region, NAMES
    )
    _assert_identical(solver.solve(constraints, region, NAMES), reference)
    assert solver.last_segment_names == ()


def test_unbounded_region_raises_without_forking():
    solver = ShardedIcpSolver(IcpConfig(delta=1e-3), shards=2)
    region = Box([Interval.entire(), Interval(0, 1)])
    with pytest.raises(SolverError):
        solver.solve([ge(X, 0.0)], region, NAMES)
    assert solver.last_segment_names == ()


# ----------------------------------------------------------------------
# Cancellation + shared-memory hygiene
# ----------------------------------------------------------------------


class _CapturingSolver(ShardedIcpSolver):
    """Records the live worker processes so tests can assert they die."""

    captured_procs = ()

    @contextlib.contextmanager
    def _team_scope(self, constraints, names):
        with super()._team_scope(constraints, names) as team:
            self.captured_procs = list(team.procs)
            yield team


@pytest.mark.parametrize("shards", [2, 4])
def test_should_stop_observed_within_one_batch_round(shards):
    config = IcpConfig(delta=1e-6, batch_size=64)
    polls = {"n": 0}

    def stop_after_first_round():
        polls["n"] += 1
        return polls["n"] > 1

    solver = _CapturingSolver(
        config, should_stop=stop_after_first_round, shards=shards
    )
    result = solver.solve(*CASES[1][:2], NAMES)
    assert result.verdict is Verdict.UNKNOWN
    # Stopped right after the first frontier batch: every worker did at
    # most one round of row work before the team was torn down.
    assert result.stats.boxes_processed <= config.batch_size
    assert solver.captured_procs, "expected forked workers"
    for proc in solver.captured_procs:
        assert not proc.is_alive()
    _assert_segments_unlinked(solver)


def test_immediate_stop_returns_unknown_and_cleans_up():
    solver = _CapturingSolver(
        IcpConfig(delta=1e-3), should_stop=lambda: True, shards=2
    )
    result = solver.solve(*CASES[0][:2], NAMES)
    assert result.verdict is Verdict.UNKNOWN
    assert result.stats.boxes_processed == 0
    for proc in solver.captured_procs:
        assert not proc.is_alive()
    _assert_segments_unlinked(solver)


def test_keyboard_interrupt_unlinks_segments():
    polls = {"n": 0}

    def raise_on_second_poll():
        polls["n"] += 1
        if polls["n"] > 1:
            raise KeyboardInterrupt
        return False

    solver = _CapturingSolver(
        IcpConfig(delta=1e-6, batch_size=64),
        should_stop=raise_on_second_poll,
        shards=2,
    )
    with pytest.raises(KeyboardInterrupt):
        solver.solve(*CASES[1][:2], NAMES)
    for proc in solver.captured_procs:
        assert not proc.is_alive()
    _assert_segments_unlinked(solver)


def test_solver_error_mid_solve_unlinks_segments():
    class Boom(Exception):
        pass

    class ExplodingSolver(_CapturingSolver):
        def _prune_masks(self, tapes, constraints, batch):
            raise Boom

    solver = ExplodingSolver(IcpConfig(delta=1e-3), shards=2)
    with pytest.raises(Boom):
        solver.solve(*CASES[0][:2], NAMES)
    for proc in solver.captured_procs:
        assert not proc.is_alive()
    _assert_segments_unlinked(solver)
