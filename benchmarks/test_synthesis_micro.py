"""End-to-end synthesis benchmark: the whole loop vs the pre-PR baseline.

Three measurements, one run:

* **End-to-end verify latency** on the paper's dubins workload, over the
  {engine} x {kernel layer on/off} matrix.  The pre-PR baseline is the
  ``native`` engine with ``REPRO_KERNELS`` off (the interpreted tape
  walkers); the shipped fast path is ``batched-icp`` with kernels on.
* **Path parity** on every builtin scenario: with wall-clock solver
  limits neutralized (box budgets are deterministic, wall clocks are
  not), the kernel-compiled and interpreted paths must return
  bit-identical statuses, levels, counterexample witnesses, and LP
  coefficients.
* **Cold sweep throughput** against a fresh artifact store on the PR-4
  benchmark grid, via the warm worker pool — compared against PR 4's
  recorded 88.55 scenarios/min @ 2 workers.

Writes ``benchmarks/results/BENCH_synthesis.json``.  Acceptance bars:
>= 2x end-to-end dubins speedup (fast path vs pre-PR baseline) and
>= 1.5x the PR-4 cold sweep rate, with all parity checks holding.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.api import get_scenario, run, scenario_names, sweep
from repro.perf import use_kernels
from repro.store import ArtifactStore

REPEATS = 3
E2E_SPEEDUP_BAR = 2.0
#: PR 4's recorded cold rate (benchmarks/results/BENCH_sweep.json then)
PR4_COLD_RATE = 88.55
SWEEP_RATE_BAR = 1.5 * PR4_COLD_RATE
#: hardware-independent fallback: the same-run speedup over the PR-4
#: configuration (default engine, one-shot executor) must reach 1.5x —
#: so the CI gate holds on runners slower than the recording box
SWEEP_RATIO_BAR = 1.5
#: the PR-4 sweep benchmark grid, unchanged for comparability
GRID = {"speed": "1:2:3", "nn_width": "8,10"}
SWEEP_WORKERS = 2
SWEEP_ENGINE = "batched-icp"

#: per-scenario deterministic solver budget overrides for the parity
#: matrix: wall-clock limits are machine-dependent (the same search can
#: be UNKNOWN on a slow box and UNSAT on a fast one), so they are
#: removed; cartpole's box/iteration/LP budgets are cut to keep the 4-D
#: stress workload bounded (32 samples/edge in 4-D is a 4M-row
#: separation block — the LP alone takes minutes at full density).
PARITY_BUDGETS = {
    "cartpole": {
        "max_boxes": 200,
        "max_candidate_iterations": 2,
        "separation_samples": 4,
    }
}


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _parity_config(scenario):
    budget = dict(PARITY_BUDGETS.get(scenario.name, {}))
    icp = dataclasses.replace(
        scenario.config.icp,
        time_limit=None,
        max_boxes=budget.pop("max_boxes", scenario.config.icp.max_boxes),
    )
    lp = scenario.config.lp
    if "separation_samples" in budget:
        lp = dataclasses.replace(
            lp, separation_samples=budget.pop("separation_samples")
        )
    return dataclasses.replace(scenario.config, icp=icp, lp=lp, **budget)


def _artifact_fingerprint(artifact):
    report = artifact.report
    cert = artifact.certificate or {}
    return {
        "status": artifact.status,
        "level": artifact.level,
        "iterations": artifact.candidate_iterations,
        "counterexamples": [
            [float(v) for v in witness] for witness in report.counterexamples
        ],
        "coefficients": cert.get("coefficients"),
        "check5": (
            report.final_check5.verdict.value if report.final_check5 else None
        ),
    }


def test_synthesis_end_to_end(emit, results_dir, tmp_path):
    # ------------------------------------------------------------------
    # 1. dubins end-to-end latency matrix
    # ------------------------------------------------------------------
    matrix = {}
    for engine in ("native", "batched-icp"):
        for kernels in (False, True):
            with use_kernels(kernels):
                seconds, artifact = _best_of(
                    REPEATS, lambda: run("dubins", engine=engine, cache=False)
                )
            assert artifact.verified
            matrix[f"{engine}/kernels-{'on' if kernels else 'off'}"] = round(
                seconds, 6
            )
    baseline_s = matrix["native/kernels-off"]
    fast_s = matrix["batched-icp/kernels-on"]
    e2e_speedup = baseline_s / fast_s

    # ------------------------------------------------------------------
    # 2. kernel-path parity across every builtin scenario
    # ------------------------------------------------------------------
    parity = {}
    parity_seconds = {}
    for name in scenario_names():
        scenario = get_scenario(name)
        config = _parity_config(scenario)
        with use_kernels(False):
            off_s, off = _best_of(
                1, lambda: run(scenario, config=config, cache=False)
            )
        with use_kernels(True):
            on_s, on = _best_of(
                1, lambda: run(scenario, config=config, cache=False)
            )
        identical = _artifact_fingerprint(off) == _artifact_fingerprint(on)
        parity[name] = {
            "status": on.status,
            "identical": identical,
            "interpreted_seconds": round(off_s, 4),
            "kernel_seconds": round(on_s, 4),
        }
        parity_seconds[name] = (off_s, on_s)
        assert identical, (
            f"{name}: kernel-compiled path diverged from the interpreted "
            f"path ({_artifact_fingerprint(off)} vs {_artifact_fingerprint(on)})"
        )

    # ------------------------------------------------------------------
    # 3. cold sweep throughput on the warm worker pool
    # ------------------------------------------------------------------
    # Baseline: the PR-4 configuration in this same run — default
    # engine, one-shot executor — so the ratio bar below stays valid on
    # hardware slower or faster than the box that recorded 88.55/min.
    baseline_store = ArtifactStore(tmp_path / "baseline-store")
    t0 = time.perf_counter()
    baseline = sweep(
        "dubins",
        grid=GRID,
        workers=SWEEP_WORKERS,
        cache=baseline_store,
        pool=False,
    )
    baseline_s = time.perf_counter() - t0
    assert baseline.cache_hits == 0
    baseline_rate = baseline.total / baseline_s * 60.0

    store = ArtifactStore(tmp_path / "store")
    t0 = time.perf_counter()
    report = sweep(
        "dubins",
        grid=GRID,
        workers=SWEEP_WORKERS,
        engine=SWEEP_ENGINE,
        cache=store,
    )
    sweep_s = time.perf_counter() - t0
    assert report.cache_hits == 0
    assert all(a.status != "error" for a in report.artifacts)
    cold_rate = report.total / sweep_s * 60.0
    sweep_ratio = cold_rate / baseline_rate

    payload = {
        "benchmark": "end-to-end synthesis latency + sweep throughput",
        "cpu_count": os.cpu_count(),
        "end_to_end": {
            "scenario": "dubins",
            "matrix_seconds": matrix,
            "baseline": "native/kernels-off",
            "fast_path": "batched-icp/kernels-on",
            "speedup": round(e2e_speedup, 2),
            "speedup_bar": E2E_SPEEDUP_BAR,
        },
        "parity": parity,
        "cold_sweep": {
            "family": "dubins",
            "grid": GRID,
            "workers": SWEEP_WORKERS,
            "engine": SWEEP_ENGINE,
            "points": report.total,
            "wall_seconds": round(sweep_s, 4),
            "scenarios_per_minute": round(cold_rate, 2),
            "baseline_scenarios_per_minute": round(baseline_rate, 2),
            "speedup_vs_baseline": round(sweep_ratio, 2),
            "pr4_scenarios_per_minute": PR4_COLD_RATE,
            "speedup_vs_pr4": round(cold_rate / PR4_COLD_RATE, 2),
            "rate_bar": round(SWEEP_RATE_BAR, 2),
            "ratio_bar": SWEEP_RATIO_BAR,
        },
    }
    (results_dir / "BENCH_synthesis.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        "dubins end-to-end verify_system (best of 3):",
        *(
            f"  {key:<24} {seconds:8.4f}s"
            for key, seconds in matrix.items()
        ),
        f"  fast path vs pre-PR baseline: {e2e_speedup:.1f}x (bar {E2E_SPEEDUP_BAR}x)",
        "kernel-path parity (interpreted vs compiled, identical artifacts):",
        *(
            f"  {name:<18} {info['status']:<14} "
            f"{info['interpreted_seconds']:7.3f}s -> {info['kernel_seconds']:7.3f}s"
            for name, info in parity.items()
        ),
        f"cold sweep ({report.total} points, {SWEEP_WORKERS} workers, "
        f"{SWEEP_ENGINE}): {sweep_s:.2f}s = {cold_rate:.1f} scenarios/min "
        f"({cold_rate / PR4_COLD_RATE:.1f}x PR4's {PR4_COLD_RATE}, "
        f"{sweep_ratio:.1f}x the same-run PR4-config baseline "
        f"{baseline_rate:.1f}/min)",
    ]
    emit("synthesis_micro", "\n".join(lines))

    assert e2e_speedup >= E2E_SPEEDUP_BAR, (
        f"end-to-end speedup {e2e_speedup:.2f}x below the {E2E_SPEEDUP_BAR}x bar"
    )
    assert cold_rate >= SWEEP_RATE_BAR or sweep_ratio >= SWEEP_RATIO_BAR, (
        f"cold sweep rate {cold_rate:.1f}/min below the absolute bar "
        f"{SWEEP_RATE_BAR:.1f}/min (1.5x PR4's recorded figure) AND "
        f"the same-run speedup {sweep_ratio:.2f}x is below "
        f"{SWEEP_RATIO_BAR}x the PR4-configuration baseline"
    )


def test_collect_summary(emit, results_dir):
    """Fold every BENCH_*.json into BENCH_summary.json (runs last here)."""
    import collect_results

    target = collect_results.write_summary(results_dir)
    summary = json.loads(target.read_text())
    assert summary["benchmarks"], "no benchmark artifacts to summarize"
    assert "synthesis" in summary["benchmarks"]
    lines = [f"{key}: {value}" for key, value in summary["headline"].items()]
    emit("bench_summary", "\n".join(lines))
