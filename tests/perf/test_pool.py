"""Lease semantics of the kernel workspace pool."""

from __future__ import annotations

import os
import threading

import pytest

from repro.errors import ReproError
from repro.perf import MIN_BUCKET, BufferPool
from repro.perf.pool import bucket_for


class TestBucketing:
    def test_minimum_bucket(self):
        assert bucket_for(0) == MIN_BUCKET
        assert bucket_for(1) == MIN_BUCKET
        assert bucket_for(MIN_BUCKET) == MIN_BUCKET

    def test_power_of_two_growth(self):
        assert bucket_for(MIN_BUCKET + 1) == 2 * MIN_BUCKET
        assert bucket_for(1000) == 1024

    def test_nearby_sizes_share_a_bucket(self):
        pool = BufferPool(4)
        ws = pool.acquire(37)
        pool.release(ws)
        assert pool.acquire(61) is ws  # both fit the 64 bucket


class TestLeaseExclusivity:
    def test_concurrent_leases_are_distinct(self):
        """A pooled workspace is never visible to two live frontiers."""
        pool = BufferPool(8)
        first = pool.acquire(10)
        second = pool.acquire(10)
        assert first is not second
        assert first.slots is not second.slots
        pool.release(first)
        pool.release(second)

    def test_release_then_reuse(self):
        pool = BufferPool(8)
        ws = pool.acquire(10)
        pool.release(ws)
        assert pool.acquire(10) is ws
        assert ws.leased

    def test_double_release_rejected(self):
        pool = BufferPool(8)
        ws = pool.acquire(10)
        pool.release(ws)
        with pytest.raises(ReproError):
            pool.release(ws)

    def test_slot_state_survives_release(self):
        """Plans may prefill per-workspace state once (constant rows)."""
        seen = []

        def init(ws):
            ws.data["rows"] = ["const"]
            seen.append(ws)

        pool = BufferPool(4, init=init)
        ws = pool.acquire(3)
        pool.release(ws)
        again = pool.acquire(3)
        assert again is ws
        assert again.data["rows"] == ["const"]
        assert len(seen) == 1  # init ran once, not per lease

    def test_thread_local_free_lists(self):
        """Each thread leases from its own free list (no cross-thread sharing)."""
        pool = BufferPool(4)
        ws = pool.acquire(10)
        pool.release(ws)

        from_thread: list = []

        def worker():
            other = pool.acquire(10)
            from_thread.append(other)
            pool.release(other)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert from_thread[0] is not ws


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-safety needs os.fork"
)
class TestForkSafety:
    """The post-fork hook: children never alias parent workspaces.

    The sharded ICP engine forks workers while the master may hold
    live leases (and populated free lists) from warming its kernel
    plans — exactly the mid-checkout state these tests freeze.
    """

    def _run_in_fork(self, child) -> None:
        pid = os.fork()
        if pid == 0:
            code = 3
            try:
                code = child()
            finally:
                os._exit(code)  # never fall through into pytest
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0

    def test_fork_mid_checkout_resets_child_free_lists(self):
        pool = BufferPool(4)
        leased = pool.acquire(10)  # live lease across the fork
        parked = pool.acquire(10)
        pool.release(parked)  # populated free list across the fork

        def child() -> int:
            ws = pool.acquire(10)
            # A fresh workspace, not the parent's parked or leased one.
            if ws is parked or ws is leased:
                return 1
            pool.release(ws)
            return 0 if pool.acquire(10) is ws else 2

        self._run_in_fork(child)
        # The parent is untouched: its free list still holds `parked`.
        assert pool.acquire(10) is parked
        pool.release(leased)

    def test_lease_live_across_fork_is_forgotten_not_double_freed(self):
        pool = BufferPool(4)
        leased = pool.acquire(10)

        def child() -> int:
            # The inherited lease detached from the pool on reset; the
            # child may still release it without corrupting anything.
            pool.release(leased)
            fresh = pool.acquire(10)
            return 0 if fresh is leased else 1

        self._run_in_fork(child)

    def test_explicit_reset_drops_all_buckets(self):
        pool = BufferPool(4)
        small = pool.acquire(10)
        big = pool.acquire(1000)
        pool.release(small)
        pool.release(big)
        pool.reset()
        assert pool.acquire(10) is not small
        assert pool.acquire(1000) is not big
