"""Run scenarios — singly or as a process-parallel batch.

:func:`run` executes one scenario through the
:class:`~repro.api.pipeline.VerificationPipeline` and returns a
:class:`RunArtifact`: a JSON-round-trippable record of the outcome
(status, certificate data, per-stage timings, config).  :func:`run_batch`
fans a list of scenarios out over worker processes with
:mod:`concurrent.futures`, preserving input order and converting
per-scenario failures into error artifacts instead of aborting the
batch.

Both accept an ``engine`` (a registered :mod:`repro.engine` name or
:class:`~repro.engine.Engine` object) selecting the solver stack, and
``run_batch`` additionally takes a batch-level ``seed`` from which every
scenario derives its own deterministic synthesis seed — artifacts are
then bit-reproducible for any ``workers`` value.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence

from ..barrier import SynthesisConfig, SynthesisReport
from ..engine import Engine, resolve_engine
from ..errors import WorkerDied
from ..expr import to_infix
from .pipeline import ProgressCallback, VerificationPipeline
from .pool import WarmPool
from .scenario import (
    Scenario,
    get_scenario,
    synthesis_config_from_dict,
    synthesis_config_to_dict,
)

__all__ = ["RunArtifact", "derive_scenario_seed", "run", "run_batch"]

#: artifact schema version (bump on incompatible field changes)
ARTIFACT_VERSION = 1


@dataclass
class RunArtifact:
    """JSON-serializable record of one verification run.

    ``report`` keeps the in-process :class:`SynthesisReport` (with the
    live certificate object) when available; it is dropped by
    serialization and by cross-process transport — everything else
    round-trips through :meth:`to_json` / :meth:`from_json` losslessly.
    """

    scenario: str
    status: str
    verified: bool
    level: float | None = None
    candidate_iterations: int = 0
    levelset_iterations: int = 0
    traces_used: int = 0
    counterexamples: int = 0
    lp_seconds: float = 0.0
    query_seconds: float = 0.0
    generator_seconds: float = 0.0
    other_seconds: float = 0.0
    total_seconds: float = 0.0
    #: cumulative wall seconds per pipeline stage
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: flattened SynthesisConfig the run used
    config: dict = field(default_factory=dict)
    #: registry name of the engine the run executed on
    engine: str = "native"
    #: proven barrier data: level, gamma, coefficients, W(x) as infix
    certificate: dict | None = None
    #: traceback-free error message for failed batch entries
    error: str | None = None
    version: int = ARTIFACT_VERSION
    #: in-process only; never serialized
    report: SynthesisReport | None = field(
        default=None, repr=False, compare=False
    )
    #: True when this artifact came out of the :mod:`repro.store` cache
    #: instead of a fresh solve; in-process only, never serialized (so
    #: cached and fresh artifacts stay byte-identical as JSON)
    cached: bool = field(default=False, repr=False, compare=False)

    @property
    def synthesis_config(self) -> SynthesisConfig:
        """The run's config, reconstructed from the flattened dict."""
        return synthesis_config_from_dict(self.config)

    #: fields that never serialize (process-local state)
    _TRANSIENT_FIELDS = ("report", "cached")

    def to_dict(self) -> dict:
        """Plain-data view (everything except the live report)."""
        data = {}
        for spec in dataclasses.fields(self):
            if spec.name in self._TRANSIENT_FIELDS:
                continue
            value = getattr(self, spec.name)
            data[spec.name] = dict(value) if isinstance(value, dict) else value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        """Rebuild an artifact from :meth:`to_dict` output."""
        known = {
            f for f in cls.__dataclass_fields__
            if f not in cls._TRANSIENT_FIELDS
        }
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def derive_scenario_seed(run_seed: int, scenario_name: str) -> int:
    """Deterministic per-scenario synthesis seed for a batch run.

    Hash-derived (not ``run_seed + index``) so the seed depends only on
    the batch seed and the scenario's *name* — reordering, filtering, or
    sharding the batch never changes any scenario's seed, and no Python
    process-level hash randomization leaks in.

    >>> derive_scenario_seed(7, "dubins") == derive_scenario_seed(7, "dubins")
    True
    >>> derive_scenario_seed(7, "dubins") != derive_scenario_seed(8, "dubins")
    True
    >>> derive_scenario_seed(7, "dubins") != derive_scenario_seed(7, "linear")
    True
    """
    digest = hashlib.sha256(f"{run_seed}:{scenario_name}".encode()).digest()
    return int.from_bytes(digest[:4], "little")


def _artifact_from_run(
    scenario: Scenario, config: SynthesisConfig, pipeline_run, engine_name: str
) -> RunArtifact:
    report = pipeline_run.report
    certificate = None
    if report.certificate is not None:
        cert = report.certificate
        certificate = {
            "level": cert.level,
            "gamma": cert.gamma,
            "coefficients": (
                None
                if cert.coefficients is None
                else [float(c) for c in cert.coefficients]
            ),
            "w_infix": to_infix(cert.w_expr),
        }
    return RunArtifact(
        scenario=scenario.name,
        status=report.status.value,
        verified=report.verified,
        level=report.level,
        candidate_iterations=report.candidate_iterations,
        levelset_iterations=report.levelset_iterations,
        traces_used=report.traces_used,
        counterexamples=len(report.counterexamples),
        lp_seconds=report.lp_seconds,
        query_seconds=report.query_seconds,
        generator_seconds=report.generator_seconds,
        other_seconds=report.other_seconds,
        total_seconds=report.total_seconds,
        stage_seconds=dict(report.stage_seconds),
        config=synthesis_config_to_dict(config),
        engine=engine_name,
        certificate=certificate,
        report=report,
    )


def _resolve_run_engine(
    scenario: Scenario,
    config: SynthesisConfig,
    engine: "str | Engine | None",
) -> Engine:
    """Engine precedence: explicit arg > scenario override > config."""
    spec = engine if engine is not None else scenario.engine
    return resolve_engine(spec if spec is not None else config.engine)


def run(
    scenario: "str | Scenario",
    config: SynthesisConfig | None = None,
    progress: ProgressCallback | None = None,
    engine: "str | Engine | None" = None,
    cache: "object | None" = None,
) -> RunArtifact:
    """Verify one scenario (by registry name or object).

    ``config`` overrides the scenario's bundled config for this run.
    The solver stack resolves with the precedence ``engine`` argument >
    ``scenario.engine`` > ``config.engine`` — a scenario's engine
    override outranks any config's (bundled or explicit); pass
    ``engine=`` to force a different stack.

    ``cache`` consults the content-addressed artifact store of
    :mod:`repro.store` before solving and records the artifact after:
    pass an :class:`~repro.store.ArtifactStore`, a store root path, or
    ``True`` (default root).  ``None`` defers to the ``REPRO_CACHE``
    env var; ``False`` disables.  A hit returns the stored artifact
    (``artifact.cached`` is then True) without running any solver.

    Engines whose SMT backend can delegate to *external* solver
    binaries (the ``portfolio``) are dual-keyed: a run whose verdicts
    actually used an external solver is stored under a key folding in
    the available solvers' identity + version
    (:func:`repro.solvers.solver_fingerprint`), while a run the native
    racer decided alone stores under the plain key — identical to a
    machine with no solvers installed.  Lookups probe the fingerprinted
    key first, then the plain one.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    effective = config or scenario.config
    engine_obj = _resolve_run_engine(scenario, effective, engine)
    try:
        return _run_once(scenario, effective, progress, engine_obj, cache)
    except (WorkerDied, BrokenProcessPool) as exc:
        # Degradation ladder: unrecoverable machinery loss re-runs the
        # request one rung down (sharded-icp/portfolio -> batched-icp ->
        # native).  Recursing with the fallback *name* makes the
        # degraded artifact trivially byte-identical to having asked
        # for that engine — no stitching, no artifact-visible trace;
        # the step-down is recorded in the incident log only.
        from ..resilience.ladder import fallback_engine
        from ..resilience.supervisor import record_incident

        nxt = fallback_engine(engine_obj.name)
        if nxt is None:
            raise
        record_incident(
            "engine.degrade",
            f"{engine_obj.name} -> {nxt}: {type(exc).__name__}: {exc} "
            f"({scenario.name})",
        )
        return run(scenario, config=config, progress=progress, engine=nxt,
                   cache=cache)


def _run_once(
    scenario: Scenario,
    effective: SynthesisConfig,
    progress: "ProgressCallback | None",
    engine_obj: Engine,
    cache: "object | None",
) -> RunArtifact:
    """One cache-probe + solve attempt on a resolved engine (no ladder)."""
    from ..store import resolve_store, run_key

    smt = engine_obj.smt
    fingerprint_fn = getattr(smt, "solver_fingerprint", None)
    fingerprint = fingerprint_fn() if callable(fingerprint_fn) else ""
    store = resolve_store(cache)
    plain_key = None
    if store is not None:
        plain_key = run_key(scenario, effective, engine_obj.name)
        probe_keys = [plain_key]
        if fingerprint:
            probe_keys.insert(
                0, run_key(scenario, effective, engine_obj.name, solvers=fingerprint)
            )
        for candidate in probe_keys:
            hit = store.get(candidate)
            if hit is not None:
                hit.cached = True
                return hit
    begin_run = getattr(smt, "begin_run", None)
    if callable(begin_run):
        begin_run()
    pipeline = VerificationPipeline(
        config=effective, progress=progress, engine=engine_obj
    )
    outcome = pipeline.run(scenario.problem())
    artifact = _artifact_from_run(scenario, effective, outcome, engine_obj.name)
    if store is not None and plain_key is not None and artifact.status != "inconclusive":
        # Inconclusive means a solver *budget* ran out — wall-clock
        # time limits make that outcome machine/load-dependent, so
        # freezing it in a content-addressed store would serve stale
        # "unknown"s forever.  Definite outcomes only.
        used_fn = getattr(smt, "external_solvers_used", None)
        used = used_fn() if callable(used_fn) else ()
        key = (
            run_key(scenario, effective, engine_obj.name, solvers=fingerprint)
            if used
            else plain_key
        )
        store.put(key, artifact)
    return artifact


def _execute_chunk(
    payloads: "list[tuple[Scenario, SynthesisConfig | None, Engine]]",
    cache: "object | None",
    kernels: "bool | None" = None,
) -> "list[RunArtifact]":
    """Worker entry point for chunked dispatch: one task, many solves.

    Chunking amortizes per-task submission/pickling overhead across
    several scenarios; per-scenario failure isolation is unchanged
    because :func:`_execute` never raises.

    ``kernels`` pins the worker's kernel-layer switch to the parent's
    setting at dispatch time: long-lived warm-pool workers otherwise
    keep whatever ``repro.perf`` toggle they inherited when first
    forked, silently ignoring a later ``use_kernels(...)`` in the
    parent.
    """
    if kernels is not None:
        from ..perf import set_enabled

        set_enabled(kernels)
    return [
        _execute(scenario, config, True, engine, cache)
        for scenario, config, engine in payloads
    ]


def _execute(
    scenario: Scenario,
    config: SynthesisConfig | None,
    strip_report: bool,
    engine: "str | Engine | None" = None,
    cache: "object | None" = False,
) -> RunArtifact:
    """Batch worker: never raises — failures become error artifacts."""
    name = scenario.name
    try:
        artifact = run(scenario, config=config, engine=engine, cache=cache)
    except Exception as exc:  # noqa: BLE001 — one bad scenario must not kill the batch
        artifact = RunArtifact(
            scenario=name,
            status="error",
            verified=False,
            error=f"{type(exc).__name__}: {exc}",
            config={} if config is None else synthesis_config_to_dict(config),
            engine=getattr(engine, "name", engine) or "native",
        )
    if strip_report:
        # SynthesisReport holds compiled tapes and solver state that have
        # no business crossing a process boundary; the artifact's plain
        # fields carry everything a batch consumer needs.
        artifact.report = None
    return artifact


def _as_scenarios(scenarios: Sequence["str | Scenario"]) -> list[Scenario]:
    """Resolve names eagerly (fail fast on unknown names, before any
    fan-out).  Workers always receive Scenario objects: user-registered
    names exist only in the parent's registry, which spawn-started
    workers do not inherit."""
    resolved: list[Scenario] = []
    for item in scenarios:
        if isinstance(item, str):
            resolved.append(get_scenario(item))
        elif isinstance(item, Scenario):
            resolved.append(item)
        else:
            raise TypeError(
                f"expected scenario name or Scenario, got {type(item).__name__}"
            )
    return resolved


def run_batch(
    scenarios: Sequence["str | Scenario"],
    workers: int | None = None,
    config: SynthesisConfig | None = None,
    seed: int | None = None,
    engine: "str | Engine | None" = None,
    cache: "object | None" = None,
    pool: "WarmPool | None" = None,
    chunksize: int | None = None,
) -> list[RunArtifact]:
    """Verify many scenarios, process-parallel, preserving input order.

    ``workers=None`` picks ``min(len(scenarios), cpu_count)``;
    ``workers=1`` runs serially in-process (artifacts then keep their
    live ``report``).  Scenarios that cannot be pickled into a worker
    (e.g. lambda factories) fall back to in-process execution.

    ``seed`` (optional) makes the batch reproducible end to end: every
    scenario gets its own synthesis seed derived from
    :func:`derive_scenario_seed` *before* any fan-out, so artifacts are
    identical for any ``workers`` value.  ``engine`` selects the solver
    stack for every run.  Engine specs — the argument, each scenario's
    override, or its config's — are resolved to :class:`Engine` objects
    eagerly in this process (failing fast on unknown names, like
    scenario names), so user-registered engines, which spawn-started
    workers do not inherit, still work.

    ``cache`` wires every run through the :mod:`repro.store` artifact
    cache (same semantics as :func:`run`); the store is resolved once
    here in the parent, so the env-var/default lookup happens exactly
    once and workers receive the concrete store.

    ``pool`` (optional) dispatches on a persistent
    :class:`~repro.api.pool.WarmPool` instead of a one-shot executor —
    the sweep runner's fast path, keeping workers (and their compiled
    scenario kernels) warm across calls.  ``chunksize`` groups that
    many scenarios per worker task (default: ~4 tasks per worker),
    amortizing submission overhead; results are order-preserving and
    per-scenario failure isolation is unchanged either way.
    """
    from ..store import resolve_store

    # Resolve once, here: workers receive the concrete store, or the
    # explicit False sentinel so an inherited REPRO_CACHE env var can
    # never re-enable a cache this call disabled.
    store = resolve_store(cache) or False
    resolved = _as_scenarios(scenarios)
    if not resolved:
        return []
    if workers is None:
        workers = min(len(resolved), os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunksize is not None and chunksize < 1:
        # Validated up front so the error does not depend on whether
        # the batch happens to take the serial fast path below.
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")

    configs: list[SynthesisConfig | None]
    if seed is None:
        configs = [config] * len(resolved)
    else:
        configs = [
            dataclasses.replace(
                config or scenario.config,
                seed=derive_scenario_seed(seed, scenario.name),
            )
            for scenario in resolved
        ]
    engines = [
        _resolve_run_engine(scenario, cfg or scenario.config, engine)
        for scenario, cfg in zip(resolved, configs)
    ]

    if workers == 1 or len(resolved) == 1:
        return [
            _execute(scenario, cfg, strip_report=False, engine=eng, cache=store)
            for scenario, cfg, eng in zip(resolved, configs, engines)
        ]

    picklable: list[bool] = []
    for payload in zip(resolved, configs, engines):
        try:
            pickle.dumps(payload)
            picklable.append(True)
        except Exception:  # noqa: BLE001 — unpicklable payloads run inline
            picklable.append(False)

    remote = [i for i, ok in enumerate(picklable) if ok]
    if chunksize is None:
        # ~4 tasks per worker: coarse enough to amortize dispatch, fine
        # enough that a slow scenario cannot idle the other workers.
        # Sized to the executor that actually runs the chunks (a
        # supplied pool may be wider or narrower than `workers`).
        dispatch_workers = pool.workers if pool is not None else workers
        chunksize = max(1, -(-len(remote) // (dispatch_workers * 4)))

    results: list[RunArtifact | None] = [None] * len(resolved)
    from ..perf import enabled as _kernels_enabled

    kernels = _kernels_enabled()
    for i, ok in enumerate(picklable):
        if not ok:
            results[i] = _execute(
                resolved[i], configs[i], strip_report=False,
                engine=engines[i], cache=store,
            )
    chunk_groups = [
        remote[start : start + chunksize]
        for start in range(0, len(remote), chunksize)
    ]
    _dispatch_supervised(
        chunk_groups, resolved, configs, engines, store, kernels,
        results, pool, workers,
    )
    return [artifact for artifact in results if artifact is not None]


def resolve_chunk_timeout() -> "float | None":
    """Per-chunk wall-clock deadline, from ``REPRO_CHUNK_TIMEOUT``.

    ``None`` (unset, the production default) waits forever exactly as a
    plain ``future.result()`` would; setting it lets the chunk
    supervisor treat a wedged worker — alive but never answering — the
    same as a dead one.
    """
    raw = os.environ.get("REPRO_CHUNK_TIMEOUT", "").strip()
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return None


def resolve_pool_retries(default: int = 2) -> int:
    """How many times a batch rebuilds a broken pool before giving up
    (``REPRO_POOL_RETRIES``)."""
    raw = os.environ.get("REPRO_POOL_RETRIES", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return default


def _inject_pool_fault(executor) -> None:
    """Fire the ``pool.worker`` seam: signal a real worker of ``executor``.

    Master-side (one deterministic counter, like the shard seam): a
    ``kill`` SIGKILLs the lowest-pid worker mid-dispatch, a ``hang``
    SIGSTOPs it — exercising respectively the ``BrokenProcessPool`` and
    the chunk-deadline recovery paths below.
    """
    from ..resilience import faults

    action = faults.fire("pool.worker")
    if action is None:
        return
    from .pool import executor_worker_pids

    pids = sorted(executor_worker_pids(executor))
    if not pids:
        return
    import signal

    sig = signal.SIGKILL if action.kind == "kill" else signal.SIGSTOP
    try:
        os.kill(pids[0], sig)
    except OSError:  # pragma: no cover - victim already exited
        pass


def _dispatch_supervised(
    chunk_groups: "list[list[int]]",
    resolved: "list[Scenario]",
    configs: "list[SynthesisConfig | None]",
    engines: "list[Engine]",
    store,
    kernels: bool,
    results: "list[RunArtifact | None]",
    pool: "WarmPool | None",
    workers: int,
) -> None:
    """Run every chunk to completion, healing the executor on worker loss.

    A chunk whose worker dies (``BrokenProcessPool``) or wedges past the
    chunk deadline is resubmitted on a rebuilt executor — only chunks
    without results re-run, with capped backoff between rebuilds, up to
    :func:`resolve_pool_retries` rebuilds.  Exhausting the budget
    re-raises ``BrokenProcessPool`` exactly like the unsupervised path
    always did (after shutting a supplied pool down so later callers
    rebuild through public API).
    """
    from ..resilience.supervisor import Backoff, record_incident
    from .pool import kill_executor_workers

    chunk_timeout = resolve_chunk_timeout()
    max_rebuilds = resolve_pool_retries()
    backoff = Backoff(base=0.05, cap=1.0, seed=0)
    done = [False] * len(chunk_groups)
    rebuilds = 0
    executor = pool.executor if pool is not None else ProcessPoolExecutor(
        max_workers=workers
    )
    try:
        while not all(done):
            futures = []
            for ci, indices in enumerate(chunk_groups):
                if done[ci]:
                    continue
                payloads = [
                    (resolved[i], configs[i], engines[i]) for i in indices
                ]
                futures.append(
                    (ci, executor.submit(_execute_chunk, payloads, store, kernels))
                )
            _inject_pool_fault(executor)
            try:
                for ci, future in futures:
                    for i, artifact in zip(chunk_groups[ci], future.result(
                        timeout=chunk_timeout
                    )):
                        results[i] = artifact
                    done[ci] = True
            except (BrokenProcessPool, FuturesTimeoutError) as exc:
                record_incident(
                    "pool.worker_died", f"{type(exc).__name__}: chunk dispatch lost"
                )
                # Reap wedged workers first: shutdown() alone cannot
                # dislodge a SIGSTOPped child, and an abandoned-but-
                # alive worker is exactly the process leak the chaos
                # gate audits for.
                kill_executor_workers(executor)
                if pool is not None:
                    pool.shutdown()
                else:
                    executor.shutdown(wait=False, cancel_futures=True)
                if rebuilds >= max_rebuilds:
                    if isinstance(exc, BrokenProcessPool):
                        raise
                    raise BrokenProcessPool(
                        f"chunk exceeded {chunk_timeout}s deadline "
                        f"{max_rebuilds + 1} times"
                    ) from exc
                backoff.sleep(rebuilds)
                rebuilds += 1
                executor = (
                    pool.executor if pool is not None
                    else ProcessPoolExecutor(max_workers=workers)
                )
                record_incident("pool.respawn", f"executor rebuilt (#{rebuilds})")
    finally:
        if pool is None:
            executor.shutdown(wait=False, cancel_futures=True)
