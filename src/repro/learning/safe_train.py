"""Safety-aware policy search (the paper's stated future work).

The conclusion of the paper proposes "algorithms to simultaneously train
the neural network while satisfying safety guarantees".  This module
implements the natural simulation-guided version of that idea:

* the CMA-ES objective becomes ``J + lambda * S`` where ``S`` penalizes
  simulated excursions of the *error dynamics* outside the safe envelope
  (distance past the envelope, integrated along rollouts from the
  initial set's corners);
* after training, the standard barrier pipeline certifies the result —
  the penalty biases the search toward verifiable controllers but proof
  still comes from the SMT checks, never from the penalty being zero.

``train_safe_controller`` wires both stages together and reports whether
the safety-trained controller verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..barrier import (
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    SynthesisReport,
    VerificationProblem,
    verify_system,
)
from ..dynamics import PiecewiseLinearPath, error_dynamics_system
from ..errors import TrainingError
from ..nn import FeedforwardNetwork, controller_network
from .cmaes import CmaEs, CmaEsConfig
from .cost import tracking_cost
from .train import figure4_training_path, training_start_state

__all__ = ["SafetyPenaltyConfig", "safety_penalty", "SafeTrainingResult", "train_safe_controller"]


@dataclass
class SafetyPenaltyConfig:
    """Shape of the simulated safety penalty ``S``.

    Rollouts of the closed-loop *error dynamics* start from the corners
    (and center) of the initial set; every sample outside the safe
    rectangle contributes its exit distance, and a terminal bonus
    rewards converging error states.
    """

    initial_set: Rectangle = field(
        default_factory=lambda: Rectangle([-1.0, -np.pi / 16], [1.0, np.pi / 16])
    )
    safe_set: Rectangle = field(
        default_factory=lambda: Rectangle(
            [-5.0, -(np.pi / 2 - 0.1)], [5.0, np.pi / 2 - 0.1]
        )
    )
    duration: float = 15.0
    dt: float = 0.05
    #: per-sample weight on the distance past the safe boundary
    excursion_weight: float = 1.0e4
    #: weight on the final error-state norm (rewards convergence)
    terminal_weight: float = 10.0
    #: weight on positive radial flow (x·f(x)/|x|^2 above the tolerance)
    #: sampled across the whole safe region — a differentiable proxy for
    #: the barrier's Lie-derivative condition, which trajectories from X0
    #: alone never probe in the far corners of the domain
    radial_weight: float = 1.0e3
    #: tolerated normalized radial growth: the certificate's quadratic W
    #: has cross terms, so a verifiable controller may let |x| grow
    #: slightly in places; only stronger outflow is penalized
    radial_tolerance: float = 0.05
    #: grid resolution per axis for the radial-flow samples
    radial_grid: int = 9
    speed: float = 1.0


def safety_penalty(
    network: FeedforwardNetwork, config: SafetyPenaltyConfig | None = None
) -> float:
    """Simulated safety score ``S >= 0`` (0 = no excursions, converged)."""
    config = config or SafetyPenaltyConfig()
    system = error_dynamics_system(network, speed=config.speed)
    simulator = system.simulator()
    starts = np.vstack(
        [config.initial_set.vertices(), config.initial_set.center()[None, :]]
    )
    lower = config.safe_set.lower
    upper = config.safe_set.upper
    penalty = 0.0
    for x0 in starts:
        trace = simulator.simulate(x0, config.duration, config.dt)
        states = trace.states
        below = np.maximum(lower - states, 0.0)
        above = np.maximum(states - upper, 0.0)
        excursions = (below + above).sum()
        penalty += config.excursion_weight * float(excursions) * config.dt
        penalty += config.terminal_weight * float(
            np.linalg.norm(trace.final_state)
        )
        if trace.truncated:
            penalty += config.excursion_weight  # blow-up: flat surcharge

    if config.radial_weight > 0.0:
        axes = [
            np.linspace(lo * 0.95, hi * 0.95, config.radial_grid)
            for lo, hi in zip(lower, upper)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        grid = np.stack([m.ravel() for m in mesh], axis=-1)
        norms_sq = (grid**2).sum(axis=1)
        grid = grid[norms_sq > 1e-6]
        norms_sq = norms_sq[norms_sq > 1e-6]
        flows = system.f_batch(grid)
        radial = np.sum(grid * flows, axis=1) / norms_sq
        excess = np.maximum(radial - config.radial_tolerance, 0.0)
        penalty += config.radial_weight * float(excess.sum())
    return penalty


@dataclass
class SafeTrainingResult:
    """Outcome of safety-aware training plus certification."""

    network: FeedforwardNetwork
    tracking_cost: float
    safety_penalty: float
    combined_cost: float
    verification: SynthesisReport | None
    history: list[float]

    @property
    def verified(self) -> bool:
        """True when the trained controller was proven safe."""
        return self.verification is not None and self.verification.verified


def train_safe_controller(
    hidden_neurons: int = 10,
    seed: int = 0,
    population_size: int = 20,
    max_iterations: int = 25,
    safety_weight: float = 1.0,
    path: PiecewiseLinearPath | None = None,
    steps: int = 520,
    dt: float = 0.35,
    penalty: SafetyPenaltyConfig | None = None,
    verify: bool = True,
    synthesis: SynthesisConfig | None = None,
    initial_network: FeedforwardNetwork | None = None,
    sigma0: float = 0.5,
) -> SafeTrainingResult:
    """CMA-ES over ``J + safety_weight * S``, then certify.

    Compared to :func:`~repro.learning.train.train_paper_controller`,
    the only change is the objective; the verification stage is the
    unmodified Figure-1 pipeline on the straight-line error dynamics.

    ``initial_network`` warm-starts the search (*safe fine-tuning*):
    starting from a known stabilizer and letting the penalty guard the
    safety margin while CMA-ES improves tracking is far more reliable
    than hoping a random initialization lands in the verifiable basin.
    """
    if safety_weight < 0.0:
        raise TrainingError("safety_weight must be non-negative")
    penalty = penalty or SafetyPenaltyConfig()
    path = path or figure4_training_path()
    start = training_start_state(path)
    if initial_network is not None:
        network = initial_network.copy()
        if network.hidden_sizes != [hidden_neurons]:
            hidden_neurons = network.hidden_sizes[0] if network.hidden_sizes else hidden_neurons
    else:
        rng = np.random.default_rng(seed)
        network = controller_network(hidden_neurons, rng=rng)
    template = network.copy()

    def objective(parameters: np.ndarray) -> float:
        template.set_parameters(parameters)
        tracking = tracking_cost(
            template, path, start, steps=steps, dt=dt, speed=penalty.speed
        )
        return tracking + safety_weight * safety_penalty(template, penalty)

    es = CmaEs(
        network.get_parameters(),
        CmaEsConfig(
            population_size=population_size,
            max_iterations=max_iterations,
            sigma0=sigma0,
            seed=seed,
        ),
    )
    while not es.should_stop():
        candidates = es.ask()
        es.tell(candidates, [objective(c) for c in candidates])

    trained = network.copy()
    trained.set_parameters(es.best_solution)
    final_tracking = tracking_cost(
        trained, path, start, steps=steps, dt=dt, speed=penalty.speed
    )
    final_penalty = safety_penalty(trained, penalty)

    verification = None
    if verify:
        problem = VerificationProblem(
            error_dynamics_system(trained, speed=penalty.speed),
            initial_set=penalty.initial_set,
            unsafe_set=RectangleComplement(penalty.safe_set),
        )
        verification = verify_system(
            problem, config=synthesis or SynthesisConfig(seed=seed)
        )

    return SafeTrainingResult(
        network=trained,
        tracking_cost=final_tracking,
        safety_penalty=final_penalty,
        combined_cost=es.best_fitness,
        verification=verification,
        history=list(es.history),
    )
