"""Symbolic differentiation vs central finite differences."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DifferentiationError
from repro.expr import (
    absolute,
    atan,
    cos,
    differentiate,
    evaluate,
    exp,
    gradient,
    log,
    maximum,
    sigmoid,
    simplify,
    sin,
    sqrt,
    structurally_equal,
    tan,
    tanh,
    var,
)

X, Y = var("x"), var("y")


def numeric_derivative(expr, env, name, h=1e-6):
    up = dict(env)
    down = dict(env)
    up[name] = env[name] + h
    down[name] = env[name] - h
    return (evaluate(expr, up) - evaluate(expr, down)) / (2 * h)


class TestBasicRules:
    def test_constant(self):
        d = differentiate(var("x") * 0 + 5, "x")
        assert evaluate(d, {"x": 1.0}) == 0.0

    def test_variable(self):
        assert evaluate(differentiate(X, "x"), {"x": 2.0}) == 1.0
        assert evaluate(differentiate(X, "y"), {"x": 2.0}) == 0.0

    def test_sum_rule(self):
        d = differentiate(X + X * Y, "x")
        assert evaluate(d, {"x": 1.0, "y": 3.0}) == pytest.approx(4.0)

    def test_product_rule(self):
        d = differentiate(X * sin(X), "x")
        x = 0.8
        expected = math.sin(x) + x * math.cos(x)
        assert evaluate(d, {"x": x}) == pytest.approx(expected)

    def test_quotient_rule(self):
        d = differentiate(X / (1 + X * X), "x")
        x = 0.5
        expected = (1 - x * x) / (1 + x * x) ** 2
        assert evaluate(d, {"x": x}) == pytest.approx(expected)

    def test_power_rule(self):
        d = differentiate(X**5, "x")
        assert evaluate(d, {"x": 2.0}) == pytest.approx(80.0)

    def test_chain_rule(self):
        d = differentiate(sin(X * X), "x")
        x = 1.3
        assert evaluate(d, {"x": x}) == pytest.approx(2 * x * math.cos(x * x))

    def test_gradient(self):
        grads = gradient(X * X + Y * Y, ["x", "y"])
        env = {"x": 3.0, "y": 4.0}
        assert evaluate(grads[0], env) == pytest.approx(6.0)
        assert evaluate(grads[1], env) == pytest.approx(8.0)

    def test_abs_raises(self):
        with pytest.raises(DifferentiationError):
            differentiate(absolute(X), "x")

    def test_max_raises(self):
        with pytest.raises(DifferentiationError):
            differentiate(maximum(X, 0.0), "x")


POINT = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


class TestAgainstFiniteDifferences:
    @pytest.mark.parametrize(
        "builder",
        [sin, cos, tanh, sigmoid, exp, atan],
        ids=["sin", "cos", "tanh", "sigmoid", "exp", "atan"],
    )
    @given(x=POINT)
    def test_unary_chain(self, builder, x):
        expr = builder(X * X + 1)
        d = differentiate(expr, "x")
        env = {"x": x}
        assert evaluate(d, env) == pytest.approx(
            numeric_derivative(expr, env, "x"), rel=1e-4, abs=1e-6
        )

    @given(x=st.floats(min_value=0.1, max_value=5.0))
    def test_log_sqrt(self, x):
        for builder in (log, sqrt):
            expr = builder(X)
            env = {"x": x}
            d = differentiate(expr, "x")
            assert evaluate(d, env) == pytest.approx(
                numeric_derivative(expr, env, "x"), rel=1e-4, abs=1e-6
            )

    @given(x=POINT, y=POINT)
    def test_tan_mixture(self, x, y):
        expr = tan(X / 4) * Y + sin(X) * cos(Y)
        env = {"x": x, "y": y}
        for name in ("x", "y"):
            d = differentiate(expr, name)
            assert evaluate(d, env) == pytest.approx(
                numeric_derivative(expr, env, name), rel=1e-4, abs=1e-6
            )

    @given(x=POINT, y=POINT)
    def test_nn_like_expression(self, x, y):
        """A miniature NN closed loop: the paper's actual shape."""
        u = 0.7 * tanh(0.3 * X + 0.1 * Y) - 0.2 * tanh(0.5 * Y - 0.2)
        expr = sin(Y) * X + u * u
        env = {"x": x, "y": y}
        for name in ("x", "y"):
            d = differentiate(expr, name)
            assert evaluate(d, env) == pytest.approx(
                numeric_derivative(expr, env, name), rel=1e-4, abs=1e-6
            )

    def test_derivative_of_shared_subgraph(self):
        shared = X * X
        expr = shared * shared  # x^4
        d = differentiate(expr, "x")
        assert evaluate(d, {"x": 2.0}) == pytest.approx(32.0)

    def test_second_derivative(self):
        d2 = differentiate(differentiate(sin(X), "x"), "x")
        x = 0.9
        assert evaluate(d2, {"x": x}) == pytest.approx(-math.sin(x))

    def test_quadratic_form_gradient_is_simplified(self):
        # d/dx (x^2) should fold to 2*x, not 2*x^1*1 chains.
        d = differentiate(X**2, "x")
        assert structurally_equal(simplify(d), simplify(2.0 * X)) or evaluate(
            d, {"x": 3.0}
        ) == pytest.approx(6.0)
