"""HC4 contractor tests.

The key soundness property: a contracted box must contain every point of
the original box that satisfies the constraint.  Contraction strength is
checked on cases with known tight answers.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.expr import exp, log, sigmoid, sin, sqrt, tanh, var
from repro.intervals import Box
from repro.smt import contract_fixpoint, eq, ge, hc4_revise, le

X, Y = var("x"), var("y")
NAMES = ["x", "y"]


def sample_solutions(constraint, box, count=400, seed=0):
    """Numerically find satisfying points of a constraint inside a box."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(box.lower(), box.upper(), size=(count, box.dimension))
    return [p for p in points if constraint.satisfied_at(p, NAMES)]


class TestSoundness:
    @pytest.mark.parametrize(
        "constraint",
        [
            le(X + Y, 0.5),
            le(X * Y, -0.1),
            ge(X * X + Y * Y, 1.0),
            le(X * X + Y * Y, 1.0),
            le(sin(X) + Y, 0.0),
            ge(tanh(X) - Y, 0.2),
            le(exp(X) - 2.0, 0.0),
            eq(X - Y, 0.0),
            le(X**3 + Y, 0.0),
            ge(X / (Y + 3.0), 0.5),
        ],
        ids=range(10),
    )
    def test_no_solution_lost(self, constraint):
        box = Box.from_bounds([-2.0, -2.0], [2.0, 2.0])
        contracted = hc4_revise(constraint, box, NAMES)
        solutions = sample_solutions(constraint, box)
        if contracted is None:
            assert not solutions, "contractor emptied a box with solutions"
            return
        slack = Box.from_bounds(
            contracted.lower() - 1e-9, contracted.upper() + 1e-9
        )
        for p in solutions:
            assert slack.contains(p), f"lost solution {p}"

    def test_fixpoint_soundness(self):
        constraints = [le(X * X + Y * Y, 1.0), ge(X, 0.0), le(X - Y, 0.3)]
        box = Box.from_bounds([-2.0, -2.0], [2.0, 2.0])
        contracted = contract_fixpoint(constraints, box, NAMES)
        assert contracted is not None
        rng = np.random.default_rng(7)
        pts = rng.uniform(box.lower(), box.upper(), size=(500, 2))
        for p in pts:
            if all(c.satisfied_at(p, NAMES) for c in constraints):
                assert contracted.inflate(absolute=1e-9).contains(p)


class TestStrength:
    def test_linear_equality_tightens(self):
        # x = 0.5 exactly: the x dimension should collapse to near-point.
        constraint = eq(X, 0.5)
        box = Box.from_bounds([-10.0, 0.0], [10.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].lo == pytest.approx(0.5, abs=1e-9)
        assert contracted[0].hi == pytest.approx(0.5, abs=1e-9)
        assert contracted[1] == box[1]  # y untouched

    def test_sum_projection(self):
        # x + y <= -3 on [-2,2]^2 forces x <= 1 ... actually x <= -1.
        constraint = le(X + Y, -3.0)
        box = Box.from_bounds([-2.0, -2.0], [2.0, 2.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].hi <= -1.0 + 1e-9
        assert contracted[1].hi <= -1.0 + 1e-9

    def test_proves_empty(self):
        # Pow nodes keep the square's sign information (x*x as Mul would
        # soundly but weakly evaluate to [-4, 4] on [-2, 2]).
        constraint = le(X**2 + Y**2, -1.0)
        box = Box.from_bounds([-2.0, -2.0], [2.0, 2.0])
        assert hc4_revise(constraint, box, NAMES) is None

    def test_exp_inverse(self):
        # exp(x) <= 1 forces x <= 0.
        constraint = le(exp(X), 1.0)
        box = Box.from_bounds([-5.0, 0.0], [5.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].hi <= 1e-6

    def test_tanh_inverse(self):
        # tanh(x) >= 0.9 forces x >= atanh(0.9) ~ 1.472.
        constraint = ge(tanh(X), 0.9)
        box = Box.from_bounds([-5.0, 0.0], [5.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].lo >= math.atanh(0.9) - 1e-6

    def test_sigmoid_inverse(self):
        constraint = le(sigmoid(X), 0.5)
        box = Box.from_bounds([-5.0, 0.0], [5.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].hi <= 1e-6

    def test_even_power_sign_split(self):
        # x^2 <= 4 on a positive-only box keeps x <= 2 and x >= -2 is moot.
        constraint = le(X**2, 4.0)
        box = Box.from_bounds([1.0, 0.0], [10.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].hi <= 2.0 + 1e-6

    def test_sqrt_inverse(self):
        constraint = ge(sqrt(X), 2.0)
        box = Box.from_bounds([0.0, 0.0], [100.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].lo >= 4.0 - 1e-6

    def test_log_inverse(self):
        constraint = le(log(X), 0.0)
        box = Box.from_bounds([0.1, 0.0], [100.0, 1.0])
        contracted = hc4_revise(constraint, box, NAMES)
        assert contracted is not None
        assert contracted[0].hi <= 1.0 + 1e-6

    def test_tanh_domain_violation_prunes(self):
        constraint = ge(tanh(X), 1.5)  # impossible
        box = Box.from_bounds([-5.0, 0.0], [5.0, 1.0])
        assert hc4_revise(constraint, box, NAMES) is None


class TestFixpoint:
    def test_multiple_constraints_intersect(self):
        constraints = [ge(X, 0.5), le(X, 0.7), ge(Y - X, 0.0)]
        box = Box.from_bounds([0.0, 0.0], [1.0, 1.0])
        contracted = contract_fixpoint(constraints, box, NAMES)
        assert contracted is not None
        assert contracted[0].lo >= 0.5 - 1e-9
        assert contracted[0].hi <= 0.7 + 1e-9
        assert contracted[1].lo >= 0.5 - 1e-6

    def test_contradiction_detected(self):
        constraints = [ge(X, 0.8), le(X, 0.2)]
        box = Box.from_bounds([0.0, 0.0], [1.0, 1.0])
        assert contract_fixpoint(constraints, box, NAMES) is None

    @given(st.floats(min_value=-1.5, max_value=1.5), st.floats(min_value=0.1, max_value=1.0))
    def test_random_circle_band_soundness(self, c, r):
        constraint = le((X - c) ** 2 + Y**2, r)
        box = Box.from_bounds([-3.0, -3.0], [3.0, 3.0])
        contracted = hc4_revise(constraint, box, NAMES)
        solutions = sample_solutions(constraint, box, count=200, seed=3)
        if contracted is None:
            assert not solutions
            return
        padded = Box.from_bounds(contracted.lower() - 1e-9, contracted.upper() + 1e-9)
        for p in solutions:
            assert padded.contains(p)
