"""Expression evaluation in numeric and interval semantics.

One walker serves both: the elementary operations come from
:mod:`repro.intervals.functions`, whose ``i*`` helpers dispatch on the
operand type (float vs :class:`~repro.intervals.Interval`).  Evaluation
is iterative over the DAG postorder, so arbitrarily wide/deep NN
expressions evaluate without touching the Python recursion limit, and
shared subexpressions are computed once.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from ..errors import EvaluationError
from ..intervals import Box, BoxArray, Interval, IntervalArray
from ..intervals.functions import (
    iabs,
    iatan,
    icos,
    iexp,
    ilog,
    imax,
    imin,
    ipow,
    isigmoid,
    isin,
    isqrt,
    itan,
    itanh,
)
from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)

__all__ = ["evaluate", "evaluate_box", "evaluate_box_array", "Value"]

Value = Union[float, Interval, IntervalArray]

_UNARY_FUNCS = {
    "sin": isin,
    "cos": icos,
    "tan": itan,
    "tanh": itanh,
    "sigmoid": isigmoid,
    "exp": iexp,
    "log": ilog,
    "sqrt": isqrt,
    "abs": iabs,
    "atan": iatan,
}


def evaluate(root: Expr, env: Mapping[str, Value]) -> Value:
    """Evaluate ``root`` with variables bound by ``env``.

    ``env`` may bind floats (numeric semantics), intervals (interval
    semantics), or a mix; a single interval input makes the result an
    interval.

    Raises
    ------
    EvaluationError
        When a variable is unbound.
    """
    values: dict[int, Value] = {}
    for node in postorder(root):
        values[id(node)] = _apply(node, values, env)
    return values[id(root)]


def evaluate_box(root: Expr, box: Box, names: list[str]) -> Interval:
    """Evaluate ``root`` over ``box``, whose components are named by ``names``."""
    if box.dimension != len(names):
        raise EvaluationError(
            f"box dimension {box.dimension} does not match {len(names)} names"
        )
    env = dict(zip(names, box.intervals))
    result = evaluate(root, env)
    if not isinstance(result, Interval):
        result = Interval.point(float(result))
    return result


def evaluate_box_array(root: Expr, boxes: BoxArray, names: list[str]) -> IntervalArray:
    """Evaluate ``root`` over every box of a frontier in one batched walk.

    The same postorder walker as :func:`evaluate` runs with
    :class:`~repro.intervals.IntervalArray` bindings — the ``i*``
    dispatchers carry the batch through every node, so the whole
    frontier costs one NumPy pass per DAG node.
    """
    if boxes.dimension != len(names):
        raise EvaluationError(
            f"boxes dimension {boxes.dimension} does not match {len(names)} names"
        )
    env = {name: boxes.column(j) for j, name in enumerate(names)}
    result = evaluate(root, env)
    if not isinstance(result, IntervalArray):  # constant expression
        result = IntervalArray.point(np.full(len(boxes), float(result)))
    return result


def _apply(node: Expr, values: dict[int, Value], env: Mapping[str, Value]) -> Value:
    if isinstance(node, Const):
        return node.value
    if isinstance(node, Var):
        try:
            return env[node.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {node.name!r}") from None
    if isinstance(node, Add):
        return values[id(node.left)] + values[id(node.right)]
    if isinstance(node, Sub):
        return values[id(node.left)] - values[id(node.right)]
    if isinstance(node, Mul):
        return values[id(node.left)] * values[id(node.right)]
    if isinstance(node, Div):
        return values[id(node.left)] / values[id(node.right)]
    if isinstance(node, Neg):
        return -values[id(node.child)]
    if isinstance(node, Pow):
        return ipow(values[id(node.base)], node.exponent)
    if isinstance(node, Unary):
        return _UNARY_FUNCS[node.op](values[id(node.child)])
    if isinstance(node, Min2):
        return imin(values[id(node.left)], values[id(node.right)])
    if isinstance(node, Max2):
        return imax(values[id(node.left)], values[id(node.right)])
    raise EvaluationError(f"unknown node type: {type(node).__name__}")
