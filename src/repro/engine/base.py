"""Backend protocols and the string-keyed engine registry.

The Figure-1 procedure is a loop over three swappable solvers: trace
generation (simulation), LP candidate fitting, and δ-SAT checking.  This
module makes each a first-class, runtime-checkable protocol —
:class:`SimBackend`, :class:`LpBackend`, :class:`SmtBackend` — and
bundles one of each into an :class:`Engine`.  Engines live in a global
string-keyed registry mirroring the scenario registry of
:mod:`repro.api.scenario`, so workloads select their solver stack the
same way they select their dynamics: by name, from the CLI
(``repro verify --engine``), from :func:`repro.api.run`, or from a
:class:`~repro.barrier.SynthesisConfig`.

Future backends (a dReal subprocess, a GPU batch simulator, a
reachability-based cross-check) plug in by implementing one protocol and
calling :func:`register_engine` — nothing in the synthesis loop changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import-time types only
    import numpy as np

    from ..barrier.lp import GeneratorCandidate, LpConfig
    from ..sim import Trace
    from ..smt import IcpConfig, SmtResult, Subproblem

__all__ = [
    "Engine",
    "LpBackend",
    "SimBackend",
    "SmtBackend",
    "engine_names",
    "get_engine",
    "list_engines",
    "register_engine",
    "resolve_engine",
    "unregister_engine",
]


@runtime_checkable
class SimBackend(Protocol):
    """Batch trace generation: integrate many initial states into traces."""

    name: str

    def simulate(
        self,
        system,
        initial_states: "np.ndarray",
        duration: float,
        dt: float,
        method: str = "rk4",
        stop_condition: "Callable[[np.ndarray], bool] | None" = None,
    ) -> "list[Trace]":
        """One :class:`~repro.sim.Trace` per row of ``initial_states``."""
        ...


@runtime_checkable
class LpBackend(Protocol):
    """Candidate generator fitting from sampled trace states."""

    name: str

    def fit(
        self,
        template,
        points: "np.ndarray",
        system,
        config: "LpConfig | None" = None,
        separation: "tuple[np.ndarray, np.ndarray] | None" = None,
        assembler: "object | None" = None,
    ) -> "GeneratorCandidate":
        """Fit template coefficients to the point cloud (may raise
        :class:`~repro.errors.InfeasibleLPError`).

        ``assembler`` (optional) is a per-run
        :class:`~repro.barrier.lp.LpAssembler` carrying cached
        constraint rows across counterexample-refinement re-solves; the
        synthesis loop only passes it to backends whose ``fit``
        signature accepts the keyword, so implementations may omit it.
        """
        ...


@runtime_checkable
class SmtBackend(Protocol):
    """δ-SAT decision over a union of box subproblems."""

    name: str

    def check(
        self,
        subproblems: "Sequence[Subproblem]",
        names: "Sequence[str]",
        config: "IcpConfig | None" = None,
    ) -> "SmtResult":
        """Decide ``∃x`` over the subproblem union (empty union: UNSAT)."""
        ...


@dataclass(frozen=True)
class Engine:
    """A named solver stack: one backend per Figure-1 solver role.

    Instances are frozen so registered engines are safe to share across
    runs; backends themselves should be stateless (or internally
    synchronized) for the same reason.
    """

    name: str
    description: str
    sim: SimBackend
    lp: LpBackend
    smt: SmtBackend
    #: free-form grouping labels ("builtin", "experimental", ...)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("engines need a non-empty name")
        for role, backend, protocol in (
            ("sim", self.sim, SimBackend),
            ("lp", self.lp, LpBackend),
            ("smt", self.smt, SmtBackend),
        ):
            if not isinstance(backend, protocol):
                raise ReproError(
                    f"engine {self.name!r}: {role} backend "
                    f"{type(backend).__name__} does not implement "
                    f"{protocol.__name__}"
                )

    def availability(self) -> tuple[bool, str]:
        """Whether the engine is usable here, and why not (or at what level).

        Backends may expose their own ``availability() -> (bool, str)``
        (the portfolio does, reporting which external solver binaries
        were found); engines whose backends are pure in-process code are
        unconditionally available with an empty reason.
        """
        probe = getattr(self.smt, "availability", None)
        if probe is None:
            return True, ""
        available, reason = probe()
        return bool(available), str(reason)

    def describe(self) -> dict:
        """Plain-data view for tooling (``repro engines --json``).

        SMT backends may expose ``describe_extra() -> dict`` to add
        backend-specific keys (the sharded backend reports its resolved
        ``shards`` count); extras never override the standard keys.
        """
        available, reason = self.availability()
        info = {
            "name": self.name,
            "description": self.description,
            "sim": type(self.sim).__name__,
            "lp": type(self.lp).__name__,
            "smt": type(self.smt).__name__,
            "tags": list(self.tags),
            "available": available,
            "reason": reason,
        }
        extra = getattr(self.smt, "describe_extra", None)
        if extra is not None:
            for key, value in dict(extra()).items():
                info.setdefault(key, value)
        return info


_REGISTRY: dict[str, Engine] = {}


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Add an engine to the global registry and return it.

    Re-registering an existing name raises unless ``replace=True``.
    """
    if not replace and engine.name in _REGISTRY:
        raise ReproError(
            f"engine {engine.name!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    _REGISTRY[engine.name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove an engine from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> Engine:
    """Look up a registered engine by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ReproError(
            f"unknown engine {name!r}; registered engines: {known}"
        ) from None


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def list_engines() -> tuple[Engine, ...]:
    """All registered engines, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def resolve_engine(engine: "str | Engine | None") -> Engine:
    """Coerce an engine spec (name, object, or None) to an :class:`Engine`.

    ``None`` resolves to the default ``"native"`` engine.
    """
    if engine is None:
        return get_engine("native")
    if isinstance(engine, Engine):
        return engine
    if isinstance(engine, str):
        return get_engine(engine)
    raise ReproError(
        f"expected engine name or Engine, got {type(engine).__name__}"
    )
