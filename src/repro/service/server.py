"""Stdlib-only asyncio HTTP front door for the verification service.

One small, dependency-free HTTP/1.1 server (``asyncio.start_server`` +
hand-rolled request parsing — no aiohttp in the base image, none
needed).  The API surface, all JSON:

====== ============================ =======================================
POST   ``/v1/jobs``                 submit a job (body = JobSpec fields +
                                    optional ``priority``); returns status
GET    ``/v1/jobs``                 list all jobs (newest first)
GET    ``/v1/jobs/{id}``            one job's status
GET    ``/v1/jobs/{id}/result``     per-point artifacts (null = pending)
POST   ``/v1/jobs/{id}/cancel``     cancel; returns the final status
GET    ``/v1/jobs/{id}/events``     NDJSON progress stream (stage/point/
                                    job events; ends at a terminal state;
                                    ``?after=N`` resumes past seq ``N``)
GET    ``/v1/healthz``              liveness + queue/store stats
====== ============================ =======================================

Handlers delegate to the thread-safe :class:`~repro.service.scheduler.
Scheduler`; blocking calls (submission expands grids and probes the
store) hop onto worker threads via ``asyncio.to_thread`` so the accept
loop never stalls.  The events stream writes one JSON object per line
and closes after the job's terminal event — ``Connection: close``
framing, so clients just read lines until EOF.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.parse
from typing import TYPE_CHECKING

from ..errors import ReproError
from .jobs import JobState

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .scheduler import Scheduler

__all__ = ["DEFAULT_PORT", "ServiceServer"]

#: default TCP port of ``repro serve``
DEFAULT_PORT = 7463

#: maximum accepted request-body size (grids are tiny; this is a guard)
_MAX_BODY = 4 * 1024 * 1024


class _HttpError(Exception):
    """Internal: carries an HTTP status + message to the writer."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceServer:
    """The asyncio front door bound to one :class:`Scheduler`."""

    def __init__(
        self,
        scheduler: "Scheduler",
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting (updates ``port`` when given 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """:meth:`start` (if needed) then serve until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def run_in_thread(self) -> "threading.Thread":
        """Start the server on a dedicated event-loop thread (tests).

        Blocks until the socket is bound, so ``port`` is final when
        this returns.
        """
        ready = threading.Event()
        self._loop = asyncio.new_event_loop()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)

            async def main() -> None:
                await self.start()
                ready.set()
                await self._server.serve_forever()

            try:
                self._loop.run_until_complete(main())
            except asyncio.CancelledError:
                pass
            finally:
                self._loop.close()

        thread = threading.Thread(
            target=runner, name="repro-service-http", daemon=True
        )
        thread.start()
        if not ready.wait(timeout=10.0):
            raise ReproError("service server failed to start")
        return thread

    def stop_thread(self) -> None:
        """Stop a :meth:`run_in_thread` server from any thread."""
        loop = getattr(self, "_loop", None)
        if loop is not None and not loop.is_closed():
            for task in asyncio.all_tasks(loop):
                loop.call_soon_threadsafe(task.cancel)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, query, body = await self._read_request(reader)
            await self._dispatch(method, path, query, body, writer)
        except _HttpError as exc:
            await self._write_json(
                writer, exc.status, {"error": str(exc)}
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - one bad request, not the server
            try:
                await self._write_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        body: dict = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except ValueError:
                raise _HttpError(400, "request body is not valid JSON") from None
            if not isinstance(body, dict):
                raise _HttpError(400, "request body must be a JSON object")
        path, _, raw_query = target.partition("?")
        query = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(raw_query).items()
        }
        return method.upper(), path, query, body

    async def _write_json(
        self, writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        body: dict,
        writer: asyncio.StreamWriter,
    ) -> None:
        segments = [s for s in path.split("/") if s]
        if segments[:1] != ["v1"]:
            raise _HttpError(404, f"unknown path {path!r}")
        rest = segments[1:]
        try:
            if rest == ["healthz"] and method == "GET":
                await self._write_json(
                    writer, 200, {"status": "ok", **self.scheduler.stats()}
                )
            elif rest == ["jobs"] and method == "POST":
                priority = int(body.pop("priority", 0) or 0)
                job = await asyncio.to_thread(
                    self.scheduler.submit, body, priority
                )
                await self._write_json(writer, 201, job.status_dict())
            elif rest == ["jobs"] and method == "GET":
                await self._write_json(
                    writer,
                    200,
                    {"jobs": [j.status_dict() for j in self.scheduler.jobs()]},
                )
            elif len(rest) == 2 and rest[0] == "jobs" and method == "GET":
                job = self.scheduler.job(rest[1])
                await self._write_json(writer, 200, job.status_dict())
            elif (
                len(rest) == 3
                and rest[0] == "jobs"
                and rest[2] == "result"
                and method == "GET"
            ):
                job = self.scheduler.job(rest[1])
                artifacts = await asyncio.to_thread(
                    self.scheduler.job_result, rest[1]
                )
                await self._write_json(
                    writer,
                    200,
                    {
                        "job": job.status_dict(),
                        "runs": [
                            {
                                "point": job.points[i],
                                "params": job.params[i] if i < len(job.params) else {},
                                "key": job.keys[i],
                                "artifact": None if a is None else a.to_dict(),
                            }
                            for i, a in enumerate(artifacts)
                        ],
                    },
                )
            elif (
                len(rest) == 3
                and rest[0] == "jobs"
                and rest[2] == "cancel"
                and method == "POST"
            ):
                job = await asyncio.to_thread(self.scheduler.cancel, rest[1])
                await self._write_json(writer, 200, job.status_dict())
            elif (
                len(rest) == 3
                and rest[0] == "jobs"
                and rest[2] == "events"
                and method == "GET"
            ):
                try:
                    after = int(query.get("after", 0) or 0)
                except ValueError:
                    raise _HttpError(
                        400, f"after must be an integer, got {query['after']!r}"
                    ) from None
                await self._stream_events(writer, rest[1], after)
            else:
                raise _HttpError(
                    405 if rest and rest[0] in ("jobs", "healthz") else 404,
                    f"no route for {method} {path}",
                )
        except ReproError as exc:
            status = 404 if "unknown job" in str(exc) else 400
            raise _HttpError(status, str(exc)) from None

    # ------------------------------------------------------------------
    # NDJSON streaming
    # ------------------------------------------------------------------
    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str, after: int = 0
    ) -> None:
        job = self.scheduler.job(job_id)  # 404s before headers go out
        if self.scheduler.events is None:
            raise _HttpError(400, "server started without an event bus")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        def is_final(event: dict) -> bool:
            return event.get("type") == "job" and JobState(
                str(event.get("state"))
            ).terminal

        with self.scheduler.events.subscribe(
            job_id, replay=True, after=after
        ) as sub:
            # Replay delivered a prefix; if the job is already terminal
            # and its terminal event predates our subscription history,
            # synthesize one so the stream always terminates.
            saw_final = False
            for event in sub.drain():
                writer.write(json.dumps(event, sort_keys=True).encode() + b"\n")
                if is_final(event):
                    saw_final = True
            await writer.drain()
            if not saw_final and job.state.terminal:
                final = {
                    "type": "job",
                    "job": job.id,
                    "state": job.state.value,
                    "error": job.error,
                }
                writer.write(json.dumps(final, sort_keys=True).encode() + b"\n")
                await writer.drain()
                return
            while not saw_final:
                event = await asyncio.to_thread(sub.get, 0.5)
                if event is None:
                    continue
                writer.write(json.dumps(event, sort_keys=True).encode() + b"\n")
                if is_final(event):
                    saw_final = True
                await writer.drain()
