"""The paper's error dynamics (Section 4.1.3–4.1.4).

For a straight-line target path with constant orientation ``theta_r``,
the closed-loop system reduces to two states ``x = [d_err, theta_err]``:

.. math::

    \\dot d_{err} &= -V \\sin(\\theta_r - \\theta_{err})\\cos\\theta_r
                    + V \\cos(\\theta_r - \\theta_{err})\\sin\\theta_r \\\\
    \\dot\\theta_{err} &= -u, \\qquad u = h(d_{err}, \\theta_{err})

The first equation telescopes to ``V sin(theta_err)`` by the sine
difference identity; :func:`error_field_exprs` can emit either form
(``simplified=True``/``False``) and the test suite proves them equal.
The verbatim form is kept because the SMT queries in the paper are posed
against exactly the published expression.
"""

from __future__ import annotations

import math
import numpy as np

from ..errors import ReproError
from ..expr import Expr, cos, sin, var
from ..nn import FeedforwardNetwork
from .system import ContinuousSystem

__all__ = [
    "STATE_NAMES",
    "error_field_exprs",
    "error_dynamics_system",
    "numeric_error_field",
    "numeric_error_field_batch",
]

#: State variable names of the reduced model, in order.
STATE_NAMES = ("derr", "thetaerr")


def error_field_exprs(
    controller_output: Expr,
    speed: float = 1.0,
    theta_r: float = 0.0,
    simplified: bool = True,
) -> list[Expr]:
    """Symbolic ``[d_err', theta_err']`` with ``u`` given as an expression.

    ``controller_output`` must be an expression over the variables
    ``derr`` and ``thetaerr`` (e.g. a network's symbolic output).
    """
    if speed <= 0.0:
        raise ReproError(f"speed must be positive, got {speed}")
    theta_err = var("thetaerr")
    if simplified:
        d_err_dot: Expr = speed * sin(theta_err)
    else:
        d_err_dot = (-speed) * sin(theta_r - theta_err) * math.cos(theta_r) + (
            speed
        ) * cos(theta_r - theta_err) * math.sin(theta_r)
    return [d_err_dot, -controller_output]


def numeric_error_field(
    network: FeedforwardNetwork, speed: float = 1.0
) -> "callable":
    """Fast numeric ``f([d_err, theta_err])`` using the NN matrix forward pass."""
    if network.input_dimension != 2 or network.output_dimension != 1:
        raise ReproError(
            "the error-dynamics controller must map 2 inputs to 1 output, got "
            f"{network.input_dimension} -> {network.output_dimension}"
        )

    def field(x: np.ndarray) -> np.ndarray:
        u = float(network.forward(x)[0])
        return np.array([speed * math.sin(x[1]), -u])

    return field


def numeric_error_field_batch(
    network: FeedforwardNetwork, speed: float = 1.0
) -> "callable":
    """Batched ``F(X) -> X_dot`` over ``(m, 2)`` state arrays.

    One matrix forward pass through the network covers every state, so
    the vectorized simulation engine pays Python overhead per *step*
    instead of per (step, trace) pair.
    """
    if network.input_dimension != 2 or network.output_dimension != 1:
        raise ReproError(
            "the error-dynamics controller must map 2 inputs to 1 output, got "
            f"{network.input_dimension} -> {network.output_dimension}"
        )

    def field_batch(states: np.ndarray) -> np.ndarray:
        u = network.forward(states)[:, 0]
        return np.stack([speed * np.sin(states[:, 1]), -u], axis=1)

    return field_batch


def error_dynamics_system(
    network: FeedforwardNetwork,
    speed: float = 1.0,
    theta_r: float = 0.0,
    simplified: bool = True,
) -> ContinuousSystem:
    """The paper's closed-loop verification model.

    The symbolic field embeds the network's symbolic output (what the
    SMT solver sees); the numeric override calls the network's matrix
    forward pass (what the simulator integrates).  These agree to float
    round-off — a property test asserts it.
    """
    inputs = [var("derr"), var("thetaerr")]
    u_expr = network.symbolic_outputs(inputs)[0]
    exprs = error_field_exprs(u_expr, speed=speed, theta_r=theta_r, simplified=simplified)
    return ContinuousSystem(
        state_names=list(STATE_NAMES),
        field_exprs=exprs,
        numeric_override=numeric_error_field(network, speed),
        numeric_batch_override=numeric_error_field_batch(network, speed),
        name=f"dubins-error-dynamics-Nh{network.hidden_sizes or [0]}",
    )
