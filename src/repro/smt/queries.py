"""Existential queries over disjunctions and box unions.

The barrier conditions in the paper quantify over regions that are not
single boxes (e.g. ``D \\ X0``, or a union of halfspaces).  These helpers
decompose such queries into conjunction-over-box subproblems for the
core solver and combine the verdicts:

* any subproblem DELTA_SAT  →  DELTA_SAT (first witness wins);
* all subproblems UNSAT     →  UNSAT;
* otherwise                 →  UNKNOWN.
"""

from __future__ import annotations

from typing import Sequence

from ..intervals import Box
from .constraint import Constraint
from .formula import Formula, to_dnf
from .icp import IcpConfig, IcpSolver
from .result import SmtResult, SolverStats, Verdict

__all__ = ["check_exists", "check_exists_on_boxes", "Subproblem"]


class Subproblem:
    """A conjunction of constraints searched over one box."""

    def __init__(self, constraints: Sequence[Constraint], region: Box, label: str = ""):
        self.constraints = list(constraints)
        self.region = region
        self.label = label

    def __repr__(self) -> str:
        tag = f" '{self.label}'" if self.label else ""
        return f"<Subproblem{tag}: {len(self.constraints)} constraints over {self.region}>"


def check_exists_on_boxes(
    subproblems: Sequence[Subproblem],
    variable_names: Sequence[str],
    config: IcpConfig | None = None,
) -> SmtResult:
    """Decide ``∃x`` over a union of subproblems (see module docstring).

    An empty union is vacuously UNSAT — this arises legitimately when
    geometric preprocessing (e.g. clipping the level-set region against
    every unsafe facet) already proves the search region empty.
    """
    solver = IcpSolver(config)
    if not subproblems:
        return SmtResult(Verdict.UNSAT, solver.config.delta)
    merged = SolverStats()
    saw_unknown = False
    delta = solver.config.delta
    for sub in subproblems:
        result = solver.solve(sub.constraints, sub.region, variable_names)
        merged.merge(result.stats)
        if result.verdict is Verdict.DELTA_SAT:
            result.stats = merged
            return result
        if result.verdict is Verdict.UNKNOWN:
            saw_unknown = True
    verdict = Verdict.UNKNOWN if saw_unknown else Verdict.UNSAT
    return SmtResult(verdict, delta, stats=merged)


def check_exists(
    formula: "Formula | Constraint",
    regions: "Box | Sequence[Box]",
    variable_names: Sequence[str],
    config: IcpConfig | None = None,
) -> SmtResult:
    """Decide ``∃x ∈ ∪ regions : formula(x)`` with DNF case-splitting."""
    if isinstance(regions, Box):
        regions = [regions]
    disjuncts = to_dnf(formula)
    subproblems = [
        Subproblem(conjunction, region)
        for region in regions
        for conjunction in disjuncts
    ]
    return check_exists_on_boxes(subproblems, variable_names, config)
