"""External-solver adapters: parsing, probing, subprocess dispatch.

Everything here runs with **no real solver installed**: verdict parsing
is exercised on canned transcripts, and the subprocess machinery on tiny
shell scripts injected via the ``REPRO_Z3`` env var — so CI always
covers the portfolio path.
"""

from __future__ import annotations

import stat
import threading
import time

import numpy as np
import pytest

from repro.errors import SolverError
from repro.expr import var
from repro.intervals import Box, Interval
from repro.smt import Subproblem, Verdict, ge, le
from repro.solvers import (
    DRealSolver,
    ExternalSolver,
    SolverInfo,
    Z3Solver,
    emit_query,
    get_solver,
    parse_dreal_output,
    parse_z3_output,
    probe_all,
    register_solver,
    result_from_model,
    solver_names,
)
from repro.solvers.backends import _numeric_from_sexpr


def _query(lo=-2.0, hi=2.0):
    x, y = var("x"), var("y")
    sub = Subproblem(
        [ge(x * x + y * y, 1.0), le(x, 0.25)],
        Box([Interval(lo, hi), Interval(-1.0, 1.0)]),
        "demo",
    )
    return emit_query([sub], ("x", "y"), 1e-3)


# ----------------------------------------------------------------------
# Canned transcripts (the CI-without-binaries satellite)
# ----------------------------------------------------------------------

Z3_SAT = """sat
(
  (define-fun x () Real
    (- (/ 1.0 4.0)))
  (define-fun y () Real
    0.5)
)
"""

Z3_ROOT_OBJ = """sat
(
  (define-fun x () Real
    (root-obj (+ (^ x 2) (- 2)) 2))
  (define-fun y () Real 0.5)
)
"""

DREAL_DELTA_SAT = """delta-sat with delta = 0.00100000000000000002
x : [ -0.25, -0.2499 ]
y : ( 0.4, 0.6 )
"""


class TestZ3Parsing:
    def test_sat_with_model(self):
        verdict, model = parse_z3_output(Z3_SAT, ("x", "y"))
        assert verdict is Verdict.DELTA_SAT
        assert model == {"x": -0.25, "y": 0.5}

    def test_unsat(self):
        assert parse_z3_output("unsat\n", ("x",)) == (Verdict.UNSAT, None)

    def test_unknown_and_timeout(self):
        assert parse_z3_output("unknown\n", ("x",)) == (Verdict.UNKNOWN, None)
        assert parse_z3_output("timeout\n", ("x",)) == (Verdict.UNKNOWN, None)

    def test_garbage(self):
        assert parse_z3_output("Segmentation fault\n", ("x",)) == (
            Verdict.UNKNOWN,
            None,
        )
        assert parse_z3_output("", ("x",)) == (Verdict.UNKNOWN, None)

    def test_algebraic_model_value_dropped(self):
        verdict, model = parse_z3_output(Z3_ROOT_OBJ, ("x", "y"))
        assert verdict is Verdict.DELTA_SAT
        assert model == {"y": 0.5}  # x's root-obj is unrepresentable

    def test_quoted_symbols(self):
        text = "sat\n((define-fun |0start| () Real 1.5))\n"
        _, model = parse_z3_output(text, ("0start",))
        assert model == {"0start": 1.5}

    def test_numeric_sexpr_evaluator(self):
        assert _numeric_from_sexpr("0.5") == 0.5
        assert _numeric_from_sexpr("(- 0.5)") == -0.5
        assert _numeric_from_sexpr("(/ 1.0 4.0)") == 0.25
        assert _numeric_from_sexpr("(- (/ 3.0 2.0))") == -1.5
        assert _numeric_from_sexpr("(+ 1.0 2.0 3.0)") == 6.0
        assert _numeric_from_sexpr("(* 2.0 (- 3.0))") == -6.0
        assert _numeric_from_sexpr("(root-obj x 2)") is None
        assert _numeric_from_sexpr("(/ 1.0 0.0)") is None


class TestDRealParsing:
    def test_delta_sat_with_intervals(self):
        verdict, model = parse_dreal_output(DREAL_DELTA_SAT, ("x", "y"))
        assert verdict is Verdict.DELTA_SAT
        assert model["x"] == (-0.25, -0.2499)
        # Open interval — the satellite regression: midpoints later.
        assert model["y"] == (0.4, 0.6)

    def test_bare_sat(self):
        verdict, _ = parse_dreal_output("sat\nx : [ 1.0, 1.0 ]\n", ("x",))
        assert verdict is Verdict.DELTA_SAT

    def test_unsat(self):
        assert parse_dreal_output("unsat\n", ("x",)) == (Verdict.UNSAT, None)

    def test_garbage(self):
        assert parse_dreal_output("core dumped\n", ("x",)) == (
            Verdict.UNKNOWN,
            None,
        )

    def test_unparseable_interval_skipped(self):
        verdict, model = parse_dreal_output(
            "delta-sat with delta = 0.001\nx : [ ENTIRE ]\ny : [ 0.5, 0.5 ]\n",
            ("x", "y"),
        )
        assert verdict is Verdict.DELTA_SAT
        assert model == {"y": (0.5, 0.5)}


class TestResultFromModel:
    def test_unsat_passthrough(self):
        result = result_from_model(Verdict.UNSAT, None, _query())
        assert result.verdict is Verdict.UNSAT
        assert result.witness is None

    def test_delta_sat_builds_midpoint_witness(self):
        model = {"x": (-0.25, -0.2499), "y": (0.9, 1.0)}
        result = result_from_model(Verdict.DELTA_SAT, model, _query())
        assert result.verdict is Verdict.DELTA_SAT
        np.testing.assert_allclose(result.witness, [-0.24995, 0.95])
        assert result.witness_box is not None

    def test_validated_witness_flagged(self):
        # (-1.5, 0) satisfies x²+y² >= 1 and x <= 0.25.
        result = result_from_model(
            Verdict.DELTA_SAT, {"x": -1.5, "y": 0.0}, _query()
        )
        assert result.witness_validated is True

    def test_invalid_witness_not_flagged(self):
        # Origin violates x²+y² >= 1 by far more than δ.
        result = result_from_model(
            Verdict.DELTA_SAT, {"x": 0.0, "y": 0.0}, _query()
        )
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness_validated is False

    def test_incomplete_model_downgrades_to_unknown(self):
        # A sat claim without a full witness cannot feed the synthesis
        # loop's counterexample refinement — never DELTA_SAT+witness=None.
        for model in (None, {}, {"x": 0.5}):
            result = result_from_model(Verdict.DELTA_SAT, model, _query())
            assert result.verdict is Verdict.UNKNOWN
            assert result.witness is None


# ----------------------------------------------------------------------
# Probing + registry
# ----------------------------------------------------------------------


class TestProbe:
    def test_missing_binary_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_Z3", "definitely-not-a-binary-xyz")
        info = Z3Solver().probe()
        assert not info.available
        assert "not found" in info.reason

    def test_probe_cache_keyed_on_command(self, monkeypatch, tmp_path):
        solver = Z3Solver()
        monkeypatch.setenv("REPRO_Z3", "missing-one")
        assert not solver.probe().available
        fake = tmp_path / "fakez3"
        fake.write_text("#!/bin/sh\necho 'Z3 version 4.99.0 - 64 bit'\n")
        fake.chmod(fake.stat().st_mode | stat.S_IXUSR)
        monkeypatch.setenv("REPRO_Z3", str(fake))
        info = solver.probe()  # env change must invalidate the cache
        assert info.available
        assert info.version == "4.99.0"

    def test_version_parse_dreal_style(self, monkeypatch, tmp_path):
        fake = tmp_path / "fakedreal"
        fake.write_text("#!/bin/sh\necho 'dReal v4.21.06.2'\n")
        fake.chmod(fake.stat().st_mode | stat.S_IXUSR)
        monkeypatch.setenv("REPRO_DREAL", str(fake))
        info = DRealSolver().probe()
        assert info.available
        assert info.version == "4.21.06.2"


class TestRegistry:
    def test_builtins_registered(self):
        assert set(solver_names()) >= {"z3", "dreal"}
        assert isinstance(get_solver("z3"), Z3Solver)
        assert isinstance(get_solver("dreal"), DRealSolver)
        for solver in (get_solver("z3"), get_solver("dreal")):
            assert isinstance(solver, ExternalSolver)

    def test_unknown_name_raises(self):
        with pytest.raises(SolverError, match="unknown external solver"):
            get_solver("cvc5")

    def test_duplicate_registration_raises(self):
        with pytest.raises(SolverError, match="already registered"):
            register_solver(Z3Solver())

    def test_probe_all_shape(self):
        infos = probe_all()
        assert set(infos) == set(solver_names())
        assert all(isinstance(i, SolverInfo) for i in infos.values())


class TestCapabilities:
    def test_z3_declines_transcendentals(self):
        z3 = Z3Solver()
        assert z3.supports(frozenset())
        assert not z3.supports(frozenset({"tanh"}))
        assert not z3.supports(frozenset({"sin", "exp"}))

    def test_dreal_supports_everything(self):
        dreal = DRealSolver()
        assert dreal.supports(frozenset())
        assert dreal.supports(frozenset({"sin", "tanh", "exp", "sqrt"}))


# ----------------------------------------------------------------------
# Real subprocess dispatch via fake solver scripts
# ----------------------------------------------------------------------


def _fake_binary(tmp_path, name, body):
    script = tmp_path / name
    script.write_text("#!/bin/sh\n" + body)
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return script


class TestSubprocessDispatch:
    def test_unavailable_solver_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_Z3", "definitely-not-a-binary-xyz")
        with pytest.raises(SolverError, match="not available"):
            Z3Solver().solve(_query(), timeout=1.0)

    def test_fake_unsat_roundtrip(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'case "$1" in --version) echo "Z3 version 4.99.0";; '
            '*) echo unsat;; esac\n',
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        result = Z3Solver().solve(_query(), timeout=5.0)
        assert result.verdict is Verdict.UNSAT

    def test_fake_sat_roundtrip_with_witness(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'case "$1" in --version) echo "Z3 version 4.99.0";; *)\n'
            "echo sat\n"
            'echo "((define-fun x () Real (- 1.5)) (define-fun y () Real 0.0))"\n'
            ";; esac\n",
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        result = Z3Solver().solve(_query(), timeout=5.0)
        assert result.verdict is Verdict.DELTA_SAT
        np.testing.assert_allclose(result.witness, [-1.5, 0.0])
        assert result.witness_validated

    def test_timeout_kills_and_returns_unknown(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'case "$1" in --version) echo "Z3 version 4.99.0";; '
            "*) sleep 60;; esac\n",
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        start = time.monotonic()
        result = Z3Solver().solve(_query(), timeout=0.5)
        elapsed = time.monotonic() - start
        assert result.verdict is Verdict.UNKNOWN
        assert elapsed < 10.0, f"kill took {elapsed:.1f}s"

    def test_cancel_event_kills_promptly(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'case "$1" in --version) echo "Z3 version 4.99.0";; '
            "*) sleep 60;; esac\n",
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        cancel = threading.Event()
        timer = threading.Timer(0.3, cancel.set)
        timer.start()
        try:
            start = time.monotonic()
            result = Z3Solver().solve(_query(), timeout=30.0, cancel=cancel)
            elapsed = time.monotonic() - start
        finally:
            timer.cancel()
        assert result.verdict is Verdict.UNKNOWN
        assert elapsed < 10.0, f"cancel took {elapsed:.1f}s"

    def test_temp_script_cleaned_up(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'case "$1" in --version) echo "Z3 version 4.99.0";; '
            '*) echo unsat;; esac\n',
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        monkeypatch.setenv("TMPDIR", str(tmp_path / "tmp"))
        (tmp_path / "tmp").mkdir()
        import tempfile

        tempfile.tempdir = None  # force re-read of TMPDIR
        try:
            Z3Solver().solve(_query(), timeout=5.0)
            leftovers = [
                p for p in (tmp_path / "tmp").iterdir()
                if p.name.startswith("repro-")
            ]
            assert leftovers == []
        finally:
            tempfile.tempdir = None

    def test_garbage_output_is_unknown(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'case "$1" in --version) echo "Z3 version 4.99.0";; '
            '*) echo "FATAL: mystery error"; exit 3;; esac\n',
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        result = Z3Solver().solve(_query(), timeout=5.0)
        assert result.verdict is Verdict.UNKNOWN

    def test_script_reaches_solver(self, monkeypatch, tmp_path):
        # The fake cats the script back; assert the emitted query text
        # actually crossed the process boundary intact.
        fake = _fake_binary(
            tmp_path, "fakedreal",
            'case "$1" in --version) echo "dReal v4.99.0";; *)\n'
            'for arg; do last="$arg"; done\n'
            'grep -q "set-logic QF_NRA" "$last" && echo unsat || echo unknown\n'
            ";; esac\n",
        )
        monkeypatch.setenv("REPRO_DREAL", str(fake))
        result = DRealSolver().solve(_query(), timeout=5.0)
        assert result.verdict is Verdict.UNSAT

    def test_invalid_timeout_rejected(self, monkeypatch, tmp_path):
        fake = _fake_binary(
            tmp_path, "fakez3",
            'echo "Z3 version 4.99.0"\n',
        )
        monkeypatch.setenv("REPRO_Z3", str(fake))
        with pytest.raises(SolverError, match="timeout"):
            Z3Solver().solve(_query(), timeout=0.0)


def test_env_vars_documented_in_help(capsys):
    from repro.cli import main

    assert main(["solvers"]) == 0
    out = capsys.readouterr().out
    assert "REPRO_Z3" in out
