"""Twin generation: structured mutations with known expected verdicts.

A *twin* is a perturbed variant of a scenario derived by one structured
mutation, carrying the verdict the mutation's math guarantees — the
metamorphic-testing oracle the fuzz harness checks engines against.

Verdict-preserving mutations (a ``verified`` base must stay verified):

``tighten-initial``   shrink the initial set about its center — fewer
                      starting states, same certificate works.  The
                      shrink is gentle (0.75): condition (5) is checked
                      on ``D \\ X0``, so shrinking ``X0`` *exposes* a
                      shell near the equilibrium where the field slows
                      to zero; too aggressive a shrink pushes that
                      shell inside the ICP's delta-weakening and every
                      candidate gets a spurious counterexample
``loosen-unsafe``     inflate the safe box while pinning the search
                      domain to the *original* safe rectangle — the
                      unsafe set shrinks, and the base certificate
                      witnesses the twin verbatim: same domain for
                      condition (5), same initial set, strictly smaller
                      unsafe set.  (Without pinning, the domain would
                      grow into territory the base never had to satisfy
                      condition (5) on — e.g. toward the van der Pol
                      unstable limit cycle — flipping the verdict.)
``scale-dynamics``    ``f -> c f`` with ``c > 1`` — trajectories trace
                      the same paths faster, and any barrier with
                      ``dB/dt <= -gamma`` gives ``c dB/dt <= -c gamma
                      <= -gamma``

Verdict-flipping mutations (a ``verified`` base must NOT verify):

``swap-sets``         the initial set inflates to (almost) fill the
                      safe box — any quadratic sublevel set containing
                      the filled box's corners must poke through a face
                      of the safe box (in >= 2 dimensions), so no
                      quadratic-template certificate can separate it
                      from the unsafe set
``reverse-field``     ``f -> -f`` — the attractor becomes a repeller;
                      seed trajectories flow outward into the unsafe
                      set

Twins deliberately drop the base's ``(family, params)`` cache identity:
their sets/dynamics differ from the base, so they fingerprint by
name + sets + factory in the artifact store (never colliding with the
base's cached runs).  Mutated system factories are ``functools.partial``
over module-level functions, keeping twins picklable into worker
processes.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass

from ..barrier import Rectangle, RectangleComplement
from ..dynamics import ContinuousSystem
from ..errors import ReproError
from ..api.scenario import Scenario

__all__ = [
    "FLIPPING_MUTATIONS",
    "MUTATIONS",
    "PRESERVING_MUTATIONS",
    "Twin",
    "conforms",
    "generate_twins",
    "mutate",
]

#: mutations that must keep a ``verified`` base verified
PRESERVING_MUTATIONS = (
    "tighten-initial",
    "loosen-unsafe",
    "scale-dynamics",
)
#: mutations that must flip a ``verified`` base to not-verified
FLIPPING_MUTATIONS = ("swap-sets", "reverse-field")
#: every mutation, preserving first
MUTATIONS = PRESERVING_MUTATIONS + FLIPPING_MUTATIONS

#: shrink factor of ``tighten-initial``
TIGHTEN_FACTOR = 0.75
#: inflation factor of ``loosen-unsafe``
LOOSEN_FACTOR = 1.25
#: time-scale factor of ``scale-dynamics``
SCALE_FACTOR = 2.0
#: fraction of the safe box the swapped initial set fills
SWAP_FILL = 0.98


@dataclass(frozen=True)
class Twin:
    """One derived scenario plus its expected-verdict metadata."""

    #: twin scenario name (``base::twin[mutation]``)
    name: str
    #: the base scenario's name
    base: str
    #: mutation registry key (see :data:`MUTATIONS`)
    mutation: str
    #: ``"verified"`` or ``"not-verified"``
    expected: str
    scenario: Scenario

    @property
    def preserving(self) -> bool:
        """True when the mutation is verdict-preserving."""
        return self.mutation in PRESERVING_MUTATIONS


def _scale_rectangle(rect: Rectangle, factor: float) -> Rectangle:
    """Scale a rectangle about its center."""
    lower = rect.lower
    upper = rect.upper
    center = [(lo + hi) / 2.0 for lo, hi in zip(lower, upper)]
    half = [(hi - lo) / 2.0 * factor for lo, hi in zip(lower, upper)]
    return Rectangle(
        [c - h for c, h in zip(center, half)],
        [c + h for c, h in zip(center, half)],
    )


def _scaled_system(base_factory, factor: float) -> ContinuousSystem:
    """``x' = factor * f(x)`` over the base factory's system.

    Module-level so twin factories (``functools.partial`` over this)
    pickle and fingerprint deterministically; the numeric overrides wrap
    the base system's own fast paths.
    """
    base = base_factory()

    def numeric(x):
        return factor * base.f(x)

    def numeric_batch(states):
        return factor * base.f_vectorized(states)

    return ContinuousSystem(
        state_names=base.state_names,
        field_exprs=[factor * e for e in base.field_exprs],
        numeric_override=numeric,
        numeric_batch_override=numeric_batch,
        name=f"{base.name}*{factor:g}",
    )


def mutate(scenario: Scenario, mutation: str) -> Scenario:
    """Apply one named mutation to a scenario.

    The result is renamed ``<base>::twin[<mutation>]`` and stripped of
    the base's family identity so the artifact-store fingerprint falls
    back to name + sets + factory (twins never alias their base's cache
    entries).
    """
    safe = scenario.unsafe_set.safe_rectangle
    if mutation == "tighten-initial":
        changes: dict = {
            "initial_set": _scale_rectangle(scenario.initial_set, TIGHTEN_FACTOR)
        }
    elif mutation == "loosen-unsafe":
        changes = {
            "unsafe_set": RectangleComplement(
                _scale_rectangle(safe, LOOSEN_FACTOR)
            ),
            # pin condition (5)'s search region to the base domain; the
            # enlarged complement would otherwise grow it into territory
            # the base certificate never covered
            "domain": scenario.domain if scenario.domain is not None else safe,
        }
    elif mutation == "scale-dynamics":
        changes = {
            "system_factory": functools.partial(
                _scaled_system, scenario.system_factory, SCALE_FACTOR
            )
        }
    elif mutation == "swap-sets":
        changes = {
            "initial_set": _scale_rectangle(safe, SWAP_FILL)
        }
    elif mutation == "reverse-field":
        changes = {
            "system_factory": functools.partial(
                _scaled_system, scenario.system_factory, -1.0
            )
        }
    else:
        known = ", ".join(MUTATIONS)
        raise ReproError(f"unknown mutation {mutation!r} (mutations: {known})")
    return dataclasses.replace(
        scenario,
        name=f"{scenario.name}::twin[{mutation}]",
        description=f"{mutation} twin of {scenario.name}",
        family=None,
        family_params=(),
        **changes,
    )


def generate_twins(
    scenario: Scenario, mutations: "tuple[str, ...] | None" = None
) -> tuple[Twin, ...]:
    """Derive the twin set of a scenario (all mutations by default).

    Expected verdicts assume the *base* verifies — callers should only
    check conformance of twins whose base run returned ``verified``
    (:func:`repro.corpus.fuzz.check_point` does exactly that).
    """
    twins = []
    for mutation in mutations or MUTATIONS:
        derived = mutate(scenario, mutation)
        expected = (
            "verified" if mutation in PRESERVING_MUTATIONS else "not-verified"
        )
        twins.append(
            Twin(
                name=derived.name,
                base=scenario.name,
                mutation=mutation,
                expected=expected,
                scenario=derived,
            )
        )
    return tuple(twins)


def conforms(twin: Twin, status: str) -> "bool | None":
    """Does an observed run status conform to the twin's expectation?

    Returns ``None`` ("no verdict, skip") when a preserving twin came
    back ``inconclusive`` — a budget ran out, which is machine-dependent
    and neither confirms nor refutes the expectation.  Flipping twins
    conform to *any* non-verified status: a sound procedure can never
    verify them, budget or no budget.
    """
    if twin.expected == "verified":
        if status == "inconclusive":
            return None
        return status == "verified"
    return status != "verified"
