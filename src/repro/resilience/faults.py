"""Deterministic fault-injection seams for the execution stack.

Every verdict-producing layer of the system has *seams*: named points
where the cooperative-environment assumption can break — a pool worker
can be OOM-killed, a shard worker can wedge, an external solver can
print garbage, a journal append can tear mid-line.  This module gives
each seam a name and a single cheap hook (:func:`fire`) the hot paths
call; with no :class:`FaultPlan` installed (the production default) the
hook is one ``None`` check and nothing else, so the seam wiring is
free and the instrumented paths stay byte-identical to uninstrumented
ones.

A :class:`FaultPlan` is a deterministic schedule: each
:class:`FaultAction` names a seam, a fault *kind*, and the hit index at
which it fires.  Plans install process-globally (forked children
inherit them), are reproducible from a seed via :func:`FaultPlan.random`,
and reset their hit counters on install — so a test or a ``repro
chaos`` run can replay the exact same failure at the exact same round,
forever.

Seam catalog (see ``docs/resilience.md`` for the recovery contract of
each):

========================= ============================================
``pool.worker``           warm-pool worker during a chunk dispatch
``shard.worker``          sharded-ICP worker during a frontier round
``solver.spawn``          external solver subprocess launch
``solver.output``         external solver transcript parsing
``store.read``            artifact store entry read
``store.write``           artifact store tmp-write → rename commit
``journal.append``        service job-journal record append
========================= ============================================

Fault kinds: ``kill`` (SIGKILL / hard exit), ``hang`` (unresponsive but
alive), ``garbage`` (syntactically broken bytes), ``torn`` (partial
write persisted), ``error`` (a raised :class:`~repro.errors.InjectedFault`).
Not every kind is meaningful at every seam; :data:`SEAM_KINDS` maps the
valid combinations and :meth:`FaultPlan.random` only ever draws from it.
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..errors import InjectedFault, ReproError

__all__ = [
    "SEAMS",
    "SEAM_KINDS",
    "FaultAction",
    "FaultPlan",
    "active_plan",
    "clear_plan",
    "fire",
    "fired_faults",
    "injected",
    "install_plan",
    "raise_if",
]

#: every named seam wired into the execution stack
SEAMS = (
    "pool.worker",
    "shard.worker",
    "solver.spawn",
    "solver.output",
    "store.read",
    "store.write",
    "journal.append",
)

#: fault kinds that make sense at each seam (random plans draw from this)
SEAM_KINDS: "dict[str, tuple[str, ...]]" = {
    "pool.worker": ("kill", "hang"),
    "shard.worker": ("kill", "hang"),
    "solver.spawn": ("error",),
    "solver.output": ("garbage", "hang"),
    "store.read": ("garbage", "error"),
    "store.write": ("torn", "error"),
    "journal.append": ("torn", "error"),
}

#: all fault kinds, in one place for validation
KINDS = ("kill", "hang", "garbage", "torn", "error")

#: how long an injected ``hang`` stays wedged before releasing on its
#: own — a backstop so a supervisor bug can never deadlock a test run;
#: every supervisor deadline in the stack is far shorter than this.
HANG_SECONDS = 60.0


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: fire ``kind`` at hit ``at`` of ``seam``.

    ``at`` counts :func:`fire` calls on the seam (0-based) since the
    plan was installed; ``count`` consecutive hits fire, so a plan can
    model a persistently broken dependency (``count`` large) or a
    single transient blip (``count=1``, the default).
    """

    seam: str
    kind: str
    at: int = 0
    count: int = 1
    #: payload for ``garbage`` kinds (defaulted per seam when empty)
    payload: str = ""

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            known = ", ".join(SEAMS)
            raise ReproError(f"unknown fault seam {self.seam!r} (seams: {known})")
        if self.kind not in KINDS:
            known = ", ".join(KINDS)
            raise ReproError(f"unknown fault kind {self.kind!r} (kinds: {known})")
        if self.at < 0 or self.count < 1:
            raise ReproError(
                f"fault action needs at >= 0 and count >= 1, "
                f"got at={self.at} count={self.count}"
            )

    def to_dict(self) -> dict:
        return {
            "seam": self.seam,
            "kind": self.kind,
            "at": self.at,
            "count": self.count,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultAction":
        return cls(
            seam=str(data["seam"]),
            kind=str(data["kind"]),
            at=int(data.get("at", 0) or 0),
            count=int(data.get("count", 1) or 1),
            payload=str(data.get("payload", "") or ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, replayable schedule of faults.

    Plans are immutable; the mutable state (per-seam hit counters, the
    fired-action log) lives module-globally and resets on every
    :func:`install_plan`, which is what makes a plan a pure function of
    its actions — installing the same plan twice injects the same
    faults at the same hits.
    """

    actions: "tuple[FaultAction, ...]" = ()
    #: free-text label carried into chaos accounting
    label: str = ""

    def for_seam(self, seam: str) -> "tuple[FaultAction, ...]":
        """The plan's actions targeting ``seam``."""
        return tuple(a for a in self.actions if a.seam == seam)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        return cls(
            actions=tuple(
                FaultAction.from_dict(a) for a in data.get("actions", ())
            ),
            label=str(data.get("label", "") or ""),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        seams: "Sequence[str] | None" = None,
        max_actions: int = 2,
        max_at: int = 3,
    ) -> "FaultPlan":
        """A seeded random schedule over ``seams`` (default: all).

        Draws 1..``max_actions`` actions, each with a seam-valid kind
        and a hit index in ``[0, max_at]`` — deterministic for a given
        seed, so chaos failures replay from the seed alone.
        """
        rng = random.Random(seed)
        pool = tuple(seams) if seams is not None else SEAMS
        for seam in pool:
            if seam not in SEAMS:
                known = ", ".join(SEAMS)
                raise ReproError(f"unknown fault seam {seam!r} (seams: {known})")
        actions = []
        for _ in range(rng.randint(1, max(1, max_actions))):
            seam = rng.choice(pool)
            kind = rng.choice(SEAM_KINDS[seam])
            actions.append(
                FaultAction(seam=seam, kind=kind, at=rng.randint(0, max_at))
            )
        return cls(actions=tuple(actions), label=f"random-{seed}")


@dataclass
class _SeamState:
    """Module-global mutable injection state (install-scoped)."""

    plan: "FaultPlan | None" = None
    hits: "dict[str, int]" = field(default_factory=dict)
    fired: "list[dict]" = field(default_factory=list)


_STATE = _SeamState()
_LOCK = threading.Lock()


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` process-wide, resetting counters and the log.

    Forked children inherit the active plan (and the counters as of the
    fork); spawned processes do not — the seams that matter in workers
    (``shard.worker``, ``pool.worker``) are therefore fired from the
    *master* side, which keeps all counting in one process.
    """
    global _STATE
    with _LOCK:
        _STATE = _SeamState(plan=plan)


def clear_plan() -> None:
    """Deactivate fault injection (the production state)."""
    global _STATE
    with _LOCK:
        _STATE = _SeamState()


def active_plan() -> "FaultPlan | None":
    """The installed plan, or ``None`` (production default)."""
    return _STATE.plan


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped installation: ``with injected(plan): ...`` always clears."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


def fire(seam: str, detail: str = "") -> "FaultAction | None":
    """Called by instrumented code at a seam; returns the due action.

    The production fast path — no plan installed — is a single
    attribute read and ``None`` check, cheap enough for per-round hot
    paths.  With a plan active the seam's hit counter advances and the
    first action covering this hit is returned (and logged in
    :func:`fired_faults` for chaos accounting).
    """
    state = _STATE
    if state.plan is None:
        return None
    with _LOCK:
        if _STATE is not state:  # plan swapped under us
            return None
        hit = state.hits.get(seam, 0)
        state.hits[seam] = hit + 1
        for action in state.plan.actions:
            if action.seam == seam and action.at <= hit < action.at + action.count:
                state.fired.append(
                    {
                        "seam": seam,
                        "kind": action.kind,
                        "hit": hit,
                        "detail": detail,
                    }
                )
                return action
    return None


def raise_if(seam: str, detail: str = "") -> None:
    """Shorthand for seams whose only meaningful fault is ``error``."""
    action = fire(seam, detail)
    if action is not None and action.kind == "error":
        raise InjectedFault(f"injected {seam} failure ({detail or 'no detail'})")


def fired_faults() -> "list[dict]":
    """The log of actions fired since the last install (oldest first)."""
    with _LOCK:
        return list(_STATE.fired)
