"""Job model and journal for the verification service.

A :class:`Job` is one submitted unit of service work: a single scenario
or a family grid/sample (:class:`JobSpec`), expanded at submission time
into per-point scenarios with the same deterministic seeds and
content-addressed :func:`~repro.store.run_key` fingerprints the sweep
runner uses — so a service result is byte-identical to a direct
:func:`repro.api.run` of the same point.

Jobs move through a validated state machine::

    QUEUED ──▶ RUNNING ──▶ DONE | FAILED | CANCELLED | DEAD
       │                      ▲
       └──────────────────────┘   (all-cache-hit jobs resolve instantly)

``DEAD`` is the dead-letter terminal: a job whose spec allowed retries
(``JobSpec.max_retries > 0``) exhausted its budget with points still
erroring.  Specs with the default ``max_retries=0`` keep the historical
behaviour and fail straight to ``FAILED``.

and every transition, submission, and per-point completion is appended
to a :class:`JobJournal` — a JSON-lines file under the artifact store
root — so a restarted server replays the journal, keeps terminal jobs
for inspection, and re-queues anything that was still in flight
(completed points resolve from the cache on resubmission, so recovery
repeats no finished work).
"""

from __future__ import annotations

import enum
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..api.runner import RunArtifact

__all__ = [
    "Job",
    "JobJournal",
    "JobSpec",
    "JobState",
    "JOURNAL_NAME",
    "new_job_id",
]

#: journal file name under ``<store root>/service/``
JOURNAL_NAME = "journal.jsonl"


class JobState(str, enum.Enum):
    """Lifecycle states of a service job."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    #: dead-letter: a retrying job that exhausted ``max_retries``
    DEAD = "DEAD"

    @property
    def terminal(self) -> bool:
        """True once a job can never change state again."""
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.DEAD,
        )


#: the only legal state transitions (QUEUED may resolve directly when
#: every point is a cache hit or the job is cancelled before dispatch)
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        (
            JobState.RUNNING,
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.DEAD,
        )
    ),
    JobState.RUNNING: frozenset(
        (JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.DEAD)
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.DEAD: frozenset(),
}


def new_job_id() -> str:
    """A fresh, URL-safe job identifier (``job-`` + 12 hex chars)."""
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass(frozen=True)
class JobSpec:
    """What one job verifies: a scenario, or a family grid/sample.

    ``target`` names a registered scenario *or* family; the server
    resolves it against the family registry first (families and
    scenarios share names like ``dubins``, and a family target is the
    strictly more general interpretation).  ``grid``/``samples``/
    ``overrides`` carry the same mini-language the sweep runner accepts
    (:func:`repro.api.family.parse_grid_values`); ``seed`` derives each
    point's synthesis seed exactly as :func:`repro.api.sweep` does.
    """

    target: str
    grid: Mapping[str, Sequence[object] | str] | None = None
    samples: int | None = None
    overrides: Mapping[str, object] | None = None
    seed: int = 0
    engine: str | None = None
    #: service-level retry budget for erroring points; 0 (the default)
    #: preserves the historical fail-fast-to-FAILED behaviour
    max_retries: int = 0

    def __post_init__(self) -> None:
        if not self.target:
            raise ReproError("job spec needs a target scenario or family")
        if self.grid is not None and self.samples is not None:
            raise ReproError("pass either grid or samples, not both")
        if self.max_retries < 0:
            raise ReproError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def to_dict(self) -> dict:
        """Plain-data view (JSON-ready; grids keep their raw specs)."""
        return {
            "target": self.target,
            "grid": None if self.grid is None else {
                str(k): list(v) if isinstance(v, (list, tuple)) else v
                for k, v in self.grid.items()
            },
            "samples": self.samples,
            "overrides": None if self.overrides is None else dict(self.overrides),
            "seed": self.seed,
            "engine": self.engine,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        """Inverse of :meth:`to_dict` (unknown keys are ignored)."""
        return cls(
            target=str(data.get("target", "")),
            grid=data.get("grid"),  # type: ignore[arg-type]
            samples=data.get("samples"),  # type: ignore[arg-type]
            overrides=data.get("overrides"),  # type: ignore[arg-type]
            seed=int(data.get("seed", 0) or 0),
            engine=data.get("engine"),  # type: ignore[arg-type]
            max_retries=int(data.get("max_retries", 0) or 0),
        )


@dataclass
class Job:
    """One submitted verification job and its live progress.

    ``points``/``keys``/``artifacts`` are index-aligned, in point order
    (grid order for grids, sample order for samples).  Artifacts fill
    in as points resolve — from the cache at submission, or from worker
    completions — and ``state`` follows the validated machine in
    :data:`_TRANSITIONS` via :meth:`transition`.
    """

    id: str
    spec: JobSpec
    priority: int = 0
    state: JobState = JobState.QUEUED
    created: float = field(default_factory=time.time)
    finished: float | None = None
    #: canonical per-point scenario names, in point order
    points: list[str] = field(default_factory=list)
    #: per-point parameter dicts (empty dicts for plain scenarios)
    params: list[dict] = field(default_factory=list)
    #: content-addressed run key per point
    keys: list[str] = field(default_factory=list)
    #: resolved artifacts (None until the point completes)
    artifacts: "list[RunArtifact | None]" = field(default_factory=list)
    #: points resolved from the artifact store at submission time
    cached_points: int = 0
    #: distinct keys this job caused to be dispatched to workers
    dispatched: int = 0
    #: points that attached to another job's in-flight computation
    coalesced: int = 0
    error: str | None = None
    cancel_requested: bool = False
    #: service-level retry rounds consumed so far (see JobSpec.max_retries)
    retries: int = 0
    #: journal-replayed per-point statuses (recovered jobs only; live
    #: jobs carry real artifacts instead)
    replayed_statuses: dict[int, str] = field(default_factory=dict)

    @property
    def total_points(self) -> int:
        """Number of parameter points the job expands to."""
        return len(self.points)

    @property
    def done_points(self) -> int:
        """Points resolved so far (cache hits + worker completions).

        Journal-replayed jobs count their recorded point completions —
        their artifacts stay lazy (hydrated from the store on demand).
        """
        return sum(
            artifact is not None or i in self.replayed_statuses
            for i, artifact in enumerate(self.artifacts)
        )

    @property
    def resolved(self) -> bool:
        """True once every point has an in-memory artifact.

        Deliberately ignores replayed statuses: only live completions
        may finalize a job (replayed jobs are already terminal).
        """
        return all(a is not None for a in self.artifacts)

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the legal state machine."""
        if new_state == self.state:
            return
        if new_state not in _TRANSITIONS[self.state]:
            raise ReproError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        if new_state.terminal:
            self.finished = time.time()

    def status_dict(self) -> dict:
        """The JSON status view the server and CLI render."""
        return {
            "id": self.id,
            "state": self.state.value,
            "spec": self.spec.to_dict(),
            "priority": self.priority,
            "created": self.created,
            "finished": self.finished,
            "total_points": self.total_points,
            "done_points": self.done_points,
            "cached_points": self.cached_points,
            "dispatched": self.dispatched,
            "coalesced": self.coalesced,
            "verified_points": sum(
                a.verified
                if a is not None
                else self.replayed_statuses.get(i) == "verified"
                for i, a in enumerate(self.artifacts)
            ),
            "retries": self.retries,
            "max_retries": self.spec.max_retries,
            "error": self.error,
        }


class JobJournal:
    """Append-only JSON-lines record of everything the scheduler did.

    One record per line; three record types::

        {"event": "submit", "job": <id>, "spec": {...}, "priority": N,
         "points": [...], "keys": [...], "created": <ts>}
        {"event": "point", "job": <id>, "index": N, "status": "...",
         "cached": bool}
        {"event": "retry", "job": <id>, "attempt": N, "points": [...]}
        {"event": "state", "job": <id>, "state": "...", "error": ...}

    Appends are serialized under a lock and flushed per record, so the
    journal is always a prefix of the truth: replaying it after a crash
    reconstructs every job's last known state.  A duplicate ``submit``
    for a known job id (recovery re-queues unfinished jobs through the
    normal path) resets that job's replayed progress — later records
    then rebuild it, keeping replay idempotent.

    A crash mid-append leaves a *torn* final line (no trailing newline).
    :meth:`records` skips it on read, and :meth:`append` self-repairs on
    the next write — it checks the file's last byte and starts a fresh
    line first, so one torn record never corrupts its successor.  The
    ``journal.append`` fault seam reproduces exactly this crash shape.
    """

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._lock = threading.Lock()

    def _needs_newline(self) -> bool:
        """True when the file ends in a torn (newline-less) record."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            return False  # missing or empty file: nothing to repair

    def append(self, record: Mapping[str, object]) -> None:
        """Write one record (thread-safe, flushed before returning)."""
        from ..resilience import faults

        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            repair = "\n" if self._needs_newline() else ""
            action = faults.fire("journal.append", str(record.get("event", "")))
            with open(self.path, "a", encoding="utf-8") as handle:
                if action is not None and action.kind == "torn":
                    # Simulated crash mid-append: half the record, no
                    # newline — the next append self-repairs.
                    handle.write(repair + line[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    return
                handle.write(repair + line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if action is not None and action.kind == "error":
                raise faults.InjectedFault(
                    f"injected journal append failure ({record.get('event')})"
                )

    def record_submit(self, job: Job) -> None:
        """Journal a job submission (spec + expanded points/keys)."""
        self.append(
            {
                "event": "submit",
                "job": job.id,
                "spec": job.spec.to_dict(),
                "priority": job.priority,
                "points": list(job.points),
                "params": [dict(p) for p in job.params],
                "keys": list(job.keys),
                "created": job.created,
            }
        )

    def record_point(
        self, job_id: str, index: int, status: str, cached: bool
    ) -> None:
        """Journal one resolved point."""
        self.append(
            {
                "event": "point",
                "job": job_id,
                "index": index,
                "status": status,
                "cached": cached,
            }
        )

    def record_retry(
        self, job_id: str, attempt: int, points: Sequence[int]
    ) -> None:
        """Journal one retry round: the points whose error artifacts
        were discarded for re-dispatch."""
        self.append(
            {
                "event": "retry",
                "job": job_id,
                "attempt": attempt,
                "points": list(points),
            }
        )

    def record_state(
        self, job_id: str, state: JobState, error: "str | None" = None
    ) -> None:
        """Journal a state transition."""
        self.append(
            {"event": "state", "job": job_id, "state": state.value, "error": error}
        )

    def records(self) -> Iterator[dict]:
        """Yield every well-formed record, oldest first.

        A torn final line (crash mid-append) is skipped, not fatal.
        """
        if not self.path.is_file():
            return
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "event" in record:
                    yield record

    def replay(self) -> dict[str, Job]:
        """Reconstruct the last known state of every journaled job.

        Artifacts are not journaled — completed points carry their
        journal status and are re-resolved from the content-addressed
        store by key when a result is requested.  Returned jobs are in
        submission order.
        """
        jobs: dict[str, Job] = {}
        statuses: dict[str, dict[int, tuple[str, bool]]] = {}
        for record in self.records():
            job_id = str(record.get("job", ""))
            event = record["event"]
            if event == "submit":
                try:
                    spec = JobSpec.from_dict(record.get("spec", {}))
                except ReproError:
                    continue
                points = [str(p) for p in record.get("points", [])]
                jobs[job_id] = Job(
                    id=job_id,
                    spec=spec,
                    priority=int(record.get("priority", 0) or 0),
                    created=float(record.get("created", 0.0) or 0.0),
                    points=points,
                    params=[dict(p) for p in record.get("params", [])],
                    keys=[str(k) for k in record.get("keys", [])],
                    artifacts=[None] * len(points),
                )
                statuses[job_id] = {}
            elif event == "point" and job_id in jobs:
                statuses[job_id][int(record["index"])] = (
                    str(record.get("status", "")),
                    bool(record.get("cached", False)),
                )
            elif event == "retry" and job_id in jobs:
                jobs[job_id].retries = int(record.get("attempt", 0) or 0)
                # Retried points are back in flight: their previous
                # (error) completions no longer count as resolved.
                for index in record.get("points", []):
                    statuses[job_id].pop(int(index), None)
            elif event == "state" and job_id in jobs:
                job = jobs[job_id]
                try:
                    state = JobState(str(record.get("state", "")))
                except ValueError:
                    continue
                # Replay trusts the journal's ordering; transitions were
                # validated when first recorded.
                job.state = state
                job.error = record.get("error")  # type: ignore[assignment]
                if state.terminal:
                    job.finished = job.finished or job.created
        for job_id, job in jobs.items():
            resolved = statuses.get(job_id, {})
            job.cached_points = sum(cached for _, cached in resolved.values())
            job.replayed_statuses = {
                index: status for index, (status, _) in resolved.items()
            }
        return jobs
