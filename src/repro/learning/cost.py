"""The paper's policy-search cost function (Section 4.2).

From a discrete-time rollout of the closed loop:

.. math::

    J = \\sum_{k=0}^{N} \\left(100\\, d_{err,k}^2 + 10^5\\, \\theta_{err,k}^2
        + 100\\, u_k^2\\right)
        + 10^3\\, \\lVert (x_{end}, y_{end}) - (x_{v,N}, y_{v,N}) \\rVert^2

The weights are the published values; :class:`CostWeights` makes them
explicit and overridable for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dynamics import DubinsCar, PathFollowingLoop, PiecewiseLinearPath, StraightLinePath
from ..errors import TrainingError
from ..nn import FeedforwardNetwork

__all__ = ["CostWeights", "RolloutResult", "rollout", "tracking_cost"]


@dataclass(frozen=True)
class CostWeights:
    """Quadratic penalty weights of the paper's cost ``J``."""

    distance: float = 100.0
    angle: float = 1.0e5
    control: float = 100.0
    terminal: float = 1.0e3


@dataclass
class RolloutResult:
    """Discrete-time rollout record used for cost evaluation and plots."""

    states: np.ndarray  # (N+1, 3) vehicle poses
    d_errs: np.ndarray  # (N+1,)
    theta_errs: np.ndarray  # (N+1,)
    controls: np.ndarray  # (N+1,)
    cost: float


def rollout(
    network: FeedforwardNetwork,
    path: "PiecewiseLinearPath | StraightLinePath",
    initial_state: Sequence[float],
    steps: int,
    dt: float,
    speed: float = 1.0,
    weights: CostWeights | None = None,
    blowup_norm: float = 1e6,
) -> RolloutResult:
    """Discrete-time (forward Euler) rollout with the paper's cost.

    The paper trains against a discrete-time simulation; Euler with the
    training step is the canonical choice and is what we use.  Diverged
    rollouts (non-finite or huge states) are truncated and charged the
    accumulated cost plus the terminal penalty from the last valid pose,
    so CMA-ES can still rank bad controllers.
    """
    if steps < 1:
        raise TrainingError("steps must be >= 1")
    if dt <= 0:
        raise TrainingError("dt must be positive")
    weights = weights or CostWeights()
    car = DubinsCar(speed=speed)
    loop = PathFollowingLoop(car, path, network.forward)

    state = np.asarray(initial_state, dtype=float).copy()
    if state.shape != (3,):
        raise TrainingError("initial state must be (xv, yv, thetav)")

    poses = [state.copy()]
    d_errs = []
    theta_errs = []
    controls = []
    cost = 0.0
    for k in range(steps + 1):
        errors = loop.errors(state)
        u = loop.control(state)
        d_errs.append(errors.d_err)
        theta_errs.append(errors.theta_err)
        controls.append(u)
        cost += (
            weights.distance * errors.d_err**2
            + weights.angle * errors.theta_err**2
            + weights.control * u**2
        )
        if k == steps:
            break
        state = state + dt * car.derivatives(state, u)
        if not np.all(np.isfinite(state)) or np.linalg.norm(state[:2]) > blowup_norm:
            break
        poses.append(state.copy())
    poses_arr = np.array(poses)

    end = path.end_point
    final_pos = poses_arr[-1, :2]
    cost += weights.terminal * float(np.sum((end - final_pos) ** 2))
    return RolloutResult(
        states=poses_arr,
        d_errs=np.array(d_errs[: len(poses_arr)]),
        theta_errs=np.array(theta_errs[: len(poses_arr)]),
        controls=np.array(controls[: len(poses_arr)]),
        cost=float(cost),
    )


def tracking_cost(
    network: FeedforwardNetwork,
    path: "PiecewiseLinearPath | StraightLinePath",
    initial_state: Sequence[float],
    steps: int,
    dt: float,
    speed: float = 1.0,
    weights: CostWeights | None = None,
) -> float:
    """The scalar cost ``J`` of one rollout (CMA-ES objective)."""
    return rollout(
        network, path, initial_state, steps, dt, speed=speed, weights=weights
    ).cost
