"""Union-of-regions and DNF query combination tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import var
from repro.intervals import Box
from repro.smt import (
    Atom,
    IcpConfig,
    Or,
    Subproblem,
    Verdict,
    check_exists,
    check_exists_on_boxes,
    ge,
    le,
)

X, Y = var("x"), var("y")
NAMES = ["x", "y"]


class TestCheckExistsOnBoxes:
    def test_empty_union_unsat(self):
        result = check_exists_on_boxes([], NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_all_unsat(self):
        sub1 = Subproblem([ge(X, 10.0)], Box.from_bounds([0, 0], [1, 1]))
        sub2 = Subproblem([ge(X, 10.0)], Box.from_bounds([2, 2], [3, 3]))
        result = check_exists_on_boxes([sub1, sub2], NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_second_region_sat(self):
        sub1 = Subproblem([ge(X, 2.5)], Box.from_bounds([0, 0], [1, 1]))
        sub2 = Subproblem([ge(X, 2.5)], Box.from_bounds([2, 0], [3, 1]))
        result = check_exists_on_boxes([sub1, sub2], NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness[0] >= 2.5 - 1e-3

    def test_stats_merged_across_regions(self):
        subs = [
            Subproblem([le(X * X + Y * Y, -1.0)], Box.from_bounds([i, 0], [i + 1, 1]))
            for i in range(4)
        ]
        result = check_exists_on_boxes(subs, NAMES)
        assert result.verdict is Verdict.UNSAT
        assert result.stats.boxes_processed >= 4

    def test_unknown_propagates(self):
        from repro.smt import eq

        tight = Subproblem(
            [eq(X - Y, 0.0)], Box.from_bounds([-1, -1], [1, 1])
        )
        config = IcpConfig(delta=1e-12, max_boxes=2, use_contractor=False)
        result = check_exists_on_boxes([tight], NAMES, config)
        assert result.verdict is Verdict.UNKNOWN


class TestCheckExists:
    def test_single_region_single_atom(self):
        box = Box.from_bounds([-1, -1], [1, 1])
        result = check_exists(ge(X, 0.5), box, NAMES)
        assert result.verdict is Verdict.DELTA_SAT

    def test_disjunction_case_split(self):
        box = Box.from_bounds([-1, -1], [1, 1])
        formula = Or([Atom(ge(X, 0.9)), Atom(le(X, -0.9))])
        result = check_exists(formula, box, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert abs(result.witness[0]) >= 0.9 - 1e-3

    def test_disjunction_all_unsat(self):
        box = Box.from_bounds([-0.5, -0.5], [0.5, 0.5])
        formula = Or([Atom(ge(X, 0.9)), Atom(le(X, -0.9))])
        result = check_exists(formula, box, NAMES)
        assert result.verdict is Verdict.UNSAT

    def test_multiple_regions(self):
        regions = [
            Box.from_bounds([-1, -1], [0, 0]),
            Box.from_bounds([0, 0], [1, 1]),
        ]
        result = check_exists(ge(X + Y, 1.8), regions, NAMES)
        assert result.verdict is Verdict.DELTA_SAT
        assert result.witness is not None
        assert result.witness[0] + result.witness[1] >= 1.8 - 1e-2
