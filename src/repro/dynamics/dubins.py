"""Dubins car kinematics (the paper's vehicle model, Section 4.1.1).

State ``(x_v, y_v, theta_v)`` with the clockwise-from-+y orientation
convention of Figure 3a:

.. math::

    \\dot x_v = V \\sin\\theta_v, \\qquad
    \\dot y_v = V \\cos\\theta_v, \\qquad
    \\dot\\theta_v = u,

where ``u`` is the steering (turn-rate) control and the speed ``V`` is
constant.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..errors import ReproError
from ..expr import Expr, cos, sin, var
from ..sim import Simulator, Trace
from .path import PathErrors, PiecewiseLinearPath, StraightLinePath

__all__ = ["DubinsCar", "PathFollowingLoop"]


class DubinsCar:
    """Constant-speed Dubins car."""

    #: state variable names, fixing the coordinate order
    STATE_NAMES = ("xv", "yv", "thetav")

    def __init__(self, speed: float = 1.0):
        if speed <= 0.0:
            raise ReproError(f"speed must be positive, got {speed}")
        self.speed = float(speed)

    def derivatives(self, state: Sequence[float], u: float) -> np.ndarray:
        """``[x_v', y_v', theta_v']`` for steering input ``u``."""
        state = np.asarray(state, dtype=float)
        if state.shape != (3,):
            raise ReproError(f"Dubins state must be (xv, yv, thetav), got {state.shape}")
        theta = state[2]
        return np.array(
            [self.speed * math.sin(theta), self.speed * math.cos(theta), float(u)]
        )

    def symbolic_derivatives(self, u: "Expr | float") -> list[Expr]:
        """Symbolic vector field over variables ``xv, yv, thetav``."""
        theta = var("thetav")
        return [self.speed * sin(theta), self.speed * cos(theta), _as_expr(u)]

    def __repr__(self) -> str:
        return f"DubinsCar(speed={self.speed:g})"


def _as_expr(u: "Expr | float") -> Expr:
    from ..expr import as_expr

    return as_expr(u)


class PathFollowingLoop:
    """Full-state closed loop: car + target path + error-fed controller.

    This is the system of Figure 2: at each state the preprocessing block
    computes ``(d_err, theta_err)`` against the target path, feeds them to
    the controller, and the resulting steering drives the car.  Used for
    training (Figure 4) and for validating controllers on arbitrary
    paths; the *verification* model is the reduced error dynamics in
    :mod:`repro.dynamics.errors_dynamics`.
    """

    def __init__(
        self,
        car: DubinsCar,
        path: "StraightLinePath | PiecewiseLinearPath",
        controller: Callable[[np.ndarray], "float | np.ndarray"],
    ):
        self.car = car
        self.path = path
        self.controller = controller

    def errors(self, state: Sequence[float]) -> PathErrors:
        """Path errors at a full vehicle state."""
        state = np.asarray(state, dtype=float)
        return self.path.errors(state[:2], state[2])

    def control(self, state: Sequence[float]) -> float:
        """Steering command at a full vehicle state."""
        errors = self.errors(state)
        u = self.controller(errors.as_vector())
        return float(np.atleast_1d(u)[0])

    def vector_field(self, state: np.ndarray) -> np.ndarray:
        """Closed-loop ``f(state)`` for simulation."""
        return self.car.derivatives(state, self.control(state))

    def simulate(
        self,
        initial_state: Sequence[float],
        duration: float,
        dt: float = 0.02,
        method: str = "rk4",
    ) -> Trace:
        """Simulate the closed loop, recording steering as the trace input."""
        sim = Simulator(
            self.vector_field,
            input_function=lambda s: np.array([self.control(s)]),
            method=method,
        )
        return sim.simulate(initial_state, duration, dt)

    def __repr__(self) -> str:
        return f"<PathFollowingLoop {self.car!r} on {self.path!r}>"
