"""HC4-revise: forward-backward interval constraint propagation.

Given an atomic constraint ``g(x) ⋈ 0`` and a box, the contractor
computes a (possibly much smaller) sub-box guaranteed to contain every
solution of the constraint inside the original box — or proves there is
none.  This is the classic HC4 algorithm used inside dReal/IBEX:

1. *Forward*: evaluate every DAG node over the box, bottom-up.
2. *Project*: intersect the root's interval with the relation's
   satisfying set (e.g. ``[-inf, 0]`` for ``<= 0``).
3. *Backward*: walk top-down, inverting each operation to narrow the
   children; variable occurrences are intersected across all uses.

Backward rules for non-invertible ops (sin, cos, tan, min, max) fall
back to the identity, which is sound — contraction strength only affects
performance, never correctness.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import EmptyIntervalError
from ..expr.node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)
from ..intervals import Box, Interval
from ..intervals.rounding import PAD as _PAD
from .constraint import Constraint, Relation

__all__ = ["hc4_revise", "contract_fixpoint"]

_INF = math.inf
_ENTIRE = Interval.entire()


def hc4_revise(
    constraint: Constraint, box: Box, variable_names: Sequence[str]
) -> Box | None:
    """One forward-backward pass; returns the contracted box or None if empty."""
    env = dict(zip(variable_names, box.intervals))
    order = postorder(constraint.expr)

    # Forward pass: interval value of every node.
    forward: dict[int, Interval] = {}
    for node in order:
        forward[id(node)] = _forward(node, forward, env)

    # Project the root onto the relation's satisfying set.
    root_target = _relation_target(constraint.relation)
    root_val = forward[id(constraint.expr)]
    projected = root_val.try_intersection(root_target)
    if projected is None:
        return None

    # Backward pass: refine each node's target, children after parents.
    targets: dict[int, Interval] = {id(node): forward[id(node)] for node in order}
    targets[id(constraint.expr)] = projected
    try:
        for node in reversed(order):
            _backward(node, targets, forward)
    except EmptyIntervalError:
        return None

    # Read back variable intervals (intersected across occurrences already,
    # because all occurrences share one DAG node per name only if the
    # builder interned them; handle duplicates defensively).
    var_targets: dict[str, Interval] = {}
    for node in order:
        if isinstance(node, Var):
            tgt = targets[id(node)]
            if node.name in var_targets:
                got = var_targets[node.name].try_intersection(tgt)
                if got is None:
                    return None
                var_targets[node.name] = got
            else:
                var_targets[node.name] = tgt

    parts = []
    for name, ival in zip(variable_names, box.intervals):
        tgt = var_targets.get(name)
        if tgt is None:
            parts.append(ival)
            continue
        narrowed = ival.try_intersection(tgt)
        if narrowed is None:
            return None
        parts.append(narrowed)
    return Box(parts)


def contract_fixpoint(
    constraints: Sequence[Constraint],
    box: Box,
    variable_names: Sequence[str],
    max_rounds: int = 4,
    min_shrink: float = 0.01,
) -> Box | None:
    """Round-robin HC4 over all constraints until (near) fixpoint.

    Stops when a full round shrinks the box volume by less than
    ``min_shrink`` relatively, or after ``max_rounds`` rounds.  Returns
    None when any constraint proves the box empty.
    """
    current = box
    for _ in range(max_rounds):
        before = current.widths().sum()
        for constraint in constraints:
            contracted = hc4_revise(constraint, current, variable_names)
            if contracted is None:
                return None
            current = contracted
        after = current.widths().sum()
        if before <= 0.0 or (before - after) / max(before, 1e-300) < min_shrink:
            break
    return current


# ----------------------------------------------------------------------
# Forward semantics (scalar Interval)
# ----------------------------------------------------------------------
def _forward(node: Expr, forward: dict[int, Interval], env: dict[str, Interval]) -> Interval:
    if isinstance(node, Const):
        return Interval.point(node.value)
    if isinstance(node, Var):
        return env.get(node.name, _ENTIRE)
    if isinstance(node, Add):
        return forward[id(node.left)] + forward[id(node.right)]
    if isinstance(node, Sub):
        return forward[id(node.left)] - forward[id(node.right)]
    if isinstance(node, Mul):
        return forward[id(node.left)] * forward[id(node.right)]
    if isinstance(node, Div):
        return forward[id(node.left)] / forward[id(node.right)]
    if isinstance(node, Neg):
        return -forward[id(node.child)]
    if isinstance(node, Pow):
        return forward[id(node.base)] ** node.exponent
    if isinstance(node, Min2):
        return forward[id(node.left)].min_with(forward[id(node.right)])
    if isinstance(node, Max2):
        return forward[id(node.left)].max_with(forward[id(node.right)])
    assert isinstance(node, Unary)
    child = forward[id(node.child)]
    if node.op == "sin":
        return child.sin()
    if node.op == "cos":
        return child.cos()
    if node.op == "tan":
        return child.tan()
    if node.op == "tanh":
        return child.tanh()
    if node.op == "sigmoid":
        return child.sigmoid()
    if node.op == "exp":
        return child.exp()
    if node.op == "log":
        return child.log() if child.hi > 0 else _raise_empty()
    if node.op == "sqrt":
        return child.sqrt() if child.hi >= 0 else _raise_empty()
    if node.op == "abs":
        return child.abs()
    return child.atan()  # "atan"


def _raise_empty() -> Interval:
    raise EmptyIntervalError("forward evaluation left the function domain")


def _relation_target(relation: Relation) -> Interval:
    if relation in (Relation.LE, Relation.LT):
        return Interval(-_INF, 0.0)
    if relation in (Relation.GE, Relation.GT):
        return Interval(0.0, _INF)
    return Interval.point(0.0)


# ----------------------------------------------------------------------
# Backward (inverse) semantics
# ----------------------------------------------------------------------
def _tighten(targets: dict[int, Interval], node: Expr, candidate: Interval) -> None:
    current = targets[id(node)]
    narrowed = current.try_intersection(candidate)
    if narrowed is None:
        raise EmptyIntervalError("backward contraction emptied a node")
    targets[id(node)] = narrowed


def _backward(node: Expr, targets: dict[int, Interval], forward: dict[int, Interval]) -> None:
    target = targets[id(node)]
    if isinstance(node, (Const, Var)):
        if isinstance(node, Const) and not target.contains(node.value):
            raise EmptyIntervalError("constant excluded by contraction")
        return
    if isinstance(node, Add):
        left_f = forward[id(node.left)]
        right_f = forward[id(node.right)]
        _tighten(targets, node.left, target - right_f)
        _tighten(targets, node.right, target - left_f)
        return
    if isinstance(node, Sub):
        left_f = forward[id(node.left)]
        right_f = forward[id(node.right)]
        _tighten(targets, node.left, target + right_f)
        _tighten(targets, node.right, left_f - target)
        return
    if isinstance(node, Mul):
        left_f = forward[id(node.left)]
        right_f = forward[id(node.right)]
        _tighten(targets, node.left, _hull_extended_div(target, right_f))
        _tighten(targets, node.right, _hull_extended_div(target, left_f))
        return
    if isinstance(node, Div):
        num_f = forward[id(node.left)]
        den_f = forward[id(node.right)]
        _tighten(targets, node.left, target * den_f)
        _tighten(targets, node.right, _hull_extended_div(num_f, target))
        return
    if isinstance(node, Neg):
        _tighten(targets, node.child, -target)
        return
    if isinstance(node, Pow):
        _backward_pow(node, targets, forward, target)
        return
    if isinstance(node, Min2):
        # min(l, r) >= target.lo forces both operands >= target.lo.
        bound = Interval(target.lo, _INF)
        _tighten(targets, node.left, bound)
        _tighten(targets, node.right, bound)
        return
    if isinstance(node, Max2):
        bound = Interval(-_INF, target.hi)
        _tighten(targets, node.left, bound)
        _tighten(targets, node.right, bound)
        return
    assert isinstance(node, Unary)
    inverse = _inverse_unary(node.op, target)
    if inverse is not None:
        _tighten(targets, node.child, inverse)


def _hull_extended_div(num: Interval, den: Interval) -> Interval:
    pieces = num.extended_divide(den)
    if not pieces:
        raise EmptyIntervalError("extended division produced the empty set")
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.hull(piece)
    return result


def _backward_pow(
    node: Pow, targets: dict[int, Interval], forward: dict[int, Interval], target: Interval
) -> None:
    n = node.exponent
    child_f = forward[id(node.base)]
    if n == 0:
        if not target.contains(1.0):
            raise EmptyIntervalError("x^0 contracted away from 1")
        return
    if n < 0:
        # x^-n = 1 / x^n: invert through the reciprocal, then recurse shape.
        recip = _hull_extended_div(Interval.point(1.0), target)
        target = recip
        n = -n
    if n % 2 == 1:
        root = _odd_root(target, n)
        _tighten(targets, node.base, root)
        return
    # Even power: image is nonnegative.
    clipped = target.try_intersection(Interval.nonnegative())
    if clipped is None:
        raise EmptyIntervalError("even power forced negative")
    hi_root = clipped.hi ** (1.0 / n) if clipped.hi < _INF else _INF
    lo_root = clipped.lo ** (1.0 / n)
    hi_root = _pad_up(hi_root)
    lo_root = _pad_down(lo_root)
    if child_f.lo >= 0.0:
        candidate = Interval(max(lo_root, 0.0), hi_root)
    elif child_f.hi <= 0.0:
        candidate = Interval(-hi_root, min(-lo_root, 0.0))
    else:
        candidate = Interval(-hi_root, hi_root)
    _tighten(targets, node.base, candidate)


def _odd_root(ival: Interval, n: int) -> Interval:
    def root(v: float) -> float:
        if v == _INF or v == -_INF:
            return v
        return math.copysign(abs(v) ** (1.0 / n), v)

    return Interval(_pad_down(root(ival.lo)), _pad_up(root(ival.hi)))


def _pad_down(v: float) -> float:
    if v == -_INF or v == _INF:
        return v
    return v - _PAD * (1.0 + abs(v))


def _pad_up(v: float) -> float:
    if v == -_INF or v == _INF:
        return v
    return v + _PAD * (1.0 + abs(v))


def _inverse_unary(op: str, target: Interval) -> Interval | None:
    """Preimage superset of ``target`` under ``op``; None means skip."""
    if op == "tanh":
        if target.hi < -1.0 or target.lo > 1.0:
            raise EmptyIntervalError("tanh target outside [-1, 1]")
        lo = -_INF if target.lo <= -1.0 else _pad_down(math.atanh(target.lo))
        hi = _INF if target.hi >= 1.0 else _pad_up(math.atanh(target.hi))
        return Interval(lo, hi)
    if op == "sigmoid":
        if target.hi < 0.0 or target.lo > 1.0:
            raise EmptyIntervalError("sigmoid target outside [0, 1]")
        lo = -_INF if target.lo <= 0.0 else _pad_down(_logit(target.lo))
        hi = _INF if target.hi >= 1.0 else _pad_up(_logit(target.hi))
        return Interval(lo, hi)
    if op == "exp":
        if target.hi <= 0.0:
            raise EmptyIntervalError("exp target is non-positive")
        lo = -_INF if target.lo <= 0.0 else _pad_down(math.log(target.lo))
        hi = _pad_up(math.log(target.hi)) if target.hi < _INF else _INF
        return Interval(lo, hi)
    if op == "log":
        lo = 0.0 if target.lo == -_INF else _pad_down(math.exp(target.lo))
        hi = _INF if target.hi == _INF else _pad_up(math.exp(target.hi))
        return Interval(max(lo, 0.0), hi)
    if op == "sqrt":
        clipped = target.try_intersection(Interval.nonnegative())
        if clipped is None:
            raise EmptyIntervalError("sqrt target is negative")
        return clipped.sq().inflate(relative=_PAD)
    if op == "abs":
        clipped = target.try_intersection(Interval.nonnegative())
        if clipped is None:
            raise EmptyIntervalError("abs target is negative")
        return Interval(-clipped.hi, clipped.hi)
    if op == "atan":
        half_pi = math.pi / 2.0
        clipped = target.try_intersection(Interval(-half_pi, half_pi))
        if clipped is None:
            raise EmptyIntervalError("atan target outside (-pi/2, pi/2)")
        lo = -_INF if clipped.lo <= -half_pi + 1e-12 else _pad_down(math.tan(clipped.lo))
        hi = _INF if clipped.hi >= half_pi - 1e-12 else _pad_up(math.tan(clipped.hi))
        return Interval(lo, hi)
    # sin / cos / tan: periodic inverse skipped (identity is sound).
    return None


def _logit(p: float) -> float:
    return math.log(p / (1.0 - p))
