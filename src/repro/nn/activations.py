"""Activation functions with three coherent semantics.

Each activation provides:

* ``numeric`` — vectorized numpy forward evaluation;
* ``symbolic`` — an :class:`~repro.expr.Expr` builder (what the SMT
  queries see);
* ``interval`` — sound component-wise image bounds on ``(lo, hi)``
  ndarray pairs (the fast NN interval pass).

The paper's case study uses MATLAB's ``tansig``, which is exactly
``tanh``; both names resolve to the same object here.  The verification
method itself supports any Type-2 computable activation, so sigmoid
(``logsig``), ReLU (``poslin``), and identity (``purelin``) are included
and exercised in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ReproError
from ..expr import Expr, maximum, sigmoid as sigmoid_expr, tanh as tanh_expr
from ..intervals.functions import (
    interval_relu_bounds,
    interval_sigmoid_bounds,
    interval_tanh_bounds,
)

__all__ = ["Activation", "get_activation", "available_activations", "TANSIG", "LOGSIG", "RELU", "LINEAR"]


@dataclass(frozen=True)
class Activation:
    """Bundle of the three semantics of one activation function."""

    name: str
    numeric: Callable[[np.ndarray], np.ndarray]
    symbolic: Callable[[Expr], Expr]
    interval: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]
    #: True when the function is smooth (required for barrier gradients).
    smooth: bool = True

    def __repr__(self) -> str:
        return f"Activation({self.name!r})"


def _sigmoid_numeric(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def _identity_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return lo, hi


TANSIG = Activation(
    name="tansig",
    numeric=np.tanh,
    symbolic=tanh_expr,
    interval=interval_tanh_bounds,
)

LOGSIG = Activation(
    name="logsig",
    numeric=_sigmoid_numeric,
    symbolic=sigmoid_expr,
    interval=interval_sigmoid_bounds,
)

RELU = Activation(
    name="relu",
    numeric=lambda x: np.maximum(x, 0.0),
    symbolic=lambda e: maximum(e, 0.0),
    interval=interval_relu_bounds,
    smooth=False,
)

LINEAR = Activation(
    name="linear",
    numeric=lambda x: x,
    symbolic=lambda e: e,
    interval=_identity_bounds,
)

_REGISTRY: dict[str, Activation] = {
    "tansig": TANSIG,
    "tanh": TANSIG,
    "logsig": LOGSIG,
    "sigmoid": LOGSIG,
    "relu": RELU,
    "poslin": RELU,
    "linear": LINEAR,
    "purelin": LINEAR,
    "identity": LINEAR,
}


def get_activation(name: "str | Activation") -> Activation:
    """Look up an activation by (MATLAB or common) name."""
    if isinstance(name, Activation):
        return name
    key = name.lower()
    if key not in _REGISTRY:
        raise ReproError(
            f"unknown activation {name!r}; available: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]


def available_activations() -> list[str]:
    """Canonical activation names."""
    return sorted({act.name for act in _REGISTRY.values()})
