"""Bounded-time interval reachability (flowpipes).

The comparison baseline to the barrier method: validated Euler
enclosures propagate the initial box through time, proving safety for a
finite horizon.  See :mod:`repro.reach.flowpipe` for the contrast with
the paper's unbounded-time certificates.
"""

from .flowpipe import ReachConfig, ReachResult, check_bounded_safety, reach_tube

__all__ = ["ReachConfig", "ReachResult", "check_bounded_safety", "reach_tube"]
