"""Corpus benchmark: fuzz throughput and per-invariant cost split.

Times one deterministic fuzz rotation across the fast (non-stress)
corpus families on the full engine matrix, then isolates the cost of
the twin tier by re-running without it.  The headline is points/min —
the number that decides how many samples a CI smoke run can afford.

Writes ``benchmarks/results/BENCH_corpus.json``.  Acceptance bars: the
rotation holds every invariant, and throughput stays above
``MIN_POINTS_PER_MINUTE``.
"""

from __future__ import annotations

import json
import time

from repro.corpus import fuzz

#: one point per fast family, full engine matrix
FAMILIES = (
    "linear",
    "ackermann",
    "unicycle",
    "vanderpol",
    "double-integrator",
    "dubins-nn",
)
SEED = 0
MIN_POINTS_PER_MINUTE = 4.0


def test_fuzz_throughput(emit, results_dir):
    t0 = time.perf_counter()
    with_twins = fuzz(samples=len(FAMILIES), seed=SEED, families=FAMILIES)
    twins_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    without_twins = fuzz(
        samples=len(FAMILIES), seed=SEED, families=FAMILIES, twins=False
    )
    base_s = time.perf_counter() - t0

    assert with_twins.ok, with_twins.format()
    assert without_twins.ok, without_twins.format()

    points = len(FAMILIES)
    rate = points / twins_s * 60.0
    twin_share = max(0.0, twins_s - base_s) / twins_s

    payload = {
        "benchmark": "corpus fuzz throughput + twin-tier cost",
        "families": list(FAMILIES),
        "points": points,
        "seed": SEED,
        "full": {
            "wall_seconds": round(twins_s, 4),
            "points_per_minute": round(rate, 2),
        },
        "no_twins": {
            "wall_seconds": round(base_s, 4),
            "points_per_minute": round(points / base_s * 60.0, 2),
        },
        "twin_tier_share": round(twin_share, 3),
        "min_points_per_minute_bar": MIN_POINTS_PER_MINUTE,
    }
    (results_dir / "BENCH_corpus.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        f"corpus fuzz, {points} points (one per fast family), full matrix:",
        f"  with twins     {twins_s:8.2f}s   {rate:8.1f} points/min",
        f"  without twins  {base_s:8.2f}s   "
        f"{points / base_s * 60.0:8.1f} points/min",
        f"  twin-tier share of wall clock: {twin_share:.0%}",
    ]
    emit("corpus_micro", "\n".join(lines))

    assert rate >= MIN_POINTS_PER_MINUTE, (
        f"fuzz throughput {rate:.1f} points/min under the "
        f"{MIN_POINTS_PER_MINUTE} bar"
    )
