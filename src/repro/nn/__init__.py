"""Feedforward neural networks with numeric, symbolic, and interval semantics."""

from .activations import (
    LINEAR,
    LOGSIG,
    RELU,
    TANSIG,
    Activation,
    available_activations,
    get_activation,
)
from .network import FeedforwardNetwork, Layer, controller_network
from .serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

__all__ = [
    "Activation",
    "FeedforwardNetwork",
    "LINEAR",
    "LOGSIG",
    "Layer",
    "RELU",
    "TANSIG",
    "available_activations",
    "controller_network",
    "get_activation",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "save_network",
]
