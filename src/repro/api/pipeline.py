"""The Figure-1 procedure as a named-stage pipeline.

:class:`VerificationPipeline` is a thin orchestrator over
:func:`repro.barrier.verify_system`: the numerical procedure is exactly
the paper's, but every named stage (``seed-sim``, ``lp-fit``,
``smt-check``, ``level-set``) is observable — per-stage wall timings are
collected into the result, and a progress callback fires at each stage
boundary, so long verifications can report liveness and batch drivers
can attribute cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..barrier import (
    PIPELINE_STAGES,
    StageEvent,
    SynthesisConfig,
    SynthesisReport,
    VerificationProblem,
    verify_system,
)
from ..barrier.templates import GeneratorTemplate

__all__ = ["PIPELINE_STAGES", "PipelineRun", "StageEvent", "VerificationPipeline"]

#: progress callback: invoked with every stage-boundary event
ProgressCallback = Callable[[StageEvent], None]


@dataclass
class PipelineRun:
    """Result of one pipeline execution: report + stage accounting."""

    report: SynthesisReport
    #: every stage event observed, in order
    events: list[StageEvent] = field(default_factory=list)

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Cumulative wall seconds per stage name (from the report)."""
        return dict(self.report.stage_seconds)

    @property
    def verified(self) -> bool:
        """True when the run proved a certificate."""
        return self.report.verified

    @property
    def total_seconds(self) -> float:
        """Wall clock of the whole procedure."""
        return self.report.total_seconds

    @property
    def untracked_seconds(self) -> float:
        """Wall time outside any named stage (bookkeeping overhead)."""
        return max(0.0, self.total_seconds - sum(self.stage_seconds.values()))


class VerificationPipeline:
    """Hookable front end to the paper's synthesis procedure.

    Parameters
    ----------
    template:
        Generator template (default: quadratic in the system dimension).
    config:
        Synthesis knobs; defaults to the paper's.
    progress:
        Optional callback receiving a :class:`StageEvent` at the start
        and end of every stage.
    engine:
        Solver stack: a registered engine name or
        :class:`~repro.engine.Engine`; None defers to ``config.engine``
        (``"native"`` by default).
    """

    #: stage names in execution order
    stages = PIPELINE_STAGES

    def __init__(
        self,
        template: GeneratorTemplate | None = None,
        config: SynthesisConfig | None = None,
        progress: ProgressCallback | None = None,
        engine: "str | object | None" = None,
    ):
        self.template = template
        self.config = config
        self.progress = progress
        self.engine = engine

    def run(self, problem: VerificationProblem) -> PipelineRun:
        """Execute all stages on a problem and return the traced run."""
        events: list[StageEvent] = []

        def observe(event: StageEvent) -> None:
            events.append(event)
            if self.progress is not None:
                self.progress(event)

        report = verify_system(
            problem,
            template=self.template,
            config=self.config,
            observer=observe,
            engine=self.engine,
        )
        return PipelineRun(report=report, events=events)
