"""Backend equivalence: vectorized vs native sim, parallel vs serial SMT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import QuadraticTemplate, Rectangle, fit_generator
from repro.dynamics import error_dynamics_system, stable_linear_system
from repro.engine import (
    NativeSimBackend,
    ParallelSmtBackend,
    SerialSmtBackend,
    VectorizedSimBackend,
)
from repro.intervals import Box, Interval
from repro.learning import proportional_controller_network
from repro.expr import var
from repro.sim import sample_uniform
from repro.smt import IcpConfig, Subproblem, Verdict, ge, le


@pytest.fixture(scope="module")
def dubins_system():
    return error_dynamics_system(proportional_controller_network(6))


@pytest.fixture(scope="module")
def initial_states():
    rng = np.random.default_rng(42)
    box = Box([Interval(-2.0, 2.0), Interval(-1.0, 1.0)])
    return sample_uniform(box, 12, rng)


class TestVectorizedSim:
    def _assert_traces_match(self, native, vectorized, atol=1e-9):
        assert len(native) == len(vectorized)
        for a, b in zip(native, vectorized):
            assert len(a) == len(b)
            np.testing.assert_allclose(a.times, b.times, atol=1e-12)
            np.testing.assert_allclose(a.states, b.states, atol=atol)
            assert a.truncated == b.truncated

    def test_matches_native_rk4(self, dubins_system, initial_states):
        native = NativeSimBackend().simulate(
            dubins_system, initial_states, 6.0, 0.05
        )
        vectorized = VectorizedSimBackend().simulate(
            dubins_system, initial_states, 6.0, 0.05
        )
        self._assert_traces_match(native, vectorized)

    def test_matches_native_euler(self, dubins_system, initial_states):
        native = NativeSimBackend().simulate(
            dubins_system, initial_states, 3.0, 0.1, method="euler"
        )
        vectorized = VectorizedSimBackend().simulate(
            dubins_system, initial_states, 3.0, 0.1, method="euler"
        )
        self._assert_traces_match(native, vectorized)

    def test_stop_condition_truncates_identically(
        self, dubins_system, initial_states
    ):
        rect = Rectangle([-1.5, -0.8], [1.5, 0.8])

        def stop(state):
            return not rect.contains(state)

        native = NativeSimBackend().simulate(
            dubins_system, 2.0 * initial_states, 6.0, 0.05, stop_condition=stop
        )
        vectorized = VectorizedSimBackend().simulate(
            dubins_system, 2.0 * initial_states, 6.0, 0.05, stop_condition=stop
        )
        self._assert_traces_match(native, vectorized, atol=1e-8)
        assert any(t.truncated for t in native)

    def test_partial_final_step(self, dubins_system):
        x0 = np.array([[0.3, 0.1]])
        (trace,) = VectorizedSimBackend().simulate(dubins_system, x0, 0.52, 0.2)
        np.testing.assert_allclose(trace.times, [0.0, 0.2, 0.4, 0.52])

    def test_zero_duration(self, dubins_system):
        (trace,) = VectorizedSimBackend().simulate(
            dubins_system, np.array([[0.3, 0.1]]), 0.0, 0.1
        )
        assert len(trace) == 1 and not trace.truncated

    def test_blowup_guard(self):
        # x' = x^2 from x0 = 5 escapes to +inf in finite time.
        from repro.dynamics import ContinuousSystem

        system = ContinuousSystem(["x"], [var("x") * var("x")], name="blowup")
        native = NativeSimBackend().simulate(
            system, np.array([[5.0]]), 10.0, 0.01
        )
        vectorized = VectorizedSimBackend().simulate(
            system, np.array([[5.0]]), 10.0, 0.01
        )
        assert native[0].truncated and vectorized[0].truncated
        assert len(native[0]) == len(vectorized[0])

    def test_rk45_falls_back_to_native(self, dubins_system):
        x0 = np.array([[0.3, 0.1]])
        native = NativeSimBackend().simulate(
            dubins_system, x0, 1.0, 0.05, method="rk45"
        )
        vectorized = VectorizedSimBackend().simulate(
            dubins_system, x0, 1.0, 0.05, method="rk45"
        )
        np.testing.assert_allclose(
            native[0].states, vectorized[0].states, atol=1e-12
        )

    def test_f_vectorized_matches_f_batch(self, dubins_system, initial_states):
        np.testing.assert_allclose(
            dubins_system.f_vectorized(initial_states),
            dubins_system.f_batch(initial_states),
            atol=1e-12,
        )

    def test_f_vectorized_tape_fallback(self):
        # No batch override: the compiled symbolic tapes carry the pass.
        system = stable_linear_system(np.array([[-0.5, 1.0], [-1.0, -0.5]]))
        points = np.array([[0.2, -0.3], [1.0, 0.5]])
        np.testing.assert_allclose(
            system.f_vectorized(points), system.f_batch(points), atol=1e-12
        )


def _smt_subproblems():
    """Three independent boxes; only the last can satisfy ``x >= 1``."""
    constraint = ge(var("x"), 1.0)
    return [
        Subproblem([constraint], Box([Interval(-3.0, -2.0)]), label="a"),
        Subproblem([constraint], Box([Interval(-1.0, 0.5)]), label="b"),
        Subproblem([constraint], Box([Interval(0.0, 2.0)]), label="c"),
    ]


class TestParallelSmt:
    def test_matches_serial_verdict_and_witness(self):
        config = IcpConfig(delta=1e-3)
        serial = SerialSmtBackend().check(_smt_subproblems(), ["x"], config)
        parallel = ParallelSmtBackend().check(_smt_subproblems(), ["x"], config)
        assert serial.verdict is parallel.verdict is Verdict.DELTA_SAT
        np.testing.assert_allclose(serial.witness, parallel.witness)

    def test_lowest_index_witness_wins(self):
        """Both boxes are SAT; the serial semantics (first wins) hold."""
        constraint = le(var("x"), 10.0)
        subs = [
            Subproblem([constraint], Box([Interval(5.0, 6.0)])),
            Subproblem([constraint], Box([Interval(-6.0, -5.0)])),
        ]
        config = IcpConfig(delta=1e-3)
        serial = SerialSmtBackend().check(subs, ["x"], config)
        parallel = ParallelSmtBackend().check(subs, ["x"], config)
        np.testing.assert_allclose(serial.witness, parallel.witness)
        assert 5.0 <= parallel.witness[0] <= 6.0

    def test_all_unsat(self):
        constraint = ge(var("x"), 100.0)
        subs = [
            Subproblem([constraint], Box([Interval(-1.0, 0.0)])),
            Subproblem([constraint], Box([Interval(0.0, 1.0)])),
        ]
        result = ParallelSmtBackend().check(subs, ["x"], IcpConfig(delta=1e-3))
        assert result.verdict is Verdict.UNSAT
        assert result.stats.boxes_processed > 0  # merged across subproblems

    def test_empty_union_is_unsat(self):
        result = ParallelSmtBackend().check([], ["x"], IcpConfig(delta=1e-3))
        assert result.verdict is Verdict.UNSAT

    def test_single_subproblem_skips_pool(self):
        (sub,) = _smt_subproblems()[2:]
        result = ParallelSmtBackend(max_workers=1).check(
            [sub], ["x"], IcpConfig(delta=1e-3)
        )
        assert result.verdict is Verdict.DELTA_SAT

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelSmtBackend(max_workers=0)


class TestNativeLp:
    def test_fit_matches_fit_generator(self):
        system = stable_linear_system(np.array([[-0.5, 1.0], [-1.0, -0.5]]))
        rng = np.random.default_rng(3)
        points = rng.uniform(-1.0, 1.0, size=(60, 2))
        template = QuadraticTemplate(2)
        from repro.engine import NativeLpBackend

        direct = fit_generator(template, points, system)
        via_backend = NativeLpBackend().fit(template, points, system)
        np.testing.assert_allclose(direct.coefficients, via_backend.coefficients)
        assert direct.margin == via_backend.margin
