"""Convenience constructors for expressions.

These are the functions user code imports::

    from repro.expr import var, sin, cos, tanh

    d, th = var("derr"), var("thetaerr")
    f0 = V * sin(th)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ExpressionError
from .node import (
    Add,
    Const,
    Expr,
    Max2,
    Min2,
    Unary,
    Var,
    as_expr,
)

__all__ = [
    "var",
    "variables",
    "const",
    "sin",
    "cos",
    "tan",
    "tanh",
    "sigmoid",
    "exp",
    "log",
    "sqrt",
    "absolute",
    "atan",
    "minimum",
    "maximum",
    "relu",
    "sum_expr",
    "dot",
]


def var(name: str) -> Var:
    """Create a named variable."""
    return Var(name)


def variables(names: str | Sequence[str]) -> list[Var]:
    """Create several variables: ``variables("x y z")`` or from a list."""
    if isinstance(names, str):
        names = names.split()
    return [Var(name) for name in names]


def const(value: float) -> Const:
    """Create a constant."""
    return Const(value)


def _unary(op: str, x: "Expr | float") -> Unary:
    return Unary(op, as_expr(x))


def sin(x: "Expr | float") -> Unary:
    """Sine node."""
    return _unary("sin", x)


def cos(x: "Expr | float") -> Unary:
    """Cosine node."""
    return _unary("cos", x)


def tan(x: "Expr | float") -> Unary:
    """Tangent node."""
    return _unary("tan", x)


def tanh(x: "Expr | float") -> Unary:
    """Hyperbolic tangent node (MATLAB's ``tansig``)."""
    return _unary("tanh", x)


def sigmoid(x: "Expr | float") -> Unary:
    """Logistic sigmoid node."""
    return _unary("sigmoid", x)


def exp(x: "Expr | float") -> Unary:
    """Exponential node."""
    return _unary("exp", x)


def log(x: "Expr | float") -> Unary:
    """Natural logarithm node."""
    return _unary("log", x)


def sqrt(x: "Expr | float") -> Unary:
    """Square-root node."""
    return _unary("sqrt", x)


def absolute(x: "Expr | float") -> Unary:
    """Absolute-value node."""
    return _unary("abs", x)


def atan(x: "Expr | float") -> Unary:
    """Arctangent node."""
    return _unary("atan", x)


def minimum(a: "Expr | float", b: "Expr | float") -> Min2:
    """Binary minimum node."""
    return Min2(as_expr(a), as_expr(b))


def maximum(a: "Expr | float", b: "Expr | float") -> Max2:
    """Binary maximum node."""
    return Max2(as_expr(a), as_expr(b))


def relu(x: "Expr | float") -> Max2:
    """Rectified linear unit ``max(x, 0)``."""
    return maximum(x, 0.0)


def sum_expr(terms: Iterable["Expr | float"]) -> Expr:
    """Balanced-tree sum of many terms.

    A left-associated chain of 1000 additions is 1000 nodes deep, which
    is hostile to stack-based walkers and to interval precision; a
    balanced tree has logarithmic depth.
    """
    nodes = [as_expr(t) for t in terms]
    if not nodes:
        return Const(0.0)
    while len(nodes) > 1:
        paired: list[Expr] = []
        for i in range(0, len(nodes) - 1, 2):
            paired.append(Add(nodes[i], nodes[i + 1]))
        if len(nodes) % 2 == 1:
            paired.append(nodes[-1])
        nodes = paired
    return nodes[0]


def dot(weights: Sequence[float], exprs: Sequence["Expr | float"]) -> Expr:
    """Balanced weighted sum ``sum_i weights[i] * exprs[i]``.

    Zero weights are dropped and unit weights skip the multiplication,
    which keeps NN-generated expressions compact.
    """
    if len(weights) != len(exprs):
        raise ExpressionError(
            f"dot length mismatch: {len(weights)} weights vs {len(exprs)} exprs"
        )
    terms: list[Expr] = []
    for w, e in zip(weights, exprs):
        w = float(w)
        if w == 0.0:
            continue
        e = as_expr(e)
        terms.append(e if w == 1.0 else Const(w) * e)
    return sum_expr(terms)
