"""JSON (de)serialization of feedforward networks.

The format is intentionally trivial — a list of layers with nested
weight lists — so trained controllers can be checked into a repository,
diffed, and loaded without pickle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import SerializationError
from .activations import get_activation
from .network import FeedforwardNetwork, Layer

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT = "repro-ffnn-v1"


def network_to_dict(network: FeedforwardNetwork) -> dict[str, Any]:
    """Plain-dict representation of a network."""
    return {
        "format": _FORMAT,
        "layers": [
            {
                "weights": layer.weights.tolist(),
                "biases": layer.biases.tolist(),
                "activation": layer.activation.name,
            }
            for layer in network.layers
        ],
    }


def network_from_dict(payload: dict[str, Any]) -> FeedforwardNetwork:
    """Rebuild a network saved by :func:`network_to_dict`."""
    if not isinstance(payload, dict) or "layers" not in payload:
        raise SerializationError("payload is not a network dictionary")
    if payload.get("format") != _FORMAT:
        raise SerializationError(
            f"unsupported format {payload.get('format')!r}; expected {_FORMAT!r}"
        )
    layers_raw = payload.get("layers")
    if not isinstance(layers_raw, list) or not layers_raw:
        raise SerializationError("network payload has no layers")
    layers = []
    for i, raw in enumerate(layers_raw):
        try:
            layers.append(
                Layer(
                    weights=np.asarray(raw["weights"], dtype=float),
                    biases=np.asarray(raw["biases"], dtype=float),
                    activation=get_activation(raw["activation"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed layer {i}: {exc}") from exc
    return FeedforwardNetwork(layers)


def save_network(network: FeedforwardNetwork, path: "str | Path") -> None:
    """Write a network to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: "str | Path") -> FeedforwardNetwork:
    """Read a network from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"network file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return network_from_dict(payload)
