"""Fuzzing: random expression trees must satisfy cross-semantics invariants.

A hypothesis strategy builds arbitrary well-formed expressions from the
full node zoo, then checks the library's core contracts on them:

* the compiled tape agrees with the reference evaluator at points;
* interval (box) evaluation encloses pointwise evaluation;
* simplification preserves semantics;
* substitution of a variable by a constant matches binding it.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    Expr,
    absolute,
    atan,
    compile_expression,
    cos,
    evaluate,
    exp,
    maximum,
    minimum,
    sigmoid,
    simplify,
    sin,
    substitute,
    tanh,
    var,
)
from repro.intervals import Interval

X_NAME, Y_NAME = "x", "y"


@st.composite
def expressions(draw, max_depth=5) -> Expr:
    """Random expression over x, y, with bounded-magnitude constants.

    Division, log, sqrt, and pow are excluded so every generated
    expression is total and numerically tame on the test box — the
    partial-domain ops have their own targeted tests.
    """
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return _build(draw, depth)


def _build(draw, depth: int) -> Expr:
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return var(X_NAME)
        if choice == 1:
            return var(Y_NAME)
        value = draw(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
        )
        from repro.expr import const

        return const(value)
    kind = draw(st.integers(0, 10))
    if kind <= 2:  # binary arithmetic
        left = _build(draw, depth - 1)
        right = _build(draw, depth - 1)
        return (left + right, left - right, left * right)[kind]
    if kind == 3:
        return -_build(draw, depth - 1)
    unary_ops = (sin, cos, tanh, sigmoid, atan, absolute)
    if kind <= 9:
        op = unary_ops[kind - 4]
        return op(_build(draw, depth - 1))
    left = _build(draw, depth - 1)
    right = _build(draw, depth - 1)
    return minimum(left, right) if draw(st.booleans()) else maximum(left, right)


POINT = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


class TestFuzzInvariants:
    @given(expr=expressions(), x=POINT, y=POINT)
    def test_tape_matches_evaluator(self, expr, x, y):
        tape = compile_expression(expr, [X_NAME, Y_NAME])
        via_tape = tape.eval_point([x, y])
        via_walker = evaluate(expr, {X_NAME: x, Y_NAME: y})
        assert via_tape == pytest.approx(via_walker, rel=1e-9, abs=1e-9)

    @given(expr=expressions(), x=POINT, y=POINT, w=st.floats(min_value=0, max_value=1))
    def test_box_encloses_points(self, expr, x, y, w):
        tape = compile_expression(expr, [X_NAME, Y_NAME])
        lo = np.array([[x, y]])
        hi = np.array([[x + w, y + w]])
        out_lo, out_hi = tape.eval_boxes(lo, hi)
        for tx, ty in ((0.0, 0.0), (w, 0.0), (0.5 * w, w), (w, w)):
            value = tape.eval_point([x + tx, y + ty])
            assert out_lo[0] - 1e-9 <= value <= out_hi[0] + 1e-9

    @given(expr=expressions(), x=POINT, y=POINT)
    def test_simplify_preserves_semantics(self, expr, x, y):
        env = {X_NAME: x, Y_NAME: y}
        assert evaluate(simplify(expr), env) == pytest.approx(
            evaluate(expr, env), rel=1e-9, abs=1e-9
        )

    @given(expr=expressions(), x=POINT, y=POINT)
    def test_substitution_matches_binding(self, expr, x, y):
        bound = substitute(expr, {Y_NAME: y})
        via_subst = evaluate(bound, {X_NAME: x})
        via_env = evaluate(expr, {X_NAME: x, Y_NAME: y})
        assert via_subst == pytest.approx(via_env, rel=1e-9, abs=1e-9)

    @given(expr=expressions(), x=POINT, y=POINT)
    def test_scalar_interval_matches_tape_box(self, expr, x, y):
        """The scalar Interval walker and the vectorized tape implement
        the same interval semantics (up to widening slack)."""
        tape = compile_expression(expr, [X_NAME, Y_NAME])
        ix = Interval(x, x + 0.3)
        iy = Interval(y, y + 0.3)
        walker = evaluate(expr, {X_NAME: ix, Y_NAME: iy})
        if not isinstance(walker, Interval):
            walker = Interval.point(float(walker))
        lo, hi = tape.eval_boxes(
            np.array([[ix.lo, iy.lo]]), np.array([[ix.hi, iy.hi]])
        )
        # Same family of algorithms: bounds agree to rounding slack.
        assert lo[0] == pytest.approx(walker.lo, rel=1e-6, abs=1e-6)
        assert hi[0] == pytest.approx(walker.hi, rel=1e-6, abs=1e-6)
