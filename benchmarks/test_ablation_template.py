"""Ablation: generator-template class.

The paper fixes a quadratic template whose level sets are ellipsoids
with closed-form geometry.  This ablation documents where that choice is
load-bearing: quadratic (+/- linear terms) verifies, while higher-degree
polynomial templates fit the LP but stop at level-set selection (no
closed-form separating level is implemented for them — the paper's
method would need the same extension).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_ablation, run_template_comparison


def test_template_comparison(benchmark, emit):
    def run():
        return run_template_comparison(hidden_neurons=10)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_template", format_ablation(rows, "generator-template comparison (Nh=10)"))

    by_label = {row.label: row for row in rows}
    assert by_label["quadratic"].status == "verified"
    assert by_label["quadratic+linear"].status == "verified"
    # Pure-quadratic is the paper's configuration; the quartic template
    # must stop at the level-set stage, not crash.
    assert by_label["quartic"].status in ("no-level-set", "no-candidate")
