"""Head-to-head: barrier verification vs simulation-based falsification.

The paper's motivating argument (Section 1): testing/falsification of
the closed loop gives counterexamples but no guarantees; the barrier
method gives an unbounded-time proof.  This benchmark runs both sides on
a safe and on an unsafe controller:

* safe controller — falsifiers exhaust their budget with nothing to
  show, while the verifier returns a certificate;
* unsafe controller — falsifiers produce a concrete escaping trajectory
  quickly, while the verifier (correctly) refuses to certify.
"""

from __future__ import annotations

import pytest

from repro.barrier import (
    SynthesisConfig,
    falsify_cmaes,
    falsify_random,
    verify_system,
)
from repro.dynamics import error_dynamics_system
from repro.experiments import paper_problem
from repro.learning import proportional_controller_network


def test_safe_controller_proof_vs_testing(benchmark, emit):
    network = proportional_controller_network(10)
    problem = paper_problem(network)

    def run():
        verification = verify_system(problem, config=SynthesisConfig(seed=0))
        random_result = falsify_random(
            problem.system, problem.initial_set, problem.unsafe_set,
            budget=100, seed=0,
        )
        cmaes_result = falsify_cmaes(
            problem.system, problem.initial_set, problem.unsafe_set,
            budget=100, seed=0,
        )
        return verification, random_result, cmaes_result

    verification, random_result, cmaes_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "safe controller (Nh=10):",
        f"  verification : {verification.status.value} "
        f"(level {verification.level:.4g}, {verification.total_seconds:.2f}s)",
        f"  random test  : {random_result}",
        f"  cmaes test   : {cmaes_result}",
    ]
    emit("verification_vs_falsification_safe", "\n".join(lines))

    assert verification.verified
    assert not random_result.falsified
    assert not cmaes_result.falsified
    # Testing leaves a margin but proves nothing; the certificate does.
    assert random_result.min_robustness > 0.0


def test_unsafe_controller_refutation(benchmark, emit):
    bad = proportional_controller_network(10, d_gain=-0.6, theta_gain=-2.0)
    problem = paper_problem(bad)

    def run():
        verification = verify_system(
            problem, config=SynthesisConfig(seed=0, max_candidate_iterations=4)
        )
        falsification = falsify_cmaes(
            problem.system, problem.initial_set, problem.unsafe_set,
            budget=120, seed=0,
        )
        return verification, falsification

    verification, falsification = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "unsafe controller (flipped gains, Nh=10):",
        f"  verification : {verification.status.value} (no certificate, as required)",
        f"  cmaes test   : {falsification}",
        f"  counterexample initial state: {falsification.best_initial_state}",
    ]
    emit("verification_vs_falsification_unsafe", "\n".join(lines))

    assert not verification.verified
    assert falsification.falsified
