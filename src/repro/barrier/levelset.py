"""Level-set selection for quadratic generator functions (Section 3).

For quadratic ``W(x) = x^T P x + q^T x`` the sublevel set
``L = {x : W(x) <= l}`` is an ellipsoid, and the paper's two geometric
requirements have closed forms:

* ``X0 ⊂ L``   ⇔   ``l >= max over X0 vertices of W`` (a convex function
  attains its maximum over a polytope at a vertex);
* ``L ∩ U = ∅`` ⇔ ``l < min over U's halfspace boundaries of W``
  (the minimum of ``W`` on ``a·x = b`` solved by one KKT system).

The resulting interval ``(l_lo, l_hi)`` is the exact feasible range in
real arithmetic; the synthesis loop still confirms the chosen ``l`` with
the paper's SMT queries (6)–(7) and binary-searches inside the interval
if floating-point slack makes an endpoint fail.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import LevelSetError
from .sets import Halfspace, Rectangle
from .templates import QuadraticTemplate

__all__ = [
    "quadratic_forms",
    "min_on_hyperplane",
    "level_bounds",
    "ellipsoid_bounding_rectangle",
]


def quadratic_forms(
    template: QuadraticTemplate, coefficients: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(P, q)`` of the fitted quadratic."""
    return template.p_matrix(coefficients), template.q_vector(coefficients)


def min_on_hyperplane(
    p_matrix: np.ndarray, q_vector: np.ndarray, normal: np.ndarray, offset: float
) -> float:
    """Minimum of ``x^T P x + q^T x`` subject to ``normal · x = offset``.

    Solved via the KKT system; returns ``-inf`` when the restriction of
    ``P`` to the hyperplane is not positive semidefinite (the quadratic
    is unbounded below there).
    """
    n = p_matrix.shape[0]
    normal = np.asarray(normal, dtype=float)
    # Check curvature on the hyperplane's tangent space: P restricted to
    # the orthogonal complement of `normal` must be PSD for a finite min.
    basis = _null_space(normal)
    if basis.size:
        restricted = basis.T @ p_matrix @ basis
        eigenvalues = np.linalg.eigvalsh(0.5 * (restricted + restricted.T))
        if eigenvalues.min() < -1e-12:
            return -math.inf
    kkt = np.zeros((n + 1, n + 1))
    kkt[:n, :n] = 2.0 * p_matrix
    kkt[:n, n] = normal
    kkt[n, :n] = normal
    rhs = np.concatenate([-q_vector, [offset]])
    try:
        solution = np.linalg.solve(kkt, rhs)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
    x_star = solution[:n]
    return float(x_star @ p_matrix @ x_star + q_vector @ x_star)


def _null_space(normal: np.ndarray) -> np.ndarray:
    """Orthonormal basis of the hyperplane through the origin."""
    n = normal.size
    q, _ = np.linalg.qr(
        np.hstack([normal[:, None], np.eye(n)]), mode="complete"
    )
    return q[:, 1:]


def level_bounds(
    template: QuadraticTemplate,
    coefficients: np.ndarray,
    initial_set: Rectangle,
    unsafe_halfspaces: Sequence[Halfspace],
) -> tuple[float, float]:
    """Feasible level interval ``(l_lo, l_hi)``.

    Raises
    ------
    LevelSetError
        When no level separates the sets (``l_lo >= l_hi``) — the fitted
        ``W`` cannot serve as a barrier generator for this geometry.
    """
    p_matrix, q_vector = quadratic_forms(template, coefficients)
    vertices = initial_set.vertices()
    w_vertices = template.evaluate(coefficients, vertices)
    l_lo = float(w_vertices.max())

    if not unsafe_halfspaces:
        raise LevelSetError("the unsafe set has no halfspaces")
    l_hi = math.inf
    for halfspace in unsafe_halfspaces:
        value = min_on_hyperplane(
            p_matrix, q_vector, halfspace.normal, halfspace.offset
        )
        l_hi = min(l_hi, value)

    if not math.isfinite(l_hi) or l_hi <= l_lo:
        raise LevelSetError(
            f"no separating level: initial set needs l > {l_lo:.6g} but the "
            f"unsafe set allows l < {l_hi:.6g}"
        )
    return l_lo, l_hi


def ellipsoid_bounding_rectangle(
    p_matrix: np.ndarray,
    q_vector: np.ndarray,
    level: float,
    padding: float = 1e-9,
) -> Rectangle:
    """Tight axis-aligned bounding rectangle of ``{x : x^T P x + q^T x <= level}``.

    Requires ``P`` positive definite.  Completing the square, the set is
    ``(x - x_c)^T P (x - x_c) <= r`` with ``x_c = -P^{-1} q / 2`` and
    ``r = level + x_c^T P x_c``; the half-width along axis ``i`` is
    ``sqrt(r * (P^{-1})_{ii})``.
    """
    eigenvalues = np.linalg.eigvalsh(0.5 * (p_matrix + p_matrix.T))
    if eigenvalues.min() <= 0.0:
        raise LevelSetError(
            "ellipsoid bounding box needs positive-definite P; smallest "
            f"eigenvalue is {eigenvalues.min():.3e}"
        )
    p_inv = np.linalg.inv(p_matrix)
    center = -0.5 * p_inv @ q_vector
    w_center = float(center @ p_matrix @ center + q_vector @ center)
    radius = level - w_center
    if radius <= 0.0:
        raise LevelSetError(
            f"level {level:.6g} is below the quadratic's minimum {w_center:.6g}"
        )
    half_widths = np.sqrt(radius * np.diag(p_inv)) + padding
    return Rectangle(center - half_widths, center + half_widths)
