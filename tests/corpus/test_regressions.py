"""Replay every checked-in minimized fuzz reproducer, forever.

``repro fuzz`` writes each shrunk failure under
``tests/corpus/regressions/`` as a JSON reproducer.  Once a failure is
fixed its reproducer stays checked in, and this module re-runs the
exact falsified invariant as an ordinary pytest case — the corpus is
the project's regression ratchet.  An empty corpus is a passing state,
not an error.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.corpus import FuzzFailure, load_regressions, replay_failure

REGRESSIONS = pathlib.Path(__file__).parent / "regressions"

_CASES = load_regressions(REGRESSIONS)


def test_corpus_directory_exists():
    assert REGRESSIONS.is_dir()


def test_empty_corpus_is_a_passing_state(tmp_path):
    assert load_regressions(tmp_path) == []
    assert load_regressions(tmp_path / "never-created") == []


def test_reproducers_are_well_formed():
    """Every checked-in file parses back into an equivalent failure."""
    for path, failure in _CASES:
        raw = json.loads(path.read_text())
        assert FuzzFailure.from_dict(raw) == failure
        assert failure.digest() == raw["digest"]


@pytest.mark.parametrize(
    "path, failure", _CASES, ids=[path.name for path, _ in _CASES]
)
def test_regression_no_longer_reproduces(path, failure):
    """The invariant each reproducer captured must hold again."""
    fresh = replay_failure(failure)
    assert fresh is None, (
        f"regression {path.name} reproduces again: {fresh.detail}"
    )
