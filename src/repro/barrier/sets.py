"""State-space set geometry for barrier synthesis.

The paper's case study uses three kinds of sets:

* the initial set ``X0`` — an axis-aligned rectangle;
* the unsafe set ``U`` — the *complement* of a rectangle, i.e. a union
  of axis-aligned halfspaces;
* the search domain ``D = (X0 ∪ U)'`` — the region between them, which
  for ICP purposes is covered exactly by a finite set of boxes
  (:func:`box_difference`).

All sets know how to express membership as SMT constraints over the
state variables, which is how the three barrier conditions are posed.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from ..errors import GeometryError
from ..expr import Expr, dot, var
from ..intervals import Box
from ..smt import Atom, Constraint, Formula, Or, ge, gt, le, lt

__all__ = [
    "Rectangle",
    "Halfspace",
    "RectangleComplement",
    "box_difference",
]


class Rectangle:
    """Axis-aligned rectangle ``[lower, upper]`` in state space."""

    def __init__(self, lower: Sequence[float], upper: Sequence[float]):
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise GeometryError("lower/upper must be vectors of equal length")
        if self.lower.size == 0:
            raise GeometryError("rectangle needs at least one dimension")
        if np.any(self.lower >= self.upper):
            raise GeometryError(
                f"degenerate rectangle: lower {self.lower} not strictly below "
                f"upper {self.upper}"
            )

    @property
    def dimension(self) -> int:
        """Number of state dimensions."""
        return self.lower.size

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """Membership test, optionally relaxed outward by ``tol``."""
        point = np.asarray(point, dtype=float)
        return bool(
            np.all(point >= self.lower - tol) and np.all(point <= self.upper + tol)
        )

    def contains_batch(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        """Vectorized :meth:`contains` over ``(m, n)`` points -> ``(m,)`` bools.

        Row ``i`` equals ``contains(points[i], tol)`` exactly (non-finite
        coordinates fail the comparisons the same way).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        inside = (points >= self.lower - tol) & (points <= self.upper + tol)
        return inside.all(axis=1)

    def vertices(self) -> np.ndarray:
        """All ``2^n`` corner points, shape ``(2^n, n)``."""
        corners = itertools.product(*zip(self.lower, self.upper))
        return np.array(list(corners))

    def center(self) -> np.ndarray:
        """Geometric center."""
        return 0.5 * (self.lower + self.upper)

    def to_box(self) -> Box:
        """Interval-box view (for ICP regions)."""
        return Box.from_bounds(self.lower, self.upper)

    def membership_constraints(self, state_names: Sequence[str]) -> list[Constraint]:
        """Conjunction expressing ``x ∈ rectangle``."""
        self._check_names(state_names)
        constraints = []
        for name, lo, hi in zip(state_names, self.lower, self.upper):
            x = var(name)
            constraints.append(ge(x, float(lo), name=f"{name}>=lo"))
            constraints.append(le(x, float(hi), name=f"{name}<=hi"))
        return constraints

    def complement_formula(self, state_names: Sequence[str]) -> Formula:
        """Disjunction expressing ``x ∉ rectangle`` (strict outside)."""
        self._check_names(state_names)
        parts = []
        for name, lo, hi in zip(state_names, self.lower, self.upper):
            x = var(name)
            parts.append(Atom(lt(x, float(lo), name=f"{name}<lo")))
            parts.append(Atom(gt(x, float(hi), name=f"{name}>hi")))
        return Or(parts)

    def halfspaces(self) -> list["Halfspace"]:
        """The ``2n`` facet halfspaces whose union is the complement."""
        spaces = []
        n = self.dimension
        for axis in range(n):
            normal = np.zeros(n)
            normal[axis] = -1.0
            spaces.append(Halfspace(normal, -float(self.lower[axis])))
            normal = np.zeros(n)
            normal[axis] = 1.0
            spaces.append(Halfspace(normal, float(self.upper[axis])))
        return spaces

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform samples inside the rectangle."""
        return rng.uniform(self.lower, self.upper, size=(count, self.dimension))

    def inflate(self, amount: float) -> "Rectangle":
        """Rectangle widened by ``amount`` on every side."""
        return Rectangle(self.lower - amount, self.upper + amount)

    def _check_names(self, state_names: Sequence[str]) -> None:
        if len(state_names) != self.dimension:
            raise GeometryError(
                f"{len(state_names)} names for a {self.dimension}-D rectangle"
            )

    def __repr__(self) -> str:
        return f"Rectangle({self.lower.tolist()}, {self.upper.tolist()})"


class Halfspace:
    """The halfspace ``normal · x >= offset``."""

    def __init__(self, normal: Sequence[float], offset: float):
        self.normal = np.asarray(normal, dtype=float)
        self.offset = float(offset)
        if self.normal.ndim != 1 or np.allclose(self.normal, 0.0):
            raise GeometryError("halfspace normal must be a nonzero vector")

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return self.normal.size

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """Membership test ``normal·x >= offset - tol``."""
        return float(self.normal @ np.asarray(point, dtype=float)) >= self.offset - tol

    def membership_constraint(self, state_names: Sequence[str]) -> Constraint:
        """SMT atom for ``normal · x >= offset``."""
        if len(state_names) != self.dimension:
            raise GeometryError(
                f"{len(state_names)} names for a {self.dimension}-D halfspace"
            )
        expr: Expr = dot(self.normal, [var(n) for n in state_names])
        return ge(expr, self.offset, name="halfspace")

    def __repr__(self) -> str:
        return f"Halfspace({self.normal.tolist()} . x >= {self.offset:g})"


class RectangleComplement:
    """The unsafe set of the case study: everything outside a rectangle."""

    def __init__(self, safe_rectangle: Rectangle):
        self.safe_rectangle = safe_rectangle

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return self.safe_rectangle.dimension

    def contains(self, point: Sequence[float], tol: float = 0.0) -> bool:
        """True when the point is outside the safe rectangle (shrunk by tol)."""
        return not self.safe_rectangle.contains(point, tol=-tol)

    def halfspaces(self) -> list[Halfspace]:
        """Halfspace decomposition ``U = ∪ {a_i · x >= b_i}``."""
        return self.safe_rectangle.halfspaces()

    def membership_formula(self, state_names: Sequence[str]) -> Formula:
        """Disjunction expressing ``x ∈ U``."""
        return self.safe_rectangle.complement_formula(state_names)

    def __repr__(self) -> str:
        return f"RectangleComplement(outside {self.safe_rectangle!r})"


def box_difference(outer: Rectangle, inner: Rectangle) -> list[Box]:
    """Exact box cover of ``outer \\ inner`` (slab decomposition).

    Peels one axis at a time: for each axis the strips of ``outer``
    strictly below/above ``inner`` become boxes, and the remaining
    region shrinks to the overlap along that axis.  Produces at most
    ``2n`` boxes whose union is exactly the set difference (up to shared
    faces, which is harmless for closed-box ICP search).
    """
    if outer.dimension != inner.dimension:
        raise GeometryError("dimension mismatch in box_difference")
    boxes: list[Box] = []
    lower = outer.lower.copy()
    upper = outer.upper.copy()
    for axis in range(outer.dimension):
        clip_lo = max(inner.lower[axis], lower[axis])
        clip_hi = min(inner.upper[axis], upper[axis])
        if clip_lo >= clip_hi:
            # No overlap along this axis: the remaining region is disjoint
            # from the inner rectangle and survives whole.
            boxes.append(Box.from_bounds(lower, upper))
            return boxes
        if lower[axis] < clip_lo:
            below_upper = upper.copy()
            below_upper[axis] = clip_lo
            boxes.append(Box.from_bounds(lower, below_upper))
        if clip_hi < upper[axis]:
            above_lower = lower.copy()
            above_lower[axis] = clip_hi
            boxes.append(Box.from_bounds(above_lower, upper))
        lower[axis] = clip_lo
        upper[axis] = clip_hi
    # What remains is inside the inner rectangle -> excluded.
    return boxes
