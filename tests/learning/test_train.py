"""Reference-controller construction tests."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.learning import (
    figure4_training_path,
    proportional_controller_network,
    training_start_state,
)


class TestTrainingPath:
    def test_shape(self):
        path = figure4_training_path()
        assert path.waypoints.shape[0] >= 5
        assert path.total_length > 100.0

    def test_start_state_aligned(self):
        path = figure4_training_path()
        start = training_start_state(path)
        assert np.allclose(start[:2], path.waypoints[0])
        errors = path.errors(start[:2], start[2])
        assert errors.theta_err == pytest.approx(0.0, abs=1e-9)
        assert errors.d_err == pytest.approx(0.0, abs=1e-9)


class TestProportionalController:
    def test_width_invariance(self):
        """Every width computes the same control function."""
        reference = proportional_controller_network(2)
        rng = np.random.default_rng(0)
        points = rng.uniform([-5, -1.5], [5, 1.5], size=(50, 2))
        for width in (3, 10, 31, 100, 1000):
            net = proportional_controller_network(width)
            assert np.allclose(
                net.forward(points), reference.forward(points), atol=1e-9
            ), f"width {width} diverges"

    def test_realized_control_law(self):
        """u = (kd/c) tanh(c d) + (kt/c) tanh(c t)."""
        kd, kt, c = 0.6, 2.0, 0.25
        net = proportional_controller_network(10, kd, kt, c)
        for d, t in [(1.0, 0.0), (0.0, 0.5), (-2.0, 0.3), (4.0, -1.0)]:
            expected = (kd / c) * math.tanh(c * d) + (kt / c) * math.tanh(c * t)
            assert float(net.forward(np.array([d, t]))[0]) == pytest.approx(expected)

    def test_linearized_gains(self):
        """Near the origin the law is u ~ kd*d + kt*t."""
        net = proportional_controller_network(8, d_gain=0.6, theta_gain=2.0)
        h = 1e-6
        gd = float(net.forward(np.array([h, 0.0]))[0]) / h
        gt = float(net.forward(np.array([0.0, h]))[0]) / h
        assert gd == pytest.approx(0.6, rel=1e-4)
        assert gt == pytest.approx(2.0, rel=1e-4)

    def test_saturation_bound(self):
        """|u| is bounded by (kd + kt)/c regardless of the input."""
        kd, kt, c = 0.6, 2.0, 0.25
        net = proportional_controller_network(6, kd, kt, c)
        extreme = net.forward(np.array([1e6, 1e6]))
        assert abs(float(extreme[0])) <= (kd + kt) / c + 1e-9

    def test_parameter_count_matches_paper(self):
        net = proportional_controller_network(10)
        assert net.parameter_count == 41  # 4*10 + 1

    def test_validation(self):
        with pytest.raises(TrainingError):
            proportional_controller_network(1)
        with pytest.raises(TrainingError):
            proportional_controller_network(4, squash=0.0)

    def test_closed_loop_stability(self):
        """The constructed controller stabilizes the error dynamics from
        everywhere in the paper's initial set."""
        from repro.dynamics import error_dynamics_system

        net = proportional_controller_network(10)
        system = error_dynamics_system(net)
        sim = system.simulator()
        for x0 in ([1.0, math.pi / 16], [-1.0, -math.pi / 16], [1.0, -math.pi / 16]):
            trace = sim.simulate(np.array(x0), 25.0, 0.05)
            assert np.linalg.norm(trace.final_state) < 1e-2
            # Never leaves the paper's safe envelope on the way.
            assert np.abs(trace.states[:, 0]).max() < 5.0
            assert np.abs(trace.states[:, 1]).max() < math.pi / 2 - 0.1
