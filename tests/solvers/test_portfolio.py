"""The ``portfolio`` engine: racing, exact degrade, run-key folding.

The acceptance bar for this stack: with **no external binaries
installed** (this CI), ``--engine portfolio`` must degrade to the
batched-ICP path with byte-identical artifacts vs ``--engine
batched-icp`` on every builtin scenario.  Racing, cancellation, and the
dual-key store behavior are exercised with in-process fake solvers.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro import api
from repro.api import get_scenario, scenario_names
from repro.barrier.certificate import condition5_subproblems
from repro.engine import (
    BatchedSmtBackend,
    Engine,
    NativeLpBackend,
    VectorizedSimBackend,
    get_engine,
)
from repro.errors import ReproError, SolverError
from repro.expr import sum_expr, var
from repro.intervals import Box, Interval
from repro.smt import IcpConfig, SmtResult, Subproblem, Verdict, ge
from repro.solvers import (
    DEFAULT_TIMEOUT,
    PortfolioSmtBackend,
    SolverInfo,
    TRANSCENDENTAL_OPS,
    effective_timeout,
    solver_fingerprint,
)
from repro.store import ArtifactStore, run_key

#: RunArtifact fields that cannot match across engines by construction:
#: the engine label itself plus wall-clock timings.
_VOLATILE_FIELDS = {
    "engine",
    "lp_seconds",
    "query_seconds",
    "generator_seconds",
    "other_seconds",
    "total_seconds",
    "stage_seconds",
}


# ----------------------------------------------------------------------
# In-process fakes
# ----------------------------------------------------------------------


class FakeSolver:
    """ExternalSolver double with scriptable verdicts — no subprocess."""

    def __init__(
        self,
        name="fake",
        verdict=Verdict.UNSAT,
        available=True,
        supported=None,
        delay=0.0,
        witness=None,
        error=False,
    ):
        self.name = name
        self._verdict = verdict
        self._available = available
        self._supported = supported  # None = everything
        self._delay = delay
        self._witness = witness
        self._error = error
        self.solve_calls = 0
        self.cancelled = False

    def probe(self, refresh=False):
        return SolverInfo(
            name=self.name,
            command=self.name,
            available=self._available,
            version="1.0" if self._available else "",
            reason="" if self._available else "not installed",
        )

    def supports(self, ops):
        if self._supported is None:
            return True
        return frozenset(ops) <= self._supported

    def solve(self, query, timeout, cancel=None):
        self.solve_calls += 1
        if self._error:
            raise SolverError(f"{self.name} exploded")
        deadline = time.monotonic() + self._delay
        while time.monotonic() < deadline:
            if cancel is not None and cancel.is_set():
                self.cancelled = True
                return SmtResult(Verdict.UNKNOWN, query.delta)
            time.sleep(0.005)
        witness = None
        if self._verdict is Verdict.DELTA_SAT:
            witness = np.asarray(
                self._witness
                if self._witness is not None
                else [0.0] * len(query.names)
            )
        return SmtResult(self._verdict, query.delta, witness=witness)


class RecordingNative:
    """Native-backend double recording exactly how it was called."""

    def __init__(self, verdict=Verdict.UNSAT, block_until_stop=False):
        self._verdict = verdict
        self._block = block_until_stop
        self.calls = []
        self.saw_stop = False

    def check(self, subproblems, names, config=None, **kwargs):
        self.calls.append({"kwargs": dict(kwargs), "n": len(subproblems)})
        config = config or IcpConfig()
        should_stop = kwargs.get("should_stop")
        if self._block and should_stop is not None:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if should_stop():
                    self.saw_stop = True
                    return SmtResult(Verdict.UNKNOWN, config.delta)
                time.sleep(0.005)
        return SmtResult(self._verdict, config.delta)


def _subproblems(transcendental=False):
    x, y = var("x"), var("y")
    body = x * x + y * y
    if transcendental:
        from repro.expr.node import Unary

        body = body + Unary("tanh", x)
    return [
        Subproblem(
            [ge(body, 1.0)],
            Box([Interval(-2.0, 2.0), Interval(-1.0, 1.0)]),
            "demo",
        )
    ]


# ----------------------------------------------------------------------
# The acceptance bar: exact degrade with no externals installed
# ----------------------------------------------------------------------


def _check5(name):
    scenario = get_scenario(name)
    problem = scenario.problem()
    w = sum_expr([var(n) * var(n) for n in problem.state_names])
    subs = condition5_subproblems(w, problem, gamma=1e-6)
    config = IcpConfig(delta=scenario.config.icp.delta, max_boxes=300_000)
    return subs, problem.state_names, config


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_degraded_check_identical_to_batched(name):
    """Check-level parity: same verdict, witness, and stats counters."""
    subs, names, config = _check5(name)
    portfolio = PortfolioSmtBackend(solvers=[])  # nothing installed
    ours = portfolio.check(subs, names, config)
    reference = BatchedSmtBackend().check(subs, names, config)
    assert ours.verdict is reference.verdict
    assert ours.delta == reference.delta
    assert ours.witness_validated == reference.witness_validated
    if reference.witness is None:
        assert ours.witness is None
    else:
        np.testing.assert_array_equal(ours.witness, reference.witness)
    # Everything but the wall-clock counter must match exactly.
    assert dataclasses.replace(ours.stats, elapsed_seconds=0.0) == (
        dataclasses.replace(reference.stats, elapsed_seconds=0.0)
    )


def _parity_config(name):
    """Per-scenario run config for the full-run parity test.

    Cartpole's bundled config spends minutes inside HiGHS on an
    infeasible LP; a deterministically trimmed budget (fewer traces,
    capped LP points, box-count-bounded ICP) keeps the full pipeline —
    simulation, LP, SMT checks — exercised in seconds.  Both engines get
    the *same* config, so the byte-parity assertion is unweakened.
    """
    if name != "cartpole":
        return None
    scenario = get_scenario(name)
    return dataclasses.replace(
        scenario.config,
        num_seed_traces=2,
        trace_duration=1.0,
        max_candidate_iterations=1,
        max_levelset_iterations=1,
        lp=dataclasses.replace(
            scenario.config.lp, max_points=150, separation_samples=8
        ),
        icp=dataclasses.replace(
            scenario.config.icp, time_limit=None, max_boxes=5000
        ),
    )


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_degraded_artifact_identical_to_batched_icp(name):
    """Full-run parity on every builtin scenario (the acceptance bar).

    With no external solvers available the portfolio artifact must be
    byte-identical to ``--engine batched-icp`` in every deterministic
    field — only the engine label and wall-clock timings may differ.
    """
    config = _parity_config(name)
    ours = api.run(
        name, config=config, engine="portfolio", cache=False
    ).to_dict()
    reference = api.run(
        name, config=config, engine="batched-icp", cache=False
    ).to_dict()
    assert ours["engine"] == "portfolio"
    assert reference["engine"] == "batched-icp"
    for volatile in _VOLATILE_FIELDS:
        ours.pop(volatile)
        reference.pop(volatile)
    # config records the engine the *config* asked for, which both runs
    # override via the engine argument — normalize it too.
    ours["config"].pop("engine", None)
    reference["config"].pop("engine", None)
    assert ours == reference, f"{name}: degraded portfolio artifact drifted"


def test_degrade_calls_native_verbatim():
    """The degrade path must be the identical call batched-icp makes —
    no ``should_stop`` kwarg, no wrapper."""
    native = RecordingNative()
    portfolio = PortfolioSmtBackend(solvers=[], native=native)
    portfolio.check(_subproblems(), ("x", "y"), IcpConfig(delta=1e-3))
    assert native.calls == [{"kwargs": {}, "n": 1}]


def test_unavailable_solvers_degrade():
    native = RecordingNative()
    missing = FakeSolver(available=False)
    portfolio = PortfolioSmtBackend(solvers=[missing], native=native)
    portfolio.check(_subproblems(), ("x", "y"), IcpConfig(delta=1e-3))
    assert native.calls == [{"kwargs": {}, "n": 1}]
    assert missing.solve_calls == 0


def test_unsupported_ops_degrade():
    """A z3-like solver (no transcendentals) must not see a tanh query."""
    native = RecordingNative()
    nra_only = FakeSolver(supported=frozenset())
    portfolio = PortfolioSmtBackend(solvers=[nra_only], native=native)
    portfolio.check(
        _subproblems(transcendental=True), ("x", "y"), IcpConfig(delta=1e-3)
    )
    assert native.calls == [{"kwargs": {}, "n": 1}]
    assert nra_only.solve_calls == 0


def test_empty_subproblems_degrade():
    native = RecordingNative()
    portfolio = PortfolioSmtBackend(solvers=[FakeSolver()], native=native)
    portfolio.check([], ("x",), IcpConfig(delta=1e-3))
    assert native.calls == [{"kwargs": {}, "n": 0}]


# ----------------------------------------------------------------------
# Racing
# ----------------------------------------------------------------------


class TestRace:
    def test_external_unsat_wins_and_is_recorded(self):
        native = RecordingNative(block_until_stop=True)
        fake = FakeSolver(verdict=Verdict.UNSAT)
        portfolio = PortfolioSmtBackend(solvers=[fake], native=native)
        portfolio.begin_run()
        result = portfolio.check(
            _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
        )
        assert result.verdict is Verdict.UNSAT
        assert portfolio.external_solvers_used() == ("fake-1.0",)
        # The native racer got the cooperative hook and was cancelled.
        assert native.calls[0]["kwargs"].keys() == {"should_stop"}
        assert native.saw_stop

    def test_external_delta_sat_win_keeps_witness(self):
        native = RecordingNative(block_until_stop=True)
        fake = FakeSolver(verdict=Verdict.DELTA_SAT, witness=[1.5, 0.5])
        portfolio = PortfolioSmtBackend(solvers=[fake], native=native)
        portfolio.begin_run()
        result = portfolio.check(
            _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
        )
        assert result.verdict is Verdict.DELTA_SAT
        np.testing.assert_array_equal(result.witness, [1.5, 0.5])

    def test_native_win_when_external_unknown(self):
        native = RecordingNative(verdict=Verdict.UNSAT)
        fake = FakeSolver(verdict=Verdict.UNKNOWN)
        portfolio = PortfolioSmtBackend(solvers=[fake], native=native)
        portfolio.begin_run()
        result = portfolio.check(
            _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
        )
        assert result.verdict is Verdict.UNSAT
        assert portfolio.external_solvers_used() == ()

    def test_slow_external_cancelled_after_native_win(self):
        native = RecordingNative(verdict=Verdict.UNSAT)
        slow = FakeSolver(verdict=Verdict.UNSAT, delay=30.0)
        portfolio = PortfolioSmtBackend(solvers=[slow], native=native)
        start = time.monotonic()
        result = portfolio.check(
            _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
        )
        elapsed = time.monotonic() - start
        assert result.verdict is Verdict.UNSAT
        assert slow.cancelled
        assert elapsed < 10.0, f"cancellation took {elapsed:.1f}s"

    def test_external_error_falls_back_to_native(self):
        native = RecordingNative(verdict=Verdict.UNSAT)
        broken = FakeSolver(error=True)
        portfolio = PortfolioSmtBackend(solvers=[broken], native=native)
        portfolio.begin_run()
        result = portfolio.check(
            _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
        )
        assert result.verdict is Verdict.UNSAT
        assert portfolio.external_solvers_used() == ()

    def test_native_error_reraised_without_winner(self):
        class ExplodingNative:
            def check(self, subproblems, names, config=None, **kwargs):
                raise ReproError("native blew up")

        portfolio = PortfolioSmtBackend(
            solvers=[FakeSolver(verdict=Verdict.UNKNOWN)],
            native=ExplodingNative(),
        )
        with pytest.raises(ReproError, match="native blew up"):
            portfolio.check(_subproblems(), ("x", "y"), IcpConfig(delta=1e-3))

    def test_native_error_masked_by_external_win(self):
        class ExplodingNative:
            def check(self, subproblems, names, config=None, **kwargs):
                raise ReproError("native blew up")

        portfolio = PortfolioSmtBackend(
            solvers=[FakeSolver(verdict=Verdict.UNSAT)],
            native=ExplodingNative(),
        )
        result = portfolio.check(
            _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
        )
        assert result.verdict is Verdict.UNSAT

    def test_usage_recording_is_thread_local(self):
        native = RecordingNative(block_until_stop=True)
        fake = FakeSolver(verdict=Verdict.UNSAT)
        portfolio = PortfolioSmtBackend(solvers=[fake], native=native)
        seen = {}

        def worker(key, use_begin):
            if use_begin:
                portfolio.begin_run()
                portfolio.check(
                    _subproblems(), ("x", "y"), IcpConfig(delta=1e-3)
                )
            seen[key] = portfolio.external_solvers_used()

        threads = [
            threading.Thread(target=worker, args=("ran", True)),
            threading.Thread(target=worker, args=("idle", False)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen["ran"] == ("fake-1.0",)
        assert seen["idle"] == ()  # never leaked across threads


# ----------------------------------------------------------------------
# Timeouts, fingerprints, availability
# ----------------------------------------------------------------------


class TestEffectiveTimeout:
    def test_solver_timeout_wins(self):
        config = IcpConfig(solver_timeout=7.5, time_limit=100.0)
        assert effective_timeout(config) == 7.5

    def test_time_limit_fallback(self):
        assert effective_timeout(IcpConfig(time_limit=12.0)) == 12.0

    def test_default(self):
        assert effective_timeout(IcpConfig()) == DEFAULT_TIMEOUT


class TestFingerprint:
    def test_available_solvers_sorted(self):
        fakes = [FakeSolver(name="zzz"), FakeSolver(name="aaa")]
        assert solver_fingerprint(fakes) == "aaa-1.0;zzz-1.0"

    def test_unavailable_excluded(self):
        fakes = [FakeSolver(name="ok"), FakeSolver(name="gone", available=False)]
        assert solver_fingerprint(fakes) == "ok-1.0"

    def test_empty_without_solvers(self):
        assert solver_fingerprint([]) == ""

    def test_backend_method_uses_own_pool(self):
        portfolio = PortfolioSmtBackend(solvers=[FakeSolver(name="mine")])
        assert portfolio.solver_fingerprint() == "mine-1.0"


class TestAvailability:
    def test_with_solvers(self):
        portfolio = PortfolioSmtBackend(solvers=[FakeSolver(name="z9")])
        available, reason = portfolio.availability()
        assert available
        assert reason == "racing z9 1.0 against batched-icp"

    def test_without_solvers(self):
        missing = FakeSolver(name="z9", available=False)
        portfolio = PortfolioSmtBackend(solvers=[missing])
        available, reason = portfolio.availability()
        assert available  # never unusable: it degrades
        assert "batched-icp only" in reason
        assert "z9: not installed" in reason

    def test_registered_engine_describe_carries_reason(self):
        engine = get_engine("portfolio")
        assert isinstance(engine.smt, PortfolioSmtBackend)
        info = engine.describe()
        assert info["available"] is True
        assert "batched-icp" in info["reason"]


# ----------------------------------------------------------------------
# Run-key folding through the artifact store
# ----------------------------------------------------------------------


def _portfolio_engine(backend):
    return Engine(
        name="portfolio",
        description="portfolio under test",
        sim=VectorizedSimBackend(),
        lp=NativeLpBackend(),
        smt=backend,
        tags=("test",),
    )


class TestRunKeyFolding:
    def test_external_run_stored_under_fingerprinted_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        fake = FakeSolver(verdict=Verdict.UNSAT)
        backend = PortfolioSmtBackend(
            solvers=[fake], native=RecordingNative(block_until_stop=True)
        )
        engine = _portfolio_engine(backend)
        artifact = api.run("linear", engine=engine, cache=store)
        assert artifact.verified
        assert fake.solve_calls > 0
        scenario = get_scenario("linear")
        plain = run_key(scenario, scenario.config, "portfolio")
        folded = run_key(
            scenario, scenario.config, "portfolio", solvers="fake-1.0"
        )
        assert folded in store
        assert plain not in store
        # Second run: the fingerprinted key is probed first and hits.
        again = api.run("linear", engine=engine, cache=store)
        assert again.cached
        assert again.to_json() == artifact.to_json()

    def test_native_decided_run_stored_under_plain_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        # An available external that never answers: fingerprint is
        # non-empty but every verdict is native's.
        fake = FakeSolver(verdict=Verdict.UNKNOWN)
        backend = PortfolioSmtBackend(solvers=[fake])
        engine = _portfolio_engine(backend)
        artifact = api.run("linear", engine=engine, cache=store)
        assert artifact.verified
        scenario = get_scenario("linear")
        plain = run_key(scenario, scenario.config, "portfolio")
        folded = run_key(
            scenario, scenario.config, "portfolio", solvers="fake-1.0"
        )
        assert plain in store
        assert folded not in store

    def test_no_externals_keys_like_plain_machine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        backend = PortfolioSmtBackend(solvers=[])
        engine = _portfolio_engine(backend)
        api.run("linear", engine=engine, cache=store)
        scenario = get_scenario("linear")
        assert run_key(scenario, scenario.config, "portfolio") in store

    def test_solvers_participate_in_fingerprint(self):
        scenario = get_scenario("linear")
        plain = run_key(scenario, scenario.config, "portfolio")
        a = run_key(scenario, scenario.config, "portfolio", solvers="z3-4.13")
        b = run_key(scenario, scenario.config, "portfolio", solvers="z3-4.14")
        assert len({plain, a, b}) == 3
        # Empty/None fingerprints collapse to the plain key.
        assert run_key(scenario, scenario.config, "portfolio", solvers="") == plain


# ----------------------------------------------------------------------
# Registration + query-size sanity
# ----------------------------------------------------------------------


def test_portfolio_engine_registered():
    engine = get_engine("portfolio")
    assert isinstance(engine.smt, PortfolioSmtBackend)
    assert "external" in engine.tags


def test_z3_eligibility_split():
    """The pure-NRA scenarios must remain z3-eligible (see test_golden)."""
    from repro.solvers import Z3Solver, emit_query

    z3 = Z3Solver()
    pure, transcendental = [], []
    for name in sorted(scenario_names()):
        subs, names, config = _check5(name)
        query = emit_query(subs, names, config.delta)
        (pure if z3.supports(query.ops) else transcendental).append(name)
    assert pure == ["double-integrator", "linear", "vanderpol"]
    assert set(transcendental) == {"bicycle", "cartpole", "dubins", "pendulum"}
    assert all(
        TRANSCENDENTAL_OPS >= emit_query(*_check5(n)[:2], 1e-3).ops
        for n in transcendental
    )
