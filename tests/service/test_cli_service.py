"""Service CLI commands + sweep/batch error exit codes."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api.family import (
    ParamSpec,
    ScenarioFamily,
    get_family,
    register_family,
    unregister_family,
)
from repro.api.scenario import register_scenario, unregister_scenario
from repro.cli import build_parser, main
from repro.service import EventBus, Scheduler, ServiceServer
from repro.store import ArtifactStore


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port is None
        assert args.workers == 2
        assert not args.threads
        assert not args.no_journal

    def test_submit_parses_grid_and_wait(self):
        args = build_parser().parse_args(
            ["submit", "linear", "--grid", "damping=0.4:0.8:3",
             "--wait", "--priority", "2"]
        )
        assert args.target == "linear"
        assert args.grid == ["damping=0.4:0.8:3"]
        assert args.wait
        assert args.priority == 2

    def test_watch_needs_job_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch"])

    def test_cancel_parses(self):
        args = build_parser().parse_args(
            ["cancel", "job-abc", "--url", "http://127.0.0.1:9999"]
        )
        assert args.job_id == "job-abc"
        assert args.url == "http://127.0.0.1:9999"


def _failing_linear_scenario(name: str):
    base = get_family("linear").instantiate()

    def explode():
        raise RuntimeError("injected factory failure")

    return dataclasses.replace(base, name=name, system_factory=explode)


@pytest.fixture
def failing_family():
    """A registered family whose every instantiation errors at solve."""

    def factory(damping: float = 0.5):
        return _failing_linear_scenario(f"cli-failing[damping={damping:g}]")

    family = ScenarioFamily(
        name="cli-failing",
        description="always errors (test only)",
        factory=factory,
        parameters=(
            ParamSpec("damping", "float", default=0.5, low=0.0, high=1.0),
        ),
    )
    register_family(family, replace=True)
    yield family
    unregister_family("cli-failing")


@pytest.fixture
def failing_scenario():
    scenario = _failing_linear_scenario("cli-failing-scenario")
    register_scenario(scenario, replace=True)
    yield scenario
    unregister_scenario("cli-failing-scenario")


class TestErrorExitCodes:
    def test_sweep_exits_nonzero_when_a_point_errors(
        self, failing_family, capsys
    ):
        code = main(
            ["sweep", "cli-failing", "--grid", "damping=0.4,0.6",
             "--workers", "1", "--no-cache"]
        )
        assert code == 1
        assert "injected factory failure" in capsys.readouterr().out

    def test_sweep_exits_zero_when_all_points_verify(self, tmp_path, capsys):
        code = main(
            ["sweep", "linear", "--grid", "damping=0.5", "--workers", "1",
             "--store", str(tmp_path / "store")]
        )
        assert code == 0

    def test_batch_exits_nonzero_when_a_scenario_errors(
        self, failing_scenario, capsys
    ):
        code = main(["batch", "cli-failing-scenario", "--workers", "1"])
        assert code == 1
        assert "injected factory failure" in capsys.readouterr().out

    def test_batch_mixed_good_and_bad_still_fails(
        self, failing_scenario, capsys
    ):
        code = main(
            ["batch", "linear", "cli-failing-scenario", "--workers", "1"]
        )
        assert code == 1


@pytest.fixture
def live_service(tmp_path):
    """A real HTTP server for the client-side CLI commands."""
    store = ArtifactStore(tmp_path / "store")
    scheduler = Scheduler(
        store, pool=False, workers=2, events=EventBus(), journal=True
    )
    server = ServiceServer(scheduler, port=0)
    server.run_in_thread()
    yield f"http://127.0.0.1:{server.port}"
    server.stop_thread()
    scheduler.shutdown(wait=True)


class TestServiceCommands:
    def test_submit_wait_watch_jobs_cancel(
        self, live_service, tmp_path, capsys
    ):
        out_file = tmp_path / "job.json"
        code = main(
            ["submit", "linear", "--grid", "damping=0.4:0.8:3",
             "--url", live_service, "--wait", "--timeout", "120",
             "--json", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DONE" in out
        status = json.loads(out_file.read_text())
        assert status["state"] == "DONE"
        assert status["verified_points"] == 3
        job_id = status["id"]

        # jobs lists it
        assert main(["jobs", "--url", live_service]) == 0
        assert job_id in capsys.readouterr().out

        # watch on a finished job replays the terminal event and exits 0
        assert main(["watch", job_id, "--url", live_service]) == 0
        assert "DONE" in capsys.readouterr().out

        # cancel on a finished job is a no-op that reports DONE
        assert main(["cancel", job_id, "--url", live_service]) == 0
        assert "DONE" in capsys.readouterr().out

    def test_submit_wait_exits_nonzero_on_failed_job(
        self, live_service, failing_scenario, capsys
    ):
        code = main(
            ["submit", "cli-failing-scenario", "--url", live_service,
             "--wait", "--timeout", "120"]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_submit_without_wait_returns_immediately(
        self, live_service, capsys
    ):
        code = main(
            ["submit", "linear", "--grid", "damping=0.5",
             "--url", live_service]
        )
        assert code == 0
        assert "job-" in capsys.readouterr().out
