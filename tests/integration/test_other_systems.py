"""Verification beyond the Dubins case study: other nonlinear plants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import (
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    SynthesisStatus,
    VerificationProblem,
    verify_system,
)
from repro.dynamics import (
    compose,
    inverted_pendulum_plant,
    van_der_pol_system,
)
from repro.nn import FeedforwardNetwork, Layer


class TestVanDerPol:
    """Reversed Van der Pol: a classic barrier benchmark with a known
    regime boundary — quadratic certificates exist near the origin but
    not out to the (unstable) limit cycle."""

    def test_verifies_inside_quadratic_regime(self):
        system = van_der_pol_system(mu=1.0, reversed_time=True)
        problem = VerificationProblem(
            system,
            Rectangle([-0.15, -0.15], [0.15, 0.15]),
            RectangleComplement(Rectangle([-0.9, -0.9], [0.9, 0.9])),
        )
        report = verify_system(problem, config=SynthesisConfig(seed=0))
        assert report.verified
        assert report.certificate.verify().all_unsat

    def test_fails_beyond_quadratic_regime(self):
        """Wider envelopes include states where no quadratic W decreases
        (the cubic term dominates); the method must not certify there."""
        system = van_der_pol_system(mu=1.0, reversed_time=True)
        problem = VerificationProblem(
            system,
            Rectangle([-0.3, -0.3], [0.3, 0.3]),
            RectangleComplement(Rectangle([-1.2, -1.2], [1.2, 1.2])),
        )
        report = verify_system(
            problem, config=SynthesisConfig(seed=0, max_candidate_iterations=4)
        )
        assert report.status is not SynthesisStatus.VERIFIED


class TestPendulumNN:
    def test_pd_network_verifies(self):
        plant = inverted_pendulum_plant(mass=0.5, length=0.5, damping=0.1)
        kp, kd, squash = 12.0, 4.0, 0.5
        network = FeedforwardNetwork(
            [
                Layer(
                    np.array([[squash, 0.0], [0.0, squash]]), np.zeros(2), "tansig"
                ),
                Layer(
                    np.array([[-kp / squash, -kd / squash]]), np.zeros(1), "linear"
                ),
            ]
        )
        system = compose(plant, network)
        problem = VerificationProblem(
            system,
            Rectangle([-0.15, -0.15], [0.15, 0.15]),
            RectangleComplement(Rectangle([-1.0, -3.0], [1.0, 3.0])),
        )
        report = verify_system(problem, config=SynthesisConfig(seed=0))
        assert report.verified
        # Simulated sanity: a disturbed start stays inside the level set.
        trace = system.simulator().simulate(np.array([0.14, 0.1]), 8.0, 0.01)
        w_along = report.certificate.w_values(trace.states)
        assert w_along.max() <= report.certificate.level + 1e-9
