"""Printer tests: infix readability and SMT-LIB structure."""

from __future__ import annotations

import pytest

from repro.expr import (
    absolute,
    maximum,
    minimum,
    sigmoid,
    sin,
    tanh,
    to_infix,
    to_smtlib,
    var,
)

X, Y = var("x"), var("y")


class TestInfix:
    def test_leaves(self):
        assert to_infix(X) == "x"
        assert to_infix(var("theta")) == "theta"

    def test_integer_constants(self):
        assert to_infix(X + 2.0) == "x + 2"

    def test_negative_constant_parenthesized(self):
        text = to_infix(X * -2.0)
        assert "(-2)" in text

    def test_precedence_mul_over_add(self):
        assert to_infix(X + Y * X) == "x + y*x"
        assert to_infix((X + Y) * X) == "(x + y)*x"

    def test_sub_right_assoc_parens(self):
        assert to_infix(X - (Y - X)) == "x - (y - x)"

    def test_div_denominator_parens(self):
        assert to_infix(X / (Y * X)) == "x/(y*x)"

    def test_pow(self):
        assert to_infix(X**2) == "x^2"
        assert to_infix((X + Y) ** 2) == "(x + y)^2"

    def test_neg(self):
        assert to_infix(-X) == "-x"
        assert to_infix(-(X + Y)) == "-(x + y)"

    def test_unary_functions(self):
        assert to_infix(sin(X)) == "sin(x)"
        assert to_infix(tanh(X + Y)) == "tanh(x + y)"

    def test_min_max(self):
        assert to_infix(minimum(X, Y)) == "min(x, y)"
        assert to_infix(maximum(X, Y)) == "max(x, y)"

    def test_truncation(self):
        long = X
        for _ in range(50):
            long = long + X
        text = to_infix(long, max_length=30)
        assert len(text) == 30
        assert text.endswith("...")


class TestSmtLib:
    def test_basic_sexpr(self):
        assert to_smtlib(X + Y) == "(+ x y)"
        assert to_smtlib(X * 2.0) == "(* x 2)"

    def test_negative_constant(self):
        assert to_smtlib(X + (-2.0)) == "(+ x (- 2))"

    def test_pow(self):
        assert to_smtlib(X**3) == "(^ x 3)"

    def test_unary(self):
        assert to_smtlib(sin(X)) == "(sin x)"
        assert to_smtlib(tanh(X)) == "(tanh x)"
        assert to_smtlib(absolute(X)) == "(abs x)"

    def test_sigmoid_expansion(self):
        text = to_smtlib(sigmoid(X))
        assert "exp" in text
        assert text == "(/ 1 (+ 1 (exp (- x))))"

    def test_min_max_ite(self):
        assert to_smtlib(minimum(X, Y)) == "(ite (<= x y) x y)"
        assert to_smtlib(maximum(X, Y)) == "(ite (>= x y) x y)"

    def test_balanced_parens(self):
        expr = sin(X * Y) + tanh(X) / (Y - 2.0) ** 2
        text = to_smtlib(expr)
        assert text.count("(") == text.count(")")
