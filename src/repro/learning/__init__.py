"""Controller training: CMA-ES and direct policy search (Section 4.2)."""

from .cmaes import CmaEs, CmaEsConfig, CmaEsResult, minimize_cmaes
from .cost import CostWeights, RolloutResult, rollout, tracking_cost
from .policy import PolicySearchConfig, PolicySearchResult, policy_search
from .safe_train import (
    SafeTrainingResult,
    SafetyPenaltyConfig,
    safety_penalty,
    train_safe_controller,
)
from .train import (
    figure4_training_path,
    proportional_controller_network,
    train_paper_controller,
    training_start_state,
)

__all__ = [
    "CmaEs",
    "CmaEsConfig",
    "CmaEsResult",
    "CostWeights",
    "SafeTrainingResult",
    "SafetyPenaltyConfig",
    "PolicySearchConfig",
    "PolicySearchResult",
    "RolloutResult",
    "figure4_training_path",
    "minimize_cmaes",
    "policy_search",
    "proportional_controller_network",
    "rollout",
    "safety_penalty",
    "tracking_cost",
    "train_paper_controller",
    "train_safe_controller",
    "training_start_state",
]
