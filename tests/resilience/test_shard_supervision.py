"""Sharded-ICP supervision under injected worker faults.

End-to-end through ``api.run``: a killed or wedged shard worker is
detected by the round deadline as a typed ``WorkerDied``, the team is
respawned (or the round degrades to the serial path once the budget is
spent), the artifact is unchanged, and every shared-memory segment the
run created is unlinked afterwards.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultAction, FaultPlan
from repro.resilience.supervisor import clear_incidents, incidents

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="sharded engine needs fork"
)


@pytest.fixture(autouse=True)
def _clean_state():
    faults.clear_plan()
    clear_incidents()
    yield
    faults.clear_plan()
    clear_incidents()


@pytest.fixture
def shard_env(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "2")
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "10")


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    segment.close()
    return True


def _run_linear(engine="sharded-icp"):
    from repro import api
    from repro.api.family import get_family
    from repro.api.runner import derive_scenario_seed

    scenario = get_family("linear").instantiate()
    config = dataclasses.replace(
        scenario.config, seed=derive_scenario_seed(0, scenario.name)
    )
    return api.run(scenario, config=config, engine=engine, cache=False)


def test_killed_worker_respawns_and_artifact_is_unchanged(shard_env):
    baseline = _run_linear()
    plan = FaultPlan((FaultAction("shard.worker", "kill", at=0),), label="kill")
    with faults.injected(plan):
        faulted = _run_linear()
        assert faults.fired_faults(), "the kill never fired"
    kinds = {e["kind"] for e in incidents()}
    assert "shard.worker_died" in kinds
    assert "shard.respawn" in kinds or "shard.degrade" in kinds
    assert faulted.verified == baseline.verified
    assert faulted.status == baseline.status
    assert faulted.level == baseline.level


def test_hung_worker_hits_the_round_deadline(shard_env, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "2")
    plan = FaultPlan((FaultAction("shard.worker", "hang", at=0),), label="hang")
    baseline = _run_linear()
    with faults.injected(plan):
        faulted = _run_linear()
        assert faults.fired_faults()
    assert incidents("shard.worker_died")
    assert faulted.level == baseline.level


def test_no_shared_memory_segment_survives(shard_env):
    from repro.intervals import recent_segment_names

    plan = FaultPlan((FaultAction("shard.worker", "kill", at=0),), label="kill")
    with faults.injected(plan):
        _run_linear()
    names = recent_segment_names()
    assert names, "the sharded run created no segments (did it fork?)"
    leaked = [name for name in names if _segment_exists(name)]
    assert leaked == []
