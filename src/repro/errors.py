"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type to handle any library
failure.  Sub-hierarchies mirror the package layout: expression errors,
interval errors, solver errors, synthesis errors, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ExpressionError(ReproError):
    """Malformed or unsupported symbolic expression operation."""


class EvaluationError(ExpressionError):
    """An expression could not be evaluated (missing variable, bad domain)."""


class DifferentiationError(ExpressionError):
    """An expression could not be differentiated."""


class IntervalError(ReproError):
    """Invalid interval construction or operation (e.g. lower > upper)."""


class EmptyIntervalError(IntervalError):
    """An operation produced or received a provably empty interval."""


class DomainError(IntervalError):
    """Function applied outside its real domain (e.g. log of a negative)."""


class SolverError(ReproError):
    """Base class for SMT / ICP solver failures."""


class BudgetExceededError(SolverError):
    """The ICP solver exhausted its box or time budget without a verdict."""


class WorkerDied(SolverError):
    """A forked/pooled worker process died or went unresponsive mid-task.

    Raised by the sharded ICP master when a shard worker's pipe read
    hits its deadline or the process sentinel reports death, and by the
    warm-pool supervisor when a chunk dispatch loses its worker.  The
    raiser guarantees shared resources (pipes, shared-memory segments)
    are released before the error propagates.
    """


class InjectedFault(ReproError):
    """A deterministic test fault fired at a :mod:`repro.resilience` seam.

    Only ever raised while a :class:`~repro.resilience.FaultPlan` is
    installed — production code paths can never see this type.
    """


class LinearProgramError(ReproError):
    """The LP used to fit a generator function failed or was infeasible."""


class InfeasibleLPError(LinearProgramError):
    """No template coefficients satisfy the trace-derived constraints."""


class SynthesisError(ReproError):
    """The barrier-certificate synthesis loop failed to produce a result."""


class MaxIterationsError(SynthesisError):
    """A synthesis loop hit its iteration cap without concluding."""


class LevelSetError(SynthesisError):
    """No valid level-set size separates the initial set from the unsafe set."""


class SimulationError(ReproError):
    """Numerical integration failed (blow-up, bad dimensions, bad step)."""


class TrainingError(ReproError):
    """Controller training (CMA-ES policy search) failed."""


class SerializationError(ReproError):
    """A model file could not be read or written."""


class GeometryError(ReproError):
    """Invalid set-geometry construction (empty rectangle, bad halfspace)."""
