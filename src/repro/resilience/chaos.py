"""The chaos gate: the fuzz corpus re-run under injected faults.

``repro chaos --samples N --seed S`` walks the exact corpus points the
differential fuzzer samples (:func:`repro.corpus.sample_corpus_point`)
and runs each one twice — once fault-free as the baseline, once with a
deterministic :class:`~repro.resilience.faults.FaultPlan` installed —
rotating through a fixed catalog of fault scenarios (worker kills and
hangs, solver garbage and hangs, torn journal lines, torn store
writes).  Per sample the gate asserts the self-healing contract of
PR's resilience layer:

* **no hang** — the faulted run finishes inside a hard wall-clock
  budget (every supervisor deadline in the stack is far shorter);
* **no verdict flip** — the faulted artifact equals the baseline minus
  the :data:`~repro.corpus.VOLATILE_FIELDS` timing fields, i.e. every
  injected fault was either recovered (retry, respawn, breaker skip)
  or cleanly degraded (the engine ladder's byte-parity contract);
* **clean accounting** — recovery shows up in the incident log, never
  in the artifact;
* **no leaks** — no shared-memory segment created along the way
  survives (probed by name via ``SharedMemory(name=)``) and no child
  process outlives its run.

Failures are written as JSON reproducers carrying the seed, the point,
and the exact fault plan, so any chaos failure replays in isolation.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pathlib
import tempfile
import threading
import time
from dataclasses import dataclass, field

from ..errors import ReproError, SolverError
from . import faults
from .faults import FaultAction, FaultPlan
from .supervisor import clear_incidents, incidents, reset_breakers

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosOutcome",
    "ChaosReport",
    "ChaosSolver",
    "chaos",
    "write_chaos_reproducer",
]

#: the fault scenarios a chaos run rotates through, in order
CHAOS_SCENARIOS = (
    "shard-kill",
    "shard-hang",
    "pool-kill",
    "solver-garbage",
    "solver-hang",
    "solver-spawn",
    "journal-torn",
    "store-torn",
)

#: hard per-sample wall-clock budget for the faulted run (seconds);
#: generous against every supervisor deadline, tiny against a real hang
DEFAULT_HARD_TIMEOUT = 120.0


class ChaosSolver:
    """An in-process fake external solver for chaos and tests.

    Always answers ``unknown`` (a *recognized* transcript), so the
    portfolio's verdict is always decided by the native ICP lane and
    the faulted/baseline artifact comparison stays byte-stable.  Its
    ``solve`` walks the same seam + circuit-breaker choreography the
    real subprocess adapter does: ``solver.spawn`` faults raise before
    any output, ``solver.output`` hangs park on the cancel event (never
    wedging a portfolio race), and garbage transcripts count as breaker
    failures.
    """

    name = "chaos"

    def probe(self, refresh: bool = False):
        from ..solvers.backends import SolverInfo

        return SolverInfo(
            name=self.name, command="<in-process>", available=True, version="0"
        )

    def supports(self, ops: frozenset) -> bool:
        return True

    def solve(self, query, timeout: float = 30.0, cancel=None):
        from ..smt import SmtResult
        from ..smt.result import Verdict
        from ..solvers.backends import solver_breaker, transcript_recognized

        breaker = solver_breaker(self.name)
        if faults.fire("solver.spawn", self.name) is not None:
            breaker.record_failure()
            raise SolverError("chaos solver: injected spawn fault")
        action = faults.fire("solver.output", self.name)
        if action is not None and action.kind == "hang":
            waiter = cancel if cancel is not None else threading.Event()
            waiter.wait(min(timeout, faults.HANG_SECONDS))
            return SmtResult(Verdict.UNKNOWN, query.delta)
        transcript = "unknown\n"
        if action is not None and action.kind == "garbage":
            transcript = action.payload or "Segmentation fault (core dumped)\n<<?>>"
        if not transcript_recognized(transcript):
            breaker.record_failure()
            return SmtResult(Verdict.UNKNOWN, query.delta)
        breaker.record_success()
        return SmtResult(Verdict.UNKNOWN, query.delta)


@dataclass
class ChaosOutcome:
    """One corpus point under one fault scenario."""

    index: int
    scenario: str
    family: str
    params: "dict[str, float | int | str]"
    engine: str
    seed: int
    plan: dict
    ok: bool
    detail: str = ""
    #: faults that actually fired (a plan can schedule past the run)
    fired: "list[dict]" = field(default_factory=list)
    #: incident-log counts observed during the faulted run, by kind
    incidents: "dict[str, int]" = field(default_factory=dict)
    #: True when at least one fault fired and the verdict still held
    recovered: bool = False
    #: True when the engine ladder (or shard degrade) stepped down
    degraded: bool = False
    leaked_segments: "list[str]" = field(default_factory=list)
    leaked_pids: "list[int]" = field(default_factory=list)
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class ChaosReport:
    """Outcome of one chaos campaign."""

    seed: int
    samples: int
    outcomes: "list[ChaosOutcome]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> "list[ChaosOutcome]":
        return [o for o in self.outcomes if not o.ok]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "samples": self.samples,
            "ok": self.ok,
            "recovered": sum(o.recovered for o in self.outcomes),
            "degraded": sum(o.degraded for o in self.outcomes),
            "faults_fired": sum(len(o.fired) for o in self.outcomes),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def format(self) -> str:
        fired = sum(len(o.fired) for o in self.outcomes)
        lines = [
            f"chaos: {len(self.outcomes)}/{self.samples} samples "
            f"(seed {self.seed}), {fired} faults fired, "
            f"{sum(o.recovered for o in self.outcomes)} recovered, "
            f"{sum(o.degraded for o in self.outcomes)} degraded"
        ]
        for o in self.outcomes:
            if o.ok:
                continue
            params = ", ".join(f"{k}={v}" for k, v in sorted(o.params.items()))
            lines.append(
                f"  FAIL [{o.scenario}] {o.family}[{params}] "
                f"engine={o.engine}: {o.detail}"
            )
        if self.ok:
            lines.append("  every fault recovered or cleanly degraded")
        return "\n".join(lines)


def write_chaos_reproducer(
    outcome: ChaosOutcome, directory: "str | pathlib.Path"
) -> pathlib.Path:
    """Persist one failed outcome as a replayable JSON reproducer."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"chaos-{outcome.scenario}-{outcome.family}-"
        f"s{outcome.seed}-i{outcome.index}.json"
    )
    path.write_text(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    return path


# ----------------------------------------------------------------------
# Harness plumbing
# ----------------------------------------------------------------------
@contextlib.contextmanager
def _env(overrides: "dict[str, str]"):
    saved = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for name, old in saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old


@contextlib.contextmanager
def _chaos_solver_registered():
    from ..solvers.backends import register_solver, unregister_solver

    solver = ChaosSolver()
    register_solver(solver, replace=True)
    try:
        yield solver
    finally:
        unregister_solver(solver.name)


class ChaosHang(ReproError):
    """The faulted run blew through the hard wall-clock budget."""


def _guarded(fn, limit: float):
    """Run ``fn`` on a watchdog thread; :class:`ChaosHang` past ``limit``."""
    box: dict = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            box["error"] = exc

    thread = threading.Thread(target=target, name="repro-chaos-run", daemon=True)
    thread.start()
    thread.join(limit)
    if thread.is_alive():
        raise ChaosHang(f"faulted run still alive after {limit}s")
    if "error" in box:
        raise box["error"]
    return box.get("value")


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - platform-specific probe failure
        return False
    segment.close()
    return True


def _leaked_segments() -> "list[str]":
    from ..intervals import recent_segment_names

    return [name for name in recent_segment_names() if _segment_exists(name)]


def _leaked_children(before: "frozenset[int]", grace: float = 5.0) -> "list[int]":
    """Child processes born during the sample and still alive."""
    import multiprocessing as mp

    deadline = time.monotonic() + grace
    while True:
        fresh = [
            p for p in mp.active_children() if p.pid is not None and p.pid not in before
        ]
        if not fresh or time.monotonic() >= deadline:
            return sorted(p.pid for p in fresh)
        time.sleep(0.05)


def _strip(artifact) -> dict:
    """Artifact dict minus per-run timing noise (chaos parity view)."""
    from ..corpus.fuzz import VOLATILE_FIELDS

    data = artifact.to_dict()
    for volatile in VOLATILE_FIELDS:
        data.pop(volatile, None)
    if isinstance(data.get("config"), dict):
        data["config"].pop("engine", None)
    return data


def _point_setup(family_name: str, params: dict, seed: int):
    from ..api import get_family
    from ..api.runner import derive_scenario_seed

    family = get_family(family_name)
    scenario = family.instantiate(**params)
    config = dataclasses.replace(
        scenario.config, seed=derive_scenario_seed(seed, scenario.name)
    )
    return scenario, config


# ----------------------------------------------------------------------
# Scenario table: (engine, env overrides, plan builder)
# ----------------------------------------------------------------------
def _plan_for(scenario: str, at: int) -> FaultPlan:
    """The deterministic fault schedule of one chaos scenario."""
    if scenario == "shard-kill":
        actions = (FaultAction("shard.worker", "kill", at=at),)
    elif scenario == "shard-hang":
        actions = (FaultAction("shard.worker", "hang", at=at),)
    elif scenario == "pool-kill":
        actions = (FaultAction("pool.worker", "kill", at=0),)
    elif scenario == "solver-garbage":
        actions = (FaultAction("solver.output", "garbage", at=at),)
    elif scenario == "solver-hang":
        actions = (FaultAction("solver.output", "hang", at=at),)
    elif scenario == "solver-spawn":
        # A persistently failing launch: enough consecutive failures to
        # open the circuit (threshold 3) and exercise breaker skips.
        actions = (FaultAction("solver.spawn", "error", at=0, count=99),)
    elif scenario == "journal-torn":
        actions = (FaultAction("journal.append", "torn", at=at),)
    elif scenario == "store-torn":
        actions = (FaultAction("store.write", "torn", at=0),)
    else:  # pragma: no cover - table and rotation are both module-owned
        raise ReproError(f"unknown chaos scenario {scenario!r}")
    return FaultPlan(actions=actions, label=scenario)


_SCENARIO_ENGINE = {
    "shard-kill": "sharded-icp",
    "shard-hang": "sharded-icp",
    "pool-kill": "batched-icp",
    "solver-garbage": "portfolio",
    "solver-hang": "portfolio",
    "solver-spawn": "portfolio",
    "journal-torn": "batched-icp",
    "store-torn": "batched-icp",
}

_SCENARIO_ENV = {
    # Force real worker teams (and a short round deadline so an
    # injected SIGSTOP trips WorkerDied in seconds, not half a minute).
    "shard-kill": {"REPRO_SHARDS": "2", "REPRO_SHARD_TIMEOUT": "10"},
    "shard-hang": {"REPRO_SHARDS": "2", "REPRO_SHARD_TIMEOUT": "2"},
    # A SIGSTOPped pool worker is caught by the chunk deadline instead.
    "pool-kill": {"REPRO_CHUNK_TIMEOUT": "60"},
}


# ----------------------------------------------------------------------
# Per-scenario executions
# ----------------------------------------------------------------------
def _exec_run(family_name, params, seed, engine, plan, hard_timeout):
    """Baseline-vs-faulted comparison through :func:`repro.api.run`."""
    from ..api import run

    scenario, config = _point_setup(family_name, params, seed)
    baseline = run(scenario, config=config, engine=engine, cache=False)
    reset_breakers()
    clear_incidents()
    with faults.injected(plan):
        faulted = _guarded(
            lambda: run(scenario, config=config, engine=engine, cache=False),
            hard_timeout,
        )
        fired = faults.fired_faults()
    if _strip(faulted) != _strip(baseline):
        diff = [
            key
            for key, value in _strip(baseline).items()
            if _strip(faulted).get(key) != value
        ]
        return False, f"verdict/artifact flip in fields: {', '.join(diff)}", fired
    return True, "", fired


def _exec_batch(family_name, params, seed, engine, plan, hard_timeout, index):
    """Baseline-vs-faulted comparison through :func:`repro.api.run_batch`."""
    from ..api.runner import run_batch
    from ..corpus.fuzz import sample_corpus_point

    other = sample_corpus_point(family_name, index + 1_000_003, seed)
    scenario_a, _ = _point_setup(family_name, params, seed)
    scenario_b, _ = _point_setup(family_name, other, seed)
    pair = [scenario_a, scenario_b]
    baseline = run_batch(pair, workers=2, seed=seed, engine=engine, cache=False)
    reset_breakers()
    clear_incidents()
    with faults.injected(plan):
        faulted = _guarded(
            lambda: run_batch(pair, workers=2, seed=seed, engine=engine, cache=False),
            hard_timeout,
        )
        fired = faults.fired_faults()
    for i, (base, fault) in enumerate(zip(baseline, faulted)):
        if _strip(fault) != _strip(base):
            return False, f"batch point {i} flipped under {plan.label}", fired
    return True, "", fired


def _exec_journal(family_name, params, seed, engine, plan, hard_timeout):
    """End-to-end service job under a torn-journal schedule."""
    from ..api import run
    from ..service.jobs import JobJournal, JobSpec
    from ..service.scheduler import Scheduler

    scenario, config = _point_setup(family_name, params, seed)
    baseline = run(scenario, config=config, engine=engine, cache=False)
    reset_breakers()
    clear_incidents()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        journal = JobJournal(pathlib.Path(tmp) / "journal.jsonl")
        with faults.injected(plan):

            def service_round():
                scheduler = Scheduler(
                    store=None, pool=False, workers=1, journal=journal
                )
                try:
                    job = scheduler.submit(
                        JobSpec(
                            target=family_name,
                            overrides=params,
                            seed=seed,
                            engine=engine,
                        )
                    )
                    deadline = time.monotonic() + hard_timeout
                    while not job.state.terminal:
                        if time.monotonic() > deadline:
                            raise ChaosHang(
                                f"service job still {job.state.value} "
                                f"after {hard_timeout}s"
                            )
                        time.sleep(0.02)
                    return job
                finally:
                    scheduler.shutdown(wait=True)

            job = _guarded(service_round, hard_timeout + 5.0)
            fired = faults.fired_faults()
        # Post-mortem, faults disabled: the torn line must be skipped by
        # readers and must not poison later records or the replay.
        try:
            parsed = list(journal.records())
            journal.replay()
        except Exception as exc:  # noqa: BLE001 - any parse crash is a finding
            return False, f"journal replay crashed after torn append: {exc}", fired
        if fired and not parsed:
            return False, "torn append left an unreadable journal", fired
        artifact = job.artifacts[0] if job.artifacts else None
        if artifact is None or job.state.value not in ("DONE", "FAILED"):
            return False, f"service job ended {job.state.value} without artifact", fired
        if _strip(artifact) != _strip(baseline):
            return False, "service artifact flipped under torn journal", fired
    return True, "", fired


def _exec_store(family_name, params, seed, engine, plan, hard_timeout):
    """Mid-write store crash: no partial entry, tmp GC'd, re-put works."""
    from ..api import run
    from ..store import ArtifactStore, run_key

    scenario, config = _point_setup(family_name, params, seed)
    baseline = run(scenario, config=config, engine=engine, cache=False)
    reset_breakers()
    clear_incidents()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        key = run_key(scenario, config, engine)
        with faults.injected(plan):
            crashed = False
            try:
                _guarded(lambda: store.put(key, baseline), hard_timeout)
            except faults.InjectedFault:
                crashed = True
            fired = faults.fired_faults()
        if not crashed:
            return False, "torn store write did not surface as a crash", fired
        if store.get(key) is not None:
            return False, "partial store entry visible after torn write", fired
        leftovers = list(pathlib.Path(tmp).rglob(".*.tmp"))
        if not leftovers:
            return False, "torn write left no tmp file to GC", fired
        removed = store.collect_garbage(max_age_seconds=0.0)
        if removed < 1 or list(pathlib.Path(tmp).rglob(".*.tmp")):
            return False, "tmp GC did not clean the torn write", fired
        store.put(key, baseline)
        revived = store.get(key)
        if revived is None or _strip(revived) != _strip(baseline):
            return False, "re-put after torn write did not round-trip", fired
    return True, "", fired


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def chaos(
    samples: int = 25,
    seed: int = 0,
    families: "tuple[str, ...] | None" = None,
    scenarios: "tuple[str, ...] | None" = None,
    hard_timeout: float = DEFAULT_HARD_TIMEOUT,
    reproducers_dir: "str | pathlib.Path | None" = None,
    progress=None,
) -> ChaosReport:
    """Run a chaos campaign: corpus points under rotating fault plans.

    Deterministic from ``seed``: sample ``i`` uses the fuzzer's corpus
    point ``i``, the fault scenario ``CHAOS_SCENARIOS[i % len]``, and a
    seed-derived hit index — so a failing sample replays exactly from
    ``(seed, index)``.  Stress-tagged families are skipped (their heavy
    budgets drown the signal).  Failed outcomes are written as JSON
    reproducers under ``reproducers_dir`` when one is given.
    """
    import multiprocessing as mp
    import random as random_module

    from ..api import family_names, get_family
    from ..api.runner import derive_scenario_seed
    from ..corpus.fuzz import sample_corpus_point

    if samples < 1:
        raise ReproError("need at least one chaos sample")
    rotation = tuple(scenarios) if scenarios else CHAOS_SCENARIOS
    for name in rotation:
        if name not in CHAOS_SCENARIOS:
            known = ", ".join(CHAOS_SCENARIOS)
            raise ReproError(f"unknown chaos scenario {name!r} (scenarios: {known})")
    names = tuple(families) if families else tuple(
        name for name in family_names() if "stress" not in get_family(name).tags
    )
    if not names:
        raise ReproError("no non-stress families to sample")

    report = ChaosReport(seed=seed, samples=samples)
    for index in range(samples):
        chaos_name = rotation[index % len(rotation)]
        family_name = names[index % len(names)]
        params = sample_corpus_point(family_name, index, seed)
        rng = random_module.Random(derive_scenario_seed(seed, f"chaos#{index}"))
        plan = _plan_for(chaos_name, at=rng.randint(0, 2))
        engine = _SCENARIO_ENGINE[chaos_name]
        if progress is not None:
            shown = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            progress(
                f"[{index + 1}/{samples}] {chaos_name} on "
                f"{family_name}[{shown}] ({engine})"
            )

        before_children = frozenset(
            p.pid for p in mp.active_children() if p.pid is not None
        )
        started = time.monotonic()
        needs_solver = chaos_name.startswith("solver-")
        solver_scope = (
            _chaos_solver_registered() if needs_solver else contextlib.nullcontext()
        )
        try:
            with _env(_SCENARIO_ENV.get(chaos_name, {})), solver_scope:
                if chaos_name == "pool-kill":
                    ok, detail, fired = _exec_batch(
                        family_name, params, seed, engine, plan, hard_timeout, index
                    )
                elif chaos_name == "journal-torn":
                    ok, detail, fired = _exec_journal(
                        family_name, params, seed, engine, plan, hard_timeout
                    )
                elif chaos_name == "store-torn":
                    ok, detail, fired = _exec_store(
                        family_name, params, seed, engine, plan, hard_timeout
                    )
                else:
                    ok, detail, fired = _exec_run(
                        family_name, params, seed, engine, plan, hard_timeout
                    )
        except ChaosHang as exc:
            ok, detail, fired = False, str(exc), faults.fired_faults()
        except Exception as exc:  # noqa: BLE001 - an unhealed fault is a finding
            ok = False
            detail = f"faulted run raised {type(exc).__name__}: {exc}"
            fired = faults.fired_faults()
        finally:
            faults.clear_plan()
        elapsed = time.monotonic() - started

        incident_counts: dict[str, int] = {}
        for entry in incidents():
            incident_counts[entry["kind"]] = incident_counts.get(entry["kind"], 0) + 1
        degraded = bool(
            incident_counts.get("engine.degrade") or incident_counts.get("shard.degrade")
        )
        leaked = _leaked_segments()
        leaked_pids = _leaked_children(before_children)
        if ok and leaked:
            ok, detail = False, f"leaked shm segments: {', '.join(leaked)}"
        if ok and leaked_pids:
            ok = False
            detail = f"leaked child processes: {leaked_pids}"

        outcome = ChaosOutcome(
            index=index,
            scenario=chaos_name,
            family=family_name,
            params=dict(params),
            engine=engine,
            seed=seed,
            plan=plan.to_dict(),
            ok=ok,
            detail=detail,
            fired=list(fired),
            incidents=incident_counts,
            recovered=bool(ok and fired),
            degraded=degraded,
            leaked_segments=leaked,
            leaked_pids=leaked_pids,
            seconds=elapsed,
        )
        report.outcomes.append(outcome)
        if not ok:
            if progress is not None:
                progress(f"  FAIL [{chaos_name}]: {detail}")
            if reproducers_dir is not None:
                write_chaos_reproducer(outcome, reproducers_dir)
    return report
