"""The corpus families: six parameterized workloads beyond the builtins.

Registered alongside the five builtin families of
:mod:`repro.api.family` (the family registry loads this module lazily,
so ``repro families`` always sees them):

``ackermann``          lane keeping with Ackermann steering geometry —
                       the rational curvature correction exercises
                       interval extended division
``unicycle``           unicycle in a corridor with exponential
                       obstacle fields at the walls
``quadrotor``          near-hover planar quadrotor (stress: capped
                       budget, expect ``no-candidate``)
``dubins-nn``          the paper's Dubins workload across controller
                       width *and hidden activation* (tansig/logsig)
``vanderpol``          reversed Van der Pol across the nonlinearity
                       strength ``mu``
``double-integrator``  double integrator across linear feedback gains

Every closed loop is built through :func:`repro.dynamics.compose`, so
each system carries both scalar and batch numeric forms — all engines
apply.  System builders are module-level (picklable into sweep/batch
worker processes) and fingerprint distinctly in the artifact store.

The ``dubins-nn`` logsig variant realizes the *identical* odd control
law as its tansig twin via ``2·sigma(2x) - 1 = tanh(x)`` (input and
output weights doubled, output bias ``-sum(w2)/2``) — same closed loop,
different expression tree through the solvers.
"""

from __future__ import annotations

import functools

import numpy as np

from ..barrier import Rectangle, RectangleComplement, SynthesisConfig
from ..dynamics import (
    ContinuousSystem,
    ackermann_plant,
    compose,
    error_dynamics_system,
    linear_plant,
    planar_quadrotor_plant,
    unicycle_plant,
    van_der_pol_system,
)
from ..nn import FeedforwardNetwork, Layer
from ..smt import IcpConfig
from ..api.family import (
    ParamSpec,
    ScenarioFamily,
    format_param_value,
    register_family,
)
from ..api.scenario import Scenario

__all__ = [
    "CORPUS_FAMILY_NAMES",
    "register_corpus_families",
]

#: the family names this module registers
CORPUS_FAMILY_NAMES = (
    "ackermann",
    "double-integrator",
    "dubins-nn",
    "quadrotor",
    "unicycle",
    "vanderpol",
)


# ----------------------------------------------------------------------
# System builders (module-level: picklable)
# ----------------------------------------------------------------------
def _saturating_gain_network(
    gains: "list[float]", limit: float
) -> FeedforwardNetwork:
    """``u = -limit * tanh((k . x) / limit)`` — the paper's saturating-
    proportional construction for an arbitrary gain row."""
    row = np.asarray([gains], dtype=float)
    return FeedforwardNetwork(
        [
            Layer(row / limit, np.zeros(1), "tansig"),
            Layer(np.array([[-limit]]), np.zeros(1), "linear"),
        ]
    )


def _ackermann_system(
    speed: float, wheelbase: float, track: float, max_steer: float = 0.4
) -> ContinuousSystem:
    """Ackermann-geometry lane keeping + saturating tansig steering NN."""
    plant = ackermann_plant(speed=speed, wheelbase=wheelbase, track=track)
    network = _saturating_gain_network([0.5, 1.2], max_steer)
    return compose(plant, network, name="ackermann+lane-keep-nn")


def _unicycle_system(
    speed: float,
    corridor: float,
    field_gain: float,
    field_sharpness: float,
    max_rate: float = 1.0,
) -> ContinuousSystem:
    """Corridor unicycle + saturating tansig turn-rate NN."""
    plant = unicycle_plant(
        speed=speed,
        corridor=corridor,
        field_gain=field_gain,
        field_sharpness=field_sharpness,
    )
    network = _saturating_gain_network([0.8, 1.6], max_rate)
    return compose(plant, network, name="unicycle+corridor-nn")


def _quadrotor_system(
    inertia: float, max_torque: float, gravity: float = 9.81
) -> ContinuousSystem:
    """Planar quadrotor + saturating tansig attitude/translation NN.

    Gains ``(k_v, k_theta, k_omega) = (-0.8, 6.0, 1.2)``: the torque
    must drive roll *toward* the lateral velocity (``vy' = -g tan th``),
    hence the negative velocity gain; the closed-loop linearization is
    Hurwitz for every inertia in the family's range.
    """
    plant = planar_quadrotor_plant(inertia=inertia, gravity=gravity)
    network = _saturating_gain_network([-0.8, 6.0, 1.2], max_torque)
    return compose(plant, network, name="quadrotor+attitude-nn")


def _dubins_nn_system(
    nn_width: int,
    activation: str,
    speed: float,
    squash: float = 0.25,
    d_gain: float = 0.6,
    theta_gain: float = 2.0,
) -> ContinuousSystem:
    """Dubins error dynamics under a width/activation-varied controller.

    The first ``nn_width // 2`` hidden units read the cross-track error,
    the rest the heading error; output weights normalize so the small-
    signal law is ``u = -(d_gain * d + theta_gain * theta)`` regardless
    of width.  ``logsig`` realizes the identical odd law through
    ``2 sigma(2x) - 1 = tanh(x)``.
    """
    n_d = nn_width // 2
    n_t = nn_width - n_d
    w1 = np.zeros((nn_width, 2))
    w2 = np.zeros((1, nn_width))
    b2 = np.zeros(1)
    w1[:n_d, 0] = squash
    w1[n_d:, 1] = squash
    w2[0, :n_d] = d_gain / (squash * n_d)
    w2[0, n_d:] = theta_gain / (squash * n_t)
    if activation == "logsig":
        w1 = w1 * 2.0
        w2 = w2 * 2.0
        b2[0] = -float(w2.sum()) / 2.0
    network = FeedforwardNetwork(
        [
            Layer(w1, np.zeros(nn_width), activation),
            Layer(w2, b2, "linear"),
        ]
    )
    return error_dynamics_system(network, speed=speed)


def _double_integrator_system(k1: float, k2: float) -> ContinuousSystem:
    """Double integrator closed with ``u = -k1 x0 - k2 x1``."""
    plant = linear_plant(
        np.array([[0.0, 1.0], [0.0, 0.0]]), np.array([[0.0], [1.0]])
    )
    network = FeedforwardNetwork(
        [Layer(np.array([[-k1, -k2]]), np.zeros(1), "linear")]
    )
    return compose(plant, network, name="double-integrator+nn")


# ----------------------------------------------------------------------
# Scenario factories
# ----------------------------------------------------------------------
def _ackermann_family(speed: float, wheelbase: float, track: float) -> Scenario:
    return Scenario(
        name="ackermann",
        description=(
            f"Ackermann-geometry lane keeping, speed "
            f"{format_param_value(speed)}, wheelbase "
            f"{format_param_value(wheelbase)}, track "
            f"{format_param_value(track)}"
        ),
        system_factory=functools.partial(
            _ackermann_system, speed=speed, wheelbase=wheelbase, track=track
        ),
        initial_set=Rectangle([-0.2, -0.15], [0.2, 0.15]),
        unsafe_set=RectangleComplement(Rectangle([-1.5, -0.8], [1.5, 0.8])),
        tags=("family", "corpus"),
    )


def _unicycle_family(
    speed: float, corridor: float, field_gain: float, field_sharpness: float
) -> Scenario:
    # The corridor walls *are* the unsafe boundary in ey.
    return Scenario(
        name="unicycle",
        description=(
            f"Corridor unicycle with wall obstacle fields, speed "
            f"{format_param_value(speed)}, half-width "
            f"{format_param_value(corridor)}, field gain "
            f"{format_param_value(field_gain)}"
        ),
        system_factory=functools.partial(
            _unicycle_system,
            speed=speed,
            corridor=corridor,
            field_gain=field_gain,
            field_sharpness=field_sharpness,
        ),
        initial_set=Rectangle([-0.2, -0.15], [0.2, 0.15]),
        unsafe_set=RectangleComplement(
            Rectangle([-corridor, -0.9], [corridor, 0.9])
        ),
        tags=("family", "corpus"),
    )


def _quadrotor_family(inertia: float, max_torque: float) -> Scenario:
    return Scenario(
        name="quadrotor",
        description=(
            f"Planar quadrotor near hover, inertia "
            f"{format_param_value(inertia)}, torque cap "
            f"{format_param_value(max_torque)} "
            "(capped budget: expect no-candidate)"
        ),
        system_factory=functools.partial(
            _quadrotor_system, inertia=inertia, max_torque=max_torque
        ),
        initial_set=Rectangle([-0.1, -0.02, -0.02], [0.1, 0.02, 0.02]),
        unsafe_set=RectangleComplement(
            Rectangle([-1.0, -0.25, -1.0], [1.0, 0.25, 1.0])
        ),
        # Like cartpole, the saturated gravity cascade defeats quadratic
        # templates — cap the budget so the family fails *fast* and
        # deterministically instead of grinding the ICP for minutes.
        config=SynthesisConfig(
            num_seed_traces=6,
            icp=IcpConfig(delta=1e-2, max_boxes=10_000, time_limit=1.0),
            max_candidate_iterations=1,
            max_levelset_iterations=1,
        ),
        tags=("family", "corpus", "stress"),
    )


def _dubins_nn_family(nn_width: int, activation: str, speed: float) -> Scenario:
    from ..api.scenario import GAMMA, paper_initial_set, paper_unsafe_set

    return Scenario(
        name="dubins-nn",
        description=(
            f"Dubins error dynamics, width-{nn_width} {activation} "
            f"controller, speed {format_param_value(speed)}"
        ),
        system_factory=functools.partial(
            _dubins_nn_system,
            nn_width=nn_width,
            activation=activation,
            speed=speed,
        ),
        initial_set=paper_initial_set(),
        unsafe_set=paper_unsafe_set(),
        config=SynthesisConfig(gamma=GAMMA),
        tags=("paper", "family", "corpus"),
    )


def _vanderpol_family(mu: float) -> Scenario:
    return Scenario(
        name="vanderpol",
        description=(
            f"Reversed Van der Pol oscillator, mu {format_param_value(mu)}"
        ),
        system_factory=functools.partial(
            van_der_pol_system, mu=mu, reversed_time=True
        ),
        initial_set=Rectangle([-0.15, -0.15], [0.15, 0.15]),
        unsafe_set=RectangleComplement(Rectangle([-0.9, -0.9], [0.9, 0.9])),
        tags=("family", "corpus"),
    )


def _double_integrator_family(k1: float, k2: float) -> Scenario:
    return Scenario(
        name="double-integrator",
        description=(
            f"Double integrator under u = -{format_param_value(k1)} x0 "
            f"- {format_param_value(k2)} x1"
        ),
        system_factory=functools.partial(_double_integrator_system, k1, k2),
        initial_set=Rectangle([-0.2, -0.2], [0.2, 0.2]),
        unsafe_set=RectangleComplement(Rectangle([-1.5, -1.5], [1.5, 1.5])),
        tags=("family", "corpus"),
    )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def register_corpus_families() -> None:
    """Register the six corpus families (idempotent)."""
    register_family(
        ScenarioFamily(
            name="ackermann",
            description="Ackermann-geometry lane keeping across speed, "
            "wheelbase, and track width (rational steering correction)",
            factory=_ackermann_family,
            parameters=(
                ParamSpec(
                    "speed", "float", default=1.0, low=0.25, high=3.0,
                    description="longitudinal speed V",
                ),
                ParamSpec(
                    "wheelbase", "float", default=1.0, low=0.5, high=3.0,
                    description="wheelbase L",
                ),
                ParamSpec(
                    "track", "float", default=0.8, low=0.4, high=1.0,
                    description="track width (rational correction strength)",
                ),
            ),
            tags=("corpus",),
        ),
        replace=True,
    )
    register_family(
        ScenarioFamily(
            name="unicycle",
            description="Unicycle in an obstacle-field corridor across "
            "speed, corridor half-width, and field gain/sharpness",
            factory=_unicycle_family,
            parameters=(
                ParamSpec(
                    "speed", "float", default=1.0, low=0.25, high=3.0,
                    description="forward speed V",
                ),
                ParamSpec(
                    "corridor", "float", default=1.5, low=1.0, high=2.5,
                    description="corridor half-width (the unsafe ey bound)",
                ),
                ParamSpec(
                    "field_gain", "float", default=0.5, low=0.0, high=1.5,
                    description="obstacle-field repulsion gain",
                ),
                ParamSpec(
                    "field_sharpness", "float", default=2.0, low=0.5, high=4.0,
                    description="obstacle-field exponential sharpness",
                ),
            ),
            tags=("corpus",),
        ),
        replace=True,
    )
    register_family(
        ScenarioFamily(
            name="quadrotor",
            description="Planar quadrotor near-hover stress workload "
            "across inertia and torque cap (capped budget)",
            factory=_quadrotor_family,
            parameters=(
                ParamSpec(
                    "inertia", "float", default=0.1, low=0.05, high=0.2,
                    description="roll inertia J",
                ),
                ParamSpec(
                    "max_torque", "float", default=1.0, low=0.5, high=2.0,
                    description="differential-torque saturation",
                ),
            ),
            tags=("corpus", "stress"),
        ),
        replace=True,
    )
    register_family(
        ScenarioFamily(
            name="dubins-nn",
            description="Paper workload across controller width and "
            "hidden activation (tansig/logsig realize the same odd law)",
            factory=_dubins_nn_family,
            parameters=(
                ParamSpec(
                    "nn_width", "int", default=8, low=2, high=64,
                    description="hidden-layer width",
                ),
                ParamSpec(
                    "activation", "choice", default="tansig",
                    choices=("tansig", "logsig"),
                    description="hidden activation",
                ),
                ParamSpec(
                    "speed", "float", default=1.0, low=0.5, high=2.0,
                    description="constant vehicle speed V",
                ),
            ),
            tags=("paper", "corpus"),
        ),
        replace=True,
    )
    register_family(
        ScenarioFamily(
            name="vanderpol",
            description="Reversed Van der Pol across the nonlinearity "
            "strength mu",
            factory=_vanderpol_family,
            parameters=(
                ParamSpec(
                    "mu", "float", default=1.0, low=0.25, high=2.5,
                    description="Van der Pol nonlinearity strength",
                ),
            ),
            tags=("corpus",),
        ),
        replace=True,
    )
    register_family(
        ScenarioFamily(
            name="double-integrator",
            description="Double integrator across linear feedback gains",
            factory=_double_integrator_family,
            parameters=(
                ParamSpec(
                    "k1", "float", default=1.0, low=0.25, high=3.0,
                    description="position gain",
                ),
                ParamSpec(
                    "k2", "float", default=1.6, low=0.5, high=3.0,
                    description="velocity gain",
                ),
            ),
            tags=("corpus",),
        ),
        replace=True,
    )


register_corpus_families()
