"""Lyapunov-candidate seeding tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import (
    QuadraticTemplate,
    linearize,
    lyapunov_candidate,
    symbolic_jacobian,
)
from repro.dynamics import error_dynamics_system, stable_linear_system
from repro.errors import SynthesisError
from repro.expr import evaluate
from repro.learning import proportional_controller_network


class TestSymbolicJacobian:
    def test_linear_system_exact(self):
        a = np.array([[-1.0, 2.0], [0.5, -3.0]])
        system = stable_linear_system(a)
        jac = symbolic_jacobian(system)
        env = {"x0": 0.7, "x1": -0.2}
        got = np.array([[evaluate(e, env) for e in row] for row in jac])
        assert np.allclose(got, a)

    def test_nn_system_matches_finite_differences(self):
        net = proportional_controller_network(6)
        system = error_dynamics_system(net)
        jac = symbolic_jacobian(system)
        x = np.array([0.4, -0.2])
        env = dict(zip(system.state_names, (float(v) for v in x)))
        symbolic = np.array([[evaluate(e, env) for e in row] for row in jac])
        h = 1e-6
        numeric = np.zeros((2, 2))
        for j in range(2):
            dx = np.zeros(2)
            dx[j] = h
            numeric[:, j] = (system.f(x + dx) - system.f(x - dx)) / (2 * h)
        assert np.allclose(symbolic, numeric, atol=1e-5)


class TestLinearize:
    def test_linear_recovers_a(self):
        a = np.array([[-0.5, 1.0], [-1.0, -0.5]])
        assert np.allclose(linearize(stable_linear_system(a)), a)

    def test_non_equilibrium_rejected(self):
        net = proportional_controller_network(4)
        system = error_dynamics_system(net)
        with pytest.raises(SynthesisError):
            linearize(system, equilibrium=np.array([1.0, 0.5]))

    def test_paper_system_jacobian_structure(self):
        """At the origin: d(derr')/d(thetaerr) = V, and the control
        gains appear negated in the second row."""
        net = proportional_controller_network(6, d_gain=0.6, theta_gain=2.0)
        system = error_dynamics_system(net, speed=1.0)
        a = linearize(system)
        assert a[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert a[0, 1] == pytest.approx(1.0, rel=1e-9)  # V cos(0)
        assert a[1, 0] == pytest.approx(-0.6, rel=1e-6)
        assert a[1, 1] == pytest.approx(-2.0, rel=1e-6)


class TestLyapunovCandidate:
    def test_stable_linear(self):
        a = np.array([[-0.5, 1.0], [-1.0, -0.5]])
        system = stable_linear_system(a)
        candidate = lyapunov_candidate(system)
        assert candidate.margin > 0.0
        tmpl = candidate.template
        p = tmpl.p_matrix(candidate.coefficients)
        assert np.linalg.eigvalsh(p).min() > 0.0
        # Lie derivative negative on samples.
        rng = np.random.default_rng(0)
        pts = rng.uniform(-2, 2, size=(100, 2))
        lie = candidate.lie_derivative_values(pts, system)
        assert np.all(lie < 0.0)

    def test_unstable_rejected(self):
        system = stable_linear_system(np.array([[0.2, 0.0], [0.0, -1.0]]))
        with pytest.raises(SynthesisError):
            lyapunov_candidate(system)

    def test_coefficients_in_unit_box(self):
        net = proportional_controller_network(6)
        system = error_dynamics_system(net)
        candidate = lyapunov_candidate(system)
        assert np.abs(candidate.coefficients).max() == pytest.approx(1.0)

    def test_seeds_paper_verification(self, paper_sets):
        """A Lyapunov candidate passes the SMT conditions directly —
        no simulation required for this system."""
        from repro.barrier import (
            BarrierCertificate,
            VerificationProblem,
            condition5_subproblems,
        )
        from repro.smt import IcpConfig, check_exists_on_boxes

        x0, unsafe, _ = paper_sets
        net = proportional_controller_network(6)
        system = error_dynamics_system(net)
        problem = VerificationProblem(system, x0, unsafe)
        candidate = lyapunov_candidate(system)
        result = check_exists_on_boxes(
            condition5_subproblems(candidate.expression, problem, 1e-6),
            problem.state_names,
            IcpConfig(delta=1e-3),
        )
        assert result.is_unsat
