"""Axis-aligned boxes (interval vectors) used as ICP search regions."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import IntervalError
from .interval import Interval

__all__ = ["Box"]


class Box:
    """An n-dimensional axis-aligned box: one :class:`Interval` per variable.

    Boxes are the unit of work of the branch-and-prune solver: they are
    evaluated through constraint expressions, contracted, bisected, and
    pruned.  A box is immutable; contractors return new boxes.

    Examples
    --------
    >>> box = Box([Interval(0, 1), Interval(-2, 2)])
    >>> box.dimension
    2
    >>> box.widest_dimension()
    1
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval]):
        intervals = tuple(intervals)
        if not intervals:
            raise IntervalError("a box needs at least one dimension")
        for ival in intervals:
            if not isinstance(ival, Interval):
                raise IntervalError(f"box components must be Interval, got {ival!r}")
        object.__setattr__(self, "_intervals", intervals)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Box is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_bounds(lower: Sequence[float], upper: Sequence[float]) -> "Box":
        """Box from parallel arrays of lower and upper bounds."""
        lower = list(lower)
        upper = list(upper)
        if len(lower) != len(upper):
            raise IntervalError("lower/upper bound lengths differ")
        return Box(Interval(lo, hi) for lo, hi in zip(lower, upper))

    @staticmethod
    def from_point(point: Sequence[float]) -> "Box":
        """Degenerate box at a single point."""
        return Box(Interval.point(float(v)) for v in point)

    @staticmethod
    def from_array(bounds: np.ndarray) -> "Box":
        """Box from an ``(n, 2)`` array of ``[lo, hi]`` rows."""
        bounds = np.asarray(bounds, dtype=float)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise IntervalError(f"expected an (n, 2) array, got shape {bounds.shape}")
        return Box(Interval(lo, hi) for lo, hi in bounds)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of variables."""
        return len(self._intervals)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The component intervals, in variable order."""
        return self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __getitem__(self, index: int) -> Interval:
        return self._intervals[index]

    def lower(self) -> np.ndarray:
        """Vector of lower bounds."""
        return np.array([ival.lo for ival in self._intervals])

    def upper(self) -> np.ndarray:
        """Vector of upper bounds."""
        return np.array([ival.hi for ival in self._intervals])

    def to_array(self) -> np.ndarray:
        """``(n, 2)`` array of ``[lo, hi]`` rows."""
        return np.array([[ival.lo, ival.hi] for ival in self._intervals])

    def midpoint(self) -> np.ndarray:
        """Component-wise midpoints (always inside the box)."""
        return np.array([ival.midpoint() for ival in self._intervals])

    def widths(self) -> np.ndarray:
        """Component-wise widths."""
        return np.array([ival.width() for ival in self._intervals])

    def max_width(self) -> float:
        """Largest component width."""
        return max(ival.width() for ival in self._intervals)

    def widest_dimension(self) -> int:
        """Index of the widest component (first among ties)."""
        widths = [ival.width() for ival in self._intervals]
        return widths.index(max(widths))

    def volume(self) -> float:
        """Product of widths (0 for degenerate, inf for unbounded boxes)."""
        vol = 1.0
        for ival in self._intervals:
            vol *= ival.width()
        return vol

    def is_finite(self) -> bool:
        """True when every component is finite."""
        return all(ival.is_finite() for ival in self._intervals)

    def contains(self, point: Sequence[float]) -> bool:
        """Membership test for a point vector."""
        point = list(point)
        if len(point) != self.dimension:
            raise IntervalError("point dimension mismatch")
        return all(ival.contains(v) for ival, v in zip(self._intervals, point))

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` is a subset of this box."""
        self._check_dimension(other)
        return all(
            mine.contains_interval(theirs)
            for mine, theirs in zip(self._intervals, other._intervals)
        )

    def intersects(self, other: "Box") -> bool:
        """True when the boxes share at least one point."""
        self._check_dimension(other)
        return all(
            mine.intersects(theirs)
            for mine, theirs in zip(self._intervals, other._intervals)
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def replace(self, index: int, interval: Interval) -> "Box":
        """New box with component ``index`` swapped out."""
        parts = list(self._intervals)
        parts[index] = interval
        return Box(parts)

    def intersection(self, other: "Box") -> "Box":
        """Component-wise intersection; raises when any component is disjoint."""
        self._check_dimension(other)
        return Box(
            mine.intersection(theirs)
            for mine, theirs in zip(self._intervals, other._intervals)
        )

    def try_intersection(self, other: "Box") -> "Box | None":
        """Component-wise intersection or None when empty."""
        self._check_dimension(other)
        parts = []
        for mine, theirs in zip(self._intervals, other._intervals):
            piece = mine.try_intersection(theirs)
            if piece is None:
                return None
            parts.append(piece)
        return Box(parts)

    def hull(self, other: "Box") -> "Box":
        """Component-wise hull."""
        self._check_dimension(other)
        return Box(
            mine.hull(theirs)
            for mine, theirs in zip(self._intervals, other._intervals)
        )

    def inflate(self, absolute: float = 0.0, relative: float = 0.0) -> "Box":
        """Component-wise widening."""
        return Box(ival.inflate(absolute, relative) for ival in self._intervals)

    def bisect(self, dimension: int | None = None) -> tuple["Box", "Box"]:
        """Split along ``dimension`` (default: widest) at its midpoint."""
        if dimension is None:
            dimension = self.widest_dimension()
        left, right = self._intervals[dimension].split()
        return self.replace(dimension, left), self.replace(dimension, right)

    def sample_grid(self, per_dimension: int) -> np.ndarray:
        """Uniform grid of sample points, shape ``(per_dimension**n, n)``.

        Degenerate and infinite components are sampled at their midpoint.
        """
        if per_dimension < 1:
            raise IntervalError("per_dimension must be >= 1")
        axes = []
        for ival in self._intervals:
            if not ival.is_finite() or ival.is_point() or per_dimension == 1:
                axes.append(np.array([ival.midpoint()]))
            else:
                axes.append(np.linspace(ival.lo, ival.hi, per_dimension))
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=-1)

    def clip_point(self, point: Sequence[float]) -> np.ndarray:
        """Project a point onto the box component-wise."""
        point = np.asarray(point, dtype=float)
        return np.clip(point, self.lower(), self.upper())

    def _check_dimension(self, other: "Box") -> None:
        if self.dimension != other.dimension:
            raise IntervalError(
                f"box dimension mismatch: {self.dimension} vs {other.dimension}"
            )

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(repr(ival) for ival in self._intervals)
        return f"Box([{inner}])"

    def __str__(self) -> str:
        return " x ".join(str(ival) for ival in self._intervals)
