"""Table 1 — timing analysis of verification vs. network size.

For each hidden-layer width the paper reports, run the full Figure-1
procedure over several seeds (the paper averages 30; the default here is
smaller for practicality and configurable) and report the same columns:

====================  =====================================================
Column                Meaning
====================  =====================================================
``neurons``           hidden-layer width ``Nh``
``avg_iterations``    candidate-loop iterations (Solve LP + Check (5))
``lp_seconds``        average cumulative LP time per run
``query_seconds``     average cumulative SMT time in check (5)
``generator_seconds`` average time of the whole candidate loop
``other_seconds``     everything else (simulation, level set, checks 6-7)
``total_seconds``     average wall-clock of the whole procedure
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

import dataclasses

from ..api import (
    case_study_controller,
    dubins_scenario,
    get_family,
    get_scenario,
    parse_point_spec,
    run_batch,
)
from ..barrier import SynthesisConfig
from ..smt import IcpConfig

__all__ = ["PAPER_NEURON_COUNTS", "Table1Row", "run_table1", "format_table1"]

#: hidden-layer widths of the paper's Table 1
PAPER_NEURON_COUNTS = (10, 20, 40, 50, 70, 80, 90, 100, 300, 500, 700, 1000)


@dataclass
class Table1Row:
    """Aggregated results for one network width (or named scenario).

    ``label`` is empty for the paper's width-sweep rows (the ``neurons``
    column identifies them); registered-scenario rows carry the scenario
    name instead and leave ``neurons`` at 0.
    """

    neurons: int
    avg_iterations: float
    lp_seconds: float
    query_seconds: float
    generator_seconds: float
    other_seconds: float
    total_seconds: float
    verified_fraction: float
    runs: int
    label: str = ""


def run_table1(
    neuron_counts: Sequence[int] = PAPER_NEURON_COUNTS,
    seeds: Sequence[int] = (0, 1, 2),
    trained: bool = False,
    delta: float = 1e-3,
    workers: int = 1,
    engine: str | None = None,
    scenarios: Sequence[str] = (),
    families: Sequence[str] = (),
) -> list[Table1Row]:
    """Regenerate Table 1 through :mod:`repro.api`.

    Each (width, seed) pair runs the complete synthesis procedure; the
    seed drives the random seed-trace sampling, mirroring the paper's
    "each experiment uses a unique seed to generate the initial
    simulations".  ``workers > 1`` fans the runs out over worker
    processes via :func:`repro.api.run_batch` — timing columns then
    reflect per-run wall clock under whatever core contention the fan-out
    creates, so keep ``workers=1`` for paper-comparable numbers.
    ``engine`` selects the solver stack (default ``native``, which
    reproduces the historical numbers exactly).

    ``scenarios`` appends one row per registered scenario name (e.g.
    ``("bicycle", "cartpole")``), run over the same seeds and reported
    in the same columns — the table-1 treatment for workloads beyond
    the paper's width sweep.  Scenario rows keep their registered
    synthesis config (seed overridden per run).

    ``families`` appends one row per family *instantiation* spec, e.g.
    ``("bicycle:wheelbase=1.5", "dubins:speed=2,nn_width=20")`` — each
    parsed by :func:`repro.api.parse_point_spec`, instantiated through
    the family registry, and run over the same seeds.  Family rows are
    labeled with the instantiated scenario name
    (``bicycle[lane_width=3,speed=1,wheelbase=1.5]``).
    """
    # The per-run seed drives only the synthesis (seed-trace sampling):
    # each width uses one controller across all seeds.  Trained
    # controllers are built here, in the parent, so worker processes
    # never repeat the expensive CMA-ES search.
    networks = {
        neurons: case_study_controller(neurons, trained=trained)
        for neurons in neuron_counts
    }
    workloads = [
        dubins_scenario(
            network=networks[neurons],
            config=SynthesisConfig(seed=seed, icp=IcpConfig(delta=delta)),
            name=f"dubins-nh{neurons}-seed{seed}",
        )
        for neurons in neuron_counts
        for seed in seeds
    ]
    scenario_runs = [
        dataclasses.replace(
            get_scenario(name),
            name=f"{name}-seed{seed}",
            config=dataclasses.replace(get_scenario(name).config, seed=seed),
        )
        for name in scenarios
        for seed in seeds
    ]
    family_points = [
        get_family(fname).instantiate(**params)
        for fname, params in (parse_point_spec(spec) for spec in families)
    ]
    family_runs = [
        dataclasses.replace(
            point,
            name=f"{point.name}-seed{seed}",
            config=dataclasses.replace(point.config, seed=seed),
        )
        for point in family_points
        for seed in seeds
    ]
    artifacts = run_batch(
        list(workloads) + scenario_runs + family_runs,
        workers=max(1, workers),
        engine=engine,
    )
    failed = [a for a in artifacts if a.error]
    if failed:
        details = "; ".join(f"{a.scenario}: {a.error}" for a in failed)
        raise RuntimeError(f"table1 runs failed — {details}")
    per_width = len(seeds)
    labels = (
        [(n, "") for n in neuron_counts]
        + [(0, name) for name in scenarios]
        + [(0, point.name) for point in family_points]
    )
    rows = []
    for i, (neurons, label) in enumerate(labels):
        group = artifacts[i * per_width : (i + 1) * per_width]
        rows.append(
            Table1Row(
                neurons=neurons,
                avg_iterations=float(
                    np.mean([a.candidate_iterations for a in group])
                ),
                lp_seconds=float(np.mean([a.lp_seconds for a in group])),
                query_seconds=float(np.mean([a.query_seconds for a in group])),
                generator_seconds=float(
                    np.mean([a.generator_seconds for a in group])
                ),
                other_seconds=float(np.mean([a.other_seconds for a in group])),
                total_seconds=float(np.mean([a.total_seconds for a in group])),
                verified_fraction=sum(a.verified for a in group) / len(group),
                runs=len(group),
                label=label,
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's column layout."""
    header = (
        f"{'Neurons':>10} {'AvgIter':>8} {'LP(s)':>8} {'Query(s)':>9} "
        f"{'Gen(s)':>8} {'Other(s)':>9} {'Total(s)':>9} {'Verified':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        name = row.label or str(row.neurons)
        lines.append(
            f"{name:>10} {row.avg_iterations:>8.1f} {row.lp_seconds:>8.2f} "
            f"{row.query_seconds:>9.2f} {row.generator_seconds:>8.2f} "
            f"{row.other_seconds:>9.2f} {row.total_seconds:>9.2f} "
            f"{row.verified_fraction:>8.0%}"
        )
    return "\n".join(lines)
