"""Scenarios: named, self-contained verification workloads.

A :class:`Scenario` bundles everything the Figure-1 procedure needs —
a factory for the closed-loop system (plant + controller), the initial /
unsafe / domain sets, and a :class:`~repro.barrier.SynthesisConfig` —
into one frozen, reusable object.  A string-keyed registry makes every
scenario addressable from the CLI (``python -m repro scenarios``) and
from :func:`repro.api.run`; adding a new workload is one
:func:`register_scenario` call.

The registry ships pre-populated with the paper's Dubins error-dynamics
case study and the benchmark plants of :mod:`repro.dynamics.library`
(linear ground truth, double integrator under linear state feedback,
torque-limited inverted pendulum, reversed Van der Pol,
kinematic-bicycle lane keeping, and the 4-D cart-pole stress workload).

This module is also the canonical home of the Section 4.3 constants
(``EPSILON``, ``GAMMA``, ``SPEED``) and the case-study builders that
:mod:`repro.experiments.setup` re-exports for backward compatibility.

System factories are module-level callables (or ``functools.partial``
over them) so scenarios pickle cleanly into the worker processes of
:func:`repro.api.run_batch`.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..barrier import (
    LpConfig,
    Rectangle,
    RectangleComplement,
    SynthesisConfig,
    VerificationProblem,
)
from ..dynamics import (
    ContinuousSystem,
    cartpole_plant,
    compose,
    error_dynamics_system,
    inverted_pendulum_plant,
    kinematic_bicycle_plant,
    linear_plant,
    stable_linear_system,
    van_der_pol_system,
)
from ..errors import ReproError
from ..learning import proportional_controller_network, train_paper_controller
from ..nn import FeedforwardNetwork, Layer
from ..smt import IcpConfig

__all__ = [
    "EPSILON",
    "GAMMA",
    "SPEED",
    "Scenario",
    "case_study_controller",
    "dubins_scenario",
    "get_scenario",
    "list_scenarios",
    "paper_initial_set",
    "paper_problem",
    "paper_unsafe_set",
    "register_scenario",
    "scenario_names",
    "synthesis_config_from_dict",
    "synthesis_config_to_dict",
    "unregister_scenario",
]

#: the paper's unsafe-set shrink parameter (U excludes a strip below pi/2)
EPSILON = 0.1
#: Lie-derivative slack of Eq. (5)
GAMMA = 1.0e-6
#: constant vehicle speed V
SPEED = 1.0


def paper_initial_set() -> Rectangle:
    """``X0 = [-1, 1] x [-pi/16, pi/16]``."""
    return Rectangle([-1.0, -math.pi / 16.0], [1.0, math.pi / 16.0])


def paper_unsafe_set(epsilon: float = EPSILON) -> RectangleComplement:
    """``U`` = outside ``[-5, 5] x [-(pi/2 - eps), pi/2 - eps]``."""
    bound = math.pi / 2.0 - epsilon
    return RectangleComplement(Rectangle([-5.0, -bound], [5.0, bound]))


def paper_problem(
    network: FeedforwardNetwork,
    speed: float = SPEED,
    epsilon: float = EPSILON,
) -> VerificationProblem:
    """The full verification problem for a given controller network."""
    system = error_dynamics_system(network, speed=speed)
    return VerificationProblem(
        system,
        initial_set=paper_initial_set(),
        unsafe_set=paper_unsafe_set(epsilon),
    )


def case_study_controller(
    hidden_neurons: int,
    trained: bool = False,
    seed: int = 0,
    train_iterations: int = 25,
    train_population: int = 16,
) -> FeedforwardNetwork:
    """A controller of the requested width.

    ``trained=False`` (default) returns the deterministic hand-built
    saturating-proportional network — verification cost depends only on
    width, which is the Table 1 axis.  ``trained=True`` runs the paper's
    CMA-ES policy search first (slow for large widths).
    """
    if not trained:
        return proportional_controller_network(hidden_neurons)
    return _trained_controller(
        hidden_neurons, seed, train_iterations, train_population
    )


@functools.lru_cache(maxsize=None)
def _trained_controller(
    hidden_neurons: int,
    seed: int,
    train_iterations: int,
    train_population: int,
) -> FeedforwardNetwork:
    """CMA-ES training is deterministic in its arguments and expensive;
    cache so repeated scenario instantiations (e.g. one per synthesis
    seed in Table 1) train once per process."""
    result = train_paper_controller(
        hidden_neurons=hidden_neurons,
        seed=seed,
        population_size=train_population,
        max_iterations=train_iterations,
    )
    return result.network


# ----------------------------------------------------------------------
# Scenario + registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One named verification workload.

    ``system_factory`` builds the closed-loop
    :class:`~repro.dynamics.ContinuousSystem` on demand (plant composed
    with its controller); the sets and config are plain data.  Instances
    are frozen so registered scenarios are safe to share across runs and
    worker processes.
    """

    name: str
    description: str
    system_factory: Callable[[], ContinuousSystem]
    initial_set: Rectangle
    unsafe_set: RectangleComplement
    domain: Rectangle | None = None
    config: SynthesisConfig = field(default_factory=SynthesisConfig)
    #: free-form grouping labels ("paper", "library", ...)
    tags: tuple[str, ...] = ()
    #: solver stack override: a registered engine name (see
    #: :mod:`repro.engine`); None defers to ``config.engine``.  When
    #: set, it outranks the engine of *any* config handed to
    #: :func:`repro.api.run` — only an explicit ``engine=`` argument
    #: overrides it.
    engine: str | None = None
    #: name of the :class:`~repro.api.family.ScenarioFamily` this
    #: scenario was instantiated from (None for hand-built scenarios)
    family: str | None = None
    #: the instantiation parameters, as a name-sorted tuple of
    #: ``(name, value)`` pairs — hashable, picklable, and the identity
    #: half of the :mod:`repro.store` cache key for family runs
    family_params: tuple[tuple[str, float | int | str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("scenarios need a non-empty name")
        if not callable(self.system_factory):
            raise ReproError("system_factory must be callable")

    @property
    def dimension(self) -> int:
        """State dimension (from the initial set; no system build)."""
        return self.initial_set.dimension

    def problem(self) -> VerificationProblem:
        """Instantiate the system and assemble the verification problem."""
        return VerificationProblem(
            self.system_factory(),
            initial_set=self.initial_set,
            unsafe_set=self.unsafe_set,
            domain=self.domain,
        )

    def with_config(self, config: SynthesisConfig) -> "Scenario":
        """A copy of this scenario running under a different config."""
        return dataclasses.replace(self, config=config)

    def with_engine(self, engine: str | None) -> "Scenario":
        """A copy of this scenario running on a different engine."""
        return dataclasses.replace(self, engine=engine)


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the global registry and return it.

    Re-registering an existing name raises unless ``replace=True``.
    """
    if not replace and scenario.name in _REGISTRY:
        raise ReproError(
            f"scenario {scenario.name!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a scenario from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ReproError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def list_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


# ----------------------------------------------------------------------
# SynthesisConfig <-> plain-dict (JSON) conversion
# ----------------------------------------------------------------------
def synthesis_config_to_dict(config: SynthesisConfig) -> dict:
    """Flatten a config (incl. nested LP/ICP knobs) to JSON-safe data.

    An :class:`~repro.engine.Engine` object in ``config.engine`` flattens
    to its registry name (backend objects are not JSON material).

    ``icp.shards`` is dropped: it is an execution-layout knob with no
    effect on results (the shard-parity gate pins bit-identity), so
    artifact JSON and store run keys stay shard-invariant.
    """
    engine = config.engine
    if not isinstance(engine, str):
        config = dataclasses.replace(config, engine=getattr(engine, "name", str(engine)))
    data = dataclasses.asdict(config)
    icp = data.get("icp")
    if isinstance(icp, dict):
        icp.pop("shards", None)
    return data


def synthesis_config_from_dict(data: dict) -> SynthesisConfig:
    """Inverse of :func:`synthesis_config_to_dict`."""
    payload = dict(data)
    lp = payload.pop("lp", None)
    icp = payload.pop("icp", None)
    if lp is not None:
        payload["lp"] = LpConfig(**lp)
    if icp is not None:
        payload["icp"] = IcpConfig(**icp)
    return SynthesisConfig(**payload)


# ----------------------------------------------------------------------
# Built-in scenario factories (module-level: picklable for run_batch)
# ----------------------------------------------------------------------
def _dubins_system(
    hidden_neurons: int = 10,
    trained: bool = False,
    seed: int = 0,
    speed: float = SPEED,
) -> ContinuousSystem:
    """The paper's closed-loop Dubins error dynamics (Section 4.1.4)."""
    network = case_study_controller(hidden_neurons, trained=trained, seed=seed)
    return error_dynamics_system(network, speed=speed)


def _linear_ground_truth_system() -> ContinuousSystem:
    """Autonomous stable linear system with an analytic Lyapunov barrier."""
    return stable_linear_system(np.array([[-0.5, 1.0], [-1.0, -0.5]]))


def _double_integrator_system() -> ContinuousSystem:
    """Double integrator closed with a linear state-feedback network.

    ``u = -x0 - 1.6 x1`` gives closed-loop poles at ``-0.8 ± 0.6j`` —
    exercises :func:`repro.dynamics.linear_plant` + :func:`compose` with
    a purely linear (no hidden layer) network.
    """
    plant = linear_plant(
        np.array([[0.0, 1.0], [0.0, 0.0]]), np.array([[0.0], [1.0]])
    )
    network = FeedforwardNetwork(
        [Layer(np.array([[-1.0, -1.6]]), np.zeros(1), "linear")]
    )
    return compose(plant, network, name="double-integrator+lqr-nn")


def _pendulum_system() -> ContinuousSystem:
    """Inverted pendulum stabilized by a saturating tansig PD network."""
    plant = inverted_pendulum_plant(mass=0.5, length=0.5, damping=0.1)
    kp, kd, squash = 12.0, 4.0, 0.5
    network = FeedforwardNetwork(
        [
            Layer(np.array([[squash, 0.0], [0.0, squash]]), np.zeros(2), "tansig"),
            Layer(np.array([[-kp / squash, -kd / squash]]), np.zeros(1), "linear"),
        ]
    )
    return compose(plant, network, name="pendulum+pd-nn")


def _van_der_pol_reversed_system() -> ContinuousSystem:
    """Reversed Van der Pol oscillator (autonomous benchmark)."""
    return van_der_pol_system(mu=1.0, reversed_time=True)


def _bicycle_system(
    speed: float = 1.0, wheelbase: float = 1.0, max_steer: float = 0.4
) -> ContinuousSystem:
    """Kinematic-bicycle lane keeping under a saturating tansig NN.

    The steering law ``delta = -d_max * tanh((k1 ey + k2 epsi) / d_max)``
    is the same saturating-proportional construction as the paper's
    hand-built Dubins controller; gains ``k1 = 0.5``, ``k2 = 1.2`` place
    the linearized poles of (ey, epsi) at stable ``-0.6 ± 0.37j``.
    """
    k1, k2 = 0.5, 1.2
    plant = kinematic_bicycle_plant(speed=speed, wheelbase=wheelbase)
    network = FeedforwardNetwork(
        [
            Layer(
                np.array([[k1 / max_steer, k2 / max_steer]]),
                np.zeros(1),
                "tansig",
            ),
            Layer(np.array([[-max_steer]]), np.zeros(1), "linear"),
        ]
    )
    return compose(plant, network, name="bicycle+lane-keep-nn")


def _cartpole_system(max_accel: float = 10.0) -> ContinuousSystem:
    """Cart-pole balanced by a saturating LQR-gain tansig network.

    The acceleration-input benchmark form of
    :func:`~repro.dynamics.cartpole_plant`; gains come from the
    continuous-time LQR of the upright linearization
    (``Q = diag(1, 1, 5, 1)``, ``R = 1``), and the tansig squash caps
    the commanded acceleration at ``max_accel`` the same way the paper's
    controller caps the steering rate.
    """
    gains = np.array([[1.0, 2.2, 28.62, 6.52]])
    plant = cartpole_plant(control="acceleration")
    network = FeedforwardNetwork(
        [
            Layer(gains / max_accel, np.zeros(1), "tansig"),
            Layer(np.array([[max_accel]]), np.zeros(1), "linear"),
        ]
    )
    return compose(plant, network, name="cartpole+lqr-nn")


def dubins_scenario(
    hidden_neurons: int = 10,
    trained: bool = False,
    seed: int = 0,
    config: SynthesisConfig | None = None,
    name: str | None = None,
    network: FeedforwardNetwork | None = None,
) -> Scenario:
    """The paper's case study for an arbitrary controller.

    The width-10 hand-built controller is pre-registered as ``dubins``;
    this factory parameterizes the same workload for Table-1 sweeps.
    Passing ``network`` verifies that exact controller (e.g. one loaded
    from JSON) instead of building one.
    """
    if network is not None:
        factory = functools.partial(error_dynamics_system, network)
        label = name or "dubins-custom"
        description = "Dubins error dynamics under a user-supplied controller"
    else:
        factory = functools.partial(
            _dubins_system, hidden_neurons=hidden_neurons, trained=trained, seed=seed
        )
        label = name or f"dubins-nh{hidden_neurons}" + ("-trained" if trained else "")
        description = (
            f"Dubins error dynamics, width-{hidden_neurons} tansig controller "
            f"({'CMA-ES trained' if trained else 'hand-built'})"
        )
    return Scenario(
        name=label,
        description=description,
        system_factory=factory,
        initial_set=paper_initial_set(),
        unsafe_set=paper_unsafe_set(),
        config=config or SynthesisConfig(gamma=GAMMA),
        tags=("paper",),
    )


def _register_builtins() -> None:
    register_scenario(
        Scenario(
            name="dubins",
            description="Paper case study: Dubins path-following error "
            "dynamics under a width-10 tansig NN steering controller",
            system_factory=_dubins_system,
            initial_set=paper_initial_set(),
            unsafe_set=paper_unsafe_set(),
            config=SynthesisConfig(gamma=GAMMA),
            tags=("paper",),
        )
    )
    register_scenario(
        Scenario(
            name="linear",
            description="Stable linear system x' = Ax with an analytic "
            "Lyapunov barrier (the test suite's ground truth)",
            system_factory=_linear_ground_truth_system,
            initial_set=Rectangle([-0.4, -0.4], [0.4, 0.4]),
            unsafe_set=RectangleComplement(Rectangle([-2.0, -2.0], [2.0, 2.0])),
            tags=("library",),
        )
    )
    register_scenario(
        Scenario(
            name="double-integrator",
            description="Double integrator under linear NN state feedback "
            "u = -x0 - 1.6 x1 (library linear_plant + compose)",
            system_factory=_double_integrator_system,
            initial_set=Rectangle([-0.2, -0.2], [0.2, 0.2]),
            unsafe_set=RectangleComplement(Rectangle([-1.5, -1.5], [1.5, 1.5])),
            tags=("library",),
        )
    )
    register_scenario(
        Scenario(
            name="pendulum",
            description="Torque-limited inverted pendulum stabilized by a "
            "saturating tansig PD network",
            system_factory=_pendulum_system,
            initial_set=Rectangle([-0.15, -0.15], [0.15, 0.15]),
            unsafe_set=RectangleComplement(Rectangle([-1.0, -3.0], [1.0, 3.0])),
            tags=("library",),
        )
    )
    register_scenario(
        Scenario(
            name="bicycle",
            description="Kinematic-bicycle lane keeping (the paper's "
            "autonomous-driving setting): lateral/heading error under a "
            "saturating tansig NN steering controller",
            system_factory=_bicycle_system,
            initial_set=Rectangle([-0.2, -0.15], [0.2, 0.15]),
            unsafe_set=RectangleComplement(
                Rectangle([-1.5, -0.8], [1.5, 0.8])
            ),
            tags=("paper", "library"),
        )
    )
    register_scenario(
        Scenario(
            name="cartpole",
            description="Cart-pole balanced about the upright by a "
            "saturating LQR-gain tansig network — a 4-dimensional "
            "stress workload: the box-cover of D \\ X0 grows too fast "
            "for full synthesis under honest budgets, so its config "
            "caps the solver (expect INCONCLUSIVE; engines must agree)",
            system_factory=_cartpole_system,
            initial_set=Rectangle(
                [-0.05, -0.05, -0.05, -0.05], [0.05, 0.05, 0.05, 0.05]
            ),
            unsafe_set=RectangleComplement(
                Rectangle([-1.0, -1.2, -0.3, -1.2], [1.0, 1.2, 0.3, 1.2])
            ),
            config=SynthesisConfig(
                icp=IcpConfig(delta=1e-2, max_boxes=50_000, time_limit=5.0),
                max_candidate_iterations=2,
                max_levelset_iterations=3,
            ),
            tags=("library", "stress"),
        )
    )
    register_scenario(
        Scenario(
            name="vanderpol",
            description="Reversed Van der Pol oscillator inside its "
            "quadratic-certificate regime",
            system_factory=_van_der_pol_reversed_system,
            initial_set=Rectangle([-0.15, -0.15], [0.15, 0.15]),
            unsafe_set=RectangleComplement(Rectangle([-0.9, -0.9], [0.9, 0.9])),
            tags=("library",),
        )
    )


_register_builtins()
