"""Persistent content-addressed artifact store (the sweep cache).

One import serves the whole caching surface::

    from repro.store import ArtifactStore, run_key

    store = ArtifactStore("/tmp/my-store")
    key = run_key(scenario, config, "native")
    hit = store.get(key)          # None on a miss
    store.put(key, artifact)      # atomic write

:func:`repro.api.run` / ``run_batch`` consult a store when asked (the
``cache`` argument or the ``REPRO_CACHE`` env var) and
:func:`repro.api.sweep` caches by default — see :mod:`repro.store.cache`
for the fingerprint/key scheme and the env vars.
"""

from .cache import (
    CACHE_ENV,
    STORE_ENV,
    ArtifactStore,
    StoreStats,
    default_store_root,
    resolve_store,
    run_fingerprint,
    run_key,
)

__all__ = [
    "ArtifactStore",
    "CACHE_ENV",
    "STORE_ENV",
    "StoreStats",
    "default_store_root",
    "resolve_store",
    "run_fingerprint",
    "run_key",
]
