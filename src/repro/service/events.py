"""Event bus: stage-level progress from workers to streaming clients.

The synthesis loop already fires an ``observer=`` callback at every
named stage boundary (``seed-sim`` / ``lp-fit`` / ``smt-check`` /
``level-set``, see :class:`repro.api.VerificationPipeline`).  Inside a
worker *process* those callbacks are useless to the server — so the
scheduler hands every worker a multiprocessing queue, the worker-side
observer serializes each :class:`~repro.barrier.StageEvent` onto it,
and a drain thread on the server side feeds the resulting dicts into
the in-process :class:`EventBus`, which fans them out to any number of
subscribers (the NDJSON ``/events`` stream) and keeps a bounded
per-job history so a late subscriber still sees how a job got where it
is.

Three event shapes flow through the bus, all plain dicts::

    {"type": "stage", "job": ..., "point": ..., "stage": "lp-fit",
     "kind": "end", "iteration": 1, "seconds": 0.12, "seq": N}
    {"type": "point", "job": ..., "point": ..., "index": 3,
     "status": "verified", "cached": false, "seq": N}
    {"type": "job",   "job": ..., "state": "DONE", "error": null, "seq": N}

A ``job`` event with a terminal state is always the last event a job
publishes, which is what lets a stream consumer stop reading.
"""

from __future__ import annotations

import collections
import itertools
import queue
import threading
from typing import Callable, Iterable, Mapping

__all__ = ["EventBus", "Subscription", "stage_event_dict"]

#: sentinel pushed onto a worker queue to stop the drain thread
_STOP = None


def stage_event_dict(event, key: str, scenario: str) -> dict:
    """Serialize a :class:`~repro.barrier.StageEvent` for the wire.

    Runs *inside worker processes* — must only touch plain attributes.
    """
    return {
        "type": "stage",
        "key": key,
        "point": scenario,
        "stage": event.stage,
        "kind": event.kind,
        "iteration": event.iteration,
        "seconds": event.seconds,
    }


class Subscription:
    """One subscriber's live event queue (use as a context manager)."""

    def __init__(self, bus: "EventBus", job_id: "str | None"):
        self._bus = bus
        self.job_id = job_id
        self._queue: "queue.Queue[dict]" = queue.Queue()

    def push(self, event: dict) -> None:
        self._queue.put(event)

    def get(self, timeout: "float | None" = None) -> "dict | None":
        """Next event, or None when ``timeout`` elapses quietly."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> list[dict]:
        """Everything currently queued, without blocking."""
        events = []
        while True:
            try:
                events.append(self._queue.get_nowait())
            except queue.Empty:
                return events

    def close(self) -> None:
        self._bus.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EventBus:
    """In-process pub/sub with bounded per-job history.

    ``publish`` stamps each event with a monotonically increasing
    ``seq`` and delivers it to every matching subscriber; the last
    ``history`` events per job are retained so :meth:`subscribe` with
    ``replay=True`` hands late joiners the story so far.  All methods
    are thread-safe — completions arrive from executor callback
    threads, drains from the worker-queue thread, subscribers from
    asyncio handler threads.
    """

    def __init__(self, history: int = 512):
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._subscribers: list[Subscription] = []
        self._history: dict[str, collections.deque] = {}
        self._history_limit = history

    def publish(self, event: Mapping[str, object]) -> dict:
        """Stamp + fan out one event; returns the stamped dict."""
        stamped = dict(event)
        with self._lock:
            stamped["seq"] = next(self._seq)
            job_id = stamped.get("job")
            if isinstance(job_id, str):
                log = self._history.setdefault(
                    job_id, collections.deque(maxlen=self._history_limit)
                )
                log.append(stamped)
            targets = [
                sub
                for sub in self._subscribers
                if sub.job_id is None or sub.job_id == job_id
            ]
        for sub in targets:
            sub.push(stamped)
        return stamped

    def subscribe(
        self,
        job_id: "str | None" = None,
        replay: bool = True,
        after: int = 0,
    ) -> Subscription:
        """Start receiving events (``job_id=None`` subscribes to all).

        With ``replay``, the job's retained history is queued first, so
        the subscriber observes a consistent prefix + live tail.
        ``after`` skips replayed events with ``seq <= after`` — a client
        resuming a dropped stream passes the last seq it saw and gets
        only the suffix (live events always have larger seqs, so no
        filtering is needed past the replay).
        """
        sub = Subscription(self, job_id)
        with self._lock:
            if replay and job_id is not None:
                for event in self._history.get(job_id, ()):
                    if int(event.get("seq", 0) or 0) > after:
                        sub.push(event)
            self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            if sub in self._subscribers:
                self._subscribers.remove(sub)

    def history(self, job_id: str) -> list[dict]:
        """The retained events of one job, oldest first."""
        with self._lock:
            return list(self._history.get(job_id, ()))

    # ------------------------------------------------------------------
    # Worker-side bridge
    # ------------------------------------------------------------------
    def drain_from(
        self,
        source: "queue.Queue",
        translate: "Callable[[dict], Iterable[Mapping[str, object]]] | None" = None,
    ) -> "Callable[[], None]":
        """Pump a (possibly multiprocessing) queue into the bus.

        Starts a daemon thread reading ``source`` until the ``None``
        sentinel arrives; each raw worker event is passed through
        ``translate`` (e.g. the scheduler mapping a run key to the jobs
        waiting on it) and every resulting event is published.  Returns
        a stopper that sends the sentinel and joins the thread.
        """

        def pump() -> None:
            while True:
                try:
                    raw = source.get()
                except (EOFError, OSError):
                    return
                if raw is _STOP:
                    return
                try:
                    events = [raw] if translate is None else translate(raw)
                    for event in events:
                        self.publish(event)
                except Exception:  # noqa: BLE001 - streaming is best effort
                    continue

        thread = threading.Thread(
            target=pump, name="repro-service-events", daemon=True
        )
        thread.start()

        def stop() -> None:
            try:
                source.put(_STOP)
            except (EOFError, OSError):  # manager already gone
                pass
            thread.join(timeout=2.0)

        return stop
