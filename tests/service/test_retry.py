"""Service-level retry: backoff re-enqueue, dead-letter, journal replay."""

from __future__ import annotations

import itertools
import time

import pytest

from repro.api.family import get_family
from repro.api.scenario import register_scenario, unregister_scenario
from repro.errors import ReproError
from repro.resilience import faults
from repro.resilience.faults import FaultAction, FaultPlan
from repro.service import JobState, Scheduler
from repro.service.jobs import JobJournal, JobSpec
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def make_scheduler(store, **kwargs):
    kwargs.setdefault("pool", False)
    kwargs.setdefault("workers", 2)
    return Scheduler(store, **kwargs)


def wait_terminal(scheduler, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = scheduler.job(job_id)
        if job.state.terminal:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {scheduler.job(job_id).state}")


@pytest.fixture
def flaky_scenario():
    """Fails its first ``fail_first`` factory calls, then succeeds."""
    base = get_family("linear").instantiate()
    import dataclasses

    counter = itertools.count()
    real_factory = base.system_factory

    def flaky():
        if next(counter) < flaky.fail_first:
            raise RuntimeError("transient factory failure")
        return real_factory()

    flaky.fail_first = 1
    scenario = dataclasses.replace(
        base, name="svc-test-flaky", system_factory=flaky
    )
    register_scenario(scenario, replace=True)
    yield flaky
    unregister_scenario("svc-test-flaky")


@pytest.fixture
def always_failing_scenario():
    base = get_family("linear").instantiate()
    import dataclasses

    def explode():
        raise RuntimeError("permanent factory failure")

    scenario = dataclasses.replace(
        base, name="svc-test-permafail", system_factory=explode
    )
    register_scenario(scenario, replace=True)
    yield scenario
    unregister_scenario("svc-test-permafail")


class TestSpec:
    def test_max_retries_round_trips(self):
        spec = JobSpec(target="linear", max_retries=2)
        assert JobSpec.from_dict(spec.to_dict()).max_retries == 2

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ReproError):
            JobSpec(target="linear", max_retries=-1)

    def test_status_dict_surfaces_retry_counters(self, store):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit({"target": "linear", "max_retries": 2})
            status = job.status_dict()
            assert status["max_retries"] == 2
            assert status["retries"] == 0
        finally:
            scheduler.shutdown(wait=True)


class TestRetry:
    def test_transient_failure_retried_to_done(self, store, flaky_scenario):
        flaky_scenario.fail_first = 1
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit(
                {"target": "svc-test-flaky", "max_retries": 2}
            )
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.DONE
            assert job.retries == 1
            assert all(a is not None and a.verified for a in job.artifacts)
        finally:
            scheduler.shutdown(wait=True)

    def test_exhausted_budget_dead_letters(self, store, always_failing_scenario):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit(
                {"target": "svc-test-permafail", "max_retries": 1}
            )
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.DEAD
            assert job.retries == 1
            assert "permanent factory failure" in (job.error or "")
        finally:
            scheduler.shutdown(wait=True)

    def test_zero_budget_fails_fast(self, store, always_failing_scenario):
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit({"target": "svc-test-permafail"})
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.FAILED
            assert job.retries == 0
        finally:
            scheduler.shutdown(wait=True)

    def test_retry_is_an_incident_and_a_stat(self, store, flaky_scenario):
        from repro.resilience.supervisor import clear_incidents

        clear_incidents()
        flaky_scenario.fail_first = 1
        scheduler = make_scheduler(store)
        try:
            job = scheduler.submit(
                {"target": "svc-test-flaky", "max_retries": 1}
            )
            wait_terminal(scheduler, job.id)
            stats = scheduler.stats()
            assert stats["retries"] >= 1
            assert stats["incidents"].get("job.retry", 0) >= 1
        finally:
            scheduler.shutdown(wait=True)


class TestJournalReplay:
    def test_retry_events_replay_counters_and_state(
        self, tmp_path, store, flaky_scenario
    ):
        flaky_scenario.fail_first = 1
        journal = JobJournal(tmp_path / "journal.jsonl")
        scheduler = make_scheduler(store, journal=journal)
        try:
            job = scheduler.submit(
                {"target": "svc-test-flaky", "max_retries": 2}
            )
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.DONE
        finally:
            scheduler.shutdown(wait=True)

        replayed = JobJournal(tmp_path / "journal.jsonl").replay()[job.id]
        assert replayed.retries == 1
        assert replayed.spec.max_retries == 2
        # The retry wiped the errored attempt; the success survived.
        assert replayed.replayed_statuses == {0: "verified"}

    def test_dead_state_replays(self, tmp_path, store, always_failing_scenario):
        journal = JobJournal(tmp_path / "journal.jsonl")
        scheduler = make_scheduler(store, journal=journal)
        try:
            job = scheduler.submit(
                {"target": "svc-test-permafail", "max_retries": 1}
            )
            job = wait_terminal(scheduler, job.id)
            assert job.state is JobState.DEAD
        finally:
            scheduler.shutdown(wait=True)
        jobs = JobJournal(tmp_path / "journal.jsonl").replay()
        assert jobs[job.id].state is JobState.DEAD


class TestTornJournal:
    def test_torn_append_is_skipped_and_self_repaired(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        plan = FaultPlan((FaultAction("journal.append", "torn", at=1),))
        with faults.injected(plan):
            journal.record_state("job-a", JobState.QUEUED)
            journal.record_state("job-a", JobState.RUNNING)  # torn mid-write
            journal.record_state("job-a", JobState.DONE)
        events = [r["event"] for r in journal.records()]
        # The torn record is gone; the repaired append after it parses.
        assert events[0] == "state"
        assert len(events) == 2
        raw = (tmp_path / "journal.jsonl").read_text()
        assert raw.endswith("\n")

    def test_torn_final_line_does_not_break_replay(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        plan = FaultPlan((FaultAction("journal.append", "torn", at=1),))
        with faults.injected(plan):
            journal.record_state("job-a", JobState.QUEUED)
            journal.record_state("job-a", JobState.RUNNING)  # torn final line
        journal.replay()  # must not raise
        assert [r["event"] for r in journal.records()] == ["state"]
