"""Level-set geometry tests: closed forms vs brute force."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.barrier import (
    Halfspace,
    QuadraticTemplate,
    Rectangle,
    ellipsoid_bounding_rectangle,
    level_bounds,
    min_on_hyperplane,
    quadratic_forms,
)
from repro.errors import LevelSetError


class TestMinOnHyperplane:
    def test_identity_quadratic(self):
        """min |x|^2 on x0 = b is b^2 (at (b, 0))."""
        p = np.eye(2)
        q = np.zeros(2)
        value = min_on_hyperplane(p, q, np.array([1.0, 0.0]), 3.0)
        assert value == pytest.approx(9.0)

    def test_diagonal_quadratic(self):
        """min (x^2 + 4 y^2) on y = 1 is 4."""
        p = np.diag([1.0, 4.0])
        value = min_on_hyperplane(p, np.zeros(2), np.array([0.0, 1.0]), 1.0)
        assert value == pytest.approx(4.0)

    def test_oblique_hyperplane_vs_brute_force(self, rng):
        for _ in range(20):
            # Random PD matrix.
            m = rng.normal(size=(2, 2))
            p = m @ m.T + 0.2 * np.eye(2)
            q = rng.normal(size=2) * 0.5
            a = rng.normal(size=2)
            if np.linalg.norm(a) < 0.1:
                continue
            b = rng.normal() * 2.0
            closed = min_on_hyperplane(p, q, a, b)
            # Brute force: parameterize the line.
            tangent = np.array([-a[1], a[0]]) / np.linalg.norm(a)
            base = a * b / (a @ a)
            ts = np.linspace(-50, 50, 200001)
            pts = base[None, :] + ts[:, None] * tangent[None, :]
            vals = np.einsum("mi,ij,mj->m", pts, p, pts) + pts @ q
            assert closed == pytest.approx(vals.min(), rel=1e-4, abs=1e-6)

    def test_unbounded_direction(self):
        """Negative curvature along the plane: -inf."""
        p = np.diag([1.0, -1.0])
        value = min_on_hyperplane(p, np.zeros(2), np.array([1.0, 0.0]), 0.0)
        assert value == -math.inf


class TestLevelBounds:
    def test_circle_geometry(self):
        """W = x^2 + y^2, X0 = [-1,1]^2, unsafe outside [-3,3]^2:
        l_lo = 2 (corner), l_hi = 9 (facet distance)."""
        tmpl = QuadraticTemplate(2)
        coeffs = np.array([1.0, 0.0, 1.0])
        x0 = Rectangle([-1, -1], [1, 1])
        halfspaces = Rectangle([-3, -3], [3, 3]).halfspaces()
        lo, hi = level_bounds(tmpl, coeffs, x0, halfspaces)
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(9.0)

    def test_anisotropic(self):
        """W = x^2 + 4 y^2 with asymmetric safe rectangle."""
        tmpl = QuadraticTemplate(2)
        coeffs = np.array([1.0, 0.0, 4.0])
        x0 = Rectangle([-0.5, -0.25], [0.5, 0.25])
        halfspaces = Rectangle([-4, -1], [4, 1]).halfspaces()
        lo, hi = level_bounds(tmpl, coeffs, x0, halfspaces)
        assert lo == pytest.approx(0.5)  # corner (0.5, 0.25)
        assert hi == pytest.approx(4.0)  # min(16, 4*1) = 4

    def test_no_separation_raises(self):
        """X0 corners already past the unsafe boundary."""
        tmpl = QuadraticTemplate(2)
        coeffs = np.array([1.0, 0.0, 1.0])
        x0 = Rectangle([-3, -3], [3, 3])
        halfspaces = Rectangle([-1, -1], [1, 1]).halfspaces()
        with pytest.raises(LevelSetError):
            level_bounds(tmpl, coeffs, x0, halfspaces)

    def test_indefinite_w_raises(self):
        tmpl = QuadraticTemplate(2)
        coeffs = np.array([1.0, 0.0, -1.0])  # saddle
        x0 = Rectangle([-0.5, -0.5], [0.5, 0.5])
        halfspaces = Rectangle([-3, -3], [3, 3]).halfspaces()
        with pytest.raises(LevelSetError):
            level_bounds(tmpl, coeffs, x0, halfspaces)

    def test_no_halfspaces_raises(self):
        tmpl = QuadraticTemplate(2)
        with pytest.raises(LevelSetError):
            level_bounds(
                tmpl, np.array([1.0, 0.0, 1.0]), Rectangle([-1, -1], [1, 1]), []
            )


class TestEllipsoidBoundingRectangle:
    def test_circle(self):
        rect = ellipsoid_bounding_rectangle(np.eye(2), np.zeros(2), 4.0)
        assert np.allclose(rect.lower, [-2, -2], atol=1e-6)
        assert np.allclose(rect.upper, [2, 2], atol=1e-6)

    def test_axis_aligned_ellipse(self):
        rect = ellipsoid_bounding_rectangle(np.diag([1.0, 4.0]), np.zeros(2), 4.0)
        assert np.allclose(rect.upper, [2.0, 1.0], atol=1e-6)

    def test_rotated_ellipse_encloses_boundary(self, rng):
        m = rng.normal(size=(2, 2))
        p = m @ m.T + 0.3 * np.eye(2)
        level = 2.0
        rect = ellipsoid_bounding_rectangle(p, np.zeros(2), level)
        # Sample boundary points and check containment.
        values, vectors = np.linalg.eigh(p)
        inv_sqrt = vectors @ np.diag(1.0 / np.sqrt(values)) @ vectors.T
        angles = np.linspace(0, 2 * np.pi, 100)
        boundary = np.sqrt(level) * np.stack(
            [np.cos(angles), np.sin(angles)], axis=1
        ) @ inv_sqrt.T
        for p_b in boundary:
            assert rect.contains(p_b, tol=1e-9)

    def test_offset_center(self):
        """With a linear term the ellipsoid is shifted."""
        p = np.eye(2)
        q = np.array([-2.0, 0.0])  # center at (1, 0)
        rect = ellipsoid_bounding_rectangle(p, q, 0.0)  # W(center) = -1 -> r=1
        assert np.allclose(rect.center(), [1.0, 0.0], atol=1e-9)
        assert rect.upper[0] == pytest.approx(2.0, abs=1e-6)

    def test_level_below_minimum_raises(self):
        with pytest.raises(LevelSetError):
            ellipsoid_bounding_rectangle(np.eye(2), np.zeros(2), -1.0)

    def test_indefinite_raises(self):
        with pytest.raises(LevelSetError):
            ellipsoid_bounding_rectangle(np.diag([1.0, -1.0]), np.zeros(2), 1.0)


class TestQuadraticForms:
    def test_roundtrip(self, rng):
        tmpl = QuadraticTemplate(2, include_linear=True)
        coeffs = rng.normal(size=tmpl.basis_size)
        p, q = quadratic_forms(tmpl, coeffs)
        pts = rng.uniform(-2, 2, size=(20, 2))
        direct = tmpl.evaluate(coeffs, pts)
        reconstructed = np.einsum("mi,ij,mj->m", pts, p, pts) + pts @ q
        assert np.allclose(direct, reconstructed)
