"""Scenario families: specs, registry, grid/sample enumeration."""

from __future__ import annotations

import pickle

import pytest

from repro.api import (
    ParamSpec,
    Scenario,
    ScenarioFamily,
    family_names,
    get_family,
    list_families,
    parse_grid_values,
    parse_point_spec,
    register_family,
    unregister_family,
)
from repro.api.family import format_param_value
from repro.errors import ReproError


# ----------------------------------------------------------------------
# ParamSpec
# ----------------------------------------------------------------------
class TestParamSpec:
    def test_float_coercion(self):
        spec = ParamSpec("speed", "float", default=1.0, low=0.5, high=2.0)
        assert spec.coerce("1.5") == 1.5
        assert spec.coerce(1) == 1.0

    def test_int_rejects_fractional(self):
        spec = ParamSpec("width", "int", default=10)
        assert spec.coerce(8.0) == 8
        assert isinstance(spec.coerce(8.0), int)
        with pytest.raises(ReproError, match="integer"):
            spec.coerce(8.5)

    def test_bounds_enforced(self):
        spec = ParamSpec("speed", "float", low=0.5, high=2.0)
        with pytest.raises(ReproError, match="below the minimum"):
            spec.coerce(0.1)
        with pytest.raises(ReproError, match="above the maximum"):
            spec.coerce(3.0)

    def test_choice_validation(self):
        spec = ParamSpec("method", "choice", choices=("rk4", "euler"))
        assert spec.coerce("rk4") == "rk4"
        with pytest.raises(ReproError, match="not one of"):
            spec.coerce("midpoint")

    def test_choice_without_choices_rejected(self):
        with pytest.raises(ReproError, match="needs choices"):
            ParamSpec("method", "choice")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            ParamSpec("x", "complex")

    def test_non_numeric_rejected(self):
        spec = ParamSpec("speed", "float")
        with pytest.raises(ReproError, match="expected a number"):
            spec.coerce("fast")


# ----------------------------------------------------------------------
# Grid spec mini-language
# ----------------------------------------------------------------------
class TestGridSpecs:
    def test_linspace(self):
        assert parse_grid_values("2:6:3") == [2.0, 4.0, 6.0]

    def test_linspace_single_point(self):
        assert parse_grid_values("2:6:1") == [2.0]

    def test_comma_list(self):
        assert parse_grid_values("8,10") == [8.0, 10.0]

    def test_single_value(self):
        assert parse_grid_values("1.5") == [1.5]

    def test_string_choices(self):
        assert parse_grid_values("rk4,euler") == ["rk4", "euler"]

    @pytest.mark.parametrize("bad", ["", "1:2", "1:2:3:4", "a:b:c", "2:6:0", "1,,2"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_grid_values(bad)

    def test_point_spec(self):
        name, params = parse_point_spec("bicycle:wheelbase=1.2,speed=2")
        assert name == "bicycle"
        assert params == {"wheelbase": 1.2, "speed": 2.0}

    def test_point_spec_no_params(self):
        assert parse_point_spec("dubins") == ("dubins", {})

    def test_point_spec_malformed(self):
        with pytest.raises(ReproError):
            parse_point_spec("dubins:speed")

    def test_format_param_value(self):
        assert format_param_value(2.0) == "2"
        assert format_param_value(8) == "8"
        assert format_param_value(0.125) == "0.125"


# ----------------------------------------------------------------------
# Builtin families
# ----------------------------------------------------------------------
class TestBuiltinFamilies:
    def test_builtins_registered(self):
        names = family_names()
        for expected in ("dubins", "bicycle", "cartpole", "pendulum", "linear"):
            assert expected in names

    def test_list_families_sorted(self):
        families = list_families()
        assert [f.name for f in families] == sorted(f.name for f in families)

    def test_instantiate_defaults(self):
        scenario = get_family("dubins").instantiate()
        assert isinstance(scenario, Scenario)
        assert scenario.family == "dubins"
        assert scenario.name == "dubins[nn_width=10,speed=1]"
        assert dict(scenario.family_params) == {"nn_width": 10, "speed": 1.0}

    def test_instantiate_rejects_unknown_param(self):
        with pytest.raises(ReproError, match="unknown parameter"):
            get_family("dubins").instantiate(wheelbase=2.0)

    def test_instantiated_scenario_pickles(self):
        scenario = get_family("bicycle").instantiate(wheelbase=1.5)
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone.name == scenario.name
        assert clone.family_params == scenario.family_params

    def test_instantiated_system_builds(self):
        scenario = get_family("linear").instantiate(damping=0.7)
        system = scenario.system_factory()
        assert system.dimension == scenario.dimension

    def test_bicycle_lane_width_moves_unsafe_set(self):
        narrow = get_family("bicycle").instantiate(lane_width=2.0)
        wide = get_family("bicycle").instantiate(lane_width=4.0)
        assert narrow.unsafe_set.safe_rectangle.upper[0] == 1.0
        assert wide.unsafe_set.safe_rectangle.upper[0] == 2.0

    def test_grid_enumeration(self):
        fam = get_family("dubins")
        points = fam.grid({"speed": "1:2:2", "nn_width": [8, 10]})
        assert len(points) == 4
        assert {"nn_width": 8, "speed": 1.0} in points
        widths = {p["nn_width"] for p in points}
        assert widths == {8, 10}
        assert all(isinstance(p["nn_width"], int) for p in points)

    def test_grid_deterministic_order(self):
        fam = get_family("dubins")
        a = fam.grid({"speed": "1:2:2", "nn_width": "8,10"})
        b = fam.grid({"nn_width": "8,10", "speed": "1:2:2"})
        assert a == b  # declaration order, not mapping order

    def test_sample_deterministic_and_bounded(self):
        fam = get_family("pendulum")
        a = fam.sample(5, seed=3)
        b = fam.sample(5, seed=3)
        assert a == b
        assert fam.sample(5, seed=4) != a
        for point in a:
            assert 0.1 <= point["mass"] <= 1.0
            assert 0.25 <= point["length"] <= 1.0

    def test_sample_with_overrides(self):
        fam = get_family("dubins")
        points = fam.sample(3, seed=0, overrides={"speed": 1.0})
        assert all(p["speed"] == 1.0 for p in points)
        assert all(isinstance(p["nn_width"], int) for p in points)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _toy_factory() -> Scenario:
    return get_family("linear").factory(damping=0.5, rotation=1.0)


class TestRegistry:
    def test_register_and_unregister(self):
        family = ScenarioFamily(
            name="toy-family",
            description="test-only",
            factory=lambda: _toy_factory(),
            parameters=(),
        )
        try:
            register_family(family)
            assert get_family("toy-family") is family
            with pytest.raises(ReproError, match="already registered"):
                register_family(family)
            register_family(family, replace=True)
        finally:
            unregister_family("toy-family")
        with pytest.raises(ReproError, match="unknown family"):
            get_family("toy-family")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ReproError, match="duplicate parameter"):
            ScenarioFamily(
                name="dup",
                description="",
                factory=_toy_factory,
                parameters=(ParamSpec("a"), ParamSpec("a")),
            )

    def test_missing_required_parameter(self):
        family = ScenarioFamily(
            name="no-default",
            description="",
            factory=_toy_factory,
            parameters=(ParamSpec("a", "float"),),
        )
        with pytest.raises(ReproError, match="no default"):
            family.resolve_params({})
