"""Experiment-driver tests (small parameterizations of the bench code)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_NEURON_COUNTS,
    ellipse_boundary_points,
    format_ablation,
    format_figure4,
    format_figure5,
    format_table1,
    render_ascii,
    run_delta_sweep,
    run_figure4,
    run_figure5,
    run_table1,
    run_trace_count_sweep,
)


class TestTable1Driver:
    def test_paper_neuron_counts(self):
        assert PAPER_NEURON_COUNTS == (10, 20, 40, 50, 70, 80, 90, 100, 300, 500, 700, 1000)

    def test_small_run(self):
        rows = run_table1(neuron_counts=(4, 8), seeds=(0,))
        assert len(rows) == 2
        for row in rows:
            assert row.verified_fraction == 1.0
            assert row.avg_iterations >= 1.0
            assert row.total_seconds > 0.0
            assert row.query_seconds > 0.0

    def test_format(self):
        rows = run_table1(neuron_counts=(4,), seeds=(0,))
        text = format_table1(rows)
        assert "Neurons" in text
        assert "4" in text


class TestFigure4Driver:
    def test_small_run_improves(self):
        data = run_figure4(
            hidden_neurons=4,
            seed=0,
            population_size=10,
            max_iterations=8,
            snapshot_iterations=(3,),
            steps=200,
            dt=0.6,
        )
        assert len(data.panels) >= 3  # initial, snapshot(s), final
        first, last = data.panels[0], data.panels[-1]
        # Headline claim of Figure 4: training improves tracking.
        assert last.cost < first.cost
        assert last.mean_abs_distance_error < first.mean_abs_distance_error
        # Cost history is monotone non-increasing (best-so-far).
        hist = data.cost_history
        assert all(a >= b for a, b in zip(hist, hist[1:]))

    def test_format(self):
        data = run_figure4(
            hidden_neurons=4, seed=0, population_size=8, max_iterations=4,
            snapshot_iterations=(2,), steps=150, dt=0.6,
        )
        text = format_figure4(data)
        assert "random initial weights" in text
        assert "end of training" in text


class TestFigure5Driver:
    @pytest.fixture(scope="class")
    def data(self):
        return run_figure5(hidden_neurons=4, seed=0, num_trajectories=5)

    def test_claims(self, data):
        assert data.x0_corners_inside
        assert data.level_set_clear_of_unsafe

    def test_ellipse_on_level(self, data):
        cert = data.certificate
        w = cert.w_values(data.ellipse_boundary)
        assert np.allclose(w, cert.level, rtol=1e-6)

    def test_ellipse_boundary_count(self, data):
        assert ellipse_boundary_points(data.certificate, count=64).shape == (64, 2)

    def test_format_and_render(self, data):
        text = format_figure5(data)
        assert "barrier level" in text
        art = render_ascii(data)
        assert "@" in art
        assert "|" in art


class TestAblationDrivers:
    def test_delta_sweep(self):
        rows = run_delta_sweep(deltas=(1e-1, 1e-2), hidden_neurons=4)
        assert len(rows) == 2
        # The sweep's finding: δ too coarse cannot refute near-boundary
        # boxes (spurious δ-sat witnesses), so verification may fail;
        # fine δ verifies.  Every run must end in a defined state.
        assert rows[1].status == "verified"
        assert all(
            row.status in ("verified", "no-candidate", "inconclusive")
            for row in rows
        )
        text = format_ablation(rows, "delta sweep")
        assert "delta=0.1" in text

    def test_trace_count_sweep(self):
        rows = run_trace_count_sweep(trace_counts=(3, 10), hidden_neurons=4)
        assert len(rows) == 2
        # The sweep's finding: sparse simulation evidence can produce a
        # candidate whose level set fails; enough traces verify.
        assert rows[1].status == "verified"
        assert all(
            row.status in ("verified", "no-candidate", "no-level-set")
            for row in rows
        )
