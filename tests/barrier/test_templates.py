"""Generator-template tests: features, gradients, symbolic reconstruction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import PolynomialTemplate, QuadraticTemplate
from repro.errors import ReproError
from repro.expr import evaluate


class TestQuadraticTemplate:
    def test_basis_size(self):
        assert QuadraticTemplate(2).basis_size == 3  # x², xy, y²
        assert QuadraticTemplate(3).basis_size == 6
        assert QuadraticTemplate(2, include_linear=True).basis_size == 5

    def test_features_values(self):
        tmpl = QuadraticTemplate(2)
        feats = tmpl.features(np.array([[2.0, 3.0]]))
        assert np.allclose(feats[0], [4.0, 6.0, 9.0])

    def test_evaluate_matches_matrix_form(self, rng):
        tmpl = QuadraticTemplate(2)
        coeffs = rng.normal(size=3)
        p = tmpl.p_matrix(coeffs)
        points = rng.uniform(-2, 2, size=(20, 2))
        direct = tmpl.evaluate(coeffs, points)
        via_p = np.einsum("mi,ij,mj->m", points, p, points)
        assert np.allclose(direct, via_p)

    def test_p_matrix_symmetric(self, rng):
        tmpl = QuadraticTemplate(3)
        p = tmpl.p_matrix(rng.normal(size=tmpl.basis_size))
        assert np.allclose(p, p.T)

    def test_q_vector(self, rng):
        pure = QuadraticTemplate(2)
        assert np.allclose(pure.q_vector(rng.normal(size=3)), 0.0)
        linear = QuadraticTemplate(2, include_linear=True)
        coeffs = np.array([1.0, 0.0, 1.0, 0.5, -0.5])
        assert np.allclose(linear.q_vector(coeffs), [0.5, -0.5])

    def test_gradient_matches_finite_difference(self, rng):
        tmpl = QuadraticTemplate(2, include_linear=True)
        coeffs = rng.normal(size=tmpl.basis_size)
        points = rng.uniform(-2, 2, size=(10, 2))
        grads = tmpl.gradient(coeffs, points)
        h = 1e-6
        for d in range(2):
            shifted = points.copy()
            shifted[:, d] += h
            fd = (tmpl.evaluate(coeffs, shifted) - tmpl.evaluate(coeffs, points)) / h
            assert np.allclose(grads[:, d], fd, atol=1e-4)

    def test_build_expression_matches_numeric(self, rng):
        tmpl = QuadraticTemplate(2)
        coeffs = rng.normal(size=3)
        expr = tmpl.build_expression(coeffs, ["a", "b"])
        for _ in range(10):
            p = rng.uniform(-2, 2, size=2)
            numeric = float(tmpl.evaluate(coeffs, p[None, :])[0])
            symbolic = evaluate(expr, {"a": float(p[0]), "b": float(p[1])})
            assert numeric == pytest.approx(symbolic, rel=1e-12, abs=1e-12)

    def test_build_expression_validation(self):
        tmpl = QuadraticTemplate(2)
        with pytest.raises(ReproError):
            tmpl.build_expression(np.zeros(5), ["a", "b"])
        with pytest.raises(ReproError):
            tmpl.build_expression(np.zeros(3), ["a"])

    def test_zero_coefficients_expression(self):
        tmpl = QuadraticTemplate(2)
        expr = tmpl.build_expression(np.zeros(3), ["a", "b"])
        assert evaluate(expr, {"a": 1.0, "b": 1.0}) == 0.0


class TestPolynomialTemplate:
    def test_degree_range(self):
        tmpl = PolynomialTemplate(2, max_degree=4, min_degree=2)
        degrees = {sum(m) for m in tmpl.monomials}
        assert degrees == {2, 3, 4}

    def test_no_constant_by_default(self):
        tmpl = PolynomialTemplate(2, max_degree=3)
        assert (0, 0) not in tmpl.monomials

    def test_quadratic_subset_matches(self):
        quad = QuadraticTemplate(2)
        poly = PolynomialTemplate(2, max_degree=2, min_degree=2)
        assert set(quad.monomials) == set(poly.monomials)

    def test_validation(self):
        with pytest.raises(ReproError):
            PolynomialTemplate(0, 2)
        with pytest.raises(ReproError):
            PolynomialTemplate(2, 1, min_degree=3)

    def test_features_gradients_consistency(self, rng):
        tmpl = PolynomialTemplate(2, max_degree=4, min_degree=1)
        coeffs = rng.normal(size=tmpl.basis_size)
        points = rng.uniform(-1.5, 1.5, size=(8, 2))
        grads = tmpl.gradient(coeffs, points)
        h = 1e-6
        for d in range(2):
            shifted = points.copy()
            shifted[:, d] += h
            fd = (tmpl.evaluate(coeffs, shifted) - tmpl.evaluate(coeffs, points)) / h
            assert np.allclose(grads[:, d], fd, atol=1e-3)

    def test_dimension_check(self):
        tmpl = PolynomialTemplate(2, 2)
        with pytest.raises(ReproError):
            tmpl.features(np.zeros((3, 3)))
