"""Client-side resilience: GET retries, stream resume, ``?after=``."""

from __future__ import annotations

import time

import pytest

from repro.service import (
    EventBus,
    Scheduler,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def service(store):
    scheduler = Scheduler(
        store, pool=False, workers=2, events=EventBus(), journal=False
    )
    server = ServiceServer(scheduler, port=0)
    server.run_in_thread()
    client = ServiceClient(
        f"http://127.0.0.1:{server.port}", timeout=30.0, retry_base=0.01
    )
    yield client, scheduler, server
    server.stop_thread()
    scheduler.shutdown(wait=True)


class TestEventBusAfter:
    def test_after_filters_the_replayed_history(self):
        bus = EventBus()
        for i in range(5):
            bus.publish({"type": "stage", "job": "j", "n": i})
        with bus.subscribe("j", replay=True) as sub:
            seqs = [e["seq"] for e in sub.drain()]
        assert len(seqs) == 5
        cut = seqs[2]
        with bus.subscribe("j", replay=True, after=cut) as sub:
            resumed = [e["seq"] for e in sub.drain()]
        assert resumed == seqs[3:]

    def test_after_beyond_history_replays_nothing(self):
        bus = EventBus()
        bus.publish({"type": "stage", "job": "j"})
        with bus.subscribe("j", replay=True, after=10**9) as sub:
            assert sub.drain() == []


class TestGetRetries:
    def test_refused_connection_exhausts_budget(self):
        client = ServiceClient(
            "http://127.0.0.1:1", timeout=2.0, retries=2, retry_base=0.01
        )
        start = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.health()
        # Two retries happened (two backoff sleeps), then it gave up.
        assert time.monotonic() - start < 5.0

    def test_post_is_never_transport_retried(self):
        client = ServiceClient(
            "http://127.0.0.1:1", timeout=2.0, retries=3, retry_base=0.01
        )
        sleeps = []
        client._retry_sleep = lambda attempt: sleeps.append(attempt)
        with pytest.raises(ServiceError):
            client.submit("linear")
        assert sleeps == []  # non-idempotent: fail immediately

    def test_get_succeeds_after_transient_refusal(self, service, monkeypatch):
        client, _, _ = service
        import urllib.request

        real_open = urllib.request.urlopen
        attempts = {"n": 0}

        def flaky_open(request, timeout=None):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise ConnectionResetError("injected reset")
            return real_open(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", flaky_open)
        health = client.health()
        assert health["status"] == "ok"
        assert attempts["n"] == 2


class TestStreamResume:
    def test_stream_resumes_after_mid_stream_drop(self, service, monkeypatch):
        """A connection that dies mid-stream is resumed with ``?after=``
        and the concatenation has no gaps and no duplicates."""
        client, scheduler, _ = service
        job = scheduler.submit({"target": "linear", "grid": {"damping": "0.4:0.8:3"}})

        real_once = client._stream_once
        dropped = {"done": False}
        after_values = []

        def dropping(job_id, after):
            after_values.append(after)
            inner = real_once(job_id, after)
            count = 0
            for event in inner:
                yield event
                count += 1
                if not dropped["done"] and count >= 2:
                    dropped["done"] = True
                    raise ConnectionResetError("injected mid-stream drop")

        monkeypatch.setattr(client, "_stream_once", dropping)
        events = list(client.stream(job.id))
        assert dropped["done"], "the injected drop never happened"
        assert len(after_values) >= 2 and after_values[1] > 0
        seqs = [e["seq"] for e in events if "seq" in e]
        assert len(seqs) == len(set(seqs)), "duplicated events after resume"
        assert sorted(seqs) == seqs
        final = [e for e in events if e.get("type") == "job"][-1]
        assert final["state"] == "DONE"

    def test_stream_budget_exhaustion_raises(self, service, monkeypatch):
        client, scheduler, _ = service
        client.retries = 1
        job = scheduler.submit({"target": "linear"})

        def always_drop(job_id, after):
            raise ConnectionResetError("injected drop")
            yield  # pragma: no cover

        monkeypatch.setattr(client, "_stream_once", always_drop)
        with pytest.raises(ServiceError, match="dropped"):
            list(client.stream(job.id))

    def test_after_query_rejects_garbage(self, service):
        import urllib.error
        import urllib.request

        client, scheduler, _ = service
        job = scheduler.submit({"target": "linear"})
        deadline = time.monotonic() + 60
        while not scheduler.job(job.id).state.terminal:
            if time.monotonic() > deadline:
                raise AssertionError("job did not finish")
            time.sleep(0.02)
        with pytest.raises(urllib.error.HTTPError) as http_err:
            urllib.request.urlopen(
                f"{client.url}/v1/jobs/{job.id}/events?after=xyz", timeout=10
            )
        assert http_err.value.code == 400
