"""Sweep runner: sharding, cache skipping, deterministic aggregates."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.cli import main
from repro.errors import ReproError
from repro.store import ArtifactStore


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


GRID = {"damping": "0.4:0.8:3"}


class TestSweep:
    def test_grid_sweep_end_to_end(self, store):
        report = api.sweep("linear", grid=GRID, workers=1, cache=store)
        assert report.family == "linear"
        assert report.total == 3
        assert report.cache_hits == 0
        assert report.verified_fraction == 1.0
        assert len(report.points) == len(report.artifacts) == 3
        assert store.stats().artifacts == 3

    def test_second_invocation_all_hits_identical_aggregate(self, store):
        cold = api.sweep("linear", grid=GRID, workers=1, cache=store)
        warm = api.sweep("linear", grid=GRID, workers=1, cache=store)
        assert warm.cache_hits == warm.total == 3
        assert warm.aggregate() == cold.aggregate()
        assert [a.to_json() for a in warm.artifacts] == [
            a.to_json() for a in cold.artifacts
        ]

    def test_partial_cache_reuses_overlap(self, store):
        api.sweep("linear", grid={"damping": "0.4,0.6"}, workers=1, cache=store)
        grown = api.sweep(
            "linear", grid={"damping": "0.4,0.6,0.8"}, workers=1, cache=store
        )
        assert grown.total == 3
        assert grown.cache_hits == 2

    def test_sweep_without_cache(self):
        report = api.sweep("linear", grid={"damping": [0.5]}, workers=1, cache=False)
        assert report.cache_hits == 0
        assert report.total == 1

    def test_random_sampling_sweep(self, store):
        report = api.sweep(
            "linear", samples=2, seed=5, workers=1, cache=store
        )
        assert report.total == 2
        again = api.sweep("linear", samples=2, seed=5, workers=1, cache=store)
        assert again.cache_hits == 2  # same seed -> same points -> hits

    def test_seed_changes_points_and_keys(self, store):
        api.sweep("linear", grid=GRID, workers=1, cache=store)
        reseeded = api.sweep("linear", grid=GRID, seed=1, workers=1, cache=store)
        assert reseeded.cache_hits == 0  # per-point synthesis seed differs

    def test_parallel_matches_serial(self, store):
        serial = api.sweep("linear", grid=GRID, workers=1, cache=False)
        parallel = api.sweep("linear", grid=GRID, workers=2, cache=store)
        assert [a.scenario for a in parallel.artifacts] == [
            a.scenario for a in serial.artifacts
        ]
        assert [a.level for a in parallel.artifacts] == [
            a.level for a in serial.artifacts
        ]

    def test_aggregate_structure(self, store):
        report = api.sweep("linear", grid=GRID, workers=1, cache=store)
        agg = report.aggregate()
        assert agg["total"] == 3
        assert agg["statuses"] == {"verified": 3}
        assert set(agg["level_quantiles"]) == {"min", "q25", "median", "q75", "max"}
        assert set(agg["by_param"]) == {"damping"}
        assert all(
            info["runs"] == 1 for info in agg["by_param"]["damping"].values()
        )

    def test_report_to_dict_json_serializable(self, store):
        report = api.sweep("linear", grid={"damping": [0.5]}, workers=1, cache=store)
        payload = json.dumps(report.to_dict(), sort_keys=True)
        assert "aggregate" in json.loads(payload)

    def test_grid_with_overrides_pins_unswept_params(self):
        report = api.sweep(
            "linear",
            grid={"damping": "0.4,0.6"},
            overrides={"rotation": 1.5},
            workers=1,
            cache=False,
        )
        assert all(p["rotation"] == 1.5 for p in report.points)
        assert [a.scenario for a in report.artifacts] == [
            "linear[damping=0.4,rotation=1.5]",
            "linear[damping=0.6,rotation=1.5]",
        ]

    def test_grid_overrides_cannot_pin_swept_axis(self):
        with pytest.raises(ReproError, match="conflict with swept"):
            api.sweep(
                "linear",
                grid={"damping": "0.4,0.6"},
                overrides={"damping": 0.5},
                cache=False,
            )

    def test_errors(self):
        with pytest.raises(ReproError, match="grid or a sample count"):
            api.sweep("linear")
        with pytest.raises(ReproError, match="not both"):
            api.sweep("linear", grid=GRID, samples=2)
        with pytest.raises(ReproError, match="unknown family"):
            api.sweep("no-such-family", grid=GRID)
        with pytest.raises(ReproError, match="no parameter"):
            api.sweep("linear", grid={"speed": "1:2:2"})


class TestSweepCli:
    def test_cli_sweep_twice_reports_full_hits(self, tmp_path, capsys):
        argv = [
            "sweep", "linear",
            "--grid", "damping=0.4:0.8:3",
            "--workers", "1",
            "--store", str(tmp_path / "store"),
            "--json", str(tmp_path / "report1.json"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0/3" in first

        argv[-1] = str(tmp_path / "report2.json")
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "cache hits: 3/3" in second
        assert "[cached]" in second

        report1 = json.loads((tmp_path / "report1.json").read_text())
        report2 = json.loads((tmp_path / "report2.json").read_text())
        assert report1["aggregate"] == report2["aggregate"]
        assert report1["runs"] == report2["runs"]

    def test_cli_no_cache(self, tmp_path, capsys):
        argv = [
            "sweep", "linear",
            "--grid", "damping=0.5",
            "--workers", "1",
            "--no-cache",
        ]
        assert main(argv) == 0
        assert "cache hits: 0/1" in capsys.readouterr().out

    def test_cli_bad_grid_token(self):
        with pytest.raises(ReproError, match="PARAM=SPEC"):
            main(["sweep", "linear", "--grid", "damping"])

    def test_cli_families_listing(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "dubins" in out and "linear" in out

    def test_cli_families_json(self, capsys):
        assert main(["families", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {f["name"] for f in payload}
        assert {"dubins", "bicycle", "cartpole", "pendulum", "linear"} <= names
        dubins = next(f for f in payload if f["name"] == "dubins")
        assert {p["name"] for p in dubins["parameters"]} == {"nn_width", "speed"}


class TestTable1Families:
    def test_family_rows_appended(self):
        from repro.experiments import format_table1, run_table1

        rows = run_table1(
            neuron_counts=(4,),
            seeds=(0,),
            families=("linear:damping=0.6",),
        )
        assert len(rows) == 2
        family_row = rows[-1]
        assert family_row.label == "linear[damping=0.6,rotation=1]"
        assert family_row.runs == 1
        assert family_row.label in format_table1(rows)
