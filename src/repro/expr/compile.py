"""Compilation of expressions to flat evaluation tapes.

The δ-SAT solver evaluates the same expression over very many boxes.  A
:class:`CompiledExpression` flattens the DAG postorder into an instruction
tape once, then evaluates:

* ``eval_points`` — vectorized numeric evaluation over ``(m,)`` arrays of
  sample points per variable (used for trace constraint generation and
  counterexample screening);
* ``eval_boxes`` — vectorized *interval* evaluation over batches of boxes,
  carrying ``(lo, hi)`` ndarray pairs through every instruction with sound
  outward widening.  One tape pass bounds the expression over hundreds of
  boxes simultaneously, which is what makes branch-and-prune tractable in
  pure Python even for thousand-neuron controllers.

The box semantics here mirror :class:`repro.intervals.Interval` rules
(including the trig range reduction) in vectorized form; the property
tests in ``tests/expr`` cross-check the two implementations.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import EvaluationError
from ..intervals import Box, Interval
from ..intervals.rounding import TRIG_SLACK as _TRIG_SLACK
from .node import (
    Add,
    Const,
    Div,
    Expr,
    Max2,
    Min2,
    Mul,
    Neg,
    Pow,
    Sub,
    Unary,
    Var,
    postorder,
)

__all__ = ["CompiledExpression", "compile_expression"]

_TWO_PI = 2.0 * math.pi
_HALF_PI = 0.5 * math.pi
# Outward widening applied after each inexact instruction, relative to
# magnitude.  8 eps dominates the rounding error of every scalar op and
# of numpy's transcendental kernels (documented < 2 ulp).
_EPS = np.finfo(float).eps
_REL = 8.0 * _EPS
_ABS = 8.0 * np.finfo(float).tiny


class CompiledExpression:
    """An expression flattened to an instruction tape.

    Build with :func:`compile_expression`.  The variable order fixes the
    column layout expected by :meth:`eval_points` / :meth:`eval_boxes`.
    """

    def __init__(self, root: Expr, variable_names: Sequence[str]):
        self.root = root
        self.variable_names = list(variable_names)
        self._var_index = {name: i for i, name in enumerate(self.variable_names)}
        self._tape: list[tuple] = []
        self._n_slots = 0
        self._result_slot = 0
        self._kernel = None
        self._build(root)

    # ------------------------------------------------------------------
    # Tape construction
    # ------------------------------------------------------------------
    def _build(self, root: Expr) -> None:
        slots: dict[int, int] = {}
        order = postorder(root)
        for node in order:
            slot = len(slots)
            slots[id(node)] = slot
            if isinstance(node, Const):
                self._tape.append(("const", slot, node.value))
            elif isinstance(node, Var):
                index = self._var_index.get(node.name)
                if index is None:
                    raise EvaluationError(
                        f"expression uses variable {node.name!r} not listed in "
                        f"{self.variable_names}"
                    )
                self._tape.append(("var", slot, index))
            elif isinstance(node, Neg):
                self._tape.append(("neg", slot, slots[id(node.child)]))
            elif isinstance(node, Pow):
                self._tape.append(("pow", slot, slots[id(node.base)], node.exponent))
            elif isinstance(node, Unary):
                self._tape.append((node.op, slot, slots[id(node.child)]))
            elif isinstance(node, (Add, Sub, Mul, Div, Min2, Max2)):
                opname = {
                    Add: "add",
                    Sub: "sub",
                    Mul: "mul",
                    Div: "div",
                    Min2: "min",
                    Max2: "max",
                }[type(node)]
                self._tape.append(
                    (opname, slot, slots[id(node.left)], slots[id(node.right)])
                )
            else:  # pragma: no cover - node zoo is closed
                raise EvaluationError(f"unknown node type {type(node).__name__}")
        self._n_slots = len(slots)
        self._result_slot = slots[id(root)]

    def __len__(self) -> int:
        return len(self._tape)

    @property
    def instructions(self) -> tuple[tuple, ...]:
        """The flat instruction tape (read-only view).

        Each entry is ``(op, slot, *operands)``: ``("const", slot, value)``,
        ``("var", slot, var_index)``, ``("pow", slot, base_slot, exponent)``,
        unary ``(op, slot, child_slot)``, or binary
        ``(op, slot, left_slot, right_slot)``.  The frontier-wide HC4
        contractor (:mod:`repro.smt.hc4`) walks this tape forward and
        backward instead of re-deriving its own flattening.
        """
        return tuple(self._tape)

    @property
    def n_slots(self) -> int:
        """Number of value slots the tape writes."""
        return self._n_slots

    @property
    def result_slot(self) -> int:
        """Slot holding the root's value after a tape pass."""
        return self._result_slot

    def kernel(self):
        """The tape's compiled :class:`~repro.perf.KernelPlan` (cached).

        Built on first use; :meth:`eval_points` / :meth:`eval_boxes`
        route through it whenever the kernel layer is enabled
        (:func:`repro.perf.set_enabled`, ``REPRO_KERNELS``).
        """
        if self._kernel is None:
            self._kernel = _kernel_module().KernelPlan(self)
        return self._kernel

    def __getstate__(self) -> dict:
        # Kernel plans hold prebound closures and thread-local buffer
        # pools — process-local state.  Drop them on pickling (workers
        # rebuild plans on first evaluation).
        state = self.__dict__.copy()
        state["_kernel"] = None
        return state

    # ------------------------------------------------------------------
    # Vectorized numeric evaluation
    # ------------------------------------------------------------------
    def eval_points(self, points: np.ndarray) -> np.ndarray:
        """Evaluate at ``points`` of shape ``(m, n_vars)``; returns ``(m,)``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != len(self.variable_names):
            raise EvaluationError(
                f"points have {points.shape[1]} columns, expected "
                f"{len(self.variable_names)}"
            )
        if _kernel_module().enabled():
            return self.kernel().eval_points(points)
        m = points.shape[0]
        slots: list[np.ndarray | None] = [None] * self._n_slots
        for instr in self._tape:
            op, slot = instr[0], instr[1]
            if op == "const":
                slots[slot] = np.full(m, instr[2])
            elif op == "var":
                slots[slot] = points[:, instr[2]]
            else:
                slots[slot] = _numeric_op(op, instr, slots)
        return slots[self._result_slot]

    def eval_point(self, point: Sequence[float]) -> float:
        """Evaluate at a single point vector."""
        return float(self.eval_points(np.asarray(point, dtype=float)[None, :])[0])

    # ------------------------------------------------------------------
    # Vectorized interval evaluation
    # ------------------------------------------------------------------
    def eval_boxes(self, lower: np.ndarray, upper: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sound bounds over a batch of boxes.

        ``lower``/``upper`` have shape ``(m, n_vars)``; returns two ``(m,)``
        arrays bounding the expression on each box.
        """
        lower = np.atleast_2d(np.asarray(lower, dtype=float))
        upper = np.atleast_2d(np.asarray(upper, dtype=float))
        if lower.shape != upper.shape or lower.shape[1] != len(self.variable_names):
            raise EvaluationError(
                f"box arrays of shape {lower.shape}/{upper.shape} do not match "
                f"{len(self.variable_names)} variables"
            )
        if _kernel_module().enabled():
            return self.kernel().eval_boxes(lower, upper)
        m = lower.shape[0]
        los: list[np.ndarray | None] = [None] * self._n_slots
        his: list[np.ndarray | None] = [None] * self._n_slots
        for instr in self._tape:
            op, slot = instr[0], instr[1]
            if op == "const":
                los[slot] = np.full(m, instr[2])
                his[slot] = np.full(m, instr[2])
            elif op == "var":
                los[slot] = lower[:, instr[2]]
                his[slot] = upper[:, instr[2]]
            else:
                los[slot], his[slot] = _interval_op(op, instr, los, his)
        return los[self._result_slot], his[self._result_slot]

    def eval_box(self, box: Box) -> Interval:
        """Sound interval bound over a single :class:`Box`."""
        arr = box.to_array()
        lo, hi = self.eval_boxes(arr[None, :, 0], arr[None, :, 1])
        return Interval(float(lo[0]), float(hi[0]))

    def eval_box_array(self, boxes: "BoxArray") -> "IntervalArray":
        """Sound bounds over a whole :class:`~repro.intervals.BoxArray`.

        One tape pass for the full frontier; returns an
        :class:`~repro.intervals.IntervalArray` of shape ``(m,)``.
        """
        from ..intervals import IntervalArray

        lo, hi = self.eval_boxes(boxes.lo, boxes.hi)
        return IntervalArray(lo, hi)


def compile_expression(
    root: Expr, variable_names: Sequence[str]
) -> CompiledExpression:
    """Compile ``root`` against a fixed variable ordering."""
    return CompiledExpression(root, variable_names)


_kernels = None


def _kernel_module():
    """Lazy handle to :mod:`repro.perf.kernels` (imports would be circular)."""
    global _kernels
    if _kernels is None:
        from ..perf import kernels

        _kernels = kernels
    return _kernels


# ----------------------------------------------------------------------
# Numeric instruction semantics
# ----------------------------------------------------------------------
def _numeric_op(op: str, instr: tuple, slots: list) -> np.ndarray:
    if op in ("add", "sub", "mul", "div", "min", "max"):
        a = slots[instr[2]]
        b = slots[instr[3]]
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            with np.errstate(divide="ignore", invalid="ignore"):
                return a / b
        if op == "min":
            return np.minimum(a, b)
        return np.maximum(a, b)
    a = slots[instr[2]]
    if op == "neg":
        return -a
    if op == "pow":
        return a ** instr[3]
    if op == "sin":
        return np.sin(a)
    if op == "cos":
        return np.cos(a)
    if op == "tan":
        return np.tan(a)
    if op == "tanh":
        return np.tanh(a)
    if op == "sigmoid":
        return _sigmoid_array(a)
    if op == "exp":
        return np.exp(a)
    if op == "log":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.log(a)
    if op == "sqrt":
        with np.errstate(invalid="ignore"):
            return np.sqrt(a)
    if op == "abs":
        return np.abs(a)
    if op == "atan":
        return np.arctan(a)
    raise EvaluationError(f"unknown numeric op {op!r}")


def _sigmoid_array(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


# ----------------------------------------------------------------------
# Interval instruction semantics (vectorized over a batch of boxes)
# ----------------------------------------------------------------------
def _widen(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pad_lo = _REL * np.abs(lo) + _ABS
    pad_hi = _REL * np.abs(hi) + _ABS
    out_lo = lo - pad_lo
    out_hi = hi + pad_hi
    # Widening must never invalidate infinities or create NaNs.
    out_lo = np.where(np.isnan(out_lo), -np.inf, out_lo)
    out_hi = np.where(np.isnan(out_hi), np.inf, out_hi)
    return out_lo, out_hi


def _interval_op(op: str, instr: tuple, los: list, his: list):
    if op in ("add", "sub", "mul", "div", "min", "max"):
        alo, ahi = los[instr[2]], his[instr[2]]
        blo, bhi = los[instr[3]], his[instr[3]]
        if op == "add":
            return _widen(alo + blo, ahi + bhi)
        if op == "sub":
            return _widen(alo - bhi, ahi - blo)
        if op == "mul":
            return _widen(*_interval_mul(alo, ahi, blo, bhi))
        if op == "div":
            return _widen(*_interval_div(alo, ahi, blo, bhi))
        if op == "min":
            return np.minimum(alo, blo), np.minimum(ahi, bhi)
        return np.maximum(alo, blo), np.maximum(ahi, bhi)
    alo, ahi = los[instr[2]], his[instr[2]]
    if op == "neg":
        return -ahi, -alo
    if op == "pow":
        return _widen(*_interval_pow(alo, ahi, instr[3]))
    if op == "sin":
        return _interval_sin_cos(alo, ahi, peak_offset=_HALF_PI)
    if op == "cos":
        return _interval_sin_cos(alo, ahi, peak_offset=0.0)
    if op == "tan":
        return _interval_tan(alo, ahi)
    if op == "tanh":
        lo, hi = _widen(np.tanh(alo), np.tanh(ahi))
        return np.maximum(lo, -1.0), np.minimum(hi, 1.0)
    if op == "sigmoid":
        lo, hi = _widen(_sigmoid_array(alo), _sigmoid_array(ahi))
        return np.maximum(lo, 0.0), np.minimum(hi, 1.0)
    if op == "exp":
        with np.errstate(over="ignore"):
            lo, hi = _widen(np.exp(alo), np.exp(ahi))
        return np.maximum(lo, 0.0), hi
    if op == "log":
        return _interval_log(alo, ahi)
    if op == "sqrt":
        return _interval_sqrt(alo, ahi)
    if op == "abs":
        both = np.maximum(np.abs(alo), np.abs(ahi))
        crosses = (alo < 0.0) & (ahi > 0.0)
        lo = np.where(crosses, 0.0, np.minimum(np.abs(alo), np.abs(ahi)))
        return lo, both
    if op == "atan":
        return _widen(np.arctan(alo), np.arctan(ahi))
    raise EvaluationError(f"unknown interval op {op!r}")


def _interval_mul(alo, ahi, blo, bhi):
    with np.errstate(invalid="ignore"):
        p1 = alo * blo
        p2 = alo * bhi
        p3 = ahi * blo
        p4 = ahi * bhi
    # 0 * inf produces NaN; in interval algebra that product contributes 0.
    for p in (p1, p2, p3, p4):
        np.copyto(p, 0.0, where=np.isnan(p))
    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    return lo, hi


def _interval_div(alo, ahi, blo, bhi):
    # Reciprocal of [blo, bhi], whole-line where the denominator spans 0.
    spans_zero = (blo <= 0.0) & (bhi >= 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        rlo = np.where(spans_zero, -np.inf, 1.0 / np.where(spans_zero, 1.0, bhi))
        rhi = np.where(spans_zero, np.inf, 1.0 / np.where(spans_zero, 1.0, blo))
    return _interval_mul(alo, ahi, rlo, rhi)


def _interval_pow(alo, ahi, exponent: int):
    if exponent == 0:
        ones = np.ones_like(alo)
        return ones, ones
    if exponent < 0:
        plo, phi = _interval_pow(alo, ahi, -exponent)
        return _interval_div(np.ones_like(alo), np.ones_like(alo), plo, phi)
    lo_p = alo**float(exponent)
    hi_p = ahi**float(exponent)
    if exponent % 2 == 1:
        return lo_p, hi_p
    crosses = (alo <= 0.0) & (ahi >= 0.0)
    lo = np.where(crosses, 0.0, np.minimum(lo_p, hi_p))
    hi = np.maximum(lo_p, hi_p)
    return lo, hi


def _interval_sqrt(alo, ahi):
    clipped_lo = np.maximum(alo, 0.0)
    clipped_hi = np.maximum(ahi, 0.0)
    with np.errstate(invalid="ignore"):
        lo, hi = _widen(np.sqrt(clipped_lo), np.sqrt(clipped_hi))
    lo = np.maximum(lo, 0.0)
    # Boxes entirely below the domain yield an empty image; mark with NaN->inf
    # ordering that pruning logic treats as "no satisfying point".
    empty = ahi < 0.0
    lo = np.where(empty, np.inf, lo)
    hi = np.where(empty, -np.inf, hi)
    return lo, hi


def _interval_log(alo, ahi):
    with np.errstate(divide="ignore", invalid="ignore"):
        lo = np.where(alo <= 0.0, -np.inf, np.log(np.maximum(alo, np.finfo(float).tiny)))
        hi = np.where(ahi <= 0.0, -np.inf, np.log(np.maximum(ahi, np.finfo(float).tiny)))
    lo, hi = _widen(lo, hi)
    empty = ahi <= 0.0
    lo = np.where(empty, np.inf, lo)
    hi = np.where(empty, -np.inf, hi)
    return lo, hi


def _interval_sin_cos(alo, ahi, peak_offset: float):
    width = ahi - alo
    f = np.sin if peak_offset == _HALF_PI else np.cos
    v_lo = f(alo)
    v_hi = f(ahi)
    lo, hi = _widen(np.minimum(v_lo, v_hi), np.maximum(v_lo, v_hi))
    slack = _TRIG_SLACK * (1.0 + np.maximum(np.abs(alo), np.abs(ahi)))
    # Does the box contain a maximum (offset + 2 pi k) or minimum?
    hi = np.where(_has_critical(alo, ahi, peak_offset, slack), 1.0, hi)
    lo = np.where(_has_critical(alo, ahi, peak_offset + math.pi, slack), -1.0, lo)
    wide = ~np.isfinite(width) | (width >= _TWO_PI)
    lo = np.where(wide, -1.0, np.maximum(lo, -1.0))
    hi = np.where(wide, 1.0, np.minimum(hi, 1.0))
    return lo, hi


def _has_critical(alo, ahi, offset: float, slack):
    with np.errstate(invalid="ignore"):
        k = np.ceil((alo - slack - offset) / _TWO_PI)
        point = offset + _TWO_PI * k
        result = point <= ahi + slack
    return np.where(np.isfinite(alo) & np.isfinite(ahi), result, True)


def _interval_tan(alo, ahi):
    width = ahi - alo
    # Pole at pi/2 + k pi inside the box -> whole line.
    slack = _TRIG_SLACK * (1.0 + np.maximum(np.abs(alo), np.abs(ahi)))
    with np.errstate(invalid="ignore"):
        k = np.ceil((alo - slack - _HALF_PI) / math.pi)
        pole = _HALF_PI + math.pi * k
        has_pole = pole <= ahi + slack
    wide = ~np.isfinite(width) | (width >= math.pi) | has_pole
    t_lo = np.tan(alo)
    t_hi = np.tan(ahi)
    lo, hi = _widen(t_lo, t_hi)
    lo = np.where(wide, -np.inf, lo)
    hi = np.where(wide, np.inf, hi)
    return lo, hi
