"""Continuous-time autonomous systems with dual semantics.

A :class:`ContinuousSystem` owns the *symbolic* vector field (what the
SMT queries reason about) and derives from it a *numeric* callable for
simulation.  When a faster hand-written numeric implementation exists
(e.g. calling the NN's matrix forward pass instead of walking its
expression), it can be supplied as ``numeric_override`` — the test suite
cross-checks the two, mirroring the paper's assumption that simulation
is an approximation of the verified semantics.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ReproError
from ..expr import CompiledExpression, Expr, compile_expression
from ..sim import Simulator

__all__ = ["ContinuousSystem"]


class ContinuousSystem:
    """An autonomous system ``x' = f(x)`` over named state variables.

    Parameters
    ----------
    state_names:
        Names of the state variables, fixing the coordinate order.
    field_exprs:
        One expression per state derivative, over those variables.
    numeric_override:
        Optional fast ``f(x) -> x_dot``; defaults to evaluating the
        compiled symbolic field.
    numeric_batch_override:
        Optional fast batch ``F(X) -> X_dot`` over ``(m, n)`` state
        arrays — the hot path of the vectorized simulation engine.  When
        absent, :meth:`f_vectorized` falls back to the compiled symbolic
        tapes, which are themselves vectorized over points.
    name:
        Human-readable label for reports.
    """

    def __init__(
        self,
        state_names: Sequence[str],
        field_exprs: Sequence[Expr],
        numeric_override: Callable[[np.ndarray], np.ndarray] | None = None,
        numeric_batch_override: Callable[[np.ndarray], np.ndarray] | None = None,
        name: str = "system",
    ):
        self.state_names = list(state_names)
        self.field_exprs = list(field_exprs)
        self.name = name
        if not self.state_names:
            raise ReproError("a system needs at least one state variable")
        if len(self.field_exprs) != len(self.state_names):
            raise ReproError(
                f"{len(self.field_exprs)} field expressions for "
                f"{len(self.state_names)} states"
            )
        self._numeric_override = numeric_override
        self._numeric_batch_override = numeric_batch_override
        self._tapes: list[CompiledExpression] | None = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """State dimension."""
        return len(self.state_names)

    def tapes(self) -> list[CompiledExpression]:
        """Compiled tapes of the field components (built lazily, cached)."""
        if self._tapes is None:
            self._tapes = [
                compile_expression(expr, self.state_names)
                for expr in self.field_exprs
            ]
        return self._tapes

    # ------------------------------------------------------------------
    # Numeric semantics
    # ------------------------------------------------------------------
    def f(self, x: np.ndarray) -> np.ndarray:
        """Vector field at a single state."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dimension,):
            raise ReproError(f"state shape {x.shape} != ({self.dimension},)")
        if self._numeric_override is not None:
            return np.asarray(self._numeric_override(x), dtype=float)
        point = x[None, :]
        return np.array([float(tape.eval_points(point)[0]) for tape in self.tapes()])

    def f_batch(self, states: np.ndarray) -> np.ndarray:
        """Vector field at many states, shape ``(m, n) -> (m, n)``."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if self._numeric_override is not None:
            return np.array([self._numeric_override(x) for x in states])
        return np.stack(
            [tape.eval_points(states) for tape in self.tapes()], axis=1
        )

    def f_vectorized(self, states: np.ndarray) -> np.ndarray:
        """Vector field at many states through one array pass.

        Unlike :meth:`f_batch` — which preserves the historical per-state
        loop over a scalar ``numeric_override`` — this path never drops
        to a Python loop: it uses ``numeric_batch_override`` when
        supplied and the vectorized compiled tapes otherwise.  The
        results agree with :meth:`f_batch` to floating-point round-off
        (BLAS batch kernels may reorder reductions), which is why the
        bit-exact ``native`` engine does not use it.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if self._numeric_batch_override is not None:
            return np.asarray(self._numeric_batch_override(states), dtype=float)
        return np.stack(
            [tape.eval_points(states) for tape in self.tapes()], axis=1
        )

    def symbolic_f(self, x: np.ndarray) -> np.ndarray:
        """Vector field evaluated through the symbolic tapes (for cross-checks)."""
        point = np.asarray(x, dtype=float)[None, :]
        return np.array([float(tape.eval_points(point)[0]) for tape in self.tapes()])

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulator(
        self,
        input_function: Callable[[np.ndarray], np.ndarray] | None = None,
        method: str = "rk4",
        **options,
    ) -> Simulator:
        """A :class:`~repro.sim.Simulator` bound to this system's dynamics."""
        return Simulator(self.f, input_function=input_function, method=method, **options)

    def __repr__(self) -> str:
        return f"<ContinuousSystem '{self.name}' states={self.state_names}>"
