"""Flowpipe reachability tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.barrier import Rectangle, RectangleComplement
from repro.dynamics import error_dynamics_system, stable_linear_system
from repro.errors import SimulationError
from repro.learning import proportional_controller_network
from repro.reach import ReachConfig, ReachResult, check_bounded_safety, reach_tube


@pytest.fixture(scope="module")
def paper_system():
    return error_dynamics_system(proportional_controller_network(4))


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            ReachConfig(dt=0.0)
        with pytest.raises(SimulationError):
            ReachConfig(inflation=0.0)

    def test_negative_duration(self, paper_system):
        with pytest.raises(SimulationError):
            reach_tube(paper_system, Rectangle([-0.1, -0.1], [0.1, 0.1]), -1.0)


class TestSoundness:
    """The tube must contain every true trajectory from the initial box."""

    @pytest.mark.parametrize("system_name", ["linear", "paper"])
    def test_trajectories_contained(self, system_name, paper_system, rng):
        if system_name == "linear":
            system = stable_linear_system(np.array([[-0.5, 1.0], [-1.0, -0.5]]))
        else:
            system = paper_system
        initial = Rectangle([-0.1, -0.05], [0.1, 0.05])
        duration = 0.5
        config = ReachConfig(dt=0.005)
        tube = reach_tube(system, initial, duration, config)
        sim = system.simulator()
        for _ in range(5):
            x0 = rng.uniform(initial.lower, initial.upper)
            trace = sim.simulate(x0, duration, config.dt)
            for k, t in enumerate(tube.times):
                state = trace.state_at(float(t))
                box = tube.boxes[k]
                assert box.inflate(absolute=1e-6).contains(state), (
                    f"t={t}: {state} escaped {box}"
                )

    def test_degenerate_start_tracks_trajectory(self, paper_system):
        """A point initial box must stay a thin tube around the true
        solution over a short horizon."""
        x0 = np.array([0.3, 0.05])
        initial = Rectangle(x0 - 1e-9, x0 + 1e-9)
        tube = reach_tube(paper_system, initial, 0.3, ReachConfig(dt=0.005))
        trace = paper_system.simulator().simulate(x0, 0.3, 0.005)
        final_box = tube.final_box
        assert final_box.inflate(absolute=0.01).contains(trace.final_state)
        assert final_box.max_width() < 0.05


class TestBoundedSafety:
    def test_short_horizon_proved(self, paper_system):
        unsafe = RectangleComplement(Rectangle([-5.0, -1.47], [5.0, 1.47]))
        initial = Rectangle([-0.1, -0.05], [0.1, 0.05])
        proved, tube = check_bounded_safety(
            paper_system, initial, unsafe, 1.0, ReachConfig(dt=0.005)
        )
        assert proved
        assert tube.first_violation is None
        assert tube.completed

    def test_wrapping_defeats_long_horizon(self, paper_system):
        """The known failure mode: first-order flowpipes diverge on the
        paper's full X0 — exactly the gap the barrier method fills."""
        unsafe = RectangleComplement(Rectangle([-5.0, -1.47], [5.0, 1.47]))
        initial = Rectangle([-1.0, -0.19], [1.0, 0.19])  # the paper's X0
        proved, tube = check_bounded_safety(
            paper_system, initial, unsafe, 5.0, ReachConfig(dt=0.01)
        )
        assert not proved

    def test_unsafe_system_flagged(self):
        bad = proportional_controller_network(4, d_gain=-0.6, theta_gain=-2.0)
        system = error_dynamics_system(bad)
        unsafe = RectangleComplement(Rectangle([-2.0, -0.6], [2.0, 0.6]))
        initial = Rectangle([-1.0, -0.3], [1.0, 0.3])
        proved, tube = check_bounded_safety(
            system, initial, unsafe, 3.0, ReachConfig(dt=0.01)
        )
        assert not proved
        # Interval intersection with the unsafe set is recorded.
        assert tube.first_violation is not None or not tube.completed

    def test_result_accessors(self, paper_system):
        tube = reach_tube(
            paper_system,
            Rectangle([-0.05, -0.05], [0.05, 0.05]),
            0.2,
            ReachConfig(dt=0.01),
        )
        assert len(tube.boxes) == len(tube.times)
        assert tube.max_width() >= tube.boxes[0].max_width()
        assert tube.final_box is tube.boxes[-1]
