"""Builder-helper tests."""

from __future__ import annotations

import pytest

from repro.errors import ExpressionError
from repro.expr import (
    Const,
    Var,
    dot,
    evaluate,
    relu,
    var,
    variables,
)


class TestVariables:
    def test_from_string(self):
        xs = variables("a b c")
        assert [v.name for v in xs] == ["a", "b", "c"]
        assert all(isinstance(v, Var) for v in xs)

    def test_from_list(self):
        xs = variables(["p", "q"])
        assert [v.name for v in xs] == ["p", "q"]


class TestDot:
    def test_length_mismatch(self):
        with pytest.raises(ExpressionError):
            dot([1.0, 2.0], [var("x")])

    def test_zero_weights_dropped(self):
        e = dot([0.0, 0.0], [var("x"), var("y")])
        assert isinstance(e, Const)
        assert e.value == 0.0

    def test_unit_weight_skips_multiplication(self):
        e = dot([1.0], [var("x")])
        assert isinstance(e, Var)

    def test_semantics(self):
        e = dot([2.0, -3.0, 1.0], [var("x"), var("y"), var("x")])
        assert evaluate(e, {"x": 1.0, "y": 2.0}) == pytest.approx(2 - 6 + 1)


class TestRelu:
    def test_semantics(self):
        e = relu(var("x"))
        assert evaluate(e, {"x": -2.0}) == 0.0
        assert evaluate(e, {"x": 3.0}) == 3.0
