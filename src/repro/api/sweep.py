"""Parameter-space sweeps over scenario families, with artifact caching.

:func:`sweep` turns a :class:`~repro.api.family.ScenarioFamily` plus a
parameter grid (or a random sample of parameter space) into a sharded,
resumable workload:

1. enumerate parameter points (cartesian grid or uniform sample),
2. instantiate one scenario per point, with a deterministic per-point
   synthesis seed derived from the sweep seed and the point's canonical
   name (reordering or resharding never changes any point's seed),
3. probe the content-addressed :mod:`repro.store` cache — hits are
   reused without spawning any work,
4. fan the misses out across worker processes via
   :func:`repro.api.run_batch` (each worker writes its artifact back
   into the store),
5. aggregate everything into a :class:`SweepReport`: verified fraction,
   per-status counts, level/timing quantiles, and a per-parameter
   breakdown of how verification behaves across regions of parameter
   space.

The aggregate half of the report is a pure function of the artifacts, so
re-invoking the same sweep against a warm cache reproduces it *exactly*
(only ``cache_hits`` / ``wall_seconds`` differ).  The CLI form is
``repro sweep dubins --grid speed=2:6:3 nn_width=8,10 --workers 4``.

:mod:`repro.service` builds its job expansion on the same two pieces —
:func:`instantiate_points` and the per-point seed derivation of step 2
— so artifacts produced through the service are byte-identical to a
direct sweep of the same points and share its cache keys.  Changing
either contract changes every stored ``run_key``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..barrier import SynthesisConfig
from ..engine import Engine
from ..errors import ReproError
from ..store import resolve_store, run_key
from .family import ScenarioFamily, format_param_value, get_family
from .pool import WarmPool, WarmupSpec, get_warm_pool
from .runner import (
    RunArtifact,
    _resolve_run_engine,
    derive_scenario_seed,
    run_batch,
)
from .scenario import Scenario

__all__ = ["SweepReport", "instantiate_points", "sweep"]

#: quantiles reported for level/timing distributions
_QUANTILES = (("min", 0.0), ("q25", 0.25), ("median", 0.5), ("q75", 0.75), ("max", 1.0))


def _quantiles(values: Sequence[float]) -> dict[str, float]:
    """Named quantiles of a sample (empty dict for an empty sample)."""
    if not values:
        return {}
    arr = np.asarray(values, dtype=float)
    return {name: float(np.quantile(arr, q)) for name, q in _QUANTILES}


@dataclass
class SweepReport:
    """Everything one sweep produced, aggregate first.

    ``points``/``artifacts`` are index-aligned (one artifact per
    parameter point, in grid/sample order).  :meth:`aggregate` is
    deterministic given the artifacts — identical across cold and warm
    invocations of the same sweep — while ``cache_hits`` and
    ``wall_seconds`` describe the invocation itself.
    """

    family: str
    engine: str
    seed: int
    points: list[dict] = field(default_factory=list)
    artifacts: list[RunArtifact] = field(default_factory=list)
    cache_hits: int = 0
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        """Number of parameter points in the sweep."""
        return len(self.artifacts)

    @property
    def verified_fraction(self) -> float:
        """Fraction of points whose run produced a proof."""
        if not self.artifacts:
            return 0.0
        return sum(a.verified for a in self.artifacts) / len(self.artifacts)

    def aggregate(self) -> dict:
        """The deterministic aggregate: statuses, quantiles, regions.

        Pure function of the (cached or fresh) artifacts — byte-stable
        across re-invocations of the same sweep.
        """
        statuses = Counter(a.status for a in self.artifacts)
        levels = [a.level for a in self.artifacts if a.verified and a.level is not None]
        times = [a.total_seconds for a in self.artifacts]
        by_param: dict[str, dict[str, dict]] = {}
        for name in sorted({k for p in self.points for k in p}):
            groups: dict[str, list[RunArtifact]] = {}
            for point, artifact in zip(self.points, self.artifacts):
                if name in point:
                    key = format_param_value(point[name])
                    groups.setdefault(key, []).append(artifact)
            by_param[name] = {
                value: {
                    "runs": len(group),
                    "verified": sum(a.verified for a in group),
                    "verified_fraction": sum(a.verified for a in group) / len(group),
                    "median_seconds": float(
                        np.median([a.total_seconds for a in group])
                    ),
                }
                for value, group in sorted(groups.items())
            }
        return {
            "total": self.total,
            "statuses": dict(sorted(statuses.items())),
            "verified": int(sum(a.verified for a in self.artifacts)),
            "verified_fraction": self.verified_fraction,
            "level_quantiles": _quantiles(levels),
            "seconds_quantiles": _quantiles(times),
            "by_param": by_param,
        }

    def to_dict(self) -> dict:
        """JSON-ready view: aggregate + per-point runs + invocation info."""
        return {
            "family": self.family,
            "engine": self.engine,
            "seed": self.seed,
            "cache_hits": self.cache_hits,
            "wall_seconds": self.wall_seconds,
            "aggregate": self.aggregate(),
            "runs": [
                {"params": dict(point), **artifact.to_dict()}
                for point, artifact in zip(self.points, self.artifacts)
            ],
        }

    def format(self) -> str:
        """Human-readable sweep summary (the CLI's output)."""
        agg = self.aggregate()
        lines = [
            f"sweep {self.family!r} on engine {self.engine!r}: "
            f"{self.total} points, {agg['verified']} verified "
            f"({agg['verified_fraction']:.0%})"
        ]
        status_bits = ", ".join(
            f"{status} {count}" for status, count in agg["statuses"].items()
        )
        lines.append(f"statuses: {status_bits}")
        if agg["level_quantiles"]:
            lq = agg["level_quantiles"]
            lines.append(
                f"level:   min {lq['min']:.4g}  median {lq['median']:.4g}  "
                f"max {lq['max']:.4g}"
            )
        sq = agg["seconds_quantiles"]
        if sq:
            lines.append(
                f"seconds: min {sq['min']:.2f}  median {sq['median']:.2f}  "
                f"max {sq['max']:.2f}"
            )
        for name, regions in agg["by_param"].items():
            cells = "  ".join(
                f"{value}:{info['verified']}/{info['runs']}"
                for value, info in regions.items()
            )
            lines.append(f"verified by {name}: {cells}")
        lines.append(
            f"cache hits: {self.cache_hits}/{self.total}  "
            f"(wall {self.wall_seconds:.2f}s)"
        )
        return "\n".join(lines)


def instantiate_points(
    family: ScenarioFamily,
    grid: "Mapping[str, Sequence[object] | str] | None",
    samples: int | None,
    seed: int,
    overrides: "Mapping[str, object] | None",
) -> list[dict]:
    """Resolve the sweep's parameter points from grid or sampler.

    With a grid, ``overrides`` pins *unswept* parameters to fixed
    values on every point (overriding a swept axis is an error); with
    ``samples`` it pins parameters instead of sampling them.
    """
    if grid is not None and samples is not None:
        raise ReproError("pass either grid or samples, not both")
    if grid is not None:
        if not grid:
            raise ReproError("grid must name at least one parameter axis")
        points = family.grid(grid)
        if overrides:
            clash = set(overrides) & set(grid)
            if clash:
                raise ReproError(
                    "overrides conflict with swept grid axes: "
                    + ", ".join(sorted(clash))
                )
            pinned = {
                name: family.spec(name).coerce(value)
                for name, value in overrides.items()
            }
            points = [{**pinned, **point} for point in points]
        return points
    if samples is not None:
        return family.sample(samples, seed=seed, overrides=overrides)
    raise ReproError("sweep needs a grid or a sample count")


def sweep(
    family: "str | ScenarioFamily",
    grid: "Mapping[str, Sequence[object] | str] | None" = None,
    samples: int | None = None,
    overrides: "Mapping[str, object] | None" = None,
    seed: int = 0,
    workers: int | None = None,
    config: SynthesisConfig | None = None,
    engine: "str | Engine | None" = None,
    cache: "object | None" = True,
    pool: "WarmPool | bool | None" = None,
) -> SweepReport:
    """Sweep a family's parameter space, skipping cached work.

    Parameters
    ----------
    family:
        Registered family name or :class:`ScenarioFamily` object.
    grid:
        Mapping of parameter name to values — a sequence, or a spec
        string (``"2:6:3"`` linspace / ``"8,10"`` list) parsed by
        :func:`~repro.api.family.parse_grid_values`.  Cartesian product
        over the axes; unswept parameters keep their defaults.
    samples:
        Alternative to ``grid``: draw this many uniform random points
        within each parameter's declared bounds.  Deterministic in
        ``seed``.
    overrides:
        Pin named parameters to fixed values: with ``samples`` they are
        held instead of sampled; with ``grid`` they apply to every
        point (pinning a swept axis is an error).
    seed:
        Sweep-level seed.  Each point derives its own synthesis seed
        from it via :func:`~repro.api.runner.derive_scenario_seed` on
        the point's canonical scenario name, so artifacts (and cache
        keys) are stable under resharding and reordering.
    workers:
        Worker processes for the cache misses (``None`` = auto).
    config:
        Base :class:`SynthesisConfig` override for every point (the
        per-point seed is applied on top).
    engine:
        Solver stack for every run (name or Engine).
    cache:
        The artifact store — ``True`` (default) uses the default root
        (honoring ``REPRO_STORE``); a path or
        :class:`~repro.store.ArtifactStore` selects one; ``False``
        disables caching (everything re-runs).
    pool:
        Worker-pool policy for the miss fan-out.  ``None``/``True``
        (default) dispatches on the process-global
        :class:`~repro.api.pool.WarmPool`, whose workers persist across
        sweeps and pre-compile this family's scenario kernels in their
        initializer; a :class:`WarmPool` uses that pool; ``False``
        restores the historical one-shot executor per call.

    Returns the :class:`SweepReport` with artifacts in point order.
    """
    if isinstance(family, str):
        family = get_family(family)
    started = time.perf_counter()
    points = instantiate_points(family, grid, samples, seed, overrides)

    scenarios: list[Scenario] = []
    engines: list[Engine] = []
    for point in points:
        scenario = family.instantiate(**point)
        base = config or scenario.config
        cfg = dataclasses.replace(
            base, seed=derive_scenario_seed(seed, scenario.name)
        )
        scenario = scenario.with_config(cfg)
        scenarios.append(scenario)
        engines.append(_resolve_run_engine(scenario, cfg, engine))

    store = resolve_store(cache)
    results: list[RunArtifact | None] = [None] * len(scenarios)
    misses: list[int] = []
    if store is not None:
        for i, (scenario, eng) in enumerate(zip(scenarios, engines)):
            hit = store.get(run_key(scenario, scenario.config, eng.name))
            if hit is not None:
                hit.cached = True
                results[i] = hit
            else:
                misses.append(i)
    else:
        misses = list(range(len(scenarios)))

    if misses:
        # Pool size follows the explicit worker request or the machine,
        # NOT the miss count: sizing by misses would tear the global
        # warm pool down whenever consecutive sweeps have different
        # cache-hit rates — exactly the churn the pool exists to avoid.
        effective_workers = (
            workers if workers is not None else (os.cpu_count() or 1)
        )
        warm_pool: WarmPool | None
        if pool is False:
            warm_pool = None
        elif isinstance(pool, WarmPool):
            warm_pool = pool
            warm_pool.ensure_warm(WarmupSpec(families=(family.name,)))
        elif effective_workers > 1 and len(misses) > 1:
            warm_pool = get_warm_pool(
                effective_workers, WarmupSpec(families=(family.name,))
            )
        else:
            warm_pool = None
        fresh = run_batch(
            [scenarios[i] for i in misses],
            workers=effective_workers,
            engine=engine,
            cache=store if store is not None else False,
            pool=warm_pool,
        )
        for i, artifact in zip(misses, fresh):
            results[i] = artifact

    artifacts = [a for a in results if a is not None]
    engine_names = {e.name for e in engines}
    return SweepReport(
        family=family.name,
        engine=engine_names.pop() if len(engine_names) == 1 else "mixed",
        seed=seed,
        points=points,
        artifacts=artifacts,
        cache_hits=sum(a.cached for a in artifacts),
        wall_seconds=time.perf_counter() - started,
    )
