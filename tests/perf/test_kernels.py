"""Kernel plans: bit-identity with the interpreted evaluators + switch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import (
    absolute,
    atan,
    compile_expression,
    cos,
    exp,
    log,
    maximum,
    minimum,
    sigmoid,
    sin,
    sqrt,
    tan,
    tanh,
    var,
)
from repro.perf import OPCODES, enabled, set_enabled, use_kernels

X, Y = var("x"), var("y")
NAMES = ["x", "y"]

#: every tape op appears in at least one of these
EXPRESSIONS = [
    X * X + Y * Y - 1.0,
    2.5 * X - Y / 3.0 + 7.0,
    X * Y + X / Y,
    minimum(X, Y) + maximum(X, 2.0 * Y),
    -(X**3) + Y**2 - X ** (-2),
    sin(X) + cos(Y) + tan(0.3 * X),
    tanh(X) + sigmoid(Y) + atan(X * Y),
    exp(0.5 * X) + log(Y + 10.0) + sqrt(Y + 10.0) + absolute(X),
    (1.0 + 2.0) * X + (3.0 * 4.0),  # constant-folded subexpressions
]


def _frontier(rng, m):
    lo = rng.uniform(-2.0, 2.0, (m, 2))
    hi = lo + rng.exponential(0.7, (m, 2))
    return lo, hi


@pytest.mark.parametrize("expr", EXPRESSIONS, ids=[str(i) for i in range(len(EXPRESSIONS))])
class TestBitIdentity:
    def test_eval_points(self, expr, rng):
        tape = compile_expression(expr, NAMES)
        points = rng.uniform(-2.0, 2.0, (64, 2))
        with use_kernels(False):
            reference = tape.eval_points(points)
        with use_kernels(True):
            compiled = tape.eval_points(points)
        np.testing.assert_array_equal(reference, compiled)

    def test_eval_boxes(self, expr, rng):
        tape = compile_expression(expr, NAMES)
        lo, hi = _frontier(rng, 41)
        with use_kernels(False):
            ref_lo, ref_hi = tape.eval_boxes(lo, hi)
        with use_kernels(True):
            ker_lo, ker_hi = tape.eval_boxes(lo, hi)
        np.testing.assert_array_equal(ref_lo, ker_lo)
        np.testing.assert_array_equal(ref_hi, ker_hi)

    def test_repeated_calls_reuse_pooled_state(self, expr, rng):
        """Back-to-back kernel passes (workspace reuse) stay identical."""
        tape = compile_expression(expr, NAMES)
        lo, hi = _frontier(rng, 17)
        with use_kernels(True):
            first = tape.eval_boxes(lo, hi)
            second = tape.eval_boxes(lo, hi)
            # A different frontier width re-buckets; then back.
            big_lo, big_hi = _frontier(rng, 130)
            tape.eval_boxes(big_lo, big_hi)
            third = tape.eval_boxes(lo, hi)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(first, third):
            np.testing.assert_array_equal(a, b)


class TestPlanForm:
    def test_integer_program_arrays(self):
        tape = compile_expression(2.0 * X + sin(Y), NAMES)
        plan = tape.kernel()
        assert plan.codes.dtype == np.int16
        assert len(plan.codes) == len(tape)
        assert plan.out.shape == plan.arg1.shape == plan.arg2.shape
        assert set(plan.codes.tolist()) <= set(OPCODES.values())
        assert plan.const_slots.shape == plan.const_values.shape
        assert 2.0 in plan.const_values.tolist()

    def test_plan_is_cached_per_tape(self):
        tape = compile_expression(X + Y, NAMES)
        assert tape.kernel() is tape.kernel()

    def test_const_root(self):
        from repro.expr import const

        for t in (
            compile_expression(const(2.0), ["x"]),
            compile_expression(sin(var("x")) * 0.0 + 2.0, ["x"]),
        ):
            pts = np.zeros((5, 1))
            lo = np.full((5, 1), -1.0)
            hi = np.ones((5, 1))
            with use_kernels(False):
                ref_p = t.eval_points(pts)
                ref_b = t.eval_boxes(lo, hi)
            with use_kernels(True):
                got_p = t.eval_points(pts)
                got_b = t.eval_boxes(lo, hi)
            np.testing.assert_array_equal(ref_p, got_p)
            for a, b in zip(ref_b, got_b):
                np.testing.assert_array_equal(a, b)


class TestSwitch:
    def test_default_enabled(self):
        assert enabled()

    def test_context_manager_restores(self):
        before = enabled()
        with use_kernels(False):
            assert not enabled()
            with use_kernels(True):
                assert enabled()
            assert not enabled()
        assert enabled() is before

    def test_set_enabled_returns_previous(self):
        previous = set_enabled(False)
        try:
            assert previous is True
            assert set_enabled(True) is False
        finally:
            set_enabled(True)
