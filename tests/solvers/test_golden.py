"""Golden-file corpus: emitted SMT-LIB text pinned per builtin scenario.

Each golden file is the condition-(5) query for the scenario under the
sum-of-squares candidate ``W(x) = Σ x_i²`` (the same query shape the
engine-parity tests use).  Any change to emission — literal formatting,
operator encodings, assertion ordering — shows up as a readable diff
against ``tests/solvers/golden/``.

Regenerate intentionally with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/solvers/test_golden.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.api import get_scenario, scenario_names
from repro.barrier.certificate import condition5_subproblems
from repro.expr import sum_expr, var
from repro.solvers import TRANSCENDENTAL_OPS, emit_query

GOLDEN_DIR = Path(__file__).parent / "golden"

#: scenarios whose condition-5 query is pure QF_NRA (Z3-eligible); the
#: rest use transcendentals and are dReal-only.  Pinned here so an
#: accidental encoding change (e.g. sigmoid no longer expanding) that
#: silently flips solver eligibility fails loudly.
_EXPECTED_PURE_NRA = {"linear", "double-integrator", "vanderpol"}


def _scenario_query(name):
    scenario = get_scenario(name)
    problem = scenario.problem()
    w = sum_expr([var(n) * var(n) for n in problem.state_names])
    subs = condition5_subproblems(w, problem, gamma=1e-6)
    return emit_query(subs, problem.state_names, scenario.config.icp.delta)


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_golden_emission(name):
    query = _scenario_query(name)
    golden = GOLDEN_DIR / f"{name}_condition5.smt2"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(query.text, encoding="utf-8")
        pytest.skip(f"regenerated {golden.name}")
    assert golden.is_file(), (
        f"missing golden file {golden}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert query.text == golden.read_text(encoding="utf-8"), (
        f"{name}: emitted SMT-LIB drifted from {golden.name}; "
        "if intentional, regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_emission_is_deterministic(name):
    assert _scenario_query(name).text == _scenario_query(name).text


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_ops_classification(name):
    query = _scenario_query(name)
    assert query.ops <= TRANSCENDENTAL_OPS
    if name in _EXPECTED_PURE_NRA:
        assert query.ops == frozenset(), f"{name} should be pure QF_NRA"
    else:
        assert query.ops, f"{name} should use transcendentals"


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_golden_has_no_scientific_notation(name):
    query = _scenario_query(name)
    for line in query.text.splitlines():
        if line.startswith(";"):
            continue
        for token in line.replace("(", " ").replace(")", " ").split():
            if any(ch.isdigit() for ch in token):
                assert "e" not in token.lower() or not _looks_numeric(token), (
                    f"{name}: scientific-notation literal {token!r}"
                )


def _looks_numeric(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True
