"""Kernel compilation and profiling: the synthesis loop's fast path.

This package closes the gap between the vectorized interval core
(:mod:`repro.intervals.array`, :mod:`repro.smt.hc4`) and the Python
shell around it:

* :mod:`repro.perf.kernels` — expression tapes pre-planned into flat
  ndarray programs (integer opcodes, constant tables, prebound
  instruction closures) with pooled workspaces, so
  :meth:`~repro.expr.CompiledExpression.eval_boxes` /
  :meth:`~repro.expr.CompiledExpression.eval_points` and the HC4
  revise sweep run with zero per-call dispatch or buffer allocation.
  Bit-identical to the interpreted paths; ``REPRO_KERNELS=0`` disables.
* :mod:`repro.perf.pool` — the exclusive-checkout workspace pool
  backing every compiled plan.
* :mod:`repro.perf.profile` — the per-stage latency breakdown behind
  the ``repro profile`` CLI subcommand.

See ``docs/performance.md`` for the design and measurement guide.
"""

from .kernels import OPCODES, KernelPlan, enabled, set_enabled, use_kernels
from .pool import MIN_BUCKET, BufferPool, Workspace

_PROFILE_EXPORTS = ("ProfileReport", "format_profile", "profile_scenario")


def __getattr__(name: str):
    # Deferred: profile pulls in repro.api (the whole pipeline stack),
    # which the kernel hot path must not pay for — expression tapes
    # lazily import this package from inside eval_points/eval_boxes.
    if name in _PROFILE_EXPORTS:
        from . import profile as _profile

        return getattr(_profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "MIN_BUCKET",
    "OPCODES",
    "BufferPool",
    "KernelPlan",
    "ProfileReport",
    "Workspace",
    "enabled",
    "format_profile",
    "profile_scenario",
    "set_enabled",
    "use_kernels",
]
