"""Cache correctness: byte-identical hits, misses on any knob change."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.barrier import SynthesisConfig
from repro.smt import IcpConfig
from repro.store import (
    ArtifactStore,
    default_store_root,
    resolve_store,
    run_fingerprint,
    run_key,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def linear_point():
    """A cheap family-instantiated scenario (sub-second verification)."""
    return api.get_family("linear").instantiate(damping=0.5, rotation=1.0)


# ----------------------------------------------------------------------
# Keys / fingerprints
# ----------------------------------------------------------------------
class TestRunKey:
    def test_key_is_deterministic(self, linear_point):
        config = linear_point.config
        assert run_key(linear_point, config, "native") == run_key(
            linear_point, config, "native"
        )

    def test_key_misses_on_seed_change(self, linear_point):
        base = linear_point.config
        changed = dataclasses.replace(base, seed=base.seed + 1)
        assert run_key(linear_point, base, "native") != run_key(
            linear_point, changed, "native"
        )

    def test_key_misses_on_config_change(self, linear_point):
        base = linear_point.config
        changed = dataclasses.replace(base, icp=IcpConfig(delta=1e-2))
        assert run_key(linear_point, base, "native") != run_key(
            linear_point, changed, "native"
        )

    def test_key_misses_on_engine_change(self, linear_point):
        config = linear_point.config
        assert run_key(linear_point, config, "native") != run_key(
            linear_point, config, "batched-icp"
        )

    def test_key_misses_on_params_change(self):
        family = api.get_family("linear")
        a = family.instantiate(damping=0.5)
        b = family.instantiate(damping=0.7)
        assert run_key(a, a.config, "native") != run_key(b, b.config, "native")

    def test_key_independent_of_scenario_name_for_family_runs(self):
        """Family identity comes from (family, params), not display name."""
        point = api.get_family("linear").instantiate(damping=0.5)
        renamed = dataclasses.replace(point, name="something-else")
        assert run_key(point, point.config, "native") == run_key(
            renamed, renamed.config, "native"
        )

    def test_key_misses_on_different_controller_same_name(self):
        """Factory args contribute content, not just type: two different
        networks under the same scenario name must not collide."""
        from repro.learning import proportional_controller_network

        a = api.dubins_scenario(
            network=proportional_controller_network(4), name="same-name"
        )
        b = api.dubins_scenario(
            network=proportional_controller_network(8), name="same-name"
        )
        assert run_key(a, a.config, "native") != run_key(b, b.config, "native")

    def test_hand_built_scenarios_keyed_by_sets(self):
        scenario = api.get_scenario("linear")
        grown = dataclasses.replace(
            scenario, initial_set=scenario.initial_set.inflate(0.1)
        )
        assert run_key(scenario, scenario.config, "native") != run_key(
            grown, grown.config, "native"
        )

    def test_fingerprint_is_json_canonical(self, linear_point):
        fp = run_fingerprint(linear_point, linear_point.config, "native")
        # Must survive a JSON round trip unchanged (no exotic objects).
        assert json.loads(json.dumps(fp)) == fp
        assert fp["identity"]["family"] == "linear"


# ----------------------------------------------------------------------
# Store mechanics
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_get_on_empty_store_misses(self, store):
        assert store.get("ab" + "0" * 62) is None

    def test_put_get_roundtrip(self, store, linear_point):
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        path = store.put(key, artifact)
        assert path.is_file()
        assert key in store
        restored = store.get(key)
        assert restored.to_dict() == artifact.to_dict()

    def test_corrupt_entry_is_a_miss(self, store, linear_point):
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        path = store.put(key, artifact)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None

    def test_stats_and_clear(self, store, linear_point):
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        store.put(key, artifact)
        stats = store.stats()
        assert stats.artifacts == 1 and stats.bytes > 0
        assert store.clear() == 1
        assert store.stats().artifacts == 0

    def test_corrupt_entry_is_quarantined(self, store, linear_point):
        """Rot is moved aside as ``<key>.corrupt`` and surfaced in
        stats, not silently re-missed forever."""
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        path = store.put(key, artifact)
        path.write_text('{"version": "not-an-artifact"}', encoding="utf-8")
        assert store.get(key) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        stats = store.stats()
        assert stats.corrupt == 1
        assert stats.artifacts == 0

    def test_get_after_quarantine_is_clean_miss(self, store, linear_point):
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        store.put(key, artifact).write_text("{rot", encoding="utf-8")
        assert store.get(key) is None
        assert store.get(key) is None  # second probe: plain miss
        assert store.stats().corrupt == 1

    def test_put_after_quarantine_restores_entry(self, store, linear_point):
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        store.put(key, artifact).write_text("{rot", encoding="utf-8")
        store.get(key)  # quarantines
        store.put(key, artifact)
        restored = store.get(key)
        assert restored is not None
        assert restored.to_dict() == artifact.to_dict()
        stats = store.stats()
        assert stats.artifacts == 1 and stats.corrupt == 1

    def test_clear_removes_quarantined_entries(self, store, linear_point):
        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        store.put(key, artifact).write_text("{rot", encoding="utf-8")
        store.get(key)  # quarantines
        assert store.clear() == 0  # no live artifacts left
        assert store.stats().corrupt == 0

    def test_interrupted_put_leaves_no_partial_entry(
        self, store, linear_point, monkeypatch
    ):
        """Cancellation mid-commit (Ctrl-C between write and rename)
        must leave neither a partial ``<key>.json`` nor a stray temp
        file: the atomic-rename guarantee under cancellation."""
        import os as os_module

        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)

        from repro.store import cache as cache_module

        def interrupted_replace(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(cache_module.os, "replace", interrupted_replace)
        with pytest.raises(KeyboardInterrupt):
            store.put(key, artifact)
        monkeypatch.undo()

        assert store.get(key) is None
        shard = store.path_for(key).parent
        assert not list(shard.glob("*.tmp")), "stray temp file left behind"
        assert not list(shard.glob("*.json")), "partial entry left behind"
        # The interrupted put did not poison later writes.
        store.put(key, artifact)
        assert store.get(key) is not None
        assert os_module.path.exists(store.path_for(key))

    def test_concurrent_puts_last_writer_wins_cleanly(
        self, store, linear_point
    ):
        from concurrent.futures import ThreadPoolExecutor

        artifact = api.run(linear_point)
        key = run_key(linear_point, linear_point.config, artifact.engine)
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: store.put(key, artifact), range(32)))
        restored = store.get(key)
        assert restored is not None
        assert restored.to_dict() == artifact.to_dict()
        assert store.stats().artifacts == 1
        assert not list(store.path_for(key).parent.glob("*.tmp"))

    def test_store_pickles(self, store):
        import pickle

        clone = pickle.loads(pickle.dumps(store))
        assert clone == store

    def test_resolve_store_forms(self, store, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_store(None) is None
        assert resolve_store(False) is None
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path / "x")).root == tmp_path / "x"
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "envstore"))
        assert resolve_store(None).root == tmp_path / "envstore"
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert resolve_store(None) is None

    def test_store_env_overrides_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "rooted"))
        assert default_store_root() == tmp_path / "rooted"


# ----------------------------------------------------------------------
# run() / run_batch() integration
# ----------------------------------------------------------------------
class TestCachedRuns:
    def test_hit_is_byte_identical_to_fresh_solve(self, store, linear_point):
        fresh = api.run(linear_point, cache=store)
        assert not fresh.cached
        hit = api.run(linear_point, cache=store)
        assert hit.cached
        assert hit.to_json(indent=2) == fresh.to_json(indent=2)
        assert hit.to_json() == fresh.to_json()

    def test_hit_skips_the_solver(self, store, linear_point, monkeypatch):
        api.run(linear_point, cache=store)

        from repro.api import pipeline as pipeline_mod

        def boom(self, problem):  # pragma: no cover - must never run
            raise AssertionError("cache hit must not invoke the pipeline")

        monkeypatch.setattr(pipeline_mod.VerificationPipeline, "run", boom)
        hit = api.run(linear_point, cache=store)
        assert hit.cached and hit.verified

    def test_any_knob_change_misses(self, store, linear_point):
        api.run(linear_point, cache=store)
        reseeded = dataclasses.replace(linear_point.config, seed=99)
        again = api.run(linear_point, config=reseeded, cache=store)
        assert not again.cached
        other_engine = api.run(linear_point, engine="batched-icp", cache=store)
        assert not other_engine.cached
        other_point = api.get_family("linear").instantiate(damping=0.9)
        assert not api.run(other_point, cache=store).cached
        assert store.stats().artifacts == 4

    def test_cached_flag_not_serialized(self, store, linear_point):
        api.run(linear_point, cache=store)
        hit = api.run(linear_point, cache=store)
        assert "cached" not in hit.to_dict()
        assert not api.RunArtifact.from_json(hit.to_json()).cached

    def test_run_batch_uses_cache(self, store):
        family = api.get_family("linear")
        points = [family.instantiate(damping=d) for d in (0.4, 0.8)]
        cold = api.run_batch(points, workers=1, cache=store)
        assert [a.cached for a in cold] == [False, False]
        warm = api.run_batch(points, workers=1, cache=store)
        assert [a.cached for a in warm] == [True, True]
        assert [a.to_json() for a in warm] == [a.to_json() for a in cold]

    def test_env_var_opts_runs_in(self, tmp_path, monkeypatch, linear_point):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "auto"))
        assert not api.run(linear_point).cached
        assert api.run(linear_point).cached

    def test_inconclusive_runs_are_not_cached(self, store, linear_point):
        """Budget-exhausted outcomes are machine-dependent: re-run them."""
        starved = dataclasses.replace(
            linear_point.config,
            icp=IcpConfig(delta=1e-3, max_boxes=1),
            max_candidate_iterations=1,
            max_levelset_iterations=1,
        )
        first = api.run(linear_point, config=starved, cache=store)
        assert first.status == "inconclusive"
        assert store.stats().artifacts == 0
        assert not api.run(linear_point, config=starved, cache=store).cached

    def test_config_argument_beats_bundled_config_in_key(self, store, linear_point):
        tight = dataclasses.replace(
            linear_point.config, max_candidate_iterations=5
        )
        api.run(linear_point, config=tight, cache=store)
        assert api.run(linear_point, config=tight, cache=store).cached
        assert not api.run(linear_point, cache=store).cached
